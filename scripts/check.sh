#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run before every commit.
# Everything is offline — external deps resolve to the in-workspace shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
