#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run before every commit.
# Everything is offline — external deps resolve to the in-workspace shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo test --workspace (BYTE_POOL_THREADS=1)"
# Width-1 pool: every parallel path must also be correct fully serialized.
BYTE_POOL_THREADS=1 cargo test --workspace --quiet

echo "==> cargo test -p rayon --features interleave"
# Seeded yield points in the deque's steal/pop race windows.
cargo test -p rayon --features interleave --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
