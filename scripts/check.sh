#!/usr/bin/env bash
# Repo gate: build, tests, formatting, lints. Run before every commit.
# Everything is offline — external deps resolve to the in-workspace shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo test --workspace (BYTE_POOL_THREADS=1)"
# Width-1 pool: every parallel path must also be correct fully serialized.
BYTE_POOL_THREADS=1 cargo test --workspace --quiet

echo "==> cargo test -p rayon --features interleave"
# Seeded yield points in the deque's steal/pop race windows.
cargo test -p rayon --features interleave --quiet

# ISA matrix: the GEMM suites must pass with dispatch pinned to the scalar
# tier and with auto-detection (widest tier on this host). Covers the
# BYTE_GEMM_ISA env seam itself, not just the programmatic setter.
for isa in scalar auto; do
  echo "==> cargo test -p bt-gemm + differential_simd (BYTE_GEMM_ISA=$isa)"
  BYTE_GEMM_ISA="$isa" cargo test -p bt-gemm --quiet
  BYTE_GEMM_ISA="$isa" cargo test -p bytetransformer --test differential_simd --quiet
done

# Precision x ISA matrix: the precision-aware suites must pass under every
# BYTE_GEMM_PREC value at both ends of the ISA range. Only the suites that
# pin or sweep precision themselves run here — the full bt-gemm suite
# asserts f32 tolerances that a low-precision default would rightly break.
for prec in f32 f16 bf16 int8; do
  for isa in scalar auto; do
    echo "==> prec_dispatch + differential_simd (BYTE_GEMM_PREC=$prec BYTE_GEMM_ISA=$isa)"
    BYTE_GEMM_PREC="$prec" BYTE_GEMM_ISA="$isa" cargo test -p bt-gemm --test prec_dispatch --quiet
    BYTE_GEMM_PREC="$prec" BYTE_GEMM_ISA="$isa" cargo test -p bytetransformer --test differential_simd --quiet
  done
done

# Decode matrix: the paged KV-cache path must hold its differential
# guarantees (vs contiguous cache and teacher forcing) and its allocator
# invariants with dispatch pinned to scalar and with auto-detection.
for isa in scalar auto; do
  echo "==> differential_decode + paged_properties (BYTE_GEMM_ISA=$isa)"
  BYTE_GEMM_ISA="$isa" cargo test -p bytetransformer --test differential_decode --quiet
  BYTE_GEMM_ISA="$isa" cargo test -p bt-varlen --test paged_properties --quiet
done

# Chunk-size matrix: streaming chunked execution must be bitwise identical
# to whole-input execution at every chunk size on both ends of the ISA
# range. BYTE_CHUNK_TOKENS drives the env-seam test in the suite; the
# tier-sweeping tests re-prove sizes 1/3/64 internally per tier.
for chunk in 1 64 whole; do
  for isa in scalar auto; do
    echo "==> differential_streaming (BYTE_CHUNK_TOKENS=$chunk BYTE_GEMM_ISA=$isa)"
    BYTE_CHUNK_TOKENS="$chunk" BYTE_GEMM_ISA="$isa" cargo test -p bytetransformer --test differential_streaming --quiet
  done
done

echo "==> decode serving artifact (BENCH_decode.json)"
# The bench asserts >= 8 concurrent decode sessions with exact per-step
# accounting, then emits the artifact; a missing emission fails the gate.
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench bench_decode --quiet
test -s BENCH_decode.json || { echo "BENCH_decode.json was not emitted"; exit 1; }

echo "==> shard matrix (btx serve --shards)"
# Two acceptance checks from the sharded-router contract: (1) --shards 1
# replays the unsharded server byte-for-byte on a fixed seed (the horizon
# rule makes one routed shard the monolithic loop); (2) a 4-shard run keeps
# exact cross-shard accounting — the btx binary asserts the ledger balances
# and exits nonzero otherwise.
shard_tmp="$(mktemp -d)"
./target/release/btx serve --requests 256 --seed 42 > "$shard_tmp/unsharded.txt"
./target/release/btx serve --requests 256 --seed 42 --shards 1 > "$shard_tmp/shard1.txt"
diff "$shard_tmp/unsharded.txt" "$shard_tmp/shard1.txt" \
  || { echo "btx serve --shards 1 diverged from the unsharded server"; exit 1; }
./target/release/btx serve --seed 42 --shards 4 --route jsq --load 2.0 > /dev/null
rm -rf "$shard_tmp"

echo "==> perf-regression gate (scripts/bench_gate.sh)"
# Re-emits the four BENCH_*.json artifacts and diffs them against the
# baselines committed at HEAD with per-metric tolerance bands; a throughput
# collapse, latency blowup, or broken accounting boolean fails the gate.
scripts/bench_gate.sh

echo "==> cargo check --workspace --all-targets (obs-off)"
# Every new obs-layer API (trace, snapshot, btx trace/top, bench_gate) must
# still compile with telemetry swapped for the no-op layer.
cargo check --workspace --all-targets --quiet --features bt-obs/obs-off

echo "==> cargo test --workspace (obs-off)"
# Telemetry compiled out: the no-op layer must keep the whole workspace
# building and passing (every bt-obs call site is exercised as dead code).
cargo test --workspace --quiet --features bt-obs/obs-off

echo "==> obs overhead gate (enabled vs disabled, and compiled out)"
# The harness exits nonzero if the instrumented empty pool launch exceeds
# 2x the uninstrumented baseline, or if obs-off spans cost anything.
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench obs_overhead --quiet
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench obs_overhead --quiet --features bt-obs/obs-off

echo "==> cargo doc --workspace --no-deps (warnings denied)"
# The docs layer is a deliverable: missing_docs and broken intra-doc links
# fail the gate, not just warn.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "OK"
