#!/usr/bin/env bash
# Perf-regression gate: re-emit the four BENCH_*.json artifacts and diff
# them against the baselines committed at HEAD with per-metric tolerance
# bands (see crates/bench/src/bin/bench_gate.rs for the bands and their
# BT_GATE_* env overrides).
#
# Mode discipline — row keys include workload shape, so each bench must
# re-run in the same mode its committed baseline used:
#   * gemm_isa        FULL mode (BT_BENCH_FAST shrinks the GEMM shapes and
#                     would share zero row keys with the baseline)
#   * pool_launch     FAST mode (rows keyed kernel/batch/seq, mode-invariant)
#   * bench_serve     FAST mode (committed baseline is the 192-request run)
#   * bench_decode    FAST mode (committed baseline is the [2, 8] sweep)
#
# The fresh artifacts are left in the working tree: after an intentional
# perf change, commit them to advance the baselines.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_DIR=$(mktemp -d)
trap 'rm -rf "$BASE_DIR"' EXIT

# Baselines come from HEAD, not the working tree, so the freshly emitted
# artifacts can never gate against themselves.
for f in BENCH_gemm.json BENCH_pool.json BENCH_serve.json BENCH_decode.json; do
  git show "HEAD:$f" > "$BASE_DIR/$f" 2>/dev/null \
    || { rm -f "$BASE_DIR/$f"; echo "warning: $f not committed at HEAD; gate will skip it" >&2; }
done

echo "==> bench_gate: re-emitting artifacts (gemm full, pool/serve/decode fast)"
cargo bench -p bt-bench --bench gemm_isa --quiet
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench pool_launch --quiet
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench bench_serve --quiet
BT_BENCH_FAST=1 cargo bench -p bt-bench --bench bench_decode --quiet

echo "==> bench_gate: diffing against HEAD baselines"
cargo run --release -p bt-bench --bin bench_gate --quiet -- "$BASE_DIR" .
