//! # bytetransformer
//!
//! A from-scratch Rust reproduction of **"ByteTransformer: A High-Performance
//! Transformer Boosted for Variable-Length Inputs"** (IPDPS 2023):
//! a variable-length BERT inference pipeline built on a zero-padding
//! algorithm, fused multi-head attention (shared-memory kernel for short
//! sequences, grouped-GEMM kernel for long ones), and fused memory-bound
//! kernels — running on a pure-Rust CPU substrate with an A100 roofline cost
//! model standing in for the GPU (see `DESIGN.md` for the substitution map).
//!
//! ## Quick start
//!
//! ```
//! use bytetransformer::prelude::*;
//!
//! // The paper's standard config is BertConfig::bert_base() (12×64, 12
//! // layers); tiny() keeps the doc test fast.
//! let config = BertConfig::tiny();
//! let model = BertModel::new_random(config, 2, 42);
//!
//! // A variable-length batch with the paper's avg = 0.6·max distribution.
//! let mask = paper_workload(4, 32, 7);
//! let input = Tensor::randn([4, 32, config.hidden()], 3);
//!
//! // Run the fully optimized pipeline and inspect the cost audit.
//! let device = Device::new(); // A100 roofline
//! let out = model.forward(&device, &input, &mask, OptLevel::FusedMha).unwrap();
//! assert_eq!(out.dims(), input.dims());
//! println!("modeled GPU time: {:.3} ms", device.modeled_total() * 1e3);
//! println!("{}", TraceReport::by_prefix(&device.trace()).render());
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`tensor`] | dense tensors, software `f16`/`half2`, deterministic RNG |
//! | [`device`] | kernel-launch substrate, execution trace, A100 roofline |
//! | [`gemm`] | blocked SGEMM, batched GEMM, grouped GEMM + schedulers |
//! | [`kernels`] | fused/unfused LayerNorm, GELU, softmax, layout kernels |
//! | [`varlen`] | zero-padding algorithm: masks, prefix sums, packing |
//! | [`core`] | fused MHA variants + the step-wise optimized BERT encoder |
//! | [`frameworks`] | PyTorch/TF/Turbo/FasterTransformer strategy simulations |
//! | [`obs`] | runtime telemetry: spans, counters, profile export |
//! | [`mod@bench`] | benchmark harness utilities + shared artifact schema |

// Doc-test the `rust` snippets in EXPERIMENTS.md (e.g. the BENCH_serve
// reproduction) so the committed methodology cannot drift from the API.
#[cfg(doctest)]
#[doc = include_str!("../EXPERIMENTS.md")]
pub struct ExperimentsDoctests;

// Same for the operator runbook: the calibrate → size → audit flow in
// docs/OPERATIONS.md §8 compiles and runs against the real API.
#[cfg(doctest)]
#[doc = include_str!("../docs/OPERATIONS.md")]
pub struct OperationsDoctests;

pub use bt_bench as bench;
pub use bt_core as core;
pub use bt_device as device;
pub use bt_frameworks as frameworks;
pub use bt_gemm as gemm;
pub use bt_kernels as kernels;
pub use bt_obs as obs;
pub use bt_tensor as tensor;
pub use bt_varlen as varlen;

/// The most common imports in one place.
pub mod prelude {
    pub use bt_core::attention::{
        batched_attention, causal_fused_attention, cross_attention, flash_attention, fused_attention,
        fused_grouped_attention, fused_short_attention, naive_attention,
    };
    pub use bt_core::config::BertConfig;
    pub use bt_core::decoder::{Seq2SeqTransformer, TransformerDecoder};
    pub use bt_core::encoder::{BertModel, OptLevel};
    pub use bt_core::flops::{layer_flops, FlopVariant};
    pub use bt_device::{CostModel, Device, KernelSpec, LaunchTax, TraceReport};
    pub use bt_frameworks::{FrameworkKind, SimFramework};
    pub use bt_tensor::Tensor;
    pub use bt_varlen::workload::{paper_workload, LengthDistribution};
    pub use bt_varlen::{BatchMask, PackingIndex};
}
