//! `btx` — command-line explorer for the ByteTransformer reproduction.
//!
//! ```text
//! btx features                         # Table I
//! btx flops      [--batch 4] [--seq 256] [--alpha 0.6]
//! btx breakdown  [--batch 4] [--seq 256] [--opt fused|baseline|...]
//! btx compare    [--batch 4] [--seq 256]           # frameworks
//! btx attention  [--batch 8] [--seq 256]           # MHA variants
//! btx profile    [--batch 4] [--seq 256] [--format tree|chrome|prom|json]
//! btx serve      [--policy fifo|sorted|budget] [--load 1.0] [--requests 512]
//!                [--deadline-ms 0(auto)] [--queue 64] [--budget 0(auto)]
//!                [--chunk 0(env)] [--burst] [--trace] [--seed 42]
//!                [--shards 0(unsharded)] [--route rr|jsq|p2c]
//!                [--hot-tokens 0(gate off)]
//! btx decode     [--sessions 8] [--tokens 24] [--prompt 16] [--requests 0(auto)]
//!                [--block 0(env)] [--blocks 0(env)] [--budget 0(auto)]
//!                [--deadline-ms 0(off)] [--queue 0(auto)] [--chunk 0(env)]
//!                [--trace] [--seed 42]
//! btx trace      [--slowest 5] [--shed-only] [--deadline-missed]
//!                [serve flags: --policy --load --requests --seed ...]
//! btx top        [--windows 5] [serve flags]    # live windowed snapshots
//! ```
//!
//! `btx trace` runs the seeded open-loop serve workload with request
//! tracing on, reconstructs every offered request's causal timeline from
//! the drained profile, and prints the filtered set (slowest K by
//! end-to-end latency, shed-only, or deadline-missed). `btx top` drives
//! the same workload continuously on a background thread and refreshes a
//! windowed metrics snapshot (rates, shed breakdown, queue-wait
//! percentiles, per-path GEMM GFLOP/s) every `BYTE_OBS_WINDOW_MS`.
//!
//! `btx serve --shards N` routes the same calibrated open-loop trace
//! through the multi-shard router instead of one server: `--load` is the
//! *per-shard* load (the router scales the aggregate arrival rate by N),
//! `--route` picks the routing policy, and `--hot-tokens` arms the
//! hot-shard shedding gate. `--shards 1` prints byte-identical output to
//! the unsharded path on the same seed — `scripts/check.sh` diffs the two.
//!
//! All subcommands use the standard BERT configuration (12 heads × 64) and
//! print modeled A100 time from the execution trace; run with `--release`
//! for sensible wall-clock. `--heads`, `--head-size` and `--layers` override
//! the model shape.

use bytetransformer::core::flops::{layer_flops, FlopVariant};
use bytetransformer::frameworks::calibration::render_feature_matrix;
use bytetransformer::prelude::*;

#[derive(Debug)]
struct Args {
    batch: usize,
    seq: usize,
    alpha: f64,
    opt: OptLevel,
    heads: usize,
    head_size: usize,
    layers: usize,
    format: String,
    policy: String,
    load: f64,
    requests: usize,
    deadline_ms: f64,
    queue: usize,
    budget: usize,
    burst: bool,
    trace: bool,
    seed: u64,
    sessions: usize,
    tokens: usize,
    prompt: usize,
    block: usize,
    blocks: usize,
    chunk: Option<usize>,
    slowest: usize,
    shed_only: bool,
    deadline_missed: bool,
    windows: usize,
    shards: usize,
    route: String,
    hot_tokens: usize,
}

fn parse_args(mut raw: impl Iterator<Item = String>) -> (String, Args) {
    let cmd = raw.next().unwrap_or_else(|| "help".to_string());
    let mut args = Args {
        batch: 4,
        seq: 256,
        alpha: 0.6,
        opt: OptLevel::FusedMha,
        heads: 12,
        head_size: 64,
        layers: 1,
        format: "tree".to_string(),
        policy: "budget".to_string(),
        load: 1.0,
        // 0 = per-command default: 512 for `serve`, 6 × sessions for `decode`.
        requests: 0,
        deadline_ms: 0.0,
        queue: 64,
        budget: 0,
        burst: false,
        trace: false,
        seed: 42,
        sessions: 8,
        tokens: 24,
        prompt: 16,
        block: 0,
        blocks: 0,
        // None = fall back to BYTE_CHUNK_TOKENS (whole-batch when unset).
        chunk: None,
        slowest: 5,
        shed_only: false,
        deadline_missed: false,
        windows: 5,
        // 0 = the monolithic unsharded server; N >= 1 routes through the
        // shard layer (`--shards 1` replays the unsharded run bit-for-bit).
        shards: 0,
        route: "jsq".to_string(),
        hot_tokens: 0,
    };
    let rest: Vec<String> = raw.collect();
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        // Boolean flags consume a single token.
        match flag {
            "--burst" => {
                args.burst = true;
                i += 1;
                continue;
            }
            "--trace" => {
                args.trace = true;
                i += 1;
                continue;
            }
            "--shed-only" => {
                args.shed_only = true;
                i += 1;
                continue;
            }
            "--deadline-missed" => {
                args.deadline_missed = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let value = rest.get(i + 1).cloned();
        let take = |what: &str| -> String {
            value.clone().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag {
            "--batch" => args.batch = take("--batch").parse().expect("numeric --batch"),
            "--seq" => args.seq = take("--seq").parse().expect("numeric --seq"),
            "--alpha" => args.alpha = take("--alpha").parse().expect("numeric --alpha"),
            "--heads" => args.heads = take("--heads").parse().expect("numeric --heads"),
            "--head-size" => args.head_size = take("--head-size").parse().expect("numeric --head-size"),
            "--layers" => args.layers = take("--layers").parse().expect("numeric --layers"),
            "--load" => args.load = take("--load").parse().expect("numeric --load"),
            "--requests" => args.requests = take("--requests").parse().expect("numeric --requests"),
            "--sessions" => args.sessions = take("--sessions").parse().expect("numeric --sessions"),
            "--tokens" => args.tokens = take("--tokens").parse().expect("numeric --tokens"),
            "--prompt" => args.prompt = take("--prompt").parse().expect("numeric --prompt"),
            "--block" => args.block = take("--block").parse().expect("numeric --block"),
            "--blocks" => args.blocks = take("--blocks").parse().expect("numeric --blocks"),
            "--chunk" => args.chunk = Some(take("--chunk").parse().expect("numeric --chunk")),
            "--deadline-ms" => args.deadline_ms = take("--deadline-ms").parse().expect("numeric --deadline-ms"),
            "--queue" => args.queue = take("--queue").parse().expect("numeric --queue"),
            "--budget" => args.budget = take("--budget").parse().expect("numeric --budget"),
            "--seed" => args.seed = take("--seed").parse().expect("numeric --seed"),
            "--slowest" => args.slowest = take("--slowest").parse().expect("numeric --slowest"),
            "--windows" => args.windows = take("--windows").parse().expect("numeric --windows"),
            "--shards" => args.shards = take("--shards").parse().expect("numeric --shards"),
            "--hot-tokens" => args.hot_tokens = take("--hot-tokens").parse().expect("numeric --hot-tokens"),
            "--route" => {
                args.route = take("--route");
                if !["rr", "round_robin", "jsq", "p2c", "power_of_two"].contains(&args.route.as_str()) {
                    eprintln!("unknown --route {} (rr|jsq|p2c)", args.route);
                    std::process::exit(2);
                }
            }
            "--policy" => {
                args.policy = take("--policy");
                if !["fifo", "sorted", "budget"].contains(&args.policy.as_str()) {
                    eprintln!("unknown --policy {} (fifo|sorted|budget)", args.policy);
                    std::process::exit(2);
                }
            }
            "--format" => {
                args.format = take("--format");
                if !["tree", "chrome", "prom", "json"].contains(&args.format.as_str()) {
                    eprintln!("unknown --format {} (tree|chrome|prom|json)", args.format);
                    std::process::exit(2);
                }
            }
            "--opt" => {
                args.opt = match take("--opt").as_str() {
                    "baseline" => OptLevel::Baseline,
                    "layernorm" => OptLevel::LayernormFusion,
                    "gelu" => OptLevel::GeluFusion,
                    "zeropad" | "rm-padding" => OptLevel::ZeroPadding,
                    "fused" | "full" => OptLevel::FusedMha,
                    other => {
                        eprintln!("unknown --opt {other} (baseline|layernorm|gelu|zeropad|fused)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    (cmd, args)
}

fn config_of(a: &Args) -> BertConfig {
    BertConfig {
        heads: a.heads,
        head_size: a.head_size,
        ffn_scale: 4,
        layers: a.layers,
        eps: 1e-6,
    }
}

fn workload_of(a: &Args) -> BatchMask {
    LengthDistribution::PaperUniform { alpha: a.alpha }.sample_mask(a.batch, a.seq, 42)
}

fn masked_input(mask: &BatchMask, hidden: usize) -> Tensor {
    let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], 7);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).expect("in range");
            }
        }
    }
    t
}

fn main() {
    let (cmd, args) = parse_args(std::env::args().skip(1));
    match cmd.as_str() {
        "features" => print!("{}", render_feature_matrix()),
        "flops" => cmd_flops(&args),
        "breakdown" => cmd_breakdown(&args),
        "compare" => cmd_compare(&args),
        "attention" => cmd_attention(&args),
        "profile" => cmd_profile(&args),
        "serve" => cmd_serve(&args),
        "decode" => cmd_decode(&args),
        "trace" => cmd_trace(&args),
        "top" => cmd_top(&args),
        _ => {
            eprintln!(
                "usage: btx <features|flops|breakdown|compare|attention|profile|serve|decode|trace|top> \
                 [--batch N] [--seq N] [--alpha F] [--opt L] [--heads N] [--head-size N] [--layers N] \
                 [--format tree|chrome|prom|json] [--policy fifo|sorted|budget] [--load F] [--requests N] \
                 [--deadline-ms F] [--queue N] [--budget N] [--chunk N] [--burst] [--trace] [--seed N] \
                 [--shards N] [--route rr|jsq|p2c] [--hot-tokens N] \
                 [--sessions N] [--tokens N] [--prompt N] [--block N] [--blocks N] \
                 [--slowest K] [--shed-only] [--deadline-missed] [--windows N]"
            );
            std::process::exit(2);
        }
    }
}

fn cmd_decode(a: &Args) {
    use bytetransformer::frameworks::decode::{decode_workload, run_decode_loop, DecodeConfig, PagedDecodeEngine};
    use bytetransformer::frameworks::serving::poisson_arrivals;
    use bytetransformer::obs;
    use bytetransformer::varlen::paged::PagedLayout;

    let config = config_of(a);
    let decoder = bytetransformer::core::decoder::TransformerDecoder::new_random(config, a.layers, a.seed);

    // Pool geometry: env knobs (BYTE_KV_BLOCK / BYTE_KV_BLOCKS) unless the
    // flags override them.
    let env = PagedLayout::from_env();
    let layout = PagedLayout::new(
        if a.block > 0 { a.block } else { env.block_tokens },
        if a.blocks > 0 { a.blocks } else { env.pool_blocks },
    );
    // Budget: every live session decodes one token per step; leave room to
    // weave in about two max-length prefills alongside.
    let budget = if a.budget > 0 {
        a.budget
    } else {
        a.sessions + 2 * a.prompt
    };
    let requests = if a.requests > 0 { a.requests } else { 6 * a.sessions };
    let queue = if a.queue > 0 { a.queue } else { requests };
    let deadline = if a.deadline_ms > 0.0 {
        a.deadline_ms * 1e-3
    } else {
        f64::INFINITY
    };

    // A saturating burst: everything arrives up front, so the loop holds
    // the session ceiling until the queue drains.
    let trace = poisson_arrivals(
        requests,
        1e6,
        LengthDistribution::PaperUniform { alpha: a.alpha },
        a.prompt,
        a.seed,
    );
    let workload = decode_workload(&trace, a.tokens.max(1), a.seed);
    // --chunk wins over BYTE_CHUNK_TOKENS; both default to whole prompts.
    let chunk = a
        .chunk
        .or_else(bytetransformer::varlen::chunk_tokens_from_env)
        .unwrap_or(0);
    let decode_config = DecodeConfig {
        budget_tokens: budget,
        queue_capacity: queue,
        deadline,
        max_prompt_len: a.prompt,
        max_sessions: a.sessions,
        chunk_tokens: chunk,
    };
    if a.trace {
        obs::set_enabled(true);
        let _ = obs::drain();
    }
    let device = Device::with_model(CostModel::a100());
    let mut engine = PagedDecodeEngine::new(&decoder, device, layout, 4, a.seed);
    let report = run_decode_loop(&workload, &decode_config, &mut engine);
    let s = report.summary();
    println!(
        "pool {} blocks x {} tokens ({} token capacity) — budget {} tokens/step, {} decode slots, {}",
        layout.pool_blocks,
        layout.block_tokens,
        layout.capacity_tokens(),
        budget,
        a.sessions,
        if chunk > 0 {
            format!("prefill chunks of {chunk} tokens")
        } else {
            "whole-prompt prefill".to_string()
        }
    );
    println!(
        "offered {} requests (prompt <= {}, decode <= {}, α = {:.3}, seed {})\n",
        s.offered, a.prompt, a.tokens, a.alpha, a.seed
    );
    println!(
        "served {} | shed {} (queue_full {}, deadline {}, too_long {}, cache_oom {}, cancelled {})",
        s.served,
        s.shed(),
        s.shed_queue_full,
        s.shed_deadline,
        s.shed_too_long,
        s.shed_cache_oom,
        s.shed_cancelled
    );
    assert!(s.accounting_is_exact(), "served + shed must equal offered");
    assert!(report.ledger_is_exact(), "per-step token ledger must reconcile");
    println!(
        "{} token steps, sustained {} concurrent sessions; cache high water {} of {} blocks",
        s.steps, s.max_concurrent_sessions, s.high_water_blocks, layout.pool_blocks
    );
    println!(
        "modeled A100: {:.0} steps/s, {:.0} decode tokens/s, {:.0} prefill tokens/s over {:.2} ms makespan",
        s.steps_per_sec(),
        s.decode_tokens_per_sec(),
        s.prefill_tokens as f64 / s.makespan.max(1e-12),
        s.makespan * 1e3
    );
    if a.trace {
        println!();
        print!("{}", obs::drain().render_tree());
    }
}

/// Calibrated open-loop serve workload shared by `serve`, `trace` and
/// `top`: the framework, the seeded arrival trace, and the derived
/// `ServeConfig`.
struct ServeSetup {
    fw: SimFramework,
    arrivals: Vec<bytetransformer::frameworks::serving::TimedRequest>,
    config: bytetransformer::frameworks::server::ServeConfig,
    tokens_per_sec: f64,
    budget: usize,
    rate: f64,
}

fn serve_setup(a: &Args) -> ServeSetup {
    use bytetransformer::frameworks::admission::CutPolicy;
    use bytetransformer::frameworks::calibration::calibrate_capacity;
    use bytetransformer::frameworks::server::ServeConfig;
    use bytetransformer::frameworks::serving::{bursty_arrivals, poisson_arrivals};

    let config = config_of(a);
    let model = BertModel::new_random(config, a.layers, 1);
    let fw = SimFramework::new(FrameworkKind::ByteTransformer, model);

    // Calibrate sustained token throughput from the roofline, then derive
    // the batch token budget and the open-loop arrival rate for --load.
    let capacity = calibrate_capacity(&fw, a.seq, a.alpha, 8, a.seed);
    let mean_tokens = (a.alpha * a.seq as f64).max(1.0);
    let interval = 8.0 * mean_tokens / capacity.tokens_per_sec;
    let budget = if a.budget > 0 {
        a.budget
    } else {
        capacity.token_budget(interval)
    };
    let max_batch = ((budget as f64 / mean_tokens).round() as usize).max(1);
    let policy = match a.policy.as_str() {
        "fifo" => CutPolicy::Fifo { max_batch },
        "sorted" => CutPolicy::SortedGroups { max_batch },
        _ => CutPolicy::TokenBudget { budget_tokens: budget },
    };
    // Default deadline ≈ two batch intervals: overload then bounds served
    // tail latency at deadline + one batch, keeping p99 under load within
    // ~3× of the light-load p99 instead of letting the queue absorb it.
    let deadline = if a.deadline_ms > 0.0 {
        a.deadline_ms * 1e-3
    } else {
        2.0 * interval
    };
    // --load is per shard: a fleet of N shards faces N× the aggregate
    // arrivals (and N× the default trace length, so per-shard statistics
    // stay comparable). Unsharded runs have fleet == 1.
    let fleet = a.shards.max(1);
    let rate = capacity.request_rate(mean_tokens, a.load) * fleet as f64;
    let dist = LengthDistribution::PaperUniform { alpha: a.alpha };
    let requests = if a.requests > 0 { a.requests } else { 512 * fleet };
    let arrivals = if a.burst {
        bursty_arrivals(requests, rate * 0.5, rate * 2.0, 25.0 * interval, dist, a.seq, a.seed)
    } else {
        poisson_arrivals(requests, rate, dist, a.seq, a.seed)
    };
    // --chunk wins over BYTE_CHUNK_TOKENS; both default to whole batches.
    let chunk = a
        .chunk
        .or_else(bytetransformer::varlen::chunk_tokens_from_env)
        .unwrap_or(0);
    ServeSetup {
        fw,
        arrivals,
        config: ServeConfig {
            policy,
            queue_capacity: a.queue,
            deadline,
            max_len: a.seq,
            chunk_tokens: chunk,
        },
        tokens_per_sec: capacity.tokens_per_sec,
        budget,
        rate,
    }
}

fn cmd_serve(a: &Args) {
    use bytetransformer::frameworks::server::{modeled_forward_executor, run_open_loop, ServeSummary};
    use bytetransformer::frameworks::shard::{run_sharded_open_loop, shard_seed, RoutePolicy, ShardConfig};
    use bytetransformer::obs;
    use bytetransformer::obs::names;
    use bytetransformer::varlen::paged::PagedLayout;

    let setup = serve_setup(a);
    let serve_config = setup.config;
    let chunk = serve_config.chunk_tokens;
    if a.trace {
        obs::set_enabled(true);
        let _ = obs::drain();
    }

    // Both paths print these exact global lines, so on a fixed seed
    // `btx serve --shards 1` is byte-identical to `btx serve` — the shard
    // matrix in scripts/check.sh diffs the two outputs.
    let print_summary = |s: &ServeSummary| {
        println!(
            "calibrated capacity: {:.0} tokens/s — budget {} tokens/batch, deadline {:.2} ms, queue {}, {}",
            setup.tokens_per_sec,
            setup.budget,
            serve_config.deadline * 1e3,
            a.queue,
            if chunk > 0 {
                format!("chunk rounds of {chunk} tokens")
            } else {
                "whole-batch rounds".to_string()
            }
        );
        println!(
            "offered {} requests ({} arrivals, α = {:.3}) at load {:.2}× ({:.0} req/s), policy {}\n",
            s.offered,
            if a.burst { "bursty" } else { "poisson" },
            a.alpha,
            a.load,
            setup.rate,
            serve_config.policy.label()
        );
        // The unsharded server never sheds HotShard, so the extra term only
        // ever appears for sharded runs with the gate armed.
        let hot = if s.shed_hot_shard > 0 {
            format!(", hot_shard {}", s.shed_hot_shard)
        } else {
            String::new()
        };
        println!(
            "served {} | shed {} (queue_full {}, deadline {}, too_long {}, cancelled {}{}) | {} batches",
            s.served,
            s.shed(),
            s.shed_queue_full,
            s.shed_deadline,
            s.shed_too_long,
            s.shed_cancelled,
            hot,
            s.batches
        );
        assert!(s.accounting_is_exact(), "served + shed must equal offered");
        println!(
            "served latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
            s.served_latency.p50 * 1e3,
            s.served_latency.p95 * 1e3,
            s.served_latency.p99 * 1e3,
            s.served_latency.max * 1e3
        );
        println!(
            "goodput: {:.0} served tokens/s over {:.2} ms makespan",
            s.goodput_tokens_per_sec(),
            s.makespan * 1e3
        );
    };

    if a.shards == 0 {
        let report = run_open_loop(
            &setup.arrivals,
            &serve_config,
            modeled_forward_executor(&setup.fw, CostModel::a100(), a.seed),
        );
        print_summary(&report.summary());
    } else {
        let route = RoutePolicy::parse(&a.route, a.seed).expect("spelling checked in parse_args");
        let cfg = ShardConfig {
            shards: a.shards,
            route,
            serve: serve_config,
            hot_shard_tokens: a.hot_tokens,
            kv_layout: PagedLayout::from_env(),
        };
        let report = run_sharded_open_loop(&setup.arrivals, &cfg, |i| {
            modeled_forward_executor(&setup.fw, CostModel::a100(), shard_seed(a.seed, i))
        });
        print_summary(&report.summary());
        assert!(
            report.accounting_is_exact_across_shards(),
            "per-shard ledgers must partition the offered trace"
        );
        // The per-shard view is extra output: only for N > 1, so a 1-shard
        // run stays line-identical to the unsharded path.
        if a.shards > 1 {
            println!(
                "\nsharded: {} shards, route {}, hot-shard gate {}",
                a.shards,
                report.route,
                if a.hot_tokens > 0 {
                    format!("{} tokens", a.hot_tokens)
                } else {
                    "off".to_string()
                }
            );
            println!(
                "{:>5} {:>8} {:>7} {:>6} {:>8} {:>12} {:>14} {:>10}",
                "shard", "offered", "served", "shed", "batches", "makespan_ms", "goodput_tok/s", "kv_blocks"
            );
            for (i, (p, kv)) in report.shard_summaries().iter().zip(&report.shard_kv).enumerate() {
                println!(
                    "{:>5} {:>8} {:>7} {:>6} {:>8} {:>12.2} {:>14.0} {:>10}",
                    i,
                    p.offered,
                    p.served,
                    p.shed(),
                    p.batches,
                    p.makespan * 1e3,
                    p.goodput_tokens_per_sec(),
                    kv.pool_blocks
                );
            }
            let fleet = report.fleet_snapshot();
            let lat = fleet
                .histogram(names::SERVE_LATENCY_US)
                .expect("fleet latency histogram");
            println!(
                "fleet snapshot ({}): routed {}, served {}, latency p50 {} µs, p95 {} µs, p99 {} µs",
                fleet.shard,
                fleet.delta(names::SERVE_SHARD_ROUTED),
                fleet.delta(names::SERVE_SERVED),
                lat.percentile(0.50),
                lat.percentile(0.95),
                lat.percentile(0.99)
            );
        }
    }
    if a.trace {
        println!();
        print!("{}", obs::drain().render_tree());
    }
}

fn cmd_trace(a: &Args) {
    use bytetransformer::frameworks::server::{modeled_forward_executor, run_open_loop};
    use bytetransformer::obs;
    use bytetransformer::obs::trace::TraceOutcome;

    if !obs::compiled() {
        eprintln!("btx trace needs the recording layer; rebuild without `--features obs-off`");
        std::process::exit(2);
    }
    let setup = serve_setup(a);
    obs::set_enabled(true);
    let _ = obs::drain();
    let report = run_open_loop(
        &setup.arrivals,
        &setup.config,
        modeled_forward_executor(&setup.fw, CostModel::a100(), a.seed),
    );
    let profile = obs::drain();
    obs::set_enabled(false);
    let mut traces = obs::trace::reconstruct(&profile);
    let s = report.summary();
    println!(
        "offered {} requests at load {:.2}× (policy {}) — served {}, shed {}; reconstructed {} timelines",
        s.offered,
        a.load,
        setup.config.policy.label(),
        s.served,
        s.shed(),
        traces.len()
    );
    if a.shed_only {
        traces.retain(|t| matches!(t.outcome(), TraceOutcome::Shed(_)));
    }
    if a.deadline_missed {
        traces.retain(|t| t.deadline_missed());
    }
    traces.sort_by_key(|t| std::cmp::Reverse(t.total_ns().unwrap_or(0)));
    let filter = match (a.shed_only, a.deadline_missed) {
        (true, true) => "shed + deadline-missed",
        (true, false) => "shed-only",
        (false, true) => "deadline-missed",
        (false, false) => "all",
    };
    if traces.is_empty() {
        println!("no timelines match filter `{filter}`");
        return;
    }
    let k = a.slowest.min(traces.len());
    println!("slowest {k} of {} matching `{filter}`:\n", traces.len());
    for t in traces.iter().take(k) {
        print!("{}", t.render());
        println!();
    }
}

fn cmd_top(a: &Args) {
    use bytetransformer::frameworks::server::{modeled_forward_executor, run_open_loop};
    use bytetransformer::obs;
    use bytetransformer::obs::names;
    use bytetransformer::obs::snapshot::{window_ms_from_env, Aggregator, MetricsSnapshot};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    if !obs::compiled() {
        eprintln!("btx top needs the recording layer; rebuild without `--features obs-off`");
        std::process::exit(2);
    }
    let setup = serve_setup(a);
    obs::set_enabled(true);
    let _ = obs::drain();
    let window_ms = window_ms_from_env();

    // Drive the seeded serve workload continuously on a worker thread so
    // each window has live traffic to aggregate; the seed is perturbed per
    // round so rounds are not byte-identical.
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = Arc::clone(&stop);
        let arrivals = setup.arrivals.clone();
        let config = setup.config;
        let fw = setup.fw;
        let seed = a.seed;
        std::thread::spawn(move || {
            let mut round: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let _ = run_open_loop(
                    &arrivals,
                    &config,
                    modeled_forward_executor(&fw, CostModel::a100(), seed ^ round),
                );
                round += 1;
            }
        })
    };

    let render = |w: usize, snap: &MetricsSnapshot| {
        println!(
            "— window {}/{} ({} ms, shard {}) —",
            w + 1,
            a.windows,
            snap.window_ms,
            snap.shard
        );
        println!(
            "serve: offered {:.0}/s, served {:.0}/s, batches {:.0}/s, chunk rounds {:.0}/s",
            snap.rate_per_sec(names::SERVE_OFFERED),
            snap.rate_per_sec(names::SERVE_SERVED),
            snap.rate_per_sec(names::SERVE_BATCHES),
            snap.rate_per_sec(names::SERVE_CHUNK_ROUNDS),
        );
        let sheds = snap.shed_breakdown();
        if sheds.is_empty() {
            println!("shed: none this window");
        } else {
            let parts: Vec<String> = sheds.iter().map(|(n, d)| format!("{n} {d}")).collect();
            println!("shed: {}", parts.join(", "));
        }
        if let Some(h) = snap.histogram(names::SERVE_QUEUE_WAIT_US) {
            println!(
                "queue wait: p50 {} µs, p95 {} µs, p99 {} µs ({} samples)",
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.count()
            );
        }
        let gemm = snap.gemm_rates();
        if !gemm.is_empty() {
            let parts: Vec<String> = gemm
                .iter()
                .map(|(path, gflops)| format!("{path} {gflops:.2} GFLOP/s"))
                .collect();
            println!("gemm: {}", parts.join(", "));
        }
        if let Some(hw) = snap.kv_pool_high_water() {
            println!("kv pool high water: {hw} blocks");
        }
        println!();
    };

    println!(
        "btx top — {} windows of {} ms (BYTE_OBS_WINDOW_MS), load {:.2}×, policy {}\n",
        a.windows,
        window_ms,
        a.load,
        setup.config.policy.label()
    );
    let mut agg = Aggregator::new("btx-top");
    for w in 0..a.windows {
        std::thread::sleep(std::time::Duration::from_millis(window_ms));
        let snap = agg.snapshot();
        render(w, &snap);
    }
    stop.store(true, Ordering::Relaxed);
    worker.join().expect("workload thread exits cleanly");
    obs::set_enabled(false);
}

fn cmd_flops(a: &Args) {
    let config = config_of(a);
    let mask = workload_of(a);
    println!(
        "Table II — batch {} × seq {} (α = {:.3}), hidden {}\n",
        a.batch,
        a.seq,
        mask.alpha(),
        config.hidden()
    );
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "module", "baseline", "zero padding", "zp+fused MHA"
    );
    let b = layer_flops(&mask, config.hidden(), FlopVariant::Baseline);
    let z = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPadding);
    let f = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPaddingFusedMha);
    let g = |x: u64| format!("{:.3} G", x as f64 / 1e9);
    for (name, x, y, zz) in [
        ("GEMM0", b.gemm0, z.gemm0, f.gemm0),
        ("MHA", b.mha, z.mha, f.mha),
        ("GEMM1", b.gemm1, z.gemm1, f.gemm1),
        ("GEMM2", b.gemm2, z.gemm2, f.gemm2),
        ("GEMM3", b.gemm3, z.gemm3, f.gemm3),
        ("TOTAL", b.total(), z.total(), f.total()),
    ] {
        println!("{:<8} {:>14} {:>14} {:>14}", name, g(x), g(y), g(zz));
    }
}

fn cmd_breakdown(a: &Args) {
    let config = config_of(a);
    let mask = workload_of(a);
    let model = BertModel::new_random(config, a.layers, 1);
    let input = masked_input(&mask, config.hidden());
    let dev = Device::new();
    model.forward(&dev, &input, &mask, a.opt).expect("validated shapes");
    println!(
        "{} layer(s), batch {} × seq {} (α = {:.3}), opt = {}\n",
        a.layers,
        a.batch,
        a.seq,
        mask.alpha(),
        a.opt.label()
    );
    println!("{}", TraceReport::by_prefix(&dev.trace()).render());
    println!(
        "modeled A100 total: {:.3} ms over {} launches",
        dev.modeled_total() * 1e3,
        dev.launches()
    );
}

fn cmd_compare(a: &Args) {
    let config = config_of(a);
    let mask = workload_of(a);
    let model = BertModel::new_random(config, a.layers, 1);
    let input = masked_input(&mask, config.hidden());
    println!(
        "{} layer(s), batch {} × seq {} (α = {:.3})\n",
        a.layers,
        a.batch,
        a.seq,
        mask.alpha()
    );
    println!(
        "{:<20} {:>12} {:>10} {:>12}",
        "framework", "modeled_ms", "launches", "vs_BT"
    );
    let mut bt = None;
    let mut rows = Vec::new();
    for kind in FrameworkKind::all() {
        if !kind.supports(a.seq) {
            rows.push((kind.name(), None, 0));
            continue;
        }
        let fw = SimFramework::new(kind, model.clone());
        let dev = fw.device(CostModel::a100());
        fw.forward(&dev, &input, &mask).expect("validated shapes");
        let t = dev.modeled_total();
        if kind == FrameworkKind::ByteTransformer {
            bt = Some(t);
        }
        rows.push((kind.name(), Some(t), dev.launches()));
    }
    let bt = bt.expect("ByteTransformer always runs");
    for (name, t, launches) in rows {
        match t {
            Some(t) => println!(
                "{:<20} {:>12.3} {:>10} {:>11}%",
                name,
                t * 1e3,
                launches,
                format!("{:+.0}", (t / bt - 1.0) * 100.0)
            ),
            None => println!("{:<20} {:>12}", name, "n/a (>512)"),
        }
    }
}

fn cmd_profile(a: &Args) {
    use bytetransformer::frameworks::profiled::serve_profiled;
    use bytetransformer::frameworks::serving::{latency_stats, poisson_arrivals};
    use bytetransformer::obs;
    use std::collections::{BTreeMap, HashSet};

    // Steal/park attribution needs real workers: widen the pool before its
    // lazy init unless the host already chose a width.
    if std::env::var("BYTE_POOL_THREADS").is_err() {
        std::env::set_var("BYTE_POOL_THREADS", "4");
    }
    let width = rayon::current_num_threads();
    obs::set_enabled(true);
    let _ = obs::drain(); // start the profile from a clean slate

    // Segment 1: the optimized encoder forward on a variable-length batch.
    // Running it from *inside* a pool task means the inner parallel_for
    // fan-outs push to that worker's own deque — which is what gives the
    // other workers something to steal (external launches only reach the
    // shared injector).
    let config = config_of(a);
    let mask = workload_of(a);
    let model = BertModel::new_random(config, a.layers, 1);
    let input = masked_input(&mask, config.hidden());
    let dev = Device::new();
    let mut forward = None;
    rayon::scope(|s| {
        s.spawn(|| {
            forward = Some(model.forward(&dev, &input, &mask, a.opt));
        });
    });
    forward.expect("spawned task ran").expect("validated shapes");

    // Segment 2: a short request stream through the instrumented server.
    let fw = SimFramework::new(FrameworkKind::ByteTransformer, model.clone());
    let serve_dev = fw.device(CostModel::a100());
    let requests = poisson_arrivals(
        8,
        2_000.0,
        LengthDistribution::PaperUniform { alpha: a.alpha },
        a.seq,
        11,
    );
    let serve = serve_profiled(&fw, &serve_dev, &requests, 4, 1e-3, 11);

    let profile = obs::drain();
    match a.format.as_str() {
        "chrome" => {
            println!("{}", profile.chrome_trace());
            return;
        }
        "prom" => {
            print!("{}", profile.prometheus());
            return;
        }
        "json" => {
            print!("{}", profile_json(&profile));
            return;
        }
        _ => {}
    }

    println!(
        "{} layer(s), batch {} × seq {} (α = {:.3}), opt = {}, pool width {}\n",
        a.layers,
        a.batch,
        a.seq,
        mask.alpha(),
        a.opt.label(),
        width
    );
    print!("{}", profile.render_tree());

    // Reconciliation: every traced kernel launch also recorded an obs span
    // under the same name, so bucketing both by the name prefix joins the
    // *measured* host wall time against the *modeled* A100 roofline.
    let mut trace = dev.trace();
    trace.extend(serve_dev.trace());
    let kernel_names: HashSet<String> = trace.iter().map(|r| r.name.clone()).collect();
    let mut obs_wall_ns: BTreeMap<String, u64> = BTreeMap::new();
    for (name, (_count, total_ns)) in profile.span_totals() {
        if kernel_names.contains(&name) {
            let bucket = name.split('.').next().unwrap_or(&name).to_string();
            *obs_wall_ns.entry(bucket).or_default() += total_ns;
        }
    }
    let report = TraceReport::by_prefix(&trace);
    println!("\nmeasured vs roofline, per pipeline bucket:");
    println!(
        "  {:<14} {:>8} {:>14} {:>14} {:>12}",
        "bucket", "launches", "measured_ms", "modeled_ms", "meas/model"
    );
    for (bucket, stats) in report.buckets() {
        let measured_ms = obs_wall_ns.get(bucket).copied().unwrap_or(0) as f64 / 1e6;
        let modeled_ms = stats.modeled * 1e3;
        println!(
            "  {:<14} {:>8} {:>14.3} {:>14.3} {:>11.1}x",
            bucket,
            stats.launches,
            measured_ms,
            modeled_ms,
            measured_ms / modeled_ms.max(1e-12)
        );
    }
    println!(
        "  (measured = host wall from obs spans; modeled = A100 roofline — \
         the ratio is host-vs-A100 deviation, stable within a bucket)"
    );

    let lat: Vec<f64> = serve.requests.iter().map(|r| r.latency).collect();
    let stats = latency_stats(&lat);
    println!(
        "\nserving: {} requests in {} batches, {} errors; latency p50 {:.3} ms, p95 {:.3} ms, max {:.3} ms",
        serve.requests.len(),
        serve.batches,
        serve.errors,
        stats.p50 * 1e3,
        stats.p95 * 1e3,
        stats.max * 1e3
    );
    if profile.dropped > 0 {
        println!("note: {} events dropped (ring full)", profile.dropped);
    }
}

/// Renders a drained profile as a `BENCH_*`-schema JSON object (shared
/// `RunMeta` header + span totals + counters + histogram percentiles).
fn profile_json(profile: &bytetransformer::obs::profile::Profile) -> String {
    use std::fmt::Write as _;
    let meta = bytetransformer::bench::report::RunMeta::collect("profile", "ns");
    let esc = bytetransformer::bench::report::json_escape;
    let mut s = meta.header_json();
    s.push_str("  \"spans\": [\n");
    let totals = profile.span_totals();
    for (i, (name, (count, total_ns))) in totals.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}}}{}",
            esc(name),
            count,
            total_ns,
            if i + 1 == totals.len() { "" } else { "," }
        );
    }
    s.push_str("  ],\n  \"counters\": [\n");
    for (i, (name, value)) in profile.counters.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"value\": {}}}{}",
            esc(name),
            value,
            if i + 1 == profile.counters.len() { "" } else { "," }
        );
    }
    s.push_str("  ],\n  \"histograms\": [\n");
    for (i, h) in profile.histograms.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}{}",
            esc(&h.name),
            h.count,
            h.sum,
            h.p50,
            h.p95,
            h.p99,
            if i + 1 == profile.histograms.len() { "" } else { "," }
        );
    }
    let _ = writeln!(s, "  ],\n  \"events_dropped\": {}\n}}", profile.dropped);
    s
}

fn cmd_attention(a: &Args) {
    use bytetransformer::kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv};
    let config = config_of(a);
    let heads = config.heads;
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let mask = workload_of(a);
    let idx = PackingIndex::from_mask(&mask);
    let setup = Device::untraced(CostModel::a100());
    let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 3);
    let bias = vec![0.0f32; 3 * hidden];
    let (qp, kp, vp) = add_bias_unpack_split_qkv(&setup, &qkv, &bias, &idx, heads);
    let (qk, kk, vk) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);
    println!(
        "batch {} × seq {} (α = {:.3}), {} heads × {}\n",
        a.batch,
        a.seq,
        mask.alpha(),
        heads,
        config.head_size
    );
    println!(
        "{:<28} {:>12} {:>10} {:>10}",
        "variant", "modeled_µs", "GFLOP", "launches"
    );
    let report = |name: &str, dev: &Device| {
        println!(
            "{:<28} {:>12.1} {:>10.3} {:>10}",
            name,
            dev.modeled_total() * 1e6,
            dev.total_flops() as f64 / 1e9,
            dev.launches()
        );
    };
    let dev = Device::new();
    naive_attention(&dev, &qp, &kp, &vp, mask.seq_lens(), scale, 8e-6);
    report("PyTorch-style (naive)", &dev);
    let dev = Device::new();
    batched_attention(&dev, &qp, &kp, &vp, mask.seq_lens(), scale, false);
    report("cuBLAS batched", &dev);
    let dev = Device::new();
    batched_attention(&dev, &qp, &kp, &vp, mask.seq_lens(), scale, true);
    report("cuBLAS + zero padding", &dev);
    let dev = Device::new();
    flash_attention(&dev, &qp, &kp, &vp, mask.seq_lens(), scale);
    report("FlashAttention-style", &dev);
    let dev = Device::new();
    fused_attention(&dev, &qk, &kk, &vk, &idx);
    report("fused MHA (ours)", &dev);
}
