//! Online serving scenario: a Poisson stream of variable-length requests is
//! batched and served by a simulated single-GPU server; compare frameworks
//! and batching policies on end-to-end latency (queueing included).
//!
//! This is the workload the paper's introduction motivates (real-time
//! inference behind TikTok/Douyin): requests with very different lengths
//! must share batches, and a padded runtime burns its budget on dead tokens
//! — which shows up as *queueing delay* for everyone behind them.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use bytetransformer::frameworks::serving::{latency_stats, poisson_arrivals, simulate_server};
use bytetransformer::prelude::*;
use bytetransformer::tensor::rng::Xoshiro256StarStar;

fn main() {
    let config = BertConfig {
        heads: 8,
        head_size: 32,
        ffn_scale: 4,
        layers: 2,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, config.layers, 1);

    // 48 requests, Zipf-ish lengths (mostly short, heavy tail), arriving as
    // a Poisson process that keeps the server busy but not saturated.
    let dist = LengthDistribution::Zipf { exponent: 1.2 };
    let requests = poisson_arrivals(48, 150.0, dist, 256, 99);
    let lens: Vec<usize> = requests.iter().map(|r| r.len).collect();
    println!(
        "{} requests over {:.2} s, lengths min/median/max = {}/{}/{}\n",
        requests.len(),
        requests.last().expect("non-empty").arrival,
        lens.iter().min().expect("non-empty"),
        {
            let mut s = lens.clone();
            s.sort_unstable();
            s[s.len() / 2]
        },
        lens.iter().max().expect("non-empty")
    );

    let max_batch = 8;
    let window = 5e-3; // 5 ms batching window
    println!(
        "server: max_batch = {max_batch}, batching window = {:.0} ms\n",
        window * 1e3
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "framework", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"
    );
    for kind in [
        FrameworkKind::PyTorchJit,
        FrameworkKind::TurboTransformer,
        FrameworkKind::FasterTransformer,
        FrameworkKind::ByteTransformer,
    ] {
        let fw = SimFramework::new(kind, model.clone());
        let latencies = simulate_server(&requests, max_batch, window, |mask| {
            let input = random_batch(mask, config.hidden());
            let dev = fw.device(CostModel::a100());
            fw.forward(&dev, &input, mask).expect("supported shapes");
            dev.modeled_total()
        });
        let s = latency_stats(&latencies);
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            kind.name(),
            s.mean * 1e3,
            s.p50 * 1e3,
            s.p95 * 1e3,
            s.p99 * 1e3,
            s.max * 1e3,
        );
    }
    println!(
        "\nthe padding-free pipeline shortens every batch, which compounds through the\n\
         queue (median latency improves several-fold); the p95/p99 tail here is set\n\
         by the {:.0} ms batching window itself — shrink it to trade throughput for tail",
        window * 1e3
    );
}

/// Builds a padded input whose valid rows are random and padded rows zero.
fn random_batch(mask: &BatchMask, hidden: usize) -> Tensor {
    let mut rng = Xoshiro256StarStar::seed_from_u64(5);
    let mut input = Tensor::zeros([mask.batch(), mask.max_seq_len(), hidden]);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            for h in 0..hidden {
                input.set(&[b, s, h], rng.normal()).expect("in range");
            }
        }
    }
    input
}
