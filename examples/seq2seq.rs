//! Encoder-decoder (seq2seq) scenario: the paper's decoder extension
//! (§II/§V) running the full padding-free optimization set on *both* sides —
//! causal fused self-attention, grouped-GEMM cross-attention over
//! variable-length memory, fused memory-bound kernels throughout.
//!
//! ```text
//! cargo run --release --example seq2seq
//! ```

use bytetransformer::device::trace_to_csv;
use bytetransformer::prelude::*;

fn main() {
    let config = BertConfig {
        heads: 8,
        head_size: 32,
        ffn_scale: 4,
        layers: 2,
        eps: 1e-6,
    };
    let model = Seq2SeqTransformer::new_random(config, 2, 2, 42);

    // Translation-style workload: source sentences longer than targets,
    // both variable-length.
    let batch = 6;
    let src_mask = LengthDistribution::PaperUniform { alpha: 0.6 }.sample_mask(batch, 96, 3);
    let tgt_mask = LengthDistribution::PaperUniform { alpha: 0.7 }.sample_mask(batch, 64, 4);
    println!("source lengths: {:?}", src_mask.seq_lens());
    println!("target lengths: {:?}\n", tgt_mask.seq_lens());

    let src = zeroed_input(&src_mask, config.hidden(), 5);
    let tgt = zeroed_input(&tgt_mask, config.hidden(), 6);

    let device = Device::new();
    let out = model
        .forward(&device, &src, &src_mask, &tgt, &tgt_mask)
        .expect("validated shapes");
    println!(
        "output: {:?}, modeled A100 time {:.3} ms over {} launches\n",
        out.dims(),
        device.modeled_total() * 1e3,
        device.launches()
    );

    println!("pipeline stages (note cross_attention's rectangular grouped GEMMs):");
    println!("{}", TraceReport::by_prefix(&device.trace()).render());

    // Demonstrate causality from the public API: perturbing the last target
    // token cannot change earlier positions.
    let mut tgt2 = tgt.clone();
    let last = tgt_mask.seq_lens()[0] - 1;
    for h in 0..config.hidden() {
        tgt2.set(&[0, last, h], 3.0).expect("in range");
    }
    let out2 = model
        .forward(&device, &src, &src_mask, &tgt2, &tgt_mask)
        .expect("validated shapes");
    let changed_earlier =
        (0..last).any(|s| (0..config.hidden()).any(|h| out.at(&[0, s, h]).unwrap() != out2.at(&[0, s, h]).unwrap()));
    println!(
        "causality check: earlier target positions changed after perturbing the last token? {}",
        changed_earlier
    );
    assert!(!changed_earlier);

    // Export the trace for offline analysis.
    let csv = trace_to_csv(&device.trace());
    let path = std::env::temp_dir().join("bytetransformer_seq2seq_trace.csv");
    std::fs::write(&path, csv).expect("temp dir writable");
    println!("full kernel trace written to {}", path.display());
}

fn zeroed_input(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).expect("in range");
            }
        }
    }
    t
}
