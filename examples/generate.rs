//! Autoregressive generation with the KV-cache decoder session: encode a
//! variable-length source batch, then greedily decode each sequence token
//! by token through a toy vocabulary head.
//!
//! ```text
//! cargo run --release --example generate
//! ```

use bytetransformer::core::incremental::DecoderSession;
use bytetransformer::prelude::*;
use bytetransformer::tensor::rng::Xoshiro256StarStar;

fn main() {
    let config = BertConfig {
        heads: 4,
        head_size: 16,
        ffn_scale: 4,
        layers: 2,
        eps: 1e-6,
    };
    let model = Seq2SeqTransformer::new_random(config, 2, 2, 42);
    let hidden = config.hidden();
    let vocab = 64usize;
    // Toy vocabulary: an embedding table shared for input and output.
    let embed = Tensor::randn([vocab, hidden], 9);

    // Encode a batch of three variable-length "sentences".
    let src_mask = BatchMask::from_lens(vec![12, 5, 9], 12).expect("lengths bounded");
    let mut src = Tensor::zeros([3, 12, hidden]);
    let mut rng = Xoshiro256StarStar::seed_from_u64(3);
    for (b, &len) in src_mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            let tok = rng.below(vocab as u64) as usize;
            for h in 0..hidden {
                src.set(&[b, s, h], embed.at(&[tok, h]).unwrap()).unwrap();
            }
        }
    }
    let device = Device::new();
    let memory = model
        .encoder
        .forward(&device, &src, &src_mask, OptLevel::FusedMha)
        .expect("validated shapes");
    println!(
        "encoded {} source tokens in {:.3} ms modeled\n",
        src_mask.valid_words(),
        device.modeled_total() * 1e3
    );

    // Greedy decode each sequence with its own KV-cached session.
    let max_new = 10;
    for (b, &mem_len) in src_mask.seq_lens().iter().enumerate() {
        // Pack this sequence's memory rows.
        let mut mem = Tensor::zeros([mem_len, hidden]);
        for s in 0..mem_len {
            for h in 0..hidden {
                mem.set(&[s, h], memory.at(&[b, s, h]).unwrap()).unwrap();
            }
        }
        let dev = Device::new();
        let mut session = DecoderSession::new(&model.decoder, &dev, &mem);
        let mut token = 0usize; // BOS
        let mut generated = Vec::new();
        for _ in 0..max_new {
            let x: Vec<f32> = embed.row(token).to_vec();
            let h_out = session.step(&dev, &x);
            // Toy output head: nearest embedding by dot product.
            token = (0..vocab)
                .max_by(|&a, &b| {
                    let da: f32 = embed.row(a).iter().zip(&h_out).map(|(x, y)| x * y).sum();
                    let db: f32 = embed.row(b).iter().zip(&h_out).map(|(x, y)| x * y).sum();
                    da.partial_cmp(&db).expect("finite logits")
                })
                .expect("non-empty vocab");
            generated.push(token);
        }
        println!(
            "seq {b} (memory {mem_len:>2} tokens): generated {:?}  ({} kernel launches, {:.3} ms modeled)",
            generated,
            dev.launches(),
            dev.modeled_total() * 1e3
        );
    }
    println!("\neach step attends over the KV cache; cross-attention K/V were projected once per session");
}
