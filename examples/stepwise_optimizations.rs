//! Step-wise optimization walkthrough: apply the paper's optimizations one
//! at a time to a single encoder layer and watch the cost structure change —
//! an interactive miniature of Fig. 13 with the full per-stage breakdown at
//! each step.
//!
//! ```text
//! cargo run --release --example stepwise_optimizations [max_seq] [batch]
//! ```

use bytetransformer::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: usize| -> usize {
        args.next()
            .map(|a| a.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let max_seq = next(128);
    let batch = next(8);

    let config = BertConfig {
        heads: 8,
        head_size: 32,
        ffn_scale: 4,
        layers: 1,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, 1, 17);
    let mask = paper_workload(batch, max_seq, 23);
    let input = Tensor::randn([batch, max_seq, config.hidden()], 5);
    println!(
        "single layer, batch {batch} × max_seq {max_seq}, α = {:.2}, hidden {}\n",
        mask.alpha(),
        config.hidden()
    );

    let mut prev: Option<f64> = None;
    let mut baseline: Option<f64> = None;
    for opt in OptLevel::all() {
        let dev = Device::new();
        model.forward(&dev, &input, &mask, opt).expect("validated shapes");
        let t = dev.modeled_total() * 1e3;
        let step = prev
            .map(|p| format!("{:+.1}% vs prev", (p / t - 1.0) * 100.0))
            .unwrap_or_default();
        let total = baseline
            .map(|b| format!("{:+.1}% vs baseline", (b / t - 1.0) * 100.0))
            .unwrap_or_default();
        println!("=== {:<24} {t:8.3} ms   {step:<18} {total}", opt.label());
        println!("{}", TraceReport::by_prefix(&dev.trace()).render());
        if baseline.is_none() {
            baseline = Some(t);
        }
        prev = Some(t);
    }
}
