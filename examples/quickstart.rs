//! Quickstart: run the fully optimized ByteTransformer pipeline on a
//! variable-length batch and inspect the cost audit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bytetransformer::prelude::*;

fn main() {
    // A mid-sized configuration (use BertConfig::bert_base() for the paper's
    // 12×64 model; this one keeps the example snappy on any machine).
    let config = BertConfig {
        heads: 8,
        head_size: 32,
        ffn_scale: 4,
        layers: 4,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, config.layers, 42);

    // A variable-length batch: average length = 0.6 × maximum, the paper's
    // evaluation distribution.
    let batch = 8;
    let max_seq = 128;
    let mask = paper_workload(batch, max_seq, 7);
    println!("batch = {batch}, max_seq = {max_seq}, lengths = {:?}", mask.seq_lens());
    println!(
        "valid tokens: {} of {} padded slots (α = {:.2})\n",
        mask.valid_words(),
        mask.padded_words(),
        mask.alpha()
    );

    let input = Tensor::randn([batch, max_seq, config.hidden()], 3);

    // Run the baseline (padded, unfused) and the full ByteTransformer
    // pipeline; compare both the outputs and the modeled A100 cost.
    let dev_base = Device::new();
    let base = model
        .forward(&dev_base, &input, &mask, OptLevel::Baseline)
        .expect("shapes validated above");
    let dev_bt = Device::new();
    let fused = model
        .forward(&dev_bt, &input, &mask, OptLevel::FusedMha)
        .expect("shapes validated above");

    // Outputs agree on every valid token.
    let mut worst = 0.0f32;
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            for h in 0..config.hidden() {
                let d = (base.at(&[b, s, h]).unwrap() - fused.at(&[b, s, h]).unwrap()).abs();
                worst = worst.max(d);
            }
        }
    }
    println!("max |baseline - bytetransformer| on valid tokens: {worst:.2e}");

    let t_base = dev_base.modeled_total() * 1e3;
    let t_bt = dev_bt.modeled_total() * 1e3;
    println!("\nmodeled A100 time  baseline: {t_base:.3} ms");
    println!(
        "modeled A100 time  fused:    {t_bt:.3} ms  ({:.0}% faster)",
        (t_base / t_bt - 1.0) * 100.0
    );
    println!(
        "kernel launches    baseline: {}, fused: {}",
        dev_base.launches(),
        dev_bt.launches()
    );

    println!("\nper-stage breakdown of the optimized pipeline:");
    println!("{}", TraceReport::by_prefix(&dev_bt.trace()).render());
}
