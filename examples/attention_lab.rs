//! Attention lab: run every MHA implementation on one variable-length batch,
//! verify they agree numerically, and compare their declared work and
//! modeled time — a miniature of the paper's Figs. 11–12.
//!
//! ```text
//! cargo run --release --example attention_lab [max_seq] [batch] [heads] [head_size]
//! ```

use bytetransformer::core::attention::{
    batched_attention, flash_attention, fused_grouped_attention, fused_short_attention, naive_attention,
    FUSED_SHORT_MAX_SEQ,
};
use bytetransformer::gemm::grouped::Scheduler;
use bytetransformer::kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv};
use bytetransformer::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut next = |default: usize| -> usize {
        args.next()
            .map(|a| a.parse().expect("numeric argument"))
            .unwrap_or(default)
    };
    let max_seq = next(128);
    let batch = next(8);
    let heads = next(8);
    let head = next(32);
    let hidden = heads * head;
    let scale = 1.0 / (head as f32).sqrt();

    let mask = paper_workload(batch, max_seq, 11);
    let idx = PackingIndex::from_mask(&mask);
    println!(
        "batch {batch} × max_seq {max_seq} ({} valid tokens, α = {:.2}), {heads} heads × {head}\n",
        idx.valid_words(),
        mask.alpha()
    );

    // Build one set of QKV inputs in both layouts via the real layout
    // kernels, so every variant sees identical values.
    let setup_dev = Device::untraced(CostModel::a100());
    let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 3);
    let bias = vec![0.0f32; 3 * hidden];
    let (q_pad, k_pad, v_pad) = add_bias_unpack_split_qkv(&setup_dev, &qkv, &bias, &idx, heads);
    let (q_pk, k_pk, v_pk) = add_bias_split_qkv_packed(&setup_dev, &qkv, &bias, heads, scale);

    let reference =
        bytetransformer::core::attention::reference_attention(&q_pad, &k_pad, &v_pad, mask.seq_lens(), scale);
    let ref_packed = pack(&reference, &idx);

    println!(
        "{:<28} {:>12} {:>10} {:>10} {:>12}",
        "variant", "modeled_µs", "GFLOP", "GB", "max_err"
    );

    let report = |name: &str, dev: &Device, packed_out: Vec<f32>| {
        let err = packed_out
            .iter()
            .zip(&ref_packed)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<28} {:>12.2} {:>10.3} {:>10.4} {:>12.2e}",
            name,
            dev.modeled_total() * 1e6,
            dev.total_flops() as f64 / 1e9,
            dev.total_bytes() as f64 / 1e9,
            err
        );
    };

    let dev = Device::new();
    let out = naive_attention(&dev, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, 8e-6);
    report("PyTorch-style (naive)", &dev, pack(&out, &idx));

    let dev = Device::new();
    let out = batched_attention(&dev, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, false);
    report("cuBLAS batched", &dev, pack(&out, &idx));

    let dev = Device::new();
    let out = batched_attention(&dev, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, true);
    report("cuBLAS + zero padding", &dev, pack(&out, &idx));

    let dev = Device::new();
    let out = flash_attention(&dev, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale);
    report("FlashAttention-style", &dev, pack(&out, &idx));

    if max_seq <= FUSED_SHORT_MAX_SEQ {
        let dev = Device::new();
        let out = fused_short_attention(&dev, &q_pk, &k_pk, &v_pk, &idx, 32);
        report("fused MHA (short, ours)", &dev, out.into_vec());
    }

    let dev = Device::new();
    let out = fused_grouped_attention(&dev, &q_pk, &k_pk, &v_pk, &idx, Scheduler::WarpPrefetch);
    report("fused MHA (grouped, ours)", &dev, out.into_vec());

    println!("\nAll variants agree on valid tokens; the fused kernels do it with");
    println!("no padded FLOPs and no seq² round trip through global memory.");
}

/// Packs a padded `[b, h, s, d]` context into `[valid, hidden]` row-major.
fn pack(ctx: &Tensor, idx: &PackingIndex) -> Vec<f32> {
    let dims = ctx.dims();
    let (heads, seq, head) = (dims[1], dims[2], dims[3]);
    let hidden = heads * head;
    let mut out = vec![0.0f32; idx.valid_words() * hidden];
    for b in 0..idx.batch() {
        for s in 0..idx.seq_len(b) {
            let w = idx.seq_offset(b) + s;
            for h in 0..heads {
                for dd in 0..head {
                    out[w * hidden + h * head + dd] = ctx.at(&[b, h, s, dd]).expect("in range");
                }
            }
        }
    }
    let _ = seq;
    out
}
