//! Property-based tests of the software binary16 implementation — these
//! invariants are what make the FP16 SIMD2 kernels trustworthy.

use bt_tensor::half::{f16, half2, to_f16_vec, to_f32_vec};
use proptest::prelude::*;

proptest! {
    #[test]
    fn prop_roundtrip_through_f32_is_identity(bits in 0u16..=0xFFFF) {
        let h = f16::from_bits(bits);
        prop_assume!(!h.is_nan());
        prop_assert_eq!(f16::from_f32(h.to_f32()).to_bits(), bits);
    }

    #[test]
    fn prop_conversion_relative_error_bounded(x in -60000.0f32..60000.0) {
        let h = f16::from_f32(x).to_f32();
        if x.abs() >= 6.2e-5 {
            // Normal range: rel error ≤ 2^-11 (half of the mantissa ulp).
            let rel = ((h - x) / x).abs();
            prop_assert!(rel <= 4.9e-4, "x={x} h={h} rel={rel}");
        } else {
            // Subnormal range: absolute error ≤ half the subnormal step.
            prop_assert!((h - x).abs() <= 3.0e-8, "x={x} h={h}");
        }
    }

    #[test]
    fn prop_conversion_is_monotone(a in -65000.0f32..65000.0, b in -65000.0f32..65000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(f16::from_f32(lo).to_f32() <= f16::from_f32(hi).to_f32());
    }

    #[test]
    fn prop_sign_symmetry(x in -60000.0f32..60000.0) {
        let pos = f16::from_f32(x).to_f32();
        let neg = f16::from_f32(-x).to_f32();
        prop_assert_eq!(pos, -neg);
    }

    #[test]
    fn prop_overflow_saturates_to_infinity(x in 65520.0f32..1e30) {
        prop_assert!(f16::from_f32(x).is_infinite());
        prop_assert!(f16::from_f32(-x).is_infinite());
    }

    #[test]
    fn prop_rounding_picks_nearest(x in -1000.0f32..1000.0) {
        // The chosen f16 must be at least as close to x as its neighbours.
        let h = f16::from_f32(x);
        prop_assume!(!h.is_nan() && !h.is_infinite());
        let err = (h.to_f32() - x).abs();
        for delta in [-1i32, 1] {
            let nb_bits = neighbour(h, delta);
            let nb = f16::from_bits(nb_bits);
            if nb.is_nan() || nb.is_infinite() {
                continue;
            }
            let nb_err = (nb.to_f32() - x).abs();
            prop_assert!(err <= nb_err + 1e-12, "x={x}: chose {} over closer {}", h.to_f32(), nb.to_f32());
        }
    }

    #[test]
    fn prop_half2_lanes_independent(a in -100.0f32..100.0, b in -100.0f32..100.0,
                                    c in -100.0f32..100.0, d in -100.0f32..100.0) {
        let p = half2::from_f32(a, b);
        let q = half2::from_f32(c, d);
        let sum = p.add(q).to_f32();
        prop_assert_eq!(sum.0, f16::from_f32(f16::from_f32(a).to_f32() + f16::from_f32(c).to_f32()).to_f32());
        prop_assert_eq!(sum.1, f16::from_f32(f16::from_f32(b).to_f32() + f16::from_f32(d).to_f32()).to_f32());
    }

    #[test]
    fn prop_vec_conversion_roundtrip(xs in proptest::collection::vec(-1000.0f32..1000.0, 0..64)) {
        let once = to_f32_vec(&to_f16_vec(&xs));
        let twice = to_f32_vec(&to_f16_vec(&once));
        // Conversion is idempotent after the first rounding.
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn prop_nan_payload_survives_narrowing(payload in 1u32..0x0080_0000, neg: bool) {
        // Narrowing keeps the top 10 payload bits and sets the quiet bit —
        // what hardware `vcvtps2ph` does — instead of collapsing every NaN
        // to a canonical one.
        let sign = if neg { 0x8000_0000u32 } else { 0 };
        let x = f32::from_bits(sign | 0x7F80_0000 | payload);
        let h = f16::from_f32(x);
        prop_assert!(h.is_nan());
        let expect = (sign >> 16) as u16 | 0x7C00 | 0x0200 | ((payload >> 13) & 0x3FF) as u16;
        prop_assert_eq!(h.to_bits(), expect);
        // Widening keeps the (quieted) payload in the same bit positions, so
        // narrowing again is the identity on the f16 payload.
        let wide = h.to_f32();
        prop_assert!(wide.is_nan());
        prop_assert_eq!(f16::from_f32(wide).to_bits(), h.to_bits());
    }

    #[test]
    fn prop_midpoints_round_to_even(bits in 0u16..0x7C00) {
        // The exact midpoint between two consecutive finite f16 values (both
        // the midpoint and the endpoints are exactly representable in f32)
        // must round to the neighbour with the even mantissa bit.
        let lo = f16::from_bits(bits);
        let hi = f16::from_bits(bits + 1);
        prop_assume!(!hi.is_infinite());
        let mid = (lo.to_f32() + hi.to_f32()) / 2.0; // exact: same binade
        let expect = if bits & 1 == 0 { bits } else { bits + 1 };
        prop_assert_eq!(f16::from_f32(mid).to_bits(), expect, "midpoint of {bits:#06x} and its successor");
        prop_assert_eq!(f16::from_f32(-mid).to_bits(), expect | 0x8000, "negative midpoint");
    }

    #[test]
    fn prop_subnormals_roundtrip_exactly(steps in 0u16..0x0400, neg: bool) {
        // Every f16 subnormal is an exact multiple of 2^-24; both directions
        // of the conversion must treat them exactly.
        let x = steps as f32 * 2.0f32.powi(-24) * if neg { -1.0 } else { 1.0 };
        let h = f16::from_f32(x);
        prop_assert_eq!(h.to_f32(), x, "subnormal {steps} * 2^-24 must convert exactly");
        let bits = if neg { 0x8000 | steps } else { steps };
        prop_assert_eq!(h.to_bits(), bits);
    }
}

/// Next representable f16 in the direction of `delta`, in bit ordering over
/// same-sign values (a simple ulp walk sufficient for the nearest test).
fn neighbour(h: f16, delta: i32) -> u16 {
    let bits = h.to_bits();
    let sign = bits & 0x8000;
    let mag = bits & 0x7FFF;
    let new_mag = if (delta > 0) == (sign == 0) {
        mag.saturating_add(1)
    } else if mag == 0 {
        // Crossing zero: the smallest value of the opposite sign.
        return (sign ^ 0x8000) | 1;
    } else {
        mag - 1
    };
    sign | new_mag.min(0x7C00)
}
