//! # bt-tensor — dense tensor substrate
//!
//! The ByteTransformer paper operates on dense row-major GPU tensors in
//! FP16/FP32. This crate provides the equivalent host-side substrate used by
//! every other crate in the workspace:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` tensor with a dynamic
//!   [`Shape`]. All activations, weights and intermediate buffers in the
//!   pipeline are `Tensor`s.
//! * [`half::f16`] — a software IEEE 754 binary16 implementation with
//!   round-to-nearest-even conversions plus the paired [`half::half2`]
//!   operations mirroring CUDA's `__half2` SIMD2 type used by the paper's
//!   FP16 kernels (§IV.A).
//! * [`rng`] — small deterministic PRNGs (SplitMix64 / xoshiro256**) so every
//!   experiment in the repository is reproducible bit-for-bit without
//!   depending on external RNG version churn.
//! * [`compare`] — numeric comparison helpers (max absolute/relative error)
//!   used pervasively by the equivalence tests between fused and unfused
//!   kernels.
//!
//! Design notes
//! ------------
//! The tensor is deliberately minimal: contiguous storage, no strided views,
//! no autograd. The paper's system is an *inference* runtime; all layout
//! transformation kernels (transpose, pack/unpack) are explicit kernels in
//! `bt-kernels`, exactly as they are explicit CUDA kernels in the original
//! system. Keeping layout changes explicit is what lets the cost layer in
//! `bt-device` account for every byte of traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod half;
pub mod rng;
mod shape;
mod tensor;

pub use shape::{Shape, TensorError};
pub use tensor::Tensor;
