//! Software IEEE 754 binary16 (`f16`) and the paired `half2` type.
//!
//! The paper's kernels store activations in FP16 and use CUDA's `__half2`
//! SIMD2 type to double per-thread throughput of memory-bound kernels
//! (§IV.A: "We leverage FP16 SIMD2 to increase the computational throughput
//! of layernorm"). This module provides bit-exact software equivalents:
//!
//! * [`struct@f16`] — 16-bit storage with round-to-nearest-even `f32 → f16`
//!   conversion (the conversion CUDA's `__float2half_rn` performs) and exact
//!   `f16 → f32` widening.
//! * [`half2`] — a pair of `f16` lanes with lane-wise arithmetic, mirroring
//!   `__half2` / `__hadd2`-style intrinsics.
//!
//! FP16 arithmetic in the real system happens in tensor cores with FP32
//! accumulation; our kernels likewise convert to `f32`, accumulate in `f32`,
//! and round once on store, which reproduces the numerics of the
//! "convert–compute–round" pipeline.

/// A software IEEE 754 binary16 value (1 sign, 5 exponent, 10 mantissa bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[allow(non_camel_case_types)]
pub struct f16(pub u16);

impl f16 {
    /// Positive zero.
    pub const ZERO: f16 = f16(0);
    /// One.
    pub const ONE: f16 = f16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: f16 = f16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: f16 = f16(0xFC00);
    /// Largest finite value (65504).
    pub const MAX: f16 = f16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: f16 = f16(0x0400);

    /// Converts from `f32` with round-to-nearest-even (ties to even),
    /// matching hardware `cvt.rn.f16.f32` / `__float2half_rn`.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf or NaN. NaNs are quieted and keep the top 10 payload bits
            // (the f32 quiet bit lands on the f16 quiet bit), matching what
            // hardware `vcvtps2ph` does — payloads survive narrowing instead
            // of collapsing to a canonical NaN.
            return if man != 0 {
                f16(sign | 0x7C00 | 0x0200 | ((man >> 13) & 0x3FF) as u16)
            } else {
                f16(sign | 0x7C00)
            };
        }

        // Unbiased exponent of the f32 value.
        let unbiased = exp - 127;
        if unbiased >= 16 {
            // Too large for f16: overflow to infinity.
            return f16(sign | 0x7C00);
        }
        if unbiased >= -14 {
            // Normal range for f16.
            let half_exp = (unbiased + 15) as u32;
            // 23 -> 10 mantissa bits: round the low 13 bits to nearest-even.
            // A mantissa carry (rounded value = 0x400) propagates into the
            // exponent by plain addition thanks to the IEEE bit layout.
            let man_rounded = round_mantissa(man, 13);
            let full = (half_exp << 10) + man_rounded;
            if full >= 0x7C00 {
                return f16(sign | 0x7C00);
            }
            return f16(sign | full as u16);
        }
        if unbiased >= -25 {
            // Subnormal f16: shift the implicit-1 mantissa right.
            let full_man = man | 0x0080_0000; // add implicit leading 1
            let shift = (-14 - unbiased) as u32 + 13;
            let rounded = round_mantissa_shift(full_man, shift);
            return f16(sign | rounded as u16);
        }
        // Underflow to signed zero.
        f16(sign)
    }

    /// Exact widening conversion to `f32`.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 >> 10) & 0x1F) as u32;
        let man = (self.0 & 0x3FF) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign, // signed zero
            (0, m) => {
                // Subnormal: value = m * 2^-24. Normalize around the MSB.
                let p = 31 - m.leading_zeros(); // MSB position, 0..=9
                let e = 103 + p; // (p - 24) + 127
                let m_norm = (m << (23 - p)) & 0x007F_FFFF; // drop implicit 1
                sign | (e << 23) | m_norm
            }
            (0x1F, 0) => sign | 0x7F80_0000,                           // infinity
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13) | 0x0040_0000, // NaN (quiet)
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        f16(bits)
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x3FF) != 0
    }

    /// True if the value is +/- infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }
}

/// Round a value's low `low_bits` away with round-to-nearest-even, returning
/// the value shifted right by `low_bits`.
fn round_mantissa(man: u32, low_bits: u32) -> u32 {
    let half = 1u32 << (low_bits - 1);
    let mask = (1u32 << low_bits) - 1;
    let trunc = man >> low_bits;
    let rem = man & mask;
    if rem > half || (rem == half && trunc & 1 == 1) {
        trunc + 1
    } else {
        trunc
    }
}

/// Like [`round_mantissa`] but tolerates shifts that may exceed the mantissa
/// width (used on the subnormal path).
fn round_mantissa_shift(man: u32, shift: u32) -> u32 {
    if shift >= 32 {
        return 0;
    }
    round_mantissa(man, shift)
}

/// A pair of `f16` lanes, mirroring CUDA `__half2`.
///
/// The paper's memory-bound kernels process two FP16 lanes per thread step
/// (`(__half2 *)s_query[offset] = fast_add(query, k_bias)` in Algorithm
/// III.1). `half2` gives our kernels the same two-lane step structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[allow(non_camel_case_types)]
pub struct half2 {
    /// Low lane.
    pub lo: f16,
    /// High lane.
    pub hi: f16,
}

impl half2 {
    /// Builds a pair from two `f32` lanes (each rounded to nearest-even).
    pub fn from_f32(lo: f32, hi: f32) -> Self {
        Self {
            lo: f16::from_f32(lo),
            hi: f16::from_f32(hi),
        }
    }

    /// Widens both lanes.
    pub fn to_f32(self) -> (f32, f32) {
        (self.lo.to_f32(), self.hi.to_f32())
    }

    /// Lane-wise addition (computed in f32, rounded on store — the
    /// convert–compute–round pipeline of `__hadd2` with FP32 math).
    #[allow(clippy::should_implement_trait)] // mirrors the CUDA intrinsic name
    pub fn add(self, rhs: half2) -> half2 {
        let (a0, a1) = self.to_f32();
        let (b0, b1) = rhs.to_f32();
        half2::from_f32(a0 + b0, a1 + b1)
    }

    /// Lane-wise multiplication.
    #[allow(clippy::should_implement_trait)] // mirrors the CUDA intrinsic name
    pub fn mul(self, rhs: half2) -> half2 {
        let (a0, a1) = self.to_f32();
        let (b0, b1) = rhs.to_f32();
        half2::from_f32(a0 * b0, a1 * b1)
    }
}

/// Converts an `f32` slice to packed `f16` bits.
pub fn to_f16_vec(src: &[f32]) -> Vec<f16> {
    src.iter().map(|&x| f16::from_f32(x)).collect()
}

/// Converts packed `f16` values back to `f32`.
pub fn to_f32_vec(src: &[f16]) -> Vec<f32> {
    src.iter().map(|h| h.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn check(x: f32, bits: u16) {
        assert_eq!(f16::from_f32(x).to_bits(), bits, "from_f32({x})");
    }

    #[test]
    fn known_conversion_vectors() {
        check(0.0, 0x0000);
        check(-0.0, 0x8000);
        check(1.0, 0x3C00);
        check(-1.0, 0xBC00);
        check(2.0, 0x4000);
        check(0.5, 0x3800);
        check(65504.0, 0x7BFF); // f16::MAX
        check(65520.0, 0x7C00); // overflows to +inf (ties to even at max)
        check(f32::INFINITY, 0x7C00);
        check(f32::NEG_INFINITY, 0xFC00);
        check(6.104e-5, 0x0400); // ~smallest normal 2^-14
        check(5.96e-8, 0x0001); // smallest subnormal 2^-24
        check(1e-10, 0x0000); // underflow to zero
        #[allow(clippy::excessive_precision)] // exact f16 value, spelled in full
        {
            check(0.333251953125, 0x3555); // nearest f16 to 1/3
        }
    }

    #[test]
    fn nan_is_preserved() {
        assert!(f16::from_f32(f32::NAN).is_nan());
        assert!(f16::from_bits(0x7E00).to_f32().is_nan());
    }

    #[test]
    fn roundtrip_exact_for_f16_values() {
        // Every finite f16 bit pattern must roundtrip f16 -> f32 -> f16.
        for bits in 0u16..=0xFFFF {
            let h = f16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let rt = f16::from_f32(h.to_f32());
            assert_eq!(rt.to_bits(), bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn round_to_nearest_even_ties() {
        // 1 + 2^-11 lies exactly between 1.0 and the next f16 (1 + 2^-10);
        // round-to-even picks 1.0 (even mantissa).
        let tie = 1.0 + (2.0f32).powi(-11);
        assert_eq!(f16::from_f32(tie).to_bits(), 0x3C00);
        // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9; even is 1+2^-9 (0x3C02).
        let tie2 = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(f16::from_f32(tie2).to_bits(), 0x3C02);
    }

    #[test]
    fn conversion_error_bounded() {
        // Relative error of a normal-range conversion is at most 2^-11.
        let mut rng = crate::rng::Xoshiro256StarStar::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = rng.uniform(-1000.0, 1000.0);
            let h = f16::from_f32(x).to_f32();
            if x.abs() > 6.2e-5 {
                let rel = ((h - x) / x).abs();
                assert!(rel <= 4.9e-4, "x={x} h={h} rel={rel}");
            }
        }
    }

    #[test]
    fn monotone_on_positive_range() {
        // Conversion must be monotone non-decreasing.
        let mut prev = f16::from_f32(0.0).to_f32();
        let mut x = 1e-6f32;
        while x < 70000.0 {
            let cur = f16::from_f32(x).to_f32();
            assert!(cur >= prev, "x={x}");
            prev = cur;
            x *= 1.37;
        }
    }

    #[test]
    fn half2_lane_ops() {
        let a = half2::from_f32(1.5, -2.0);
        let b = half2::from_f32(0.25, 4.0);
        assert_eq!(a.add(b).to_f32(), (1.75, 2.0));
        assert_eq!(a.mul(b).to_f32(), (0.375, -8.0));
    }

    #[test]
    fn vec_conversions() {
        let xs = [0.0f32, 1.0, -2.5, 100.0];
        let hs = to_f16_vec(&xs);
        let back = to_f32_vec(&hs);
        assert_eq!(back, vec![0.0, 1.0, -2.5, 100.0]);
    }
}
