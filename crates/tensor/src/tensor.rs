//! The owned, contiguous, row-major `f32` tensor.

use crate::rng::Xoshiro256StarStar;
use crate::shape::{Shape, TensorError};
use std::fmt;

/// An owned, contiguous, row-major `f32` tensor.
///
/// This is the single activation/weight container used across the workspace.
/// It intentionally has no strided views: layout changes are explicit kernels
/// (as they are on the GPU), which keeps memory-traffic accounting exact.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
            });
        }
        Ok(Self { data, shape })
    }

    /// Standard-normal random tensor with a deterministic seed.
    pub fn randn(shape: impl Into<Shape>, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Self { data, shape }
    }

    /// Uniform random tensor on `[lo, hi)` with a deterministic seed.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, seed: u64) -> Self {
        let shape = shape.into();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..shape.numel()).map(|_| rng.uniform(lo, hi)).collect();
        Self { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multidimensional index.
    ///
    /// # Errors
    /// Returns [`TensorError::BadIndex`] on rank mismatch or out-of-range
    /// coordinates. Intended for tests and debugging, not hot paths.
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        self.shape
            .offset_of(index)
            .map(|o| self.data[o])
            .ok_or_else(|| TensorError::BadIndex {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            })
    }

    /// Sets the element at a multidimensional index.
    ///
    /// # Errors
    /// Returns [`TensorError::BadIndex`] on rank mismatch or out-of-range
    /// coordinates.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        match self.shape.offset_of(index) {
            Some(o) => {
                self.data[o] = value;
                Ok(())
            }
            None => Err(TensorError::BadIndex {
                index: index.to_vec(),
                shape: self.shape.dims().to_vec(),
            }),
        }
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    /// Returns [`TensorError::ReshapeNumel`] if the element counts differ.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ReshapeNumel {
                from: self.data.len(),
                to: shape.numel(),
            });
        }
        Ok(Self { data: self.data, shape })
    }

    /// For a rank-2 tensor `[rows, cols]`, returns row `r` as a slice.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or `r` is out of range (this is a
    /// programmer-error accessor used inside kernels that have already
    /// validated shapes).
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable variant of [`Tensor::row`].
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or `r` is out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.shape.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.shape.dim(1);
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// In-place element-wise scale.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, {} elems", self.shape, self.data.len())?;
        if self.data.len() <= 8 {
            write!(f, ", {:?}", self.data)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.numel(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let f = Tensor::filled([4], 2.5);
        assert!(f.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], [2, 2]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        assert_eq!(t.at(&[1, 0]).unwrap(), 3.0);
    }

    #[test]
    fn randn_deterministic() {
        let a = Tensor::randn([16], 5);
        let b = Tensor::randn([16], 5);
        let c = Tensor::randn([16], 6);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let r = t.clone().reshape([3, 2]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape([4, 2]).is_err());
    }

    #[test]
    fn row_access() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn set_and_at_bounds() {
        let mut t = Tensor::zeros([2, 2]);
        t.set(&[0, 1], 7.0).unwrap();
        assert_eq!(t.at(&[0, 1]).unwrap(), 7.0);
        assert!(t.at(&[2, 0]).is_err());
        assert!(t.set(&[0, 2], 1.0).is_err());
    }

    #[test]
    fn scale_in_place() {
        let mut t = Tensor::filled([3], 2.0);
        t.scale(1.5);
        assert_eq!(t.as_slice(), &[3.0, 3.0, 3.0]);
    }
}
