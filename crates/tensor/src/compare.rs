//! Numeric comparison helpers for kernel-equivalence testing.
//!
//! Every fused kernel in this repository has an unfused reference, and every
//! optimized attention/encoder variant must produce the same numbers as the
//! baseline on valid tokens. These helpers quantify "the same numbers" in
//! floating point.

/// Maximum absolute difference between two equally sized slices.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "compared slices must match in length");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0f32, f32::max)
}

/// Maximum relative difference `|a-b| / max(|a|, |b|, eps)`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn max_rel_diff(a: &[f32], b: &[f32], eps: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "compared slices must match in length");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(eps))
        .fold(0.0f32, f32::max)
}

/// Asserts two slices are element-wise close within an absolute tolerance,
/// reporting the first offending index on failure.
///
/// # Panics
/// Panics (with context) when any element pair differs by more than `tol`,
/// when either slice contains NaN, or when lengths mismatch.
#[track_caller]
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(a.len(), b.len(), "compared slices must match in length");
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(!x.is_nan() && !y.is_nan(), "NaN at index {i}: left={x}, right={y}");
        assert!(
            (x - y).abs() <= tol,
            "mismatch at index {i}: left={x}, right={y}, |diff|={} > tol={tol}",
            (x - y).abs()
        );
    }
}

/// Relative L2 error `||a-b||₂ / (||b||₂ + eps)` — a scale-free summary used
/// when comparing whole activations where element-wise tolerances are too
/// strict for long accumulation chains.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn rel_l2_error(a: &[f32], b: &[f32], eps: f32) -> f32 {
    assert_eq!(a.len(), b.len(), "compared slices must match in length");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += ((x - y) as f64).powi(2);
        den += (y as f64).powi(2);
    }
    (num.sqrt() / (den.sqrt() + eps as f64)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn rel_diff_scale_free() {
        let d = max_rel_diff(&[1000.0], &[1001.0], 1e-12);
        assert!((d - 1.0 / 1001.0).abs() < 1e-6);
    }

    #[test]
    fn close_passes_and_fails() {
        assert_close(&[1.0, 2.0], &[1.0 + 1e-7, 2.0], 1e-6);
        let r = std::panic::catch_unwind(|| assert_close(&[1.0], &[1.1], 1e-3));
        assert!(r.is_err());
    }

    #[test]
    fn close_rejects_nan() {
        let r = std::panic::catch_unwind(|| assert_close(&[f32::NAN], &[0.0], 1.0));
        assert!(r.is_err());
    }

    #[test]
    fn l2_error_zero_for_identical() {
        let v = [3.0f32, -4.0, 5.5];
        assert_eq!(rel_l2_error(&v, &v, 1e-12), 0.0);
        assert!(rel_l2_error(&[1.0, 0.0], &[0.0, 1.0], 1e-12) > 0.9);
    }
}
