//! Tensor shapes and the crate-level error type.

use std::fmt;

/// A dynamically sized tensor shape (row-major).
///
/// The last dimension is contiguous in memory. Shapes in this workspace are
/// small (at most 4 dimensions in practice: `[batch, heads, seq, head_size]`),
/// so a plain `Vec<usize>` is used — shape construction never sits on a hot
/// path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total element count (product of all dimensions; 1 for rank 0).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multidimensional index.
    ///
    /// Returns `None` when the index rank mismatches or any coordinate is out
    /// of range.
    pub fn offset_of(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut off = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            off += i * s;
        }
        Some(off)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

/// Errors produced by tensor construction and reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided buffer length does not match the shape's element count.
    LengthMismatch {
        /// Element count implied by the shape.
        expected: usize,
        /// Length of the provided buffer.
        got: usize,
    },
    /// A reshape changed the total element count.
    ReshapeNumel {
        /// Element count of the original shape.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// An index was out of range or had the wrong rank.
    BadIndex {
        /// The offending index.
        index: Vec<usize>,
        /// The shape that rejected it.
        shape: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, got } => {
                write!(f, "buffer of length {got} does not fill shape of {expected} elements")
            }
            TensorError::ReshapeNumel { from, to } => {
                write!(f, "reshape changes element count from {from} to {to}")
            }
            TensorError::BadIndex { index, shape } => {
                write!(f, "index {index:?} invalid for shape {shape:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::from([2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_of_checks_bounds() {
        let s = Shape::from([2, 3]);
        assert_eq!(s.offset_of(&[1, 2]), Some(5));
        assert_eq!(s.offset_of(&[0, 0]), Some(0));
        assert_eq!(s.offset_of(&[2, 0]), None);
        assert_eq!(s.offset_of(&[0, 3]), None);
        assert_eq!(s.offset_of(&[0]), None);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(Vec::new());
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset_of(&[]), Some(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Shape::from([2, 3]).to_string(), "[2x3]");
        assert_eq!(format!("{:?}", Shape::from([2, 3])), "Shape[2, 3]");
    }
}
