//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the repository must be reproducible bit-for-bit, so we
//! ship tiny, well-known PRNGs rather than depending on the versioned stream
//! behaviour of an external crate: [`SplitMix64`] for seeding and
//! [`Xoshiro256StarStar`] as the workhorse generator (the same pairing used
//! by the reference xoshiro implementation).

/// SplitMix64: a tiny 64-bit generator, primarily used to expand a single
/// `u64` seed into the 256-bit state of [`Xoshiro256StarStar`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — a fast, high-quality 64-bit PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64, per the xoshiro authors' recommendation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = sm.next_u64();
        }
        // An all-zero state is invalid for xoshiro; SplitMix64 cannot emit
        // four consecutive zeros, but guard anyway for belt and braces.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)` using the top 24 bits.
    pub fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform integer in `[0, n)` via Lemire-style rejection-free mapping
    /// (bias is negligible for the small `n` used in workload generation,
    /// and acceptable because these are test workloads, not cryptography).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.next_f64()).max(1e-12);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Xoshiro256StarStar::seed_from_u64(42);
        let mut b = Xoshiro256StarStar::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut r = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn below_stays_in_range_and_hits_everything() {
        let mut r = Xoshiro256StarStar::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = Xoshiro256StarStar::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            let v = r.range_inclusive(5, 8);
            assert!((5..=8).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 8;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn normal_mean_and_var_sane() {
        let mut r = Xoshiro256StarStar::seed_from_u64(11);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let x = r.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(0).below(0);
    }
}
