//! Fig. 9 — kernel fusion for add-bias and LayerNorm on a
//! `(batch·seq) × hidden` tensor, hidden = 768, batch 16.
//!
//! Paper reading: the fused kernel is ~61–69% faster than the two-kernel
//! baseline over seq 128 → 1024. Also includes the FP16 SIMD2 variant the
//! paper credits for extra throughput (§IV.A).

use bt_bench::{banner, bench_config, pct_faster, seq_sweep, wall};
use bt_device::{CostModel, Device};
use bt_kernels::layernorm::{
    add_bias_residual_layernorm_fused, add_bias_residual_layernorm_fused_f16, add_bias_residual_layernorm_unfused,
};
use bt_tensor::half::to_f16_vec;
use bt_tensor::Tensor;

fn main() {
    banner(
        "Fig. 9: add-bias + LayerNorm fusion",
        "Figure 9",
        "fused ≈ 1.6-1.7x over unfused at every length; FP16 SIMD2 halves traffic again",
    );
    let config = bench_config();
    let hidden = config.hidden();
    let batch = if bt_bench::fast_mode() { 2 } else { 16 }; // paper: 16
    println!("tensor: (batch·seq) × {hidden}, batch = {batch}\n");
    println!(
        "{:>6} {:>14} {:>14} {:>10} {:>14} {:>12} {:>12}",
        "seq", "unfused_µs", "fused_µs", "speedup", "fused_f16_µs", "wall_unf_µs", "wall_fus_µs"
    );

    for seq in seq_sweep() {
        let rows = batch * seq;
        let bias: Vec<f32> = (0..hidden).map(|i| 0.01 * i as f32).collect();
        let gamma = vec![1.0f32; hidden];
        let beta = vec![0.0f32; hidden];
        let residual = Tensor::randn([rows, hidden], 1).into_vec();
        let base = Tensor::randn([rows, hidden], 2).into_vec();

        let dev_u = Device::with_model(CostModel::a100());
        let mut x = base.clone();
        let (_, w_u) = wall(|| {
            add_bias_residual_layernorm_unfused(
                &dev_u,
                "layernorm",
                &mut x,
                &residual,
                &bias,
                &gamma,
                &beta,
                1e-6,
                rows,
                hidden,
            )
        });

        let dev_f = Device::with_model(CostModel::a100());
        let mut y = base.clone();
        let (_, w_f) = wall(|| {
            add_bias_residual_layernorm_fused(
                &dev_f,
                "layernorm",
                &mut y,
                &residual,
                &bias,
                &gamma,
                &beta,
                1e-6,
                rows,
                hidden,
            )
        });

        let dev_h = Device::with_model(CostModel::a100());
        let mut hx = to_f16_vec(&base);
        let hres = to_f16_vec(&residual);
        add_bias_residual_layernorm_fused_f16(
            &dev_h,
            "layernorm",
            &mut hx,
            &hres,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );

        println!(
            "{:>6} {:>14.2} {:>14.2} {:>10} {:>14.2} {:>12.0} {:>12.0}",
            seq,
            dev_u.modeled_total() * 1e6,
            dev_f.modeled_total() * 1e6,
            pct_faster(dev_u.modeled_total(), dev_f.modeled_total()),
            dev_h.modeled_total() * 1e6,
            w_u * 1e6,
            w_f * 1e6,
        );
    }
    println!("\npaper: fused version improves by ~69% on average over seq 128-1024");
}
