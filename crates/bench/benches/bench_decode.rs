//! Paged-decode serving harness: token-step continuous batching over the
//! block-paged KV cache, swept across concurrent-session counts.
//!
//! Each cell admits a saturating stream of generation requests (prompt +
//! N decode tokens) into [`run_decode_loop`] with `max_sessions` decode
//! slots, running **real** [`PagedDecodeEngine`] forwards — every K/V row
//! lives in the shared block pool, every step is one grouped-GEMM batch —
//! against modeled A100 time. Recorded per cell: token steps/s and decode
//! tokens/s (virtual time), the concurrency actually sustained, cache
//! high-water, and both accounting ledgers (per request and per token
//! step), which are asserted exact.
//!
//! The headline acceptance figure — at least **8 concurrent decode
//! sessions** sustained under token-budget admission with an exact
//! per-step ledger — is asserted here and recorded in the artifact.
//!
//! Emits `BENCH_decode.json` at the repo root. Run with
//! `cargo bench --bench bench_decode` (`BT_BENCH_FAST=1` shrinks the
//! sweep). `BYTE_KV_BLOCK` / `BYTE_KV_BLOCKS` select the pool geometry.

use bt_bench::{banner, fast_mode};
use bt_core::config::BertConfig;
use bt_core::decoder::TransformerDecoder;
use bt_device::{CostModel, Device};
use bt_frameworks::decode::{decode_workload, run_decode_loop, DecodeConfig, DecodeSummary, PagedDecodeEngine};
use bt_frameworks::serving::poisson_arrivals;
use bt_varlen::paged::PagedLayout;
use bt_varlen::workload::LengthDistribution;
use std::fmt::Write as _;

const PROMPT_SEQ: usize = 16;
const ALPHA: f64 = 0.6;
const MAX_DECODE: usize = 24;
const BUDGET_TOKENS: usize = 64;
const MEM_LEN: usize = 4;
const SEED: u64 = 42;

struct Cell {
    sessions: usize,
    summary: DecodeSummary,
    ledger_exact: bool,
}

fn main() {
    banner(
        "Paged KV-cache decode: token-step continuous batching vs concurrent sessions",
        "block-paged K/V, grouped-GEMM batched steps, token-budget admission",
        ">= 8 concurrent decode sessions sustained with exact per-step accounting",
    );
    let session_sweep: &[usize] = if fast_mode() { &[2, 8] } else { &[1, 2, 4, 8, 16] };
    let layout = PagedLayout::from_env();

    let config = BertConfig::tiny();
    let decoder = TransformerDecoder::new_random(config, config.layers, SEED);
    println!(
        "model: {} heads x {} head, {} layer(s); pool: {} blocks x {} tokens ({} token capacity)\n",
        config.heads,
        config.head_size,
        config.layers,
        layout.pool_blocks,
        layout.block_tokens,
        layout.capacity_tokens()
    );

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>7} {:>10} {:>12} {:>11} {:>10}",
        "sessions", "sustained", "offered", "served", "shed", "steps", "steps/s", "dec_tok/s", "hw_blocks"
    );
    for &sessions in session_sweep {
        // A saturating arrival burst: enough queued work to keep every
        // decode slot busy from the first steps to near the drain.
        let n = sessions * 6;
        let trace = poisson_arrivals(
            n,
            1e6,
            LengthDistribution::PaperUniform { alpha: ALPHA },
            PROMPT_SEQ,
            SEED,
        );
        let requests = decode_workload(&trace, MAX_DECODE, SEED);
        let decode_config = DecodeConfig {
            budget_tokens: BUDGET_TOKENS,
            queue_capacity: n,
            deadline: f64::INFINITY,
            max_prompt_len: PROMPT_SEQ,
            max_sessions: sessions,
            chunk_tokens: 0,
        };
        let device = Device::with_model(CostModel::a100());
        let mut engine = PagedDecodeEngine::new(&decoder, device, layout, MEM_LEN, SEED);
        let report = run_decode_loop(&requests, &decode_config, &mut engine);
        let s = report.summary();
        let ledger_exact = report.ledger_is_exact();
        assert!(
            s.accounting_is_exact(),
            "{sessions} sessions: request accounting must be exact"
        );
        assert!(ledger_exact, "{sessions} sessions: per-step ledger must reconcile");
        println!(
            "{:>8} {:>9} {:>7} {:>7} {:>7} {:>10} {:>12.0} {:>11.0} {:>10}",
            sessions,
            s.max_concurrent_sessions,
            s.offered,
            s.served,
            s.shed(),
            s.steps,
            s.steps_per_sec(),
            s.decode_tokens_per_sec(),
            s.high_water_blocks
        );
        cells.push(Cell {
            sessions,
            summary: s,
            ledger_exact,
        });
    }

    // The acceptance bar: the widest cell must actually sustain >= 8
    // concurrent sessions (not just be configured for them).
    let widest = cells.last().expect("sweep is non-empty");
    println!(
        "\nwidest cell sustained {} concurrent sessions (target >= 8), both ledgers exact",
        widest.summary.max_concurrent_sessions
    );
    assert!(
        widest.summary.max_concurrent_sessions >= 8,
        "must sustain >= 8 concurrent decode sessions, got {}",
        widest.summary.max_concurrent_sessions
    );

    let mut json = bt_bench::report::RunMeta::collect("decode", "decode_tokens_per_sec").header_json();
    let _ = writeln!(
        json,
        "  \"config\": {{\"prompt_seq\": {PROMPT_SEQ}, \"alpha\": {ALPHA}, \"max_decode\": {MAX_DECODE}, \
         \"budget_tokens\": {BUDGET_TOKENS}, \"mem_len\": {MEM_LEN}, \"block_tokens\": {}, \
         \"pool_blocks\": {}, \"heads\": {}, \"head_size\": {}, \"layers\": {}}},",
        layout.block_tokens, layout.pool_blocks, config.heads, config.head_size, config.layers
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.summary;
        let _ = writeln!(
            json,
            "    {{\"max_sessions\": {}, \"sustained_sessions\": {}, \"offered\": {}, \"served\": {}, \
             \"shed_cache_oom\": {}, \"steps\": {}, \"decode_tokens\": {}, \"prefill_tokens\": {}, \
             \"steps_per_sec\": {:.1}, \"decode_tokens_per_sec\": {:.1}, \"makespan_ms\": {:.4}, \
             \"high_water_blocks\": {}, \"accounting_exact\": {}, \"step_ledger_exact\": {}}}{}",
            c.sessions,
            s.max_concurrent_sessions,
            s.offered,
            s.served,
            s.shed_cache_oom,
            s.steps,
            s.decode_tokens,
            s.prefill_tokens,
            s.steps_per_sec(),
            s.decode_tokens_per_sec(),
            s.makespan * 1e3,
            s.high_water_blocks,
            s.accounting_is_exact(),
            c.ledger_exact,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"max_sustained_sessions\": {}\n}}",
        widest.summary.max_concurrent_sessions
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_decode.json");
    std::fs::write(path, &json).expect("write BENCH_decode.json");
    println!("wrote {path}");
}
