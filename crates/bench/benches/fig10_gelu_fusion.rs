//! Fig. 10 — kernel fusion for GEMM + add-bias + GELU. Output tensor
//! `(batch·seq) × (4·hidden)`, hidden = 768, scale 4.
//!
//! Paper reading: fusing the element-wise tail into the GEMM epilogue
//! "perfectly hides the memory latency of bias and GELU into GEMM": ~24%
//! average improvement over the unfused (GEMM, then separate bias+GELU
//! kernels) pipeline. The harness prints the unfused stack (GEMM | bias |
//! GELU) exactly like the paper's stacked bars.

use bt_bench::{banner, bench_batch, bench_config, pct_faster, seq_sweep, wall};
use bt_core::weights::LayerWeights;
use bt_device::{Device, TraceReport};
use bt_gemm::{gemm_kernel_spec, sgemm, sgemm_epilogue, GemmSpec};
use bt_kernels::activation::{add_bias_gelu_unfused, bias_gelu_epilogue};
use bt_tensor::Tensor;

fn main() {
    banner(
        "Fig. 10: GEMM + add-bias + GELU fusion",
        "Figure 10",
        "epilogue fusion hides the element-wise tail: ~1.1-1.4x, bigger at short seq",
    );
    let config = bench_config();
    let hidden = config.hidden();
    let inter = config.intermediate();
    let batch = bench_batch();
    let w = LayerWeights::new_random(&config, 5);
    println!("output tensor: (batch·seq) × {inter}, batch = {batch}\n");
    println!(
        "{:>6} {:>12} {:>11} {:>11} {:>11} {:>12} {:>9} {:>12} {:>12}",
        "seq", "unfused_µs", "=gemm", "+bias", "+gelu", "fused_µs", "speedup", "wall_unf_s", "wall_fus_s"
    );

    for seq in seq_sweep() {
        let rows = batch * seq;
        let x = Tensor::randn([rows, hidden], 1).into_vec();

        // Unfused: GEMM kernel, then the separate bias and GELU kernels.
        let dev_u = Device::new();
        let mut out_u = vec![0.0f32; rows * inter];
        let (_, w_u) = wall(|| {
            dev_u.launch(gemm_kernel_spec("gemm2.ffn_up", rows, inter, hidden, 4), || {
                sgemm(
                    GemmSpec::nn(),
                    rows,
                    inter,
                    hidden,
                    &x,
                    w.ffn_up_weight.as_slice(),
                    &mut out_u,
                )
            });
            add_bias_gelu_unfused(&dev_u, "bias_act", &mut out_u, rows, inter, &w.ffn_up_bias);
        });
        let report = TraceReport::by_prefix(&dev_u.trace());
        let gemm_part = report.bucket("gemm2").map(|b| b.modeled).unwrap_or(0.0);
        let stack = dev_u.trace();
        let bias_part: f64 = stack
            .iter()
            .filter(|r| r.name.contains("add_bias"))
            .map(|r| r.modeled)
            .sum();
        let gelu_part: f64 = stack
            .iter()
            .filter(|r| r.name.contains(".gelu"))
            .map(|r| r.modeled)
            .sum();

        // Fused: one GEMM with the bias+GELU epilogue.
        let dev_f = Device::new();
        let mut out_f = vec![0.0f32; rows * inter];
        let (_, w_f) = wall(|| {
            let epi = bias_gelu_epilogue(&w.ffn_up_bias);
            let mut spec = gemm_kernel_spec("gemm2.ffn_up_fused", rows, inter, hidden, 4);
            spec.cost.flops += (rows * inter * 9) as u64;
            dev_f.launch(spec, || {
                sgemm_epilogue(
                    GemmSpec::nn(),
                    rows,
                    inter,
                    hidden,
                    &x,
                    w.ffn_up_weight.as_slice(),
                    &mut out_f,
                    &epi,
                )
            });
        });

        // Sanity: identical numerics.
        let err = out_u
            .iter()
            .zip(&out_f)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err < 1e-4, "fused/unfused diverged: {err}");

        println!(
            "{:>6} {:>12.1} {:>11.1} {:>11.1} {:>11.1} {:>12.1} {:>9} {:>12.2} {:>12.2}",
            seq,
            dev_u.modeled_total() * 1e6,
            gemm_part * 1e6,
            bias_part * 1e6,
            gelu_part * 1e6,
            dev_f.modeled_total() * 1e6,
            pct_faster(dev_u.modeled_total(), dev_f.modeled_total()),
            w_u,
            w_f,
        );
    }
    println!("\npaper: fusing element-wise ops into the GEMM epilogue gives ~24% on average");
}
