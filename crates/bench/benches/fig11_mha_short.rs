//! Fig. 11 — fused MHA for short sequences (≤ 384), batch 16, heads 12,
//! head size 64, average length = 0.6 × max.
//!
//! Variants, as in the paper: standard PyTorch-style MHA, cuBLAS batched
//! GEMM, cuBLAS + zero-padding softmax, and our fused MHA. Paper reading:
//! fused beats them by ~617% / 42% / 30% on average.

use bt_bench::{banner, bench_config, masked_input, pct_faster};
use bt_core::attention::{batched_attention, fused_short_attention, naive_attention};
use bt_device::Device;
use bt_kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv, split_heads};
use bt_tensor::Tensor;
use bt_varlen::{workload, PackingIndex};

fn main() {
    banner(
        "Fig. 11: MHA for short sequences",
        "Figure 11",
        "fused >> cuBLAS+zeropad > cuBLAS > PyTorch (paper: +617%/+42%/+30%)",
    );
    let config = bench_config();
    let (heads, head) = (config.heads, config.head_size);
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let batch = if bt_bench::fast_mode() { 2 } else { 16 };
    let seqs: Vec<usize> = if bt_bench::fast_mode() {
        vec![64]
    } else {
        vec![128, 256, 384]
    };
    println!("batch {batch}, {heads} heads × {head}, avg len = 0.6·max\n");
    println!(
        "{:>6} {:>12} {:>12} {:>13} {:>11} {:>12} {:>12} {:>12}",
        "seq", "pytorch_µs", "cublas_µs", "cublas+zp_µs", "fused_µs", "vs_pytorch", "vs_cublas", "vs_zp"
    );

    for &seq in &seqs {
        let mask = workload::paper_workload(batch, seq, 21);
        let idx = PackingIndex::from_mask(&mask);
        let setup = Device::untraced(bt_device::CostModel::a100());
        let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 3);
        let bias = vec![0.0f32; 3 * hidden];
        let (q_pad, k_pad, v_pad) = add_bias_unpack_split_qkv(&setup, &qkv, &bias, &idx, heads);
        let (q_pk, k_pk, v_pk) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);
        // Touch split_heads/masked_input so the padded baselines use the same
        // pipeline as real frameworks would (cost parity of the setup phase
        // is not part of this figure).
        let _ = (&split_heads, masked_input(&mask, 1, 0));

        let dev_pt = Device::new();
        naive_attention(&dev_pt, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, 8e-6);
        let dev_cb = Device::new();
        batched_attention(&dev_cb, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, false);
        let dev_zp = Device::new();
        batched_attention(&dev_zp, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, true);
        let dev_f = Device::new();
        fused_short_attention(&dev_f, &q_pk, &k_pk, &v_pk, &idx, 32);

        let f = dev_f.modeled_total();
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>13.1} {:>11.1} {:>12} {:>12} {:>12}",
            seq,
            dev_pt.modeled_total() * 1e6,
            dev_cb.modeled_total() * 1e6,
            dev_zp.modeled_total() * 1e6,
            f * 1e6,
            pct_faster(dev_pt.modeled_total(), f),
            pct_faster(dev_cb.modeled_total(), f),
            pct_faster(dev_zp.modeled_total(), f),
        );
    }
}
