//! Fig. 12 — fused MHA for long sequences (≥ 512) via grouped GEMM,
//! heads 12 × 64, average length = 0.6 × max.
//!
//! Paper reading: grouped fused MHA beats PyTorch / cuBLAS / cuBLAS+zeropad
//! by ~451% / 110% / 79%; the separate full-reduction kernel costs ~2% of
//! fused MHA (reported in the last column).

use bt_bench::{banner, bench_config, pct_faster};
use bt_core::attention::{batched_attention, fused_grouped_attention, naive_attention};
use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv};
use bt_tensor::Tensor;
use bt_varlen::{workload, PackingIndex};

fn main() {
    banner(
        "Fig. 12: MHA for long sequences (grouped GEMM)",
        "Figure 12",
        "grouped fused >> cuBLAS+zeropad > cuBLAS > PyTorch (paper: +451%/+110%/+79%); full-reduce ≈ 2%",
    );
    let config = bench_config();
    let (heads, head) = (config.heads, config.head_size);
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let batch = if bt_bench::fast_mode() {
        2
    } else if bt_bench::full_mode() {
        16
    } else {
        8 // paper uses 16; 8 keeps a single-core run tractable (ratios hold)
    };
    let seqs: Vec<usize> = if bt_bench::fast_mode() {
        vec![96]
    } else {
        vec![512, 768, 1024]
    };
    println!("batch {batch}, {heads} heads × {head}, avg len = 0.6·max\n");
    println!(
        "{:>6} {:>12} {:>12} {:>13} {:>11} {:>12} {:>12} {:>12} {:>11}",
        "seq", "pytorch_µs", "cublas_µs", "cublas+zp_µs", "fused_µs", "vs_pytorch", "vs_cublas", "vs_zp", "reduce_pct"
    );

    for &seq in &seqs {
        let mask = workload::paper_workload(batch, seq, 33);
        let idx = PackingIndex::from_mask(&mask);
        let setup = Device::untraced(bt_device::CostModel::a100());
        let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 3);
        let bias = vec![0.0f32; 3 * hidden];
        let (q_pad, k_pad, v_pad) = add_bias_unpack_split_qkv(&setup, &qkv, &bias, &idx, heads);
        let (q_pk, k_pk, v_pk) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);

        let dev_pt = Device::new();
        naive_attention(&dev_pt, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, 8e-6);
        let dev_cb = Device::new();
        batched_attention(&dev_cb, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, false);
        let dev_zp = Device::new();
        batched_attention(&dev_zp, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale, true);
        let dev_f = Device::new();
        fused_grouped_attention(&dev_f, &q_pk, &k_pk, &v_pk, &idx, Scheduler::WarpPrefetch);

        let f = dev_f.modeled_total();
        let reduce: f64 = dev_f
            .trace()
            .iter()
            .filter(|r| r.name.contains("full_reduce"))
            .map(|r| r.modeled)
            .sum();
        println!(
            "{:>6} {:>12.1} {:>12.1} {:>13.1} {:>11.1} {:>12} {:>12} {:>12} {:>10.1}%",
            seq,
            dev_pt.modeled_total() * 1e6,
            dev_cb.modeled_total() * 1e6,
            dev_zp.modeled_total() * 1e6,
            f * 1e6,
            pct_faster(dev_pt.modeled_total(), f),
            pct_faster(dev_cb.modeled_total(), f),
            pct_faster(dev_zp.modeled_total(), f),
            reduce / f * 100.0,
        );
    }
}
