//! Ablation A3 (§II) — FlashAttention-style fixed-shape fused attention vs
//! our variable-shape grouped fused MHA, under a sweep of α (average/max
//! length ratio).
//!
//! Paper claim: "FlashAttention brings significant wasted computations if
//! input sequence lengths are variable" — at α = 1 the two designs are
//! comparable; as α drops, the fixed-shape kernel's cost stays flat while
//! the grouped kernel's shrinks quadratically.

use bt_bench::banner;
use bt_core::attention::{flash_attention, fused_grouped_attention};
use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv};
use bt_tensor::Tensor;
use bt_varlen::{workload::LengthDistribution, PackingIndex};

fn main() {
    banner(
        "Ablation: fixed-shape (FlashAttention-style) vs variable-shape fused MHA",
        "§II related-work claim",
        "fixed-shape cost is flat in α; grouped cost shrinks ∝ α²",
    );
    let config = bt_bench::bench_config();
    let heads = config.heads;
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let batch = if bt_bench::fast_mode() { 2 } else { 8 };
    let seq = if bt_bench::fast_mode() { 96 } else { 512 };
    println!("batch {batch}, max_seq {seq}, {heads} heads × {}\n", config.head_size);
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>14}",
        "alpha", "flash_µs", "flash_GFLOP", "grouped_µs", "grouped_GFLOP"
    );

    for alpha in [1.0, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let mask = LengthDistribution::PaperUniform { alpha }.sample_mask(batch, seq, 7);
        let idx = PackingIndex::from_mask(&mask);
        let setup = Device::untraced(bt_device::CostModel::a100());
        let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 1);
        let bias = vec![0.0f32; 3 * hidden];
        let (q_pad, k_pad, v_pad) = add_bias_unpack_split_qkv(&setup, &qkv, &bias, &idx, heads);
        let (q_pk, k_pk, v_pk) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);

        let dev_flash = Device::new();
        flash_attention(&dev_flash, &q_pad, &k_pad, &v_pad, mask.seq_lens(), scale);
        let dev_grp = Device::new();
        fused_grouped_attention(&dev_grp, &q_pk, &k_pk, &v_pk, &idx, Scheduler::WarpPrefetch);

        println!(
            "{:>6.2} {:>12.1} {:>14.2} {:>12.1} {:>14.2}",
            mask.alpha(),
            dev_flash.modeled_total() * 1e6,
            dev_flash.total_flops() as f64 / 1e9,
            dev_grp.modeled_total() * 1e6,
            dev_grp.total_flops() as f64 / 1e9,
        );
    }
    println!("\nthe flash column is constant by construction; the grouped column tracks α²");
}
