//! Per-ISA-tier GEMM throughput sweep: GFLOP/s of every available dispatch
//! tier (scalar / avx2 / avx512) at the paper shapes, against the seed's
//! pre-microkernel scalar path.
//!
//! The `scalar` tier *is* the PR 1 autovectorized microkernel, so the
//! `best-vs-scalar` speedups printed at the end measure exactly what the
//! explicit-SIMD tentpole bought over the previous PR, same process, same
//! build flags, same run.
//!
//! Owns `BENCH_gemm.json` at the repo root (every entry carries a `tier`
//! field); `bench_gemm` keeps the console-only microkernel-vs-seed view.
//!
//! Run with `cargo bench -p bt-bench --bench gemm_isa` (`BT_BENCH_FAST=1`
//! shrinks the shapes for smoke runs).

use bt_bench::{banner, fast_mode, wall};
use bt_gemm::grouped::{grouped_sgemm, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform};
use bt_gemm::isa::active_kernel;
use bt_gemm::{
    available_isas, resolve_lowp_kernel, set_active_isa, set_active_precision, sgemm, GemmSpec, Isa, Precision,
};
use bt_tensor::rng::Xoshiro256StarStar;
use rayon::prelude::*;
use std::fmt::Write as _;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// The seed's scalar GEMM (pre-microkernel): row-parallel axpy loops over
/// `KC`-blocked panels, no packing, no register tile.
fn seed_scalar_sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    const KC: usize = 64;
    c[..m * n].par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        c_row.fill(0.0);
        for p0 in (0..k).step_by(KC) {
            let pc = KC.min(k - p0);
            for p in p0..p0 + pc {
                let aip = a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aip * bv;
                }
            }
        }
    });
}

/// Times `f` (1 warm-up + best of `reps`) and returns GFLOP/s for `flops`.
fn gflops(flops: u64, reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), secs) = wall(&mut f);
        best = best.min(secs);
    }
    (flops as f64 / best / 1e9, best)
}

struct Row {
    name: &'static str,
    tier: String,
    prec: String,
    m: usize,
    n: usize,
    k: usize,
    gflops: f64,
    secs: f64,
}

const SHAPES: [&str; 4] = ["square_768", "ffn_up", "ffn_down", "grouped_qk"];
const DENSE_SHAPES: [&str; 3] = ["square_768", "ffn_up", "ffn_down"];
const LOW_PRECS: [Precision; 3] = [Precision::F16, Precision::Bf16, Precision::Int8];

/// Runs all four paper shapes on the currently active dispatch path
/// (ISA tier × precision) and appends one row per shape tagged `tier`/`prec`.
fn sweep(tier: &str, prec: &str, reps: usize, scale: usize, rows: &mut Vec<Row>) {
    let dense: &[(&'static str, usize, usize, usize)] = &[
        ("square_768", 768 / scale, 768 / scale, 768 / scale),
        ("ffn_up", 768 / scale, 3072 / scale, 768 / scale),
        ("ffn_down", 768 / scale, 768 / scale, 3072 / scale),
    ];
    for &(name, m, n, k) in dense {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        let flops = 2 * (m * n * k) as u64;
        let (gf, secs) = if tier == "seed_scalar" {
            gflops(flops, reps, || seed_scalar_sgemm(m, n, k, &a, &b, &mut c))
        } else {
            gflops(flops, reps, || sgemm(GemmSpec::nn(), m, n, k, &a, &b, &mut c))
        };
        rows.push(Row {
            name,
            tier: tier.to_string(),
            prec: prec.to_string(),
            m,
            n,
            k,
            gflops: gf,
            secs,
        });
    }

    // Grouped path: batch 4 x 12 heads of Q·Kᵀ at seq 256, head 64 — the
    // fused-MHA GEMM-1 shape. The seed path has no grouped analogue.
    if tier != "seed_scalar" {
        let (units, seq, head) = (48 / scale, 256 / scale, 64);
        let a_bufs: Vec<Vec<f32>> = (0..units).map(|i| rand_vec(seq * head, i as u64)).collect();
        let b_bufs: Vec<Vec<f32>> = (0..units).map(|i| rand_vec(seq * head, 100 + i as u64)).collect();
        let problems: Vec<GroupedProblem<'_>> = (0..units)
            .map(|i| GroupedProblem {
                m: seq,
                n: seq,
                k: head,
                transb: true,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let mut c_bufs: Vec<Vec<f32>> = (0..units).map(|_| vec![0.0f32; seq * seq]).collect();
        let flops = 2 * (units * seq * seq * head) as u64;
        let (gf, secs) = gflops(flops, reps, || {
            grouped_sgemm(
                &problems,
                c_bufs.iter_mut().map(|c| c.as_mut_slice()).collect(),
                GroupedConfig::default(),
                &NoEpilogue,
                &NoTransform,
            );
        });
        rows.push(Row {
            name: "grouped_qk",
            tier: tier.to_string(),
            prec: prec.to_string(),
            m: seq,
            n: seq,
            k: head,
            gflops: gf,
            secs,
        });
    }
}

fn main() {
    banner(
        "GEMM throughput per ISA dispatch tier",
        "substrate for Figs. 3/9/10/14 at every BYTE_GEMM_ISA setting",
        "best tier >= 1.5x GFLOP/s over the scalar (autovectorized) tier at >= 3 shapes",
    );
    let reps = if fast_mode() { 2 } else { 3 };
    let scale = if fast_mode() { 4 } else { 1 };
    let mut rows: Vec<Row> = Vec::new();

    sweep("seed_scalar", "f32", reps, scale, &mut rows);
    let available = available_isas();
    for tier in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
        if !available.contains(&tier) {
            println!("tier {tier}: unavailable on this host, skipped");
            continue;
        }
        set_active_isa(tier).expect("tier just reported available");
        sweep(tier.name(), "f32", reps, scale, &mut rows);
        // Low-precision sweeps on this tier — only combinations the
        // dispatcher serves natively (a degraded combination would just
        // duplicate the row of the tier it degrades to).
        for prec in LOW_PRECS {
            set_active_precision(prec);
            let served =
                resolve_lowp_kernel(prec, active_kernel().isa).is_some_and(|lk| lk.prec == prec && lk.isa == tier);
            if served {
                sweep(tier.name(), prec.name(), reps, scale, &mut rows);
            } else {
                println!(
                    "{}/{}: no native kernel on this host, skipped",
                    tier.name(),
                    prec.name()
                );
            }
        }
        set_active_precision(Precision::F32);
    }

    println!(
        "\n{:<12} {:<12} {:<6} {:>5} {:>5} {:>5} {:>10} {:>12}",
        "shape", "tier", "prec", "m", "n", "k", "GFLOP/s", "secs"
    );
    for r in &rows {
        println!(
            "{:<12} {:<12} {:<6} {:>5} {:>5} {:>5} {:>10.2} {:>12.6}",
            r.name, r.tier, r.prec, r.m, r.n, r.k, r.gflops, r.secs
        );
    }

    let lookup = |name: &str, tier: &str, prec: &str| {
        rows.iter()
            .find(|r| r.name == name && r.tier == tier && r.prec == prec)
            .map(|r| r.gflops)
    };
    let best_tier = available.last().copied().unwrap_or(Isa::Scalar).name().to_string();
    println!("\nbest tier: {best_tier}");
    let mut wins = 0usize;
    let mut speedups: Vec<(&str, f64)> = Vec::new();
    for name in SHAPES {
        if let (Some(best), Some(scalar)) = (lookup(name, &best_tier, "f32"), lookup(name, "scalar", "f32")) {
            let x = best / scalar;
            println!("{name}: {best_tier} {x:.2}x over scalar tier");
            if x >= 1.5 {
                wins += 1;
            }
            speedups.push((name, x));
        }
    }
    println!("shapes at >= 1.5x over the scalar tier: {wins}/{}", SHAPES.len());

    // §III.C gate: at the dense paper shapes, the best same-tier speedup of
    // each low precision over f32 must reach 1.4x (f16/bf16) or 2x (int8)
    // on at least one ISA tier.
    let tier_names: Vec<&str> = available.iter().map(|t| t.name()).collect();
    let mut lowp_speedups: Vec<(&str, &str, f64, &str)> = Vec::new();
    println!();
    for prec in LOW_PRECS {
        let target = if prec == Precision::Int8 { 2.0 } else { 1.4 };
        let mut prec_wins = 0usize;
        for name in DENSE_SHAPES {
            let (mut best_x, mut best_at) = (0.0f64, "-");
            for &tier in &tier_names {
                if let (Some(lp), Some(f)) = (lookup(name, tier, prec.name()), lookup(name, tier, "f32")) {
                    if lp / f > best_x {
                        best_x = lp / f;
                        best_at = tier;
                    }
                }
            }
            if best_x > 0.0 {
                println!("{} {name}: {best_x:.2}x over f32 (at {best_at})", prec.name());
                if best_x >= target {
                    prec_wins += 1;
                }
                lowp_speedups.push((prec.name(), name, best_x, best_at));
            }
        }
        println!(
            "{}: dense shapes at >= {target}x over same-tier f32: {prec_wins}/{}",
            prec.name(),
            DENSE_SHAPES.len()
        );
    }

    // BENCH_gemm.json at the repo root (hand-rolled — no serde in-tree).
    // The header is the shared RunMeta schema (host, pool, ISA, rev, time).
    let mut json = bt_bench::report::RunMeta::collect("gemm", "GFLOP/s").header_json();
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"tier\": \"{}\", \"prec\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"gflops\": {:.3}, \"secs\": {:.6}}}{}",
            r.name,
            r.tier,
            r.prec,
            r.m,
            r.n,
            r.k,
            r.gflops,
            r.secs,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],\n  \"best_tier\": \"{best_tier}\",");
    json.push_str("  \"speedup_best_vs_scalar_tier\": {\n");
    for (i, (name, x)) in speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {:.2}{}",
            name,
            x,
            if i + 1 == speedups.len() { "" } else { "," }
        );
    }
    json.push_str("  },\n  \"speedup_lowp_vs_f32_same_tier\": [\n");
    for (i, (prec, name, x, at)) in lowp_speedups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"prec\": \"{prec}\", \"name\": \"{name}\", \"speedup\": {x:.2}, \"at_tier\": \"{at}\"}}{}",
            if i + 1 == lowp_speedups.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(path, &json).expect("write BENCH_gemm.json");
    println!("\nwrote {path}");
}
