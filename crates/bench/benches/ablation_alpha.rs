//! Ablation — sensitivity of the end-to-end gain to α (average/max length
//! ratio). The paper evaluates at α = 0.6 everywhere; this sweep shows how
//! the zero-padding + fused-MHA advantage scales with the amount of padding
//! actually present: at α = 1 only the fusion wins remain, and the gap
//! widens as α falls (linearly for the projection/FFN GEMMs, quadratically
//! for attention).

use bt_bench::{banner, bench_batch, bench_config, masked_input, pct_faster};
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::Device;
use bt_varlen::BatchMask;

fn main() {
    banner(
        "Ablation: end-to-end gain vs α (avg/max length ratio)",
        "(the paper fixes α = 0.6; this sweeps it)",
        "gain over the padded baseline grows monotonically as α falls",
    );
    let config = bench_config();
    let batch = bench_batch();
    let seq = if bt_bench::fast_mode() { 64 } else { 256 };
    let model = BertModel::new_random(config, 1, 3);
    println!(
        "single layer, batch {batch} × max_seq {seq}, hidden {}\n",
        config.hidden()
    );
    println!(
        "{:>7} {:>14} {:>14} {:>10} {:>14} {:>10}",
        "alpha", "baseline_µs", "zeropad_µs", "zp_gain", "fused_µs", "full_gain"
    );
    for alpha in [1.0f64, 0.9, 0.8, 0.7, 0.6, 0.5] {
        // Deterministic lengths at exactly α·max (ablations want precision,
        // not sampling noise).
        let len = ((alpha * seq as f64).round() as usize).clamp(1, seq);
        let mask = BatchMask::from_lens(vec![len; batch], seq).expect("bounded lengths");
        let input = masked_input(&mask, config.hidden(), 5);
        let run = |opt: OptLevel| {
            let dev = Device::new();
            model.forward(&dev, &input, &mask, opt).expect("validated shapes");
            dev.modeled_total()
        };
        let base = run(OptLevel::GeluFusion); // fusion on, padding on: isolates padding effects
        let zp = run(OptLevel::ZeroPadding);
        let fused = run(OptLevel::FusedMha);
        println!(
            "{:>7.2} {:>14.1} {:>14.1} {:>10} {:>14.1} {:>10}",
            mask.alpha(),
            base * 1e6,
            zp * 1e6,
            pct_faster(base, zp),
            fused * 1e6,
            pct_faster(base, fused),
        );
    }
    println!("\nat α = 1 packing has nothing to remove (gains ≈ 0, minus pack overhead);");
    println!("the fused-MHA column compounds the quadratic attention saving below it");
}
