//! Ablation A1 (§III.E.2) — the warp-prefetch grouped-GEMM scheduler vs the
//! stock per-tile problem visitor on standard BERT grouped-MHA shapes.
//!
//! Paper reading: computing 32 tile assignments per scheduler interaction
//! gives 32× fewer visits and ~10% end-to-end improvement on the grouped
//! GEMM for standard BERT configurations.

use bt_bench::{banner, bench_config, pct_faster};
use bt_core::attention::fused_grouped_attention;
use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_kernels::layout::add_bias_split_qkv_packed;
use bt_tensor::Tensor;
use bt_varlen::{workload, PackingIndex};

fn main() {
    banner(
        "Ablation: grouped-GEMM scheduler (per-tile vs warp prefetch)",
        "§III.E.2 / Fig. 7",
        "~32× fewer scheduler visits, ~10% faster grouped fused MHA",
    );
    let config = bench_config();
    let heads = config.heads;
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let batch = if bt_bench::fast_mode() { 2 } else { 8 };
    let seqs: Vec<usize> = if bt_bench::fast_mode() {
        vec![96]
    } else {
        vec![512, 768, 1024]
    };
    println!("batch {batch}, {heads} heads × {}, α = 0.6\n", config.head_size);
    println!(
        "{:>6} {:>14} {:>14} {:>12} {:>14} {:>14} {:>10}",
        "seq", "pertile_µs", "prefetch_µs", "gain", "visits_pt", "visits_wp", "ratio"
    );

    for &seq in &seqs {
        let mask = workload::paper_workload(batch, seq, 3);
        let idx = PackingIndex::from_mask(&mask);
        let setup = Device::untraced(bt_device::CostModel::a100());
        let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 1);
        let bias = vec![0.0f32; 3 * hidden];
        let (q, k, v) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);

        let run = |sched: Scheduler| {
            let dev = Device::new();
            fused_grouped_attention(&dev, &q, &k, &v, &idx, sched);
            (dev.modeled_total(), dev.metric("grouped.scheduler_visits"))
        };
        let (t_pt, v_pt) = run(Scheduler::PerTile);
        let (t_wp, v_wp) = run(Scheduler::WarpPrefetch);
        println!(
            "{:>6} {:>14.1} {:>14.1} {:>12} {:>14} {:>14} {:>9.1}x",
            seq,
            t_pt * 1e6,
            t_wp * 1e6,
            pct_faster(t_pt, t_wp),
            v_pt,
            v_wp,
            v_pt as f64 / v_wp.max(1) as f64,
        );
    }
    println!("\npaper: ~10% improvement over the stock CUTLASS grouped scheduler");
}
