//! Telemetry overhead harness: proves the `bt-obs` layer is cheap when
//! enabled and free when compiled out.
//!
//! Two measurements:
//!
//! 1. **Instrumented empty pool launch** — the PR 2 pool-overhead baseline
//!    (an empty `parallel_for` fan-out) re-measured with telemetry enabled
//!    vs disabled. The acceptance bar: the enabled path stays within 2x of
//!    the disabled path (with a 2 µs floor so sub-µs jitter on an idle host
//!    cannot fail the run).
//! 2. **Tight span/counter loop** — per-op cost of `span!` + counter
//!    increments, drained between chunks so the ring never saturates.
//!    Under `--features obs-off` the same loop must collapse to nothing
//!    (no-op layer, dead-code eliminated): asserted at < 5 ns/op.
//!
//! Run with `cargo bench -p bt-bench --bench obs_overhead` (and again with
//! `--features obs-off`); `BT_BENCH_FAST=1` shrinks reps. Exits nonzero on
//! a violated bound, so `scripts/check.sh` uses it as the overhead gate.

use bt_bench::{banner, fast_mode, wall};
use rayon::prelude::*;
use std::hint::black_box;

/// Best-of-`reps` wall time of one empty pool fan-out, in microseconds.
fn empty_launch_us(width: usize, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let (_, secs) = wall(|| {
            (0..width).into_par_iter().for_each(|i| {
                black_box(i);
            });
        });
        best = best.min(secs * 1e6);
    }
    best
}

static LOOP_COUNTER: bt_obs::Counter = bt_obs::Counter::new("bench.obs_overhead.loop");

/// Mean cost of one `span!` + counter increment, in nanoseconds. Drains
/// between chunks so ring saturation (drops) never flatters the number.
fn span_ns_per_op(total: usize) -> f64 {
    let chunk = 8192; // half the ring: enter+exit = 2 events per op
    let mut spent = 0.0;
    let mut done = 0usize;
    while done < total {
        let n = chunk.min(total - done);
        let (_, secs) = wall(|| {
            for i in 0..n {
                let _span = bt_obs::span!("bench.obs_overhead.span");
                LOOP_COUNTER.add(black_box(i as u64) & 1);
            }
        });
        spent += secs;
        let _ = bt_obs::drain();
        done += n;
    }
    spent * 1e9 / total as f64
}

fn main() {
    // Widen the pool before its lazy init (single-CPU CI hosts).
    if std::env::var("BYTE_POOL_THREADS").is_err() {
        std::env::set_var("BYTE_POOL_THREADS", "4");
    }
    let width = rayon::current_num_threads();
    banner(
        "bt-obs overhead: instrumented pool launch + span loop",
        "telemetry must not perturb what it measures",
        "enabled within 2x of disabled; obs-off compiles to nothing",
    );
    let reps = if fast_mode() { 200 } else { 2000 };
    let span_ops = if fast_mode() { 100_000 } else { 1_000_000 };
    println!(
        "pool width = {width}, reps = {reps} (best-of), obs compiled = {}\n",
        bt_obs::compiled()
    );

    // Warm the pool + ring registration outside the measurement.
    bt_obs::set_enabled(true);
    let _ = empty_launch_us(width, 10);
    let _ = bt_obs::drain();

    bt_obs::set_enabled(false);
    let disabled_us = empty_launch_us(width, reps);
    bt_obs::set_enabled(true);
    let enabled_us = empty_launch_us(width, reps);
    let _ = bt_obs::drain();

    let floor = disabled_us.max(2.0);
    println!("empty pool launch, telemetry disabled: {disabled_us:.3} us (best-of-{reps})");
    println!("empty pool launch, telemetry enabled:  {enabled_us:.3} us (best-of-{reps})");
    println!("bound: enabled <= 2x max(disabled, 2 us) = {:.3} us", 2.0 * floor);
    assert!(
        enabled_us <= 2.0 * floor,
        "instrumented launch {enabled_us:.3} us exceeds 2x the {floor:.3} us baseline"
    );

    let ns = span_ns_per_op(span_ops);
    println!("\nspan!+counter loop: {ns:.1} ns/op over {span_ops} ops");
    if !bt_obs::compiled() {
        // The no-op layer must be dead-code eliminated, not merely cheap.
        assert!(ns < 5.0, "obs-off span loop costs {ns:.1} ns/op; expected ~0");
        println!("obs-off: telemetry compiled out (bound < 5 ns/op holds)");
    }
    println!("\nOK: telemetry overhead within bounds");
}
