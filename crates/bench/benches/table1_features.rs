//! Table I — qualitative feature matrix of state-of-the-art Transformers.

fn main() {
    bt_bench::banner(
        "Table I: optimizations of state-of-the-art transformers",
        "Table I",
        "ByteTransformer is the only row with every capability",
    );
    print!("{}", bt_frameworks::calibration::render_feature_matrix());
}
