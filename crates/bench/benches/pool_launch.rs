//! Launch-overhead harness: the persistent work-stealing pool vs the old
//! spawn-per-call strategy on the paper's memory-bound kernels.
//!
//! ByteTransformer's fused kernels exist because, at short sequence
//! lengths, per-launch overhead dominates memory-bound work. Our CPU
//! analogue of "launch overhead" is parallel-runtime dispatch: the seed
//! shim spawned fresh OS threads on *every* `par_*` call, so a fig. 9/10
//! kernel at batch ≤ 8 and short seq paid thread creation that dwarfed its
//! row loop. The persistent pool replaces that with two-word job tokens
//! pushed to already-running workers.
//!
//! Both strategies run in this binary, same build, same machine: the
//! spawn-per-call baseline is the seed shim's `run` transcribed verbatim
//! (modulo monomorphization) — `width` fresh OS threads per launch, one
//! `Mutex` slot per item, a locked shared results vec, a final sort —
//! while the pool path is the live `par_chunks_mut` the kernels actually
//! use. Per-row math is identical (`normalize_row`, `gelu_tanh`), so the
//! delta is pure launch machinery.
//!
//! Emits `BENCH_pool.json` at the repo root. Run with
//! `cargo bench --bench pool_launch` (`BT_BENCH_FAST=1` shrinks reps).

// The baseline transcription keeps the seed shim's types verbatim.
#![allow(clippy::type_complexity)]

use bt_bench::{banner, fast_mode, wall};
use bt_kernels::activation::gelu_tanh;
use bt_kernels::layernorm::normalize_row;
use rayon::prelude::*;
use std::fmt::Write as _;

const HIDDEN: usize = 768;

/// The seed shim's `run`, preserved as the in-binary baseline (transcribed
/// from the pre-pool revision, monomorphized to this bench's item type):
/// every launch spawns `width` fresh OS threads, claims items through one
/// `Mutex` slot each, gathers into a locked results vec, and sorts — the
/// per-launch overhead the persistent pool exists to remove.
fn seed_spawn_per_call(data: &mut [f32], width: usize, body: &(dyn Fn(usize, &mut [f32]) + Sync)) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let items: Vec<(usize, &mut [f32])> = data.chunks_mut(HIDDEN).enumerate().collect();
    let n = items.len();
    let width = width.min(n);
    if width <= 1 {
        for (i, row) in items {
            body(i, row);
        }
        return;
    }
    let slots: Vec<Mutex<Option<(usize, &mut [f32])>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, ())>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..width {
            s.spawn(|| {
                let mut local: Vec<(usize, ())> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (idx, row) = slots[i]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("slot claimed twice");
                    local.push((i, body(idx, row)));
                }
                results.lock().unwrap_or_else(|e| e.into_inner()).extend(local);
            });
        }
    });
    let mut pairs = results.into_inner().unwrap_or_else(|e| e.into_inner());
    pairs.sort_unstable_by_key(|&(i, _)| i);
}

/// Best (minimum) wall-clock microseconds per launch over `reps` runs —
/// the standard microbenchmark estimator; the minimum is the run least
/// perturbed by the scheduler, which matters because the overhead numbers
/// below are differences of two measurements.
fn best_us(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (first pool launch spawns the workers)
    (0..reps)
        .map(|_| {
            let ((), secs) = wall(&mut f);
            secs * 1e6
        })
        .fold(f64::INFINITY, f64::min)
}

struct Row {
    kernel: &'static str,
    batch: usize,
    seq: usize,
    /// Pure inline row loop: no parallel machinery at all.
    serial_us: f64,
    spawn_us: f64,
    pool_us: f64,
}

impl Row {
    /// Raw per-launch ratio. On a single-CPU host this converges to 1 as
    /// the (serialized-either-way) row work grows; on a multi-core host
    /// the work term parallelizes for both strategies and this approaches
    /// the overhead ratio.
    fn speedup(&self) -> f64 {
        self.spawn_us / self.pool_us
    }

    /// Launch overhead: measured time minus the pure serial row loop —
    /// what each strategy *adds* to the unavoidable work.
    fn spawn_overhead(&self) -> f64 {
        (self.spawn_us - self.serial_us).max(0.0)
    }

    fn pool_overhead(&self) -> f64 {
        (self.pool_us - self.serial_us).max(0.0)
    }

    /// Overhead reduction, the host-parallelism-independent figure of
    /// merit (pool overhead floored at 0.5 µs so noise cannot divide by
    /// ~zero).
    fn overhead_reduction(&self) -> f64 {
        self.spawn_overhead() / self.pool_overhead().max(0.5)
    }
}

fn main() {
    // Widen the pool before its lazy init: the CI host may expose a single
    // CPU, and the comparison needs both strategies fanning out.
    if std::env::var("BYTE_POOL_THREADS").is_err() {
        std::env::set_var("BYTE_POOL_THREADS", "4");
    }
    let width = rayon::current_num_threads();
    banner(
        "Pool launch overhead: persistent workers vs spawn-per-call",
        "substrate for Figs. 9/10 at short sequence lengths",
        ">= 2x per-launch at batch <= 8, short seq (launch cost dominates there)",
    );
    let reps = if fast_mode() { 25 } else { 201 };
    println!("pool width = {width}, hidden = {HIDDEN}, reps = {reps} (best-of)\n");

    let bias: Vec<f32> = (0..HIDDEN).map(|i| 0.01 * i as f32).collect();
    let gamma = vec![1.0f32; HIDDEN];
    let beta = vec![0.0f32; HIDDEN];
    let residual = vec![0.5f32; 8 * 128 * HIDDEN];

    // Per-row bodies shared verbatim by both strategies (fig. 9 fused
    // layernorm row, fig. 10 fused GELU row).
    let ln_row = |i: usize, row: &mut [f32]| {
        for (v, (&r, &b)) in row
            .iter_mut()
            .zip(residual[i * HIDDEN..(i + 1) * HIDDEN].iter().zip(&bias))
        {
            *v += r + b;
        }
        normalize_row(row, &gamma, &beta, 1e-6);
    };
    let gelu_row = |_i: usize, row: &mut [f32]| {
        for (v, &b) in row.iter_mut().zip(&bias) {
            *v = gelu_tanh(*v + b);
        }
    };
    let kernels: &[(&'static str, &(dyn Fn(usize, &mut [f32]) + Sync))] =
        &[("fig09_layernorm", &ln_row), ("fig10_gelu", &gelu_row)];

    let mut rows_out: Vec<Row> = Vec::new();
    println!(
        "{:<16} {:>5} {:>5} {:>5} {:>10} {:>10} {:>10} {:>8} {:>11}",
        "kernel", "batch", "seq", "rows", "serial_µs", "spawn_µs", "pool_µs", "raw", "overhead_x"
    );
    for &(name, body) in kernels {
        for &batch in &[1usize, 4, 8] {
            for &seq in &[16usize, 32, 64, 128] {
                let rows = batch * seq;
                let mut data = vec![0.1f32; rows * HIDDEN];
                let serial_us = best_us(reps, || {
                    for (i, row) in data.chunks_mut(HIDDEN).enumerate() {
                        body(i, row);
                    }
                });
                let spawn_us = best_us(reps, || seed_spawn_per_call(&mut data, width, body));
                let pool_us = best_us(reps, || {
                    data.par_chunks_mut(HIDDEN)
                        .enumerate()
                        .for_each(|(i, row)| body(i, row));
                });
                let row = Row {
                    kernel: name,
                    batch,
                    seq,
                    serial_us,
                    spawn_us,
                    pool_us,
                };
                println!(
                    "{:<16} {:>5} {:>5} {:>5} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x {:>10.2}x",
                    row.kernel,
                    row.batch,
                    row.seq,
                    rows,
                    row.serial_us,
                    row.spawn_us,
                    row.pool_us,
                    row.speedup(),
                    row.overhead_reduction()
                );
                rows_out.push(row);
            }
        }
    }

    // Pure launch latency: an empty body over `width` items isolates the
    // dispatch machinery itself.
    let empty_spawn_us = best_us(reps, || {
        std::thread::scope(|s| {
            for _ in 0..width - 1 {
                s.spawn(|| {});
            }
        });
    });
    let empty_pool_us = best_us(reps, || {
        (0..width).into_par_iter().for_each(|_| {});
    });
    println!("\nempty launch: spawn-per-call {empty_spawn_us:.2} µs, pool {empty_pool_us:.2} µs");

    // "Short" = the launch-dominated regime the paper's fused kernels (and
    // this pool) target: seq <= 32. Beyond that the row work itself is the
    // bulk of the time and the overhead measurement drowns in work jitter.
    let short = |r: &&Row| r.batch <= 8 && r.seq <= 32;
    let min_short_overhead = rows_out
        .iter()
        .filter(short)
        .map(Row::overhead_reduction)
        .fold(f64::INFINITY, f64::min);
    let min_short_raw = rows_out
        .iter()
        .filter(short)
        .map(Row::speedup)
        .fold(f64::INFINITY, f64::min);
    println!(
        "short shapes (batch<=8, seq<=32): worst launch-overhead reduction {min_short_overhead:.2}x \
         (target >= 2x), worst raw per-launch {min_short_raw:.2}x"
    );
    println!(
        "(this host serializes the row work for every strategy, so raw ratios are bounded by \
         work/overhead; on a multi-core host the work term parallelizes for both and raw \
         approaches the overhead ratio)"
    );

    // Shared RunMeta header (host, pool, ISA, rev, time): `pool_width` in
    // the header is the live rayon width, which equals `width` here.
    let mut json = bt_bench::report::RunMeta::collect("pool_launch", "us_per_launch").header_json();
    let _ = write!(json, "  \"hidden\": {HIDDEN},\n  \"results\": [\n");
    for (i, r) in rows_out.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"batch\": {}, \"seq\": {}, \"serial_us\": {:.3}, \
             \"spawn_per_call_us\": {:.3}, \"pool_us\": {:.3}, \"raw_speedup\": {:.2}, \
             \"launch_overhead_reduction\": {:.2}}}{}",
            r.kernel,
            r.batch,
            r.seq,
            r.serial_us,
            r.spawn_us,
            r.pool_us,
            r.speedup(),
            r.overhead_reduction(),
            if i + 1 == rows_out.len() { "" } else { "," }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"empty_launch\": {{\"spawn_per_call_us\": {empty_spawn_us:.3}, \"pool_us\": {empty_pool_us:.3}}},\n"
    );
    let _ = write!(
        json,
        "  \"min_launch_overhead_reduction_short_shapes\": {min_short_overhead:.2},\n  \
         \"min_raw_speedup_short_shapes\": {min_short_raw:.2}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    std::fs::write(path, &json).expect("write BENCH_pool.json");
    println!("wrote {path}");
}
