//! Fig. 13 — single-layer BERT with step-wise optimizations, each variant
//! cumulative: baseline → +layernorm fusion → +bias&GELU fusion →
//! +rm padding → +fused MHA.
//!
//! Paper readings (batch 16, avg len = 0.6·max): layernorm fusion +3.2%,
//! GELU fusion +3.8% (together +7.1%), zero padding +24%, fused MHA +20%,
//! for a total of ~60% over the baseline.

use bt_bench::{banner, bench_batch, bench_config, masked_input, seq_sweep};
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::Device;
use bt_varlen::workload;

fn main() {
    banner(
        "Fig. 13: single-layer step-wise optimizations (cumulative)",
        "Figure 13",
        "each step improves; total ≈ +60% over baseline at α = 0.6",
    );
    let config = bench_config();
    let batch = bench_batch();
    let model = BertModel::new_random(config, 1, 9);
    println!("batch {batch}, hidden {}, avg len = 0.6·max\n", config.hidden());
    print!("{:>6}", "seq");
    for opt in OptLevel::all() {
        print!(" {:>22}", opt.label());
    }
    println!(" {:>10}", "total_gain");

    for seq in seq_sweep() {
        let mask = workload::paper_workload(batch, seq, 13);
        let input = masked_input(&mask, config.hidden(), 3);
        let mut times = Vec::new();
        print!("{seq:>6}");
        for opt in OptLevel::all() {
            let dev = Device::new();
            model.forward(&dev, &input, &mask, opt).expect("validated shapes");
            let t = dev.modeled_total();
            let delta = times
                .last()
                .map(|&p: &f64| format!(" ({:+.1}%)", (p / t - 1.0) * 100.0))
                .unwrap_or_default();
            print!(" {:>14.1}µs{delta:<7}", t * 1e6);
            times.push(t);
        }
        println!(" {:>9.0}%", (times[0] / times[times.len() - 1] - 1.0) * 100.0);
    }
    println!("\npaper: +3.2% (layernorm) +3.8% (GELU) +24% (rm padding) +20% (fused MHA) ⇒ ~+60% total");
}
