//! Criterion microbenchmarks of the substrate kernels (real CPU wall time):
//! SGEMM, grouped GEMM under both schedulers, fused vs unfused LayerNorm,
//! softmax variants, and the two fused MHA kernels.
//!
//! These measure the *host implementation* — useful for tracking regressions
//! in this repository; the paper-figure harnesses report modeled A100 time.

use bt_core::attention::{fused_grouped_attention, fused_short_attention};
use bt_device::{CostModel, Device};
use bt_gemm::grouped::Scheduler;
use bt_gemm::{sgemm, GemmSpec};
use bt_kernels::layernorm::{add_bias_residual_layernorm_fused, add_bias_residual_layernorm_unfused};
use bt_kernels::layout::add_bias_split_qkv_packed;
use bt_kernels::softmax::{masked_softmax_padded, masked_softmax_zeropad};
use bt_tensor::Tensor;
use bt_varlen::{workload, PackingIndex};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sgemm(c: &mut Criterion) {
    let (m, n, k) = (256, 768, 768);
    let a = Tensor::randn([m, k], 1).into_vec();
    let b = Tensor::randn([k, n], 2).into_vec();
    let mut out = vec![0.0f32; m * n];
    c.bench_function("sgemm_256x768x768", |bench| {
        bench.iter(|| {
            sgemm(GemmSpec::nn(), m, n, k, black_box(&a), black_box(&b), &mut out);
            black_box(&out);
        })
    });
}

fn bench_layernorm(c: &mut Criterion) {
    let rows = 2048;
    let hidden = 768;
    let bias = vec![0.01f32; hidden];
    let gamma = vec![1.0f32; hidden];
    let beta = vec![0.0f32; hidden];
    let residual = Tensor::randn([rows, hidden], 1).into_vec();
    let base = Tensor::randn([rows, hidden], 2).into_vec();
    let dev = Device::untraced(CostModel::a100());
    let mut group = c.benchmark_group("layernorm_2048x768");
    group.bench_function("unfused", |bench| {
        bench.iter(|| {
            let mut x = base.clone();
            add_bias_residual_layernorm_unfused(
                &dev, "ln", &mut x, &residual, &bias, &gamma, &beta, 1e-6, rows, hidden,
            );
            black_box(&x);
        })
    });
    group.bench_function("fused", |bench| {
        bench.iter(|| {
            let mut x = base.clone();
            add_bias_residual_layernorm_fused(&dev, "ln", &mut x, &residual, &bias, &gamma, &beta, 1e-6, rows, hidden);
            black_box(&x);
        })
    });
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let (batch, heads, seq) = (4, 12, 256);
    let lens = vec![154usize; batch]; // α ≈ 0.6
    let logits = Tensor::randn([batch, heads, seq, seq], 3).into_vec();
    let dev = Device::untraced(CostModel::a100());
    let mut group = c.benchmark_group("softmax_4x12x256");
    group.bench_function("padded", |bench| {
        bench.iter(|| {
            let mut x = logits.clone();
            masked_softmax_padded(&dev, "sm", &mut x, batch, heads, seq, &lens);
            black_box(&x);
        })
    });
    group.bench_function("zeropad", |bench| {
        bench.iter(|| {
            let mut x = logits.clone();
            masked_softmax_zeropad(&dev, "sm", &mut x, batch, heads, seq, &lens);
            black_box(&x);
        })
    });
    group.finish();
}

fn bench_fused_mha(c: &mut Criterion) {
    let heads = 12;
    let head = 64;
    let hidden = heads * head;
    let dev = Device::untraced(CostModel::a100());

    let mask_s = workload::paper_workload(4, 256, 5);
    let idx_s = PackingIndex::from_mask(&mask_s);
    let qkv_s = Tensor::randn([idx_s.valid_words(), 3 * hidden], 1);
    let bias = vec![0.0f32; 3 * hidden];
    let (q_s, k_s, v_s) = add_bias_split_qkv_packed(&dev, &qkv_s, &bias, heads, 0.125);
    c.bench_function("fused_mha_short_b4_s256", |bench| {
        bench.iter(|| black_box(fused_short_attention(&dev, &q_s, &k_s, &v_s, &idx_s, 32)))
    });

    let mask_l = workload::paper_workload(2, 512, 6);
    let idx_l = PackingIndex::from_mask(&mask_l);
    let qkv_l = Tensor::randn([idx_l.valid_words(), 3 * hidden], 2);
    let (q_l, k_l, v_l) = add_bias_split_qkv_packed(&dev, &qkv_l, &bias, heads, 0.125);
    let mut group = c.benchmark_group("fused_mha_grouped_b2_s512");
    for (name, sched) in [
        ("per_tile", Scheduler::PerTile),
        ("warp_prefetch", Scheduler::WarpPrefetch),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(fused_grouped_attention(&dev, &q_l, &k_l, &v_l, &idx_l, sched)))
        });
    }
    group.finish();
}

fn bench_varlen(c: &mut Criterion) {
    // The zero-padding machinery itself: prefix sum, pack, unpack.
    let mask = workload::paper_workload(16, 512, 9);
    let dev = Device::untraced(CostModel::a100());
    let hidden = 768;
    c.bench_function("varlen_prefix_sum_b16_s512", |bench| {
        bench.iter(|| black_box(PackingIndex::from_mask(black_box(&mask))))
    });
    let idx = PackingIndex::from_mask(&mask);
    let padded = Tensor::randn([16, 512, hidden], 1);
    c.bench_function("varlen_pack_b16_s512_h768", |bench| {
        bench.iter(|| black_box(idx.pack(&dev, black_box(&padded)).expect("validated")))
    });
    let packed = idx.pack(&dev, &padded).expect("validated");
    c.bench_function("varlen_unpack_b16_s512_h768", |bench| {
        bench.iter(|| black_box(idx.unpack(&dev, black_box(&packed)).expect("validated")))
    });
}

fn bench_scan(c: &mut Criterion) {
    use bt_varlen::scan::{blelloch_scan, exclusive_scan_serial, warp_style_scan};
    let mask_bits: Vec<u32> = (0..16 * 1024).map(|i| u32::from(i % 5 != 4)).collect();
    let mut group = c.benchmark_group("prefix_scan_16k");
    group.bench_function("serial", |bench| {
        bench.iter(|| black_box(exclusive_scan_serial(black_box(&mask_bits))))
    });
    group.bench_function("warp_style", |bench| {
        bench.iter(|| black_box(warp_style_scan(black_box(&mask_bits), 16, 1024)))
    });
    group.bench_function("blelloch", |bench| {
        bench.iter(|| black_box(blelloch_scan(black_box(&mask_bits))))
    });
    group.finish();
}

fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench_sgemm, bench_layernorm, bench_softmax, bench_fused_mha, bench_varlen, bench_scan
}
criterion_main!(benches);
