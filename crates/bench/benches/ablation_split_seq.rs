//! Ablation — `split_seq_len`, the Q-tile height of the short-sequence
//! fused MHA (Algorithm III.1). The paper sets it "typically to 32 or 48";
//! this sweep shows why: small tiles re-stage K/V too often, huge tiles
//! reduce the threadblock parallelism (measured here as real wall-clock on
//! the rayon substrate; staging traffic as modeled time).

use bt_bench::{banner, bench_config, wall};
use bt_core::attention::fused_short_attention;
use bt_device::Device;
use bt_kernels::layout::add_bias_split_qkv_packed;
use bt_tensor::Tensor;
use bt_varlen::{workload, PackingIndex};

fn main() {
    banner(
        "Ablation: fused-short MHA Q-tile height (split_seq_len)",
        "Algorithm III.1 parameter (\"typically set to 32 or 48\")",
        "K/V staging traffic falls monotonically with tile height; the GPU pays an occupancy cost for huge tiles that a roofline cannot see",
    );
    let config = bench_config();
    let heads = config.heads;
    let hidden = config.hidden();
    let scale = config.attention_scale();
    let batch = if bt_bench::fast_mode() { 2 } else { 16 };
    let seq = if bt_bench::fast_mode() { 64 } else { 256 };
    let mask = workload::paper_workload(batch, seq, 3);
    let idx = PackingIndex::from_mask(&mask);
    let setup = Device::untraced(bt_device::CostModel::a100());
    let qkv = Tensor::randn([idx.valid_words(), 3 * hidden], 1);
    let bias = vec![0.0f32; 3 * hidden];
    let (q, k, v) = add_bias_split_qkv_packed(&setup, &qkv, &bias, heads, scale);
    println!("batch {batch}, max_seq {seq}, {} heads × {}\n", heads, config.head_size);
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "split_len", "modeled_µs", "kv_staged_MB", "wall_ms"
    );
    for split in [4, 8, 16, 32, 48, 64, 128, 256] {
        let dev = Device::new();
        let (_, w) = wall(|| fused_short_attention(&dev, &q, &k, &v, &idx, split));
        println!(
            "{:>10} {:>12.1} {:>14.2} {:>12.2}",
            split,
            dev.modeled_total() * 1e6,
            dev.total_bytes() as f64 / 1e6,
            w * 1e3,
        );
    }
    println!(
        "\nstaging traffic (and hence modeled time) falls monotonically with the tile height;\n\
         the paper still picks 32-48 because beyond that the kernel runs out of threadblocks\n\
         to fill the GPU (an occupancy effect the roofline model deliberately does not include\n\
         -- visible here only as the flat wall-clock column on the CPU substrate)"
    );
}
