//! GEMM throughput harness: GFLOP/s of the register-blocked microkernel
//! paths (blocked + grouped) at paper shapes, against an in-binary
//! reimplementation of the pre-microkernel scalar path as the baseline.
//!
//! Console-only view; `BENCH_gemm.json` is owned by the `gemm_isa` bench,
//! which sweeps the same shapes across every ISA dispatch tier.
//!
//! Run with `cargo bench --bench bench_gemm` (`BT_BENCH_FAST=1` shrinks the
//! shapes for smoke runs).

use bt_bench::{banner, fast_mode, wall};
use bt_gemm::grouped::{grouped_sgemm, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform};
use bt_gemm::{sgemm, GemmSpec};
use bt_tensor::rng::Xoshiro256StarStar;
use rayon::prelude::*;

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// The seed's scalar GEMM, preserved as the baseline: row-parallel axpy
/// loops over `KC`-blocked panels, no packing, no register tile — each `B`
/// element is reused once per `C` row instead of `MR` times.
fn seed_scalar_sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    const KC: usize = 64;
    c[..m * n].par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
        c_row.fill(0.0);
        for p0 in (0..k).step_by(KC) {
            let pc = KC.min(k - p0);
            for p in p0..p0 + pc {
                let aip = a[i * k + p];
                let b_row = &b[p * n..(p + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aip * bv;
                }
            }
        }
    });
}

/// Times `f` (1 warm-up + best of `reps`) and returns GFLOP/s for `flops`.
fn gflops(flops: u64, reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let ((), secs) = wall(&mut f);
        best = best.min(secs);
    }
    (flops as f64 / best / 1e9, best)
}

struct Row {
    name: &'static str,
    path: &'static str,
    m: usize,
    n: usize,
    k: usize,
    gflops: f64,
    secs: f64,
}

fn main() {
    banner(
        "GEMM throughput: microkernel vs seed scalar path",
        "substrate for Figs. 3/9/10/14 (all pipeline GEMMs route here)",
        "microkernel >= 2x GFLOP/s over the scalar path at m=n=k=768",
    );
    let reps = if fast_mode() { 2 } else { 3 };
    let scale = if fast_mode() { 4 } else { 1 };
    let mut rows: Vec<Row> = Vec::new();

    // Dense shapes: the square probe plus the BERT-base encoder GEMMs at
    // one batch of seq 192 (768 token rows).
    let dense: &[(&'static str, usize, usize, usize)] = &[
        ("square_768", 768 / scale, 768 / scale, 768 / scale),
        ("ffn_up", 768 / scale, 3072 / scale, 768 / scale),
        ("ffn_down", 768 / scale, 768 / scale, 3072 / scale),
    ];
    for &(name, m, n, k) in dense {
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        let flops = 2 * (m * n * k) as u64;
        let (gf, secs) = gflops(flops, reps, || sgemm(GemmSpec::nn(), m, n, k, &a, &b, &mut c));
        rows.push(Row {
            name,
            path: "microkernel",
            m,
            n,
            k,
            gflops: gf,
            secs,
        });
        let (gf, secs) = gflops(flops, reps, || seed_scalar_sgemm(m, n, k, &a, &b, &mut c));
        rows.push(Row {
            name,
            path: "seed_scalar",
            m,
            n,
            k,
            gflops: gf,
            secs,
        });
    }

    // Grouped path: batch 4 x 12 heads of Q·Kᵀ at seq 256, head 64 — the
    // fused-MHA GEMM-1 shape.
    {
        let (units, seq, head) = (48 / scale, 256 / scale, 64);
        let a_bufs: Vec<Vec<f32>> = (0..units).map(|i| rand_vec(seq * head, i as u64)).collect();
        let b_bufs: Vec<Vec<f32>> = (0..units).map(|i| rand_vec(seq * head, 100 + i as u64)).collect();
        let problems: Vec<GroupedProblem<'_>> = (0..units)
            .map(|i| GroupedProblem {
                m: seq,
                n: seq,
                k: head,
                transb: true,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let mut c_bufs: Vec<Vec<f32>> = (0..units).map(|_| vec![0.0f32; seq * seq]).collect();
        let flops = 2 * (units * seq * seq * head) as u64;
        let (gf, secs) = gflops(flops, reps, || {
            grouped_sgemm(
                &problems,
                c_bufs.iter_mut().map(|c| c.as_mut_slice()).collect(),
                GroupedConfig::default(),
                &NoEpilogue,
                &NoTransform,
            );
        });
        rows.push(Row {
            name: "grouped_qk",
            path: "microkernel",
            m: seq,
            n: seq,
            k: head,
            gflops: gf,
            secs,
        });
    }

    println!(
        "\n{:<12} {:<12} {:>5} {:>5} {:>5} {:>10} {:>12}",
        "shape", "path", "m", "n", "k", "GFLOP/s", "secs"
    );
    for r in &rows {
        println!(
            "{:<12} {:<12} {:>5} {:>5} {:>5} {:>10.2} {:>12.6}",
            r.name, r.path, r.m, r.n, r.k, r.gflops, r.secs
        );
    }
    let speedup = |name: &str| {
        let micro = rows.iter().find(|r| r.name == name && r.path == "microkernel");
        let seed = rows.iter().find(|r| r.name == name && r.path == "seed_scalar");
        match (micro, seed) {
            (Some(m), Some(s)) if s.gflops > 0.0 => Some(m.gflops / s.gflops),
            _ => None,
        }
    };
    for &(name, ..) in dense {
        if let Some(x) = speedup(name) {
            println!("{name}: microkernel {x:.2}x over seed scalar");
        }
    }
    println!("\nper-tier JSON: cargo bench -p bt-bench --bench gemm_isa");
}
