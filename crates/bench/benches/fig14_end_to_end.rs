//! Fig. 14 (a/b/c) — end-to-end 12-layer standard BERT across frameworks,
//! batch ∈ {1, 8, 16}, seq 128 → 1024, average length = 0.6 × max.
//!
//! Paper readings: ByteTransformer beats PyTorch JIT / TensorFlow XLA /
//! TurboTransformer / FasterTransformer by 87% / 131% / 138% / 46% on
//! average; TurboTransformer is absent past 512 (unsupported) and degrades
//! at large batch·seq; FasterTransformer falls off past 512 where its fused
//! MHA stops applying.
//!
//! Implementation note: each point executes **one real layer** per framework
//! and scales the modeled per-layer time by the layer count (modeled time is
//! additive over identical layers); the once-per-forward pack/unpack cost is
//! measured separately and added once. `BT_BENCH_FULL=1` runs all 12 layers
//! for real instead.

use bt_bench::{banner, bench_config, masked_input};
use bt_core::encoder::BertModel;
use bt_device::CostModel;
use bt_frameworks::{FrameworkKind, SimFramework};
use bt_varlen::workload;

fn main() {
    banner(
        "Fig. 14: end-to-end BERT (12 layers) across frameworks",
        "Figure 14 a/b/c",
        "ByteTransformer fastest everywhere; Turbo absent >512; FT falls off >512",
    );
    let config = bench_config();
    let layers = if bt_bench::full_mode() { config.layers } else { 1 };
    let scale_layers = config.layers / layers;
    let model = BertModel::new_random(config, layers, 11);

    let batches: Vec<usize> = if bt_bench::fast_mode() {
        vec![1, 2]
    } else {
        vec![1, 8, 16]
    };
    let seqs: Vec<usize> = if bt_bench::fast_mode() {
        vec![64, 128]
    } else {
        vec![128, 256, 512, 1024]
    };
    println!(
        "modeled A100 ms for {} layers (1 layer executed, modeled ×{}), α = 0.6\n",
        config.layers, scale_layers
    );

    let mut avg_gain: std::collections::HashMap<&'static str, (f64, u32)> = Default::default();
    for &batch in &batches {
        println!("--- batch = {batch} ---");
        print!("{:>6}", "seq");
        for kind in FrameworkKind::all() {
            print!(" {:>18}", kind.name());
        }
        println!();
        for &seq in &seqs {
            // Large-batch long-sequence padded runs are heavy on one core;
            // skip the single worst cell unless BT_BENCH_FULL is set.
            if !bt_bench::full_mode() && batch * seq > 8 * 1024 {
                println!("{seq:>6} {:>18}", "(skipped; set BT_BENCH_FULL=1)");
                continue;
            }
            let mask = workload::paper_workload(batch, seq, 17);
            let input = masked_input(&mask, config.hidden(), 3);
            print!("{seq:>6}");
            let mut bt_time = None;
            let mut row: Vec<(FrameworkKind, Option<f64>)> = Vec::new();
            for kind in FrameworkKind::all() {
                let fw = SimFramework::new(kind, model.clone());
                if !kind.supports(seq) {
                    row.push((kind, None));
                    continue;
                }
                let dev = fw.device(CostModel::a100());
                fw.forward(&dev, &input, &mask).expect("validated shapes");
                let t = dev.modeled_total() * scale_layers as f64;
                row.push((kind, Some(t)));
                if kind == FrameworkKind::ByteTransformer {
                    bt_time = Some(t);
                }
            }
            for (kind, t) in &row {
                match t {
                    Some(t) => {
                        print!(" {:>15.3}ms", t * 1e3);
                        if let (Some(bt), false) = (bt_time, *kind == FrameworkKind::ByteTransformer) {
                            let e = avg_gain.entry(kind.name()).or_insert((0.0, 0));
                            e.0 += t / bt - 1.0;
                            e.1 += 1;
                        }
                        print!("  ");
                    }
                    None => print!(" {:>18}", "n/a (>512)"),
                }
            }
            println!();
        }
        println!();
    }
    println!("average ByteTransformer advantage (paper: PyTorch +87%, TF +131%, Turbo +138%, FT +46%):");
    for (name, (sum, n)) in &avg_gain {
        println!("  vs {:<18} {:+.0}%", name, sum / *n as f64 * 100.0);
    }
}
