//! Table II — per-module FLOP counts of a single-layer BERT Transformer
//! under the three variants, cross-checked against the FLOPs the executed
//! pipeline actually declared.

use bt_bench::{banner, bench_batch, bench_config, masked_input};
use bt_core::encoder::{BertModel, OptLevel};
use bt_core::flops::{layer_flops, FlopVariant};
use bt_device::Device;
use bt_varlen::workload;

fn main() {
    banner(
        "Table II: single-layer FLOP counts (m = bs·seq, k = hidden, α = 0.6)",
        "Table II",
        "zero padding scales every GEMM by α; fused MHA adds the α² MHA cut",
    );
    let config = bench_config();
    let batch = bench_batch();
    let seq = if bt_bench::fast_mode() { 128 } else { 256 };
    let mask = workload::paper_workload(batch, seq, 42);
    println!(
        "batch = {batch}, max_seq = {seq}, hidden = {}, valid = {} (α = {:.3})\n",
        config.hidden(),
        mask.valid_words(),
        mask.alpha()
    );

    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "module", "baseline", "zero padding", "zp + fused MHA"
    );
    let b = layer_flops(&mask, config.hidden(), FlopVariant::Baseline);
    let z = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPadding);
    let f = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPaddingFusedMha);
    let gf = |x: u64| format!("{:.3} G", x as f64 / 1e9);
    for (name, a, bb, c) in [
        ("GEMM0", b.gemm0, z.gemm0, f.gemm0),
        ("MHA", b.mha, z.mha, f.mha),
        ("GEMM1", b.gemm1, z.gemm1, f.gemm1),
        ("GEMM2", b.gemm2, z.gemm2, f.gemm2),
        ("GEMM3", b.gemm3, z.gemm3, f.gemm3),
    ] {
        println!("{:<8} {:>16} {:>16} {:>16}", name, gf(a), gf(bb), gf(c));
    }
    println!(
        "{:<8} {:>16} {:>16} {:>16}",
        "TOTAL",
        gf(b.total()),
        gf(z.total()),
        gf(f.total())
    );

    // Cross-check against the executed pipeline's declared GEMM flops.
    println!("\ncross-check vs executed trace (GEMM-portion of each pipeline):");
    let model = BertModel::new_random(config, 1, 7);
    let input = masked_input(&mask, config.hidden(), 3);
    for (variant, opt, expect) in [
        ("baseline", OptLevel::Baseline, b.total()),
        ("zero padding", OptLevel::ZeroPadding, z.total()),
        ("zp + fused MHA", OptLevel::FusedMha, f.total()),
    ] {
        let dev = Device::new();
        model.forward(&dev, &input, &mask, opt).expect("validated shapes");
        let counted: u64 = dev
            .trace()
            .iter()
            .filter(|r| {
                r.name.starts_with("gemm0")
                    || r.name.starts_with("gemm1")
                    || r.name.starts_with("gemm3")
                    || r.name.contains("batched.scores")
                    || r.name.contains("batched.ctx")
                    || r.name.contains("fused_short")
                    || r.name.contains("grouped.qk")
                    || r.name.contains("grouped.pv")
                    || r.name.starts_with("gemm2")
            })
            .map(|r| r.cost.flops)
            .sum();
        // The executed trace adds epilogue/softmax transform flops on top of
        // Table II's pure-GEMM count; report the ratio.
        println!(
            "  {:<16} formula {:>10.3} G   counted {:>10.3} G   (counted/formula = {:.3})",
            variant,
            expect as f64 / 1e9,
            counted as f64 / 1e9,
            counted as f64 / expect as f64
        );
    }
    println!("\npaper claim check: at α = 0.6, zero padding removes ~40% of non-MHA");
    println!(
        "FLOPs here: measured non-MHA ratio = {:.3} (expect ≈ α = {:.3})",
        (z.total() - z.mha) as f64 / (b.total() - b.mha) as f64,
        mask.alpha()
    );
}
