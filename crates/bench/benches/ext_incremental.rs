//! Extension benchmark — incremental decoding with a KV cache vs full
//! recompute per emitted token.
//!
//! Not a paper artifact (the paper defers the decoder to future work); this
//! quantifies why the KV cache matters for the serving scenario the paper
//! targets: without it, emitting token `t` costs a full `t`-token forward,
//! so an `n`-token generation is O(n³) attention instead of O(n²).

use bt_bench::{banner, wall};
use bt_core::config::BertConfig;
use bt_core::decoder::TransformerDecoder;
use bt_core::incremental::DecoderSession;
use bt_device::Device;
use bt_tensor::Tensor;
use bt_varlen::BatchMask;

fn main() {
    banner(
        "Extension: KV-cache incremental decoding vs full recompute",
        "(not in paper — §V future work)",
        "cached per-token FLOPs grow ~linearly with context, recompute ~quadratically; modeled time is launch-bound for both (why real decoders use CUDA graphs)",
    );
    let config = if bt_bench::fast_mode() {
        BertConfig {
            heads: 2,
            head_size: 8,
            ffn_scale: 4,
            layers: 2,
            eps: 1e-6,
        }
    } else {
        BertConfig {
            heads: 12,
            head_size: 64,
            ffn_scale: 4,
            layers: 2,
            eps: 1e-6,
        }
    };
    let decoder = TransformerDecoder::new_random(config, config.layers, 7);
    let hidden = config.hidden();
    let mem_len = if bt_bench::fast_mode() { 8 } else { 128 };
    let total = if bt_bench::fast_mode() { 8 } else { 128 };
    let memory = Tensor::randn([mem_len, hidden], 1);
    let memory_padded = memory.clone().reshape([1, mem_len, hidden]).unwrap();
    let mem_mask = BatchMask::from_lens(vec![mem_len], mem_len).unwrap();
    let tokens = Tensor::randn([total, hidden], 2);

    println!(
        "{} layers, hidden {}, memory {} tokens, generating {} tokens\n",
        config.layers, hidden, mem_len, total
    );
    println!(
        "{:>8} {:>16} {:>14} {:>18} {:>16} {:>11}",
        "token#", "cached_µs/tok", "cached_MFLOP", "recompute_µs/tok", "recompute_MFLOP", "flops_ratio"
    );

    let dev_cache = Device::new();
    let mut session = DecoderSession::new(&decoder, &dev_cache, &memory);
    let checkpoints = [1usize, total / 4, total / 2, total];
    let mut produced = 0;
    for &cp in &checkpoints {
        while produced < cp {
            let x: Vec<f32> = tokens.row(produced).to_vec();
            dev_cache.reset();
            session.step(&dev_cache, &x);
            produced += 1;
        }
        let cached = dev_cache.modeled_total();
        let cached_flops = dev_cache.total_flops();

        // Full recompute: run the whole prefix through the batch decoder.
        let dev_full = Device::new();
        let tgt_mask = BatchMask::from_lens(vec![produced], produced).unwrap();
        let mut tgt = Tensor::zeros([1, produced, hidden]);
        for s in 0..produced {
            for h in 0..hidden {
                tgt.set(&[0, s, h], tokens.at(&[s, h]).unwrap()).unwrap();
            }
        }
        let (_, _w) = wall(|| {
            decoder
                .forward(&dev_full, &tgt, &tgt_mask, &memory_padded, &mem_mask)
                .expect("validated shapes")
        });
        let recompute = dev_full.modeled_total();
        let recompute_flops = dev_full.total_flops();
        println!(
            "{:>8} {:>16.2} {:>14.1} {:>18.2} {:>16.1} {:>10.1}x",
            produced,
            cached * 1e6,
            cached_flops as f64 / 1e6,
            recompute * 1e6,
            recompute_flops as f64 / 1e6,
            recompute_flops as f64 / cached_flops as f64,
        );
    }
    println!(
        "\nthe recompute column is the cost of re-running the whole prefix to emit one token;\n\
         its FLOPs grow with the prefix while the cached step's stay ~flat. Modeled *time*\n\
         is launch-bound for single-token steps at this scale -- the regime that motivates\n\
         CUDA graphs and multi-stream decode in production servers"
    );
}
