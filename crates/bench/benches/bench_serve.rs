//! Serving-policy harness: fifo vs sorted-groups vs token-budget admission
//! under open-loop Poisson load at 0.5×, 1.0× and 2.0× calibrated capacity.
//!
//! The paper's runtime makes batch cost proportional to *valid tokens*;
//! this bench measures what that buys at the serving layer. Capacity is
//! calibrated once from the roofline ([`calibrate_capacity`]), every knob
//! (token budget, deadline, arrival rate) is derived from it, and each
//! policy × load cell runs the same deterministic virtual-time loop with
//! real ByteTransformer forwards. Recorded per cell: served/shed
//! accounting (exact by construction, asserted anyway), p50/p95/p99 of
//! served latency, and goodput.
//!
//! The headline acceptance figure — p99 of served requests at 2× load
//! within 3× of the 0.5× p99 under the token-budget policy — is asserted
//! here and recorded in the artifact.
//!
//! A second sweep drives the multi-shard router at 1/2/4/8 shards, each
//! shard at ≈2× its calibrated capacity, and records fleet goodput and its
//! ratio to the 1-shard row as `sharded_scaling` — asserting near-linear
//! scale-out (≥1.7× at 2 shards, ≥3× at 4) and exact cross-shard
//! accounting. `bench_gate` re-checks those floors on every run.
//!
//! Emits `BENCH_serve.json` at the repo root. Run with
//! `cargo bench --bench bench_serve` (`BT_BENCH_FAST=1` shrinks reps).

use bt_bench::{banner, fast_mode};
use bt_core::config::BertConfig;
use bt_core::encoder::BertModel;
use bt_device::CostModel;
use bt_frameworks::admission::CutPolicy;
use bt_frameworks::calibration::{calibrate_capacity, flops_per_token, host_tokens_per_sec_from_bench_json};
use bt_frameworks::server::{modeled_forward_executor, run_open_loop, Outcome, ServeConfig, ServeSummary};
use bt_frameworks::serving::{bursty_arrivals, latency_stats, poisson_arrivals};
use bt_frameworks::shard::{run_sharded_open_loop, shard_seed, ShardConfig};
use bt_frameworks::{FrameworkKind, SimFramework};
use bt_varlen::workload::LengthDistribution;
use std::fmt::Write as _;

const SEQ: usize = 256;
const ALPHA: f64 = 0.6;

struct Cell {
    policy: &'static str,
    load: f64,
    summary: ServeSummary,
}

fn main() {
    banner(
        "Serving policies under open-loop load: fifo vs sorted-groups vs token-budget",
        "continuous batching with deadlines, bounded queue and load shedding",
        "exact accounting at every load; token-budget p99 at 2x within 3x of the 0.5x p99",
    );
    let requests = if fast_mode() { 192 } else { 768 };

    let config = BertConfig {
        heads: 12,
        head_size: 64,
        ffn_scale: 4,
        layers: 1,
        eps: 1e-6,
    };
    let model = BertModel::new_random(config, 1, 1);
    let fw = SimFramework::new(FrameworkKind::ByteTransformer, model);

    // One calibration feeds every knob, so "2x load" means the same thing
    // in every cell (and in `btx serve` / the stress suite).
    let capacity = calibrate_capacity(&fw, SEQ, ALPHA, 8, 42);
    let mean_tokens = ALPHA * SEQ as f64;
    let interval = 8.0 * mean_tokens / capacity.tokens_per_sec;
    let budget = capacity.token_budget(interval);
    let max_batch = ((budget as f64 / mean_tokens).round() as usize).max(1);
    let deadline = 2.0 * interval;
    let queue_capacity = 64;
    println!(
        "calibrated {:.0} tokens/s -> budget {budget} tokens, max_batch {max_batch}, \
         deadline {:.2} ms, queue {queue_capacity}, {requests} requests/cell\n",
        capacity.tokens_per_sec,
        deadline * 1e3
    );

    // Optional host-wall ceiling from the recorded GEMM artifact, for scale.
    let host_ceiling = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json"))
        .ok()
        .and_then(|json| host_tokens_per_sec_from_bench_json(&json, flops_per_token(&config, SEQ, ALPHA)));

    let policies: [(&'static str, CutPolicy); 3] = [
        ("fifo", CutPolicy::Fifo { max_batch }),
        ("sorted_groups", CutPolicy::SortedGroups { max_batch }),
        ("token_budget", CutPolicy::TokenBudget { budget_tokens: budget }),
    ];
    let loads = [0.5f64, 1.0, 2.0];

    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:<14} {:>5} {:>8} {:>7} {:>6} {:>9} {:>9} {:>9} {:>14}",
        "policy", "load", "served", "shed", "batch", "p50_ms", "p95_ms", "p99_ms", "goodput_tok/s"
    );
    for (name, policy) in policies {
        for &load in &loads {
            let serve_config = ServeConfig {
                policy,
                queue_capacity,
                deadline,
                max_len: SEQ,
                chunk_tokens: 0,
            };
            let rate = capacity.request_rate(mean_tokens, load);
            let reqs = poisson_arrivals(
                requests,
                rate,
                LengthDistribution::PaperUniform { alpha: ALPHA },
                SEQ,
                42,
            );
            let report = run_open_loop(
                &reqs,
                &serve_config,
                modeled_forward_executor(&fw, CostModel::a100(), 42),
            );
            let s = report.summary();
            assert!(s.accounting_is_exact(), "{name} @ {load}: accounting must be exact");
            println!(
                "{:<14} {:>5.2} {:>8} {:>7} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>14.0}",
                name,
                load,
                s.served,
                s.shed(),
                s.batches,
                s.served_latency.p50 * 1e3,
                s.served_latency.p95 * 1e3,
                s.served_latency.p99 * 1e3,
                s.goodput_tokens_per_sec()
            );
            cells.push(Cell {
                policy: name,
                load,
                summary: s,
            });
        }
    }

    let p99_of = |policy: &str, load: f64| {
        cells
            .iter()
            .find(|c| c.policy == policy && c.load == load)
            .expect("cell ran")
            .summary
            .served_latency
            .p99
    };
    let p99_ratio = p99_of("token_budget", 2.0) / p99_of("token_budget", 0.5).max(1e-12);
    println!(
        "\ntoken-budget p99 at 2.0x = {:.3} ms vs 0.5x = {:.3} ms -> ratio {:.2} (target <= 3)",
        p99_of("token_budget", 2.0) * 1e3,
        p99_of("token_budget", 0.5) * 1e3,
        p99_ratio
    );
    assert!(p99_ratio <= 3.0, "graceful-degradation bound violated: {p99_ratio:.2}");
    if let Some(h) = host_ceiling {
        println!("host dense-math ceiling (BENCH_gemm.json): {h:.0} tokens/s");
    }

    // --- chunked vs whole-batch rounds on a bursty mixed long/short trace ---
    //
    // Zipf lengths cluster short with a heavy tail to 4× the calibration
    // sequence, and 12× bursts pile arrivals up faster than the drain, so a
    // FIFO cut after a burst sweeps the whole backlog into one giant mixed
    // batch (tens of budgets of tokens): every short request in it waits for
    // the full batch — classic head-of-line blocking. Chunked rounds at the
    // calibrated token budget split that cut into shortest-first rounds, so
    // the shorts complete after their own round instead of the whole cut.
    // Deadline is disabled and the queue sized to the trace so both runs
    // serve the identical request set and the comparison is pure
    // head-of-line latency; the round-splitting benefit has to beat the
    // extra per-round launch overhead to pass.
    let chunk_tokens = budget;
    let burst_queue = requests;
    let burst_seq = 4 * SEQ;
    let zipf = LengthDistribution::Zipf { exponent: 1.2 };
    let rate = capacity.request_rate(mean_tokens, 1.0);
    let burst_reqs = bursty_arrivals(requests, rate * 0.5, rate * 12.0, 25.0 * interval, zipf, burst_seq, 42);
    let short_len = SEQ / 4;
    let short_p99 = |chunk: usize| {
        let cfg = ServeConfig {
            policy: CutPolicy::Fifo { max_batch: burst_queue },
            queue_capacity: burst_queue,
            deadline: f64::INFINITY,
            max_len: burst_seq,
            chunk_tokens: chunk,
        };
        let report = run_open_loop(&burst_reqs, &cfg, modeled_forward_executor(&fw, CostModel::a100(), 42));
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, s.offered, "no deadline: everything is served");
        let lat: Vec<f64> = report
            .outcomes
            .iter()
            .filter(|o| o.len <= short_len)
            .filter_map(|o| match o.outcome {
                Outcome::Served { latency, .. } => Some(latency),
                Outcome::Shed { .. } => None,
            })
            .collect();
        assert!(!lat.is_empty(), "the Zipf trace must contain short requests");
        latency_stats(&lat).p99
    };
    let whole_short_p99 = short_p99(0);
    let chunked_short_p99 = short_p99(chunk_tokens);
    let improvement = (1.0 - chunked_short_p99 / whole_short_p99.max(1e-12)) * 100.0;
    println!(
        "\nbursty mixed trace, short requests (len <= {short_len}): p99 whole {:.3} ms vs \
         chunked({chunk_tokens}) {:.3} ms -> {improvement:+.1}%",
        whole_short_p99 * 1e3,
        chunked_short_p99 * 1e3
    );
    assert!(
        chunked_short_p99 < whole_short_p99,
        "chunked rounds must improve short-request p99: {:.3} ms vs {:.3} ms",
        chunked_short_p99 * 1e3,
        whole_short_p99 * 1e3
    );

    // --- sharded scale-out: goodput vs shard count at 2x per-shard load ---
    //
    // The scale-out claim: N shards behind the join-shortest-queue router,
    // each seeing ≈2× its calibrated capacity (aggregate load = 2N), serve
    // near-N× the goodput of one shard under the same per-shard pressure.
    // Fleet goodput is Σ served tokens over the *slowest* shard's makespan
    // — shards run concurrently, so the fleet finishes when the last one
    // does. Executor seeds mix per shard via `shard_seed` (identity at
    // shard 0, so the 1-shard row replays the unsharded engine exactly).
    let shard_counts = [1usize, 2, 4, 8];
    let token_serve_config = ServeConfig {
        policy: CutPolicy::TokenBudget { budget_tokens: budget },
        queue_capacity,
        deadline,
        max_len: SEQ,
        chunk_tokens: 0,
    };
    struct ShardRow {
        shards: usize,
        summary: ServeSummary,
        goodput: f64,
        ratio: f64,
        floor: f64,
    }
    let mut shard_rows: Vec<ShardRow> = Vec::new();
    println!(
        "\n{:<7} {:>8} {:>8} {:>7} {:>6} {:>14} {:>9} {:>6}",
        "shards", "offered", "served", "shed", "batch", "goodput_tok/s", "ratio_x1", "floor"
    );
    for &shards in &shard_counts {
        let rate = capacity.request_rate(mean_tokens, 2.0 * shards as f64);
        let reqs = poisson_arrivals(
            requests * shards,
            rate,
            LengthDistribution::PaperUniform { alpha: ALPHA },
            SEQ,
            42,
        );
        let cfg = ShardConfig::new(shards, token_serve_config);
        let report = run_sharded_open_loop(&reqs, &cfg, |i| {
            modeled_forward_executor(&fw, CostModel::a100(), shard_seed(42, i))
        });
        assert!(
            report.accounting_is_exact_across_shards(),
            "{shards} shards: offered must equal the per-shard served+shed sum"
        );
        let s = report.summary();
        let goodput = s.goodput_tokens_per_sec();
        let base = shard_rows.first().map_or(goodput, |r| r.goodput);
        let ratio = goodput / base.max(1e-12);
        let floor = match shards {
            1 => 1.0,
            2 => 1.7,
            4 => 3.0,
            _ => 5.0,
        };
        println!(
            "{:<7} {:>8} {:>8} {:>7} {:>6} {:>14.0} {:>9.2} {:>6.1}",
            shards,
            s.offered,
            s.served,
            s.shed(),
            s.batches,
            goodput,
            ratio,
            floor
        );
        assert!(
            ratio >= floor,
            "{shards} shards: goodput ratio {ratio:.2} below the {floor} floor \
             ({goodput:.0} vs {base:.0} tokens/s on one shard)"
        );
        shard_rows.push(ShardRow {
            shards,
            summary: s,
            goodput,
            ratio,
            floor,
        });
    }

    let mut json = bt_bench::report::RunMeta::collect("serve", "tokens_per_sec").header_json();
    let _ = writeln!(
        json,
        "  \"config\": {{\"seq\": {SEQ}, \"alpha\": {ALPHA}, \"requests\": {requests}, \
         \"budget_tokens\": {budget}, \"max_batch\": {max_batch}, \"deadline_ms\": {:.4}, \
         \"queue_capacity\": {queue_capacity}}},",
        deadline * 1e3
    );
    let _ = writeln!(
        json,
        "  \"calibrated_tokens_per_sec\": {:.1},\n  \"host_ceiling_tokens_per_sec\": {},",
        capacity.tokens_per_sec,
        host_ceiling.map_or("null".to_string(), |h| format!("{h:.1}"))
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let s = &c.summary;
        let _ = writeln!(
            json,
            "    {{\"policy\": \"{}\", \"load\": {}, \"offered\": {}, \"served\": {}, \
             \"shed_queue_full\": {}, \"shed_deadline\": {}, \"shed_too_long\": {}, \"batches\": {}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"goodput_tokens_per_sec\": {:.1}, \"accounting_exact\": {}}}{}",
            c.policy,
            c.load,
            s.offered,
            s.served,
            s.shed_queue_full,
            s.shed_deadline,
            s.shed_too_long,
            s.batches,
            s.served_latency.p50 * 1e3,
            s.served_latency.p95 * 1e3,
            s.served_latency.p99 * 1e3,
            s.goodput_tokens_per_sec(),
            s.accounting_is_exact(),
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    let _ = writeln!(json, "  ],\n  \"p99_ratio_2x_vs_half_token_budget\": {p99_ratio:.3},");
    let _ = writeln!(
        json,
        "  \"chunked_vs_whole\": {{\"trace\": \"bursty_zipf\", \"chunk_tokens\": {chunk_tokens}, \
         \"short_len_max\": {short_len}, \"short_p99_ms_whole\": {:.4}, \
         \"short_p99_ms_chunked\": {:.4}, \"improvement_pct\": {improvement:.2}}},",
        whole_short_p99 * 1e3,
        chunked_short_p99 * 1e3
    );
    json.push_str("  \"sharded_scaling\": [\n");
    for (i, r) in shard_rows.iter().enumerate() {
        let s = &r.summary;
        let _ = writeln!(
            json,
            "    {{\"shards\": {}, \"route\": \"jsq\", \"load_per_shard\": 2.0, \"offered\": {}, \
             \"served\": {}, \"shed\": {}, \"batches\": {}, \"makespan_ms\": {:.4}, \
             \"goodput_tokens_per_sec\": {:.1}, \"goodput_ratio_vs_1\": {:.4}, \
             \"ratio_floor\": {:.2}, \"accounting_exact\": {}}}{}",
            r.shards,
            s.offered,
            s.served,
            s.shed(),
            s.batches,
            s.makespan * 1e3,
            r.goodput,
            r.ratio,
            r.floor,
            s.accounting_is_exact(),
            if i + 1 == shard_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
