//! Fig. 3 — performance breakdown of a single-layer (baseline) BERT
//! Transformer at sequence lengths 256 and 1024.
//!
//! Paper readings (A100, batch 16): GEMMs ≈ 61%/40% of total at seq
//! 256/1024; attention grows from ~22% to ~49% as the sequence lengthens;
//! the remaining memory-bound ops take 11–17%. Fractions are computed from
//! modeled time and are batch-invariant, so the default batch-4 run
//! reproduces the paper's percentages.

use bt_bench::{banner, bench_batch, bench_config, masked_input};
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::{Device, TraceReport};
use bt_varlen::workload;

fn main() {
    banner(
        "Fig. 3: single-layer baseline BERT breakdown",
        "Figure 3",
        "GEMMs dominate; attention fraction grows with sequence length (22% -> 49%)",
    );
    let config = bench_config();
    let batch = bench_batch();
    let model = BertModel::new_random(config, 1, 7);
    let seqs = if bt_bench::fast_mode() {
        vec![64, 128]
    } else {
        vec![256, 1024]
    };

    let mut attention_fraction = Vec::new();
    for &seq in &seqs {
        // Fig. 3 profiles the fixed-length baseline (padding is the default
        // regime being diagnosed).
        let mask = workload::fixed_workload(batch, seq);
        let input = masked_input(&mask, config.hidden(), 3);
        let dev = Device::new();
        model
            .forward(&dev, &input, &mask, OptLevel::Baseline)
            .expect("validated shapes");
        let report = TraceReport::by_prefix(&dev.trace());
        println!("\n--- seq_len = {seq} (batch {batch}) ---");
        println!("{}", report.render());
        let gemm_frac: f64 = ["gemm0", "gemm1", "gemm2", "gemm3"]
            .iter()
            .map(|g| report.modeled_fraction(g))
            .sum();
        let attn = report.modeled_fraction("attention");
        let mem: f64 = ["layernorm0", "layernorm1", "bias_act"]
            .iter()
            .map(|g| report.modeled_fraction(g))
            .sum();
        println!(
            "summary: GEMM0-3 {:.0}%  attention {:.0}%  layernorm/bias/act {:.0}%  other {:.0}%",
            gemm_frac * 100.0,
            attn * 100.0,
            mem * 100.0,
            (1.0 - gemm_frac - attn - mem) * 100.0
        );
        attention_fraction.push(attn);
    }
    if attention_fraction.len() == 2 {
        println!(
            "\npaper shape check: attention fraction grows with seq ({:.0}% -> {:.0}%; paper 22% -> 49%)",
            attention_fraction[0] * 100.0,
            attention_fraction[1] * 100.0
        );
    }
}
