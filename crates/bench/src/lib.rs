//! Shared harness utilities for the figure/table benchmarks.
//!
//! Every paper artifact has its own `harness = false` bench target under
//! `benches/`; each prints the same rows/series the paper reports, with both
//! the **modeled A100 time** (the deterministic roofline over the execution
//! trace — the primary, paper-comparable metric) and the measured CPU wall
//! time of the real kernels (single host machine, shape-only comparable).
//!
//! Environment knobs:
//!
//! * `BT_BENCH_FAST=1` — shrink every sweep for smoke runs/CI.
//! * `BT_BENCH_FULL=1` — run the paper's full batch-16 / 12-layer shapes
//!   (slow on a small host; the defaults keep `cargo bench` under ~10 min
//!   on one core and are documented in EXPERIMENTS.md).

use bt_core::config::BertConfig;
use bt_tensor::Tensor;
use bt_varlen::BatchMask;
use std::time::Instant;

pub mod report;

/// True when `BT_BENCH_FAST=1`.
pub fn fast_mode() -> bool {
    std::env::var("BT_BENCH_FAST").map(|v| v == "1").unwrap_or(false)
}

/// True when `BT_BENCH_FULL=1`.
pub fn full_mode() -> bool {
    std::env::var("BT_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// The benchmark model configuration: the paper's standard BERT
/// (12 heads × 64) unless fast mode shrinks it.
pub fn bench_config() -> BertConfig {
    if fast_mode() {
        BertConfig {
            heads: 4,
            head_size: 16,
            ffn_scale: 4,
            layers: 12,
            eps: 1e-6,
        }
    } else {
        BertConfig::bert_base()
    }
}

/// The sequence-length sweep used by most figures (paper: 128 → 1024).
pub fn seq_sweep() -> Vec<usize> {
    if fast_mode() {
        vec![64, 128]
    } else if full_mode() {
        vec![128, 256, 384, 512, 768, 1024]
    } else {
        vec![128, 256, 512, 1024]
    }
}

/// Default batch size: the paper uses 16; on a single-core host the default
/// is 4 (percent breakdowns and speedup ratios are batch-invariant for the
/// quantities compared — the harnesses note where this matters).
pub fn bench_batch() -> usize {
    if fast_mode() {
        2
    } else if full_mode() {
        16
    } else {
        4
    }
}

/// A padded input tensor whose valid rows are random and padded rows zero.
pub fn masked_input(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut input = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                input.set(&[b, s, h], 0.0).expect("within shape");
            }
        }
    }
    input
}

/// Times one invocation, returning seconds.
pub fn wall<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a standard harness banner.
pub fn banner(title: &str, paper_ref: &str, expectation: &str) {
    println!("\n=============================================================");
    println!("{title}");
    println!("paper artifact: {paper_ref}");
    println!("expected shape: {expectation}");
    if fast_mode() {
        println!("NOTE: BT_BENCH_FAST=1 — shrunken shapes, shapes only.");
    }
    println!("=============================================================");
}

/// Formats a speedup as the paper does ("+87%" style).
pub fn pct_faster(base: f64, ours: f64) -> String {
    format!("{:+.0}%", (base / ours - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shapes() {
        // (Env-sensitive modes are covered by running the benches.)
        if !fast_mode() && !full_mode() {
            assert_eq!(bench_config().hidden(), 768);
            assert_eq!(bench_batch(), 4);
            assert!(seq_sweep().contains(&1024));
        }
    }

    #[test]
    fn masked_input_zeroes_padding() {
        let mask = BatchMask::from_lens(vec![2, 1], 3).unwrap();
        let t = masked_input(&mask, 4, 1);
        assert_eq!(t.at(&[0, 2, 0]).unwrap(), 0.0);
        assert_eq!(t.at(&[1, 1, 3]).unwrap(), 0.0);
        assert_ne!(t.at(&[0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct_faster(2.0, 1.0), "+100%");
        assert_eq!(pct_faster(1.0, 1.0), "+0%");
    }
}
