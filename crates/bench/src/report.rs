//! Shared schema for the machine-readable benchmark artifacts.
//!
//! Every emitter that writes a `BENCH_*.json` (and the `btx profile` JSON
//! export) stamps the same [`RunMeta`] header — bench name, unit, host
//! thread count, pool width, active GEMM ISA tier, git revision, and a unix
//! timestamp — so results from different hosts/runs can be compared and
//! joined without guessing where they came from.

use std::fmt::Write as _;

/// Provenance header shared by every benchmark JSON artifact.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Artifact name (e.g. `"gemm"`, `"pool_launch"`, `"profile"`).
    pub bench: String,
    /// Unit of the primary metric (e.g. `"GFLOP/s"`, `"us_per_launch"`).
    pub unit: String,
    /// `std::thread::available_parallelism()` on the host.
    pub host_threads: usize,
    /// Worker count of the `bt-pool` rayon shim.
    pub pool_width: usize,
    /// Active `bt-gemm` ISA tier name (`"scalar"` / `"avx2"` / `"avx512"`).
    pub isa_tier: String,
    /// Short git revision, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Seconds since the unix epoch at collection time.
    pub timestamp_unix: u64,
}

impl RunMeta {
    /// Collects the header for the current process: thread counts and ISA
    /// tier are read live (this initializes the pool and the ISA dispatch
    /// if they have not run yet).
    pub fn collect(bench: &str, unit: &str) -> Self {
        RunMeta {
            bench: bench.to_string(),
            unit: unit.to_string(),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            pool_width: rayon::current_num_threads(),
            isa_tier: bt_gemm::active_isa().name().to_string(),
            git_rev: git_rev(),
            timestamp_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }

    /// Renders the header as the opening fields of a JSON object: starts
    /// with `{\n` and ends with a trailing comma, ready for the emitter to
    /// append its payload fields and the closing brace.
    pub fn header_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"bench\": \"{}\",", json_escape(&self.bench));
        let _ = writeln!(s, "  \"unit\": \"{}\",", json_escape(&self.unit));
        let _ = writeln!(s, "  \"host_threads\": {},", self.host_threads);
        let _ = writeln!(s, "  \"pool_width\": {},", self.pool_width);
        let _ = writeln!(s, "  \"isa_tier\": \"{}\",", json_escape(&self.isa_tier));
        let _ = writeln!(s, "  \"git_rev\": \"{}\",", json_escape(&self.git_rev));
        let _ = writeln!(s, "  \"timestamp_unix\": {},", self.timestamp_unix);
        s
    }
}

/// Short git revision of the working tree, `"unknown"` when git or the
/// repository is unavailable.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes a string for embedding in a JSON string literal (delegates to
/// the `bt-obs` profile exporter so every artifact escapes identically).
pub fn json_escape(s: &str) -> String {
    bt_obs::profile::json_escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_fills_every_field() {
        let meta = RunMeta::collect("unit-test", "widgets/s");
        assert_eq!(meta.bench, "unit-test");
        assert_eq!(meta.unit, "widgets/s");
        assert!(meta.host_threads >= 1);
        assert!(meta.pool_width >= 1);
        assert!(["scalar", "avx2", "avx512"].contains(&meta.isa_tier.as_str()));
        assert!(!meta.git_rev.is_empty());
        // A checkout (CI or dev) should produce a short hex rev.
        if meta.git_rev != "unknown" {
            assert!(meta.git_rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn header_is_open_json_object() {
        let meta = RunMeta {
            bench: "b\"1".into(),
            unit: "u".into(),
            host_threads: 8,
            pool_width: 4,
            isa_tier: "avx2".into(),
            git_rev: "abc123".into(),
            timestamp_unix: 1700000000,
        };
        let h = meta.header_json();
        assert!(h.starts_with("{\n"));
        assert!(h.trim_end().ends_with(','));
        assert!(h.contains("\"bench\": \"b\\\"1\""));
        assert!(h.contains("\"pool_width\": 4"));
        assert!(h.contains("\"timestamp_unix\": 1700000000"));
        // Closing it with a payload must yield balanced braces.
        let full = format!("{h}  \"x\": 1\n}}\n");
        assert_eq!(full.matches('{').count(), full.matches('}').count());
    }
}
