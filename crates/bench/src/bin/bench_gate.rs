//! `bench_gate` — perf-regression gate over the committed `BENCH_*.json`
//! artifacts.
//!
//! Usage: `bench_gate <baseline_dir> <current_dir>`
//!
//! Each artifact is a flat report: a top-level object with one or more row
//! arrays (`results` for the headline sweep; `BENCH_serve.json` also has
//! `sharded_scaling`). Rows are joined across the two directories on a
//! per-bench identity key that includes the workload shape (so a FAST-mode
//! run, which shrinks GEMM shapes, simply produces zero key overlap with a
//! full-mode baseline instead of nonsense ratios — the gate reports that
//! as a mode mismatch). A baseline that predates a newer section skips that
//! section with a warning instead of failing — the next committed artifact
//! picks it up. Per-metric tolerance bands, overridable via env:
//!
//! * `BT_GATE_MIN_RATE_RATIO` (default `0.5`) — throughput-like metrics
//!   (GFLOP/s, goodput, decode tokens/s) must stay at or above this
//!   fraction of baseline.
//! * `BT_GATE_MAX_LATENCY_RATIO` (default `2.0`) — latency-like metrics
//!   (p99, pool launch µs) must stay at or below this multiple of baseline.
//!
//! Accounting booleans (`accounting_exact`, `step_ledger_exact`) have no
//! band: a baseline `true` must stay `true`. Rows present on only one side
//! warn; a regression or an unparsable/missing current artifact fails the
//! gate (exit 1).

use std::process::exit;

// --- minimal JSON value parser --------------------------------------------
// The artifacts are machine-emitted (see the benches' `fs::write` calls),
// so this parser covers exactly the JSON subset they produce: objects,
// arrays, strings without escapes beyond \" and \\, numbers, booleans,
// null. No external dependency.

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Canonical scalar rendering for identity keys.
    fn key_repr(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Json::Str(s) => s.clone(),
            _ => "<composite>".to_string(),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { s: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != c {
            return Err(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.i, got as char
            ));
        }
        self.i += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("unterminated escape")?;
                    self.i += 1;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                }
                _ => out.push(c as char),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found '{}'",
                        self.i, other as char
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found '{}'",
                        self.i, other as char
                    ))
                }
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

// --- gate specification ----------------------------------------------------

/// How a metric may move relative to baseline.
#[derive(Clone, Copy, Debug)]
enum Band {
    /// Throughput: `current >= MIN_RATE_RATIO * baseline`.
    RateMin,
    /// Latency: `current <= MAX_LATENCY_RATIO * baseline`.
    LatencyMax,
    /// Count that must not shrink: `current >= baseline`, no band.
    CountMin,
    /// A baseline `true` must stay `true`.
    BoolExact,
    /// Self-describing floor: the *current* row must satisfy
    /// `current[metric] >= current[floor_field]` — the row carries its own
    /// acceptance bound (e.g. `goodput_ratio_vs_1 >= ratio_floor`), so the
    /// check does not drift with the baseline.
    SelfFloor {
        /// Field on the same row holding the floor value.
        floor_field: &'static str,
    },
}

struct Spec {
    file: &'static str,
    /// Top-level array holding this spec's rows.
    section: &'static str,
    key_fields: &'static [&'static str],
    metrics: &'static [(&'static str, Band)],
}

const SPECS: &[Spec] = &[
    Spec {
        file: "BENCH_gemm.json",
        section: "results",
        key_fields: &["name", "tier", "prec", "m", "n", "k"],
        metrics: &[("gflops", Band::RateMin)],
    },
    Spec {
        file: "BENCH_pool.json",
        section: "results",
        key_fields: &["kernel", "batch", "seq"],
        metrics: &[("pool_us", Band::LatencyMax)],
    },
    Spec {
        file: "BENCH_serve.json",
        section: "results",
        key_fields: &["policy", "load", "offered"],
        metrics: &[
            ("goodput_tokens_per_sec", Band::RateMin),
            ("p99_ms", Band::LatencyMax),
            ("accounting_exact", Band::BoolExact),
        ],
    },
    Spec {
        file: "BENCH_serve.json",
        section: "sharded_scaling",
        key_fields: &["shards"],
        metrics: &[
            ("goodput_tokens_per_sec", Band::RateMin),
            (
                "goodput_ratio_vs_1",
                Band::SelfFloor {
                    floor_field: "ratio_floor",
                },
            ),
            ("accounting_exact", Band::BoolExact),
        ],
    },
    Spec {
        file: "BENCH_decode.json",
        section: "results",
        key_fields: &["max_sessions", "offered"],
        metrics: &[
            ("decode_tokens_per_sec", Band::RateMin),
            ("sustained_sessions", Band::CountMin),
            ("accounting_exact", Band::BoolExact),
            ("step_ledger_exact", Band::BoolExact),
        ],
    },
];

fn env_ratio(name: &str, default: f64) -> f64 {
    match std::env::var(name) {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bench_gate: {name}={v} is not a number");
            exit(2);
        }),
        Err(_) => default,
    }
}

/// The spec's row array, or `None` when the document predates the section
/// (the caller decides whether that skips or fails).
fn rows(doc: &Json, section: &str) -> Option<Vec<Json>> {
    match doc.get(section) {
        Some(Json::Arr(items)) => Some(items.clone()),
        _ => None,
    }
}

fn row_key(row: &Json, fields: &[&str]) -> String {
    fields
        .iter()
        .map(|f| row.get(f).map_or_else(|| "?".to_string(), Json::key_repr))
        .collect::<Vec<_>>()
        .join("/")
}

fn load(dir: &str, file: &str) -> Option<Json> {
    let path = format!("{dir}/{file}");
    let text = std::fs::read_to_string(&path).ok()?;
    match parse_json(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            eprintln!("bench_gate: failed to parse {path}: {e}");
            exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_dir, current_dir] = match args.as_slice() {
        [b, c] => [b.clone(), c.clone()],
        _ => {
            eprintln!("usage: bench_gate <baseline_dir> <current_dir>");
            exit(2);
        }
    };
    let min_rate = env_ratio("BT_GATE_MIN_RATE_RATIO", 0.5);
    let max_latency = env_ratio("BT_GATE_MAX_LATENCY_RATIO", 2.0);
    println!("bench_gate: rate floor {min_rate:.2}x baseline, latency ceiling {max_latency:.2}x baseline");

    let mut failures = 0usize;
    let mut warnings = 0usize;
    for spec in SPECS {
        let Some(base_doc) = load(&baseline_dir, spec.file) else {
            println!("--  {}: no committed baseline, skipping", spec.file);
            warnings += 1;
            continue;
        };
        let Some(cur_doc) = load(&current_dir, spec.file) else {
            println!("FAIL {}: current artifact missing (bench did not emit it)", spec.file);
            failures += 1;
            continue;
        };
        let Some(base_rows) = rows(&base_doc, spec.section) else {
            // A freshly introduced section has no committed baseline yet —
            // that is expected exactly once, when the section ships.
            println!(
                "--  {} [{}]: baseline predates this section, skipping",
                spec.file, spec.section
            );
            warnings += 1;
            continue;
        };
        let Some(cur_rows) = rows(&cur_doc, spec.section) else {
            if spec.section == "results" {
                eprintln!("bench_gate: {} has no `results` array", spec.file);
                exit(2);
            }
            println!(
                "FAIL {} [{}]: section missing from current run (bench stopped emitting it)",
                spec.file, spec.section
            );
            failures += 1;
            continue;
        };
        let mut compared = 0usize;
        let mut file_failures = 0usize;
        for brow in &base_rows {
            let key = row_key(brow, spec.key_fields);
            let Some(crow) = cur_rows.iter().find(|r| row_key(r, spec.key_fields) == key) else {
                println!("warn {}: row {key} missing from current run", spec.file);
                warnings += 1;
                continue;
            };
            compared += 1;
            for &(metric, band) in spec.metrics {
                let (bv, cv) = (brow.get(metric), crow.get(metric));
                match band {
                    Band::BoolExact => {
                        if bv == Some(&Json::Bool(true)) && cv != Some(&Json::Bool(true)) {
                            println!("FAIL {}: {key} {metric} regressed from true", spec.file);
                            file_failures += 1;
                        }
                    }
                    Band::SelfFloor { floor_field } => {
                        let (Some(c), Some(floor)) = (
                            crow.get(metric).and_then(Json::as_f64),
                            crow.get(floor_field).and_then(Json::as_f64),
                        ) else {
                            println!(
                                "warn {}: {key} {metric}/{floor_field} not numeric in current run",
                                spec.file
                            );
                            warnings += 1;
                            continue;
                        };
                        if c < floor {
                            println!(
                                "FAIL {}: {key} {metric} = {c:.3} below its own floor {floor:.3}",
                                spec.file
                            );
                            file_failures += 1;
                        }
                    }
                    Band::RateMin | Band::LatencyMax | Band::CountMin => {
                        let (Some(b), Some(c)) = (bv.and_then(Json::as_f64), cv.and_then(Json::as_f64)) else {
                            println!("warn {}: {key} {metric} not numeric on both sides", spec.file);
                            warnings += 1;
                            continue;
                        };
                        let (ok, bound) = match band {
                            Band::RateMin => (c >= min_rate * b, format!(">= {:.3}", min_rate * b)),
                            Band::LatencyMax => (c <= max_latency * b, format!("<= {:.3}", max_latency * b)),
                            _ => (c >= b, format!(">= {b:.3}")),
                        };
                        if !ok {
                            println!(
                                "FAIL {}: {key} {metric} = {c:.3} (baseline {b:.3}, required {bound})",
                                spec.file
                            );
                            file_failures += 1;
                        }
                    }
                }
            }
        }
        for crow in &cur_rows {
            let key = row_key(crow, spec.key_fields);
            if !base_rows.iter().any(|r| row_key(r, spec.key_fields) == key) {
                println!("warn {}: new row {key} has no baseline yet", spec.file);
                warnings += 1;
            }
        }
        if compared == 0 {
            println!(
                "FAIL {}: zero overlapping rows between baseline and current — \
                 likely a BT_BENCH_FAST/full mode mismatch (FAST shrinks workload \
                 shapes, changing every row key)",
                spec.file
            );
            failures += 1;
        } else if file_failures == 0 {
            println!(
                "ok   {} [{}]: {compared} rows within tolerance",
                spec.file, spec.section
            );
        }
        failures += file_failures;
    }
    println!("bench_gate: {failures} regression(s), {warnings} warning(s)");
    if failures > 0 {
        exit(1);
    }
}
