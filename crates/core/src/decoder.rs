//! The Transformer decoder extension (paper §II and §V).
//!
//! The paper evaluates an encoder-only BERT but states that the zero-padding
//! algorithm and fused-MHA strategies "can easily extend to other
//! transformers that contain the decoder part". This module is that
//! extension, built entirely from the same machinery:
//!
//! * **causal self-attention** — the fused kernels of
//!   [`crate::attention::causal`], packed and padding-free, with the causal
//!   constraint expressed as a *smaller iteration space* (short path) or an
//!   epilogue mask (grouped path);
//! * **cross-attention** — [`crate::attention::cross`], rectangular
//!   variable-shape attention units over the packed encoder memory, running
//!   on the grouped-GEMM engine with softmax epilogue/mainloop fusion —
//!   padding-free on *both* the decoder and encoder axes;
//! * the same fused add-bias+LayerNorm and bias+GELU-in-epilogue kernels.
//!
//! [`Seq2SeqTransformer`] composes a ByteTransformer encoder with this
//! decoder for a full encoder-decoder forward pass (teacher-forcing style;
//! incremental KV-cache decoding is future work, as in the paper).

use crate::attention::causal::causal_fused_attention;
use crate::attention::cross::cross_attention;
use crate::config::BertConfig;
use crate::encoder::{BertModel, OptLevel};
use crate::weights::{DecoderLayerWeights, DecoderWeights};
use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_gemm::{gemm_kernel_spec_active, sgemm, sgemm_epilogue, GemmSpec};
use bt_kernels::activation::bias_gelu_epilogue;
use bt_kernels::layernorm::add_bias_residual_layernorm_fused;
use bt_kernels::layout::{add_bias_split_heads_packed, add_bias_split_kv_packed, add_bias_split_qkv_packed};
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex, VarlenError};

/// A stacked Transformer decoder with the full ByteTransformer optimization
/// set (packed activations, fused causal MHA, grouped cross-attention,
/// fused memory-bound kernels).
#[derive(Debug, Clone)]
pub struct TransformerDecoder {
    /// Hyper-parameters (shared with the encoder in a seq2seq model).
    pub config: BertConfig,
    /// Per-layer weights.
    pub weights: DecoderWeights,
}

impl TransformerDecoder {
    /// Builds a decoder with `num_layers` deterministic random layers.
    pub fn new_random(config: BertConfig, num_layers: usize, seed: u64) -> Self {
        Self {
            config,
            weights: DecoderWeights::new_random(&config, num_layers, seed),
        }
    }

    /// Full decoder forward. `tgt` is the padded `[batch, tgt_seq, hidden]`
    /// target-side input; `memory` is the padded `[batch, mem_seq, hidden]`
    /// encoder output. Returns a padded target-shaped tensor with zeroed
    /// padding rows.
    ///
    /// # Errors
    /// Returns [`VarlenError::ShapeMismatch`] on input/mask disagreement.
    pub fn forward(
        &self,
        device: &Device,
        tgt: &Tensor,
        tgt_mask: &BatchMask,
        memory: &Tensor,
        mem_mask: &BatchMask,
    ) -> Result<Tensor, VarlenError> {
        let hidden = self.config.hidden();
        let check = |t: &Tensor, m: &BatchMask, what: &str| -> Result<(), VarlenError> {
            let d = t.dims();
            if d.len() != 3 || d[0] != m.batch() || d[1] != m.max_seq_len() || d[2] != hidden {
                return Err(VarlenError::ShapeMismatch {
                    expected: format!("{what} [{}, {}, {hidden}]", m.batch(), m.max_seq_len()),
                    got: format!("{d:?}"),
                });
            }
            Ok(())
        };
        check(tgt, tgt_mask, "target")?;
        check(memory, mem_mask, "memory")?;
        if tgt_mask.batch() != mem_mask.batch() {
            return Err(VarlenError::ShapeMismatch {
                expected: format!("memory batch {}", tgt_mask.batch()),
                got: format!("{}", mem_mask.batch()),
            });
        }

        let tgt_idx = PackingIndex::from_mask_on(device, tgt_mask);
        let mem_idx = PackingIndex::from_mask_on(device, mem_mask);
        let mut x = tgt_idx.pack(device, tgt)?;
        let mem_packed = mem_idx.pack(device, memory)?;
        for w in &self.weights.layers {
            x = self.layer_forward_packed(device, &x, &tgt_idx, &mem_packed, &mem_idx, w);
        }
        tgt_idx.unpack(device, &x)
    }

    /// One decoder layer on packed activations.
    pub fn layer_forward_packed(
        &self,
        device: &Device,
        x: &Tensor,
        tgt_idx: &PackingIndex,
        memory: &Tensor,
        mem_idx: &PackingIndex,
        w: &DecoderLayerWeights,
    ) -> Tensor {
        let hidden = self.config.hidden();
        let heads = self.config.heads;
        let scale = self.config.attention_scale();
        let eps = self.config.eps;
        let rows = tgt_idx.valid_words();
        let mem_rows = mem_idx.valid_words();

        // --- causal self-attention -----------------------------------
        let qkv = self.gemm(
            device,
            "dec_gemm0.self_qkv",
            x.as_slice(),
            rows,
            w.self_qkv_weight.as_slice(),
            hidden,
            3 * hidden,
            None,
        );
        let qkv = Tensor::from_vec(qkv, [rows, 3 * hidden]).expect("shape consistent");
        let (q, k, v) = add_bias_split_qkv_packed(device, &qkv, &w.self_qkv_bias, heads, scale);
        let sa = causal_fused_attention(device, &q, &k, &v, tgt_idx);
        let mut attn = self.gemm(
            device,
            "dec_gemm1.self_proj",
            sa.as_slice(),
            rows,
            w.self_out_weight.as_slice(),
            hidden,
            hidden,
            None,
        );
        add_bias_residual_layernorm_fused(
            device,
            "dec_layernorm0",
            &mut attn,
            x.as_slice(),
            &w.self_out_bias,
            &w.ln0_gamma,
            &w.ln0_beta,
            eps,
            rows,
            hidden,
        );

        // --- cross-attention over the packed encoder memory ----------
        let cq = self.gemm(
            device,
            "dec_gemm2.cross_q",
            &attn,
            rows,
            w.cross_q_weight.as_slice(),
            hidden,
            hidden,
            None,
        );
        let cq = Tensor::from_vec(cq, [rows, hidden]).expect("shape consistent");
        let cq = add_bias_split_heads_packed(device, "cross_q", &cq, &w.cross_q_bias, heads, scale);
        let ckv = self.gemm(
            device,
            "dec_gemm3.cross_kv",
            memory.as_slice(),
            mem_rows,
            w.cross_kv_weight.as_slice(),
            hidden,
            2 * hidden,
            None,
        );
        let ckv = Tensor::from_vec(ckv, [mem_rows, 2 * hidden]).expect("shape consistent");
        let (ck, cv) = add_bias_split_kv_packed(device, "cross_kv", &ckv, &w.cross_kv_bias, heads);
        let ca = cross_attention(device, &cq, &ck, &cv, tgt_idx, mem_idx, Scheduler::WarpPrefetch);
        let mut cattn = self.gemm(
            device,
            "dec_gemm4.cross_proj",
            ca.as_slice(),
            rows,
            w.cross_out_weight.as_slice(),
            hidden,
            hidden,
            None,
        );
        add_bias_residual_layernorm_fused(
            device,
            "dec_layernorm1",
            &mut cattn,
            &attn,
            &w.cross_out_bias,
            &w.ln1_gamma,
            &w.ln1_beta,
            eps,
            rows,
            hidden,
        );

        // --- FFN with fused bias + GELU epilogue ----------------------
        let inter = self.config.intermediate();
        let epi = bias_gelu_epilogue(&w.ffn_up_bias);
        let ffn = self.gemm(
            device,
            "dec_gemm5.ffn_up",
            &cattn,
            rows,
            w.ffn_up_weight.as_slice(),
            hidden,
            inter,
            Some(&epi),
        );
        let mut out = self.gemm(
            device,
            "dec_gemm6.ffn_down",
            &ffn,
            rows,
            w.ffn_down_weight.as_slice(),
            inter,
            hidden,
            None,
        );
        add_bias_residual_layernorm_fused(
            device,
            "dec_layernorm2",
            &mut out,
            &cattn,
            &w.ffn_down_bias,
            &w.ln2_gamma,
            &w.ln2_beta,
            eps,
            rows,
            hidden,
        );
        Tensor::from_vec(out, [rows, hidden]).expect("shape consistent")
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        device: &Device,
        name: &str,
        a: &[f32],
        rows: usize,
        weight: &[f32],
        k: usize,
        n: usize,
        epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        let mut spec = gemm_kernel_spec_active(name, rows, n, k);
        if epilogue.is_some() {
            spec.cost.flops += (rows * n * 9) as u64;
        }
        device.launch(spec, || match epilogue {
            None => sgemm(GemmSpec::nn(), rows, n, k, a, weight, &mut out),
            Some(epi) => sgemm_epilogue(GemmSpec::nn(), rows, n, k, a, weight, &mut out, epi),
        });
        out
    }
}

/// A full encoder-decoder Transformer: a ByteTransformer BERT encoder
/// producing the memory, and the padding-free decoder above consuming it.
#[derive(Debug, Clone)]
pub struct Seq2SeqTransformer {
    /// The encoder stack.
    pub encoder: BertModel,
    /// The decoder stack.
    pub decoder: TransformerDecoder,
}

impl Seq2SeqTransformer {
    /// Builds an encoder-decoder pair with deterministic random weights.
    pub fn new_random(config: BertConfig, enc_layers: usize, dec_layers: usize, seed: u64) -> Self {
        Self {
            encoder: BertModel::new_random(config, enc_layers, seed),
            decoder: TransformerDecoder::new_random(config, dec_layers, seed.wrapping_add(1)),
        }
    }

    /// Full seq2seq forward: encode `src`, decode `tgt` against the memory.
    /// Both sides run the complete ByteTransformer optimization set.
    ///
    /// # Errors
    /// Propagates shape/mask mismatches as [`VarlenError`].
    pub fn forward(
        &self,
        device: &Device,
        src: &Tensor,
        src_mask: &BatchMask,
        tgt: &Tensor,
        tgt_mask: &BatchMask,
    ) -> Result<Tensor, VarlenError> {
        let memory = self.encoder.forward(device, src, src_mask, OptLevel::FusedMha)?;
        self.decoder.forward(device, tgt, tgt_mask, &memory, src_mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::causal::causal_reference_attention;
    use crate::attention::cross::cross_reference_attention;
    use bt_device::CostModel;
    use bt_kernels::activation::gelu_tanh;
    use bt_kernels::layernorm::normalize_row;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    /// Straight-line decoder layer on one (tgt sequence, memory sequence)
    /// pair — the independent oracle mirroring the packed pipeline.
    fn reference_layer(
        config: &BertConfig,
        w: &DecoderLayerWeights,
        x: &[f32],
        tgt_len: usize,
        mem: &[f32],
        mem_len: usize,
    ) -> Vec<f32> {
        let hidden = config.hidden();
        let heads = config.heads;
        let head = config.head_size;
        let scale = config.attention_scale();
        let matmul = |a: &[f32], rows: usize, wt: &Tensor, k: usize, n: usize| -> Vec<f32> {
            let mut out = vec![0.0f32; rows * n];
            let ws = wt.as_slice();
            for i in 0..rows {
                for p in 0..k {
                    let av = a[i * k + p];
                    for j in 0..n {
                        out[i * n + j] += av * ws[p * n + j];
                    }
                }
            }
            out
        };
        let to_bhsd = |flat: &[f32], rows: usize, col0: usize, stride: usize| -> Tensor {
            let mut t = Tensor::zeros([1, heads, rows, head]);
            for s in 0..rows {
                for h in 0..heads {
                    for d in 0..head {
                        t.set(&[0, h, s, d], flat[s * stride + col0 + h * head + d]).unwrap();
                    }
                }
            }
            t
        };

        // Self-attention (causal).
        let mut qkv = matmul(x, tgt_len, &w.self_qkv_weight, hidden, 3 * hidden);
        for row in qkv.chunks_mut(3 * hidden) {
            for (v, &b) in row.iter_mut().zip(&w.self_qkv_bias) {
                *v += b;
            }
        }
        let q = to_bhsd(&qkv, tgt_len, 0, 3 * hidden);
        let k = to_bhsd(&qkv, tgt_len, hidden, 3 * hidden);
        let v = to_bhsd(&qkv, tgt_len, 2 * hidden, 3 * hidden);
        let sa = causal_reference_attention(&q, &k, &v, &[tgt_len], scale);
        let mut sa_flat = vec![0.0f32; tgt_len * hidden];
        for s in 0..tgt_len {
            for h in 0..heads {
                for d in 0..head {
                    sa_flat[s * hidden + h * head + d] = sa.at(&[0, h, s, d]).unwrap();
                }
            }
        }
        let mut attn = matmul(&sa_flat, tgt_len, &w.self_out_weight, hidden, hidden);
        for (i, row) in attn.chunks_mut(hidden).enumerate() {
            for (j, vv) in row.iter_mut().enumerate() {
                *vv += x[i * hidden + j] + w.self_out_bias[j];
            }
            normalize_row(row, &w.ln0_gamma, &w.ln0_beta, config.eps);
        }

        // Cross-attention.
        let mut cq = matmul(&attn, tgt_len, &w.cross_q_weight, hidden, hidden);
        for row in cq.chunks_mut(hidden) {
            for (vv, &b) in row.iter_mut().zip(&w.cross_q_bias) {
                *vv += b;
            }
        }
        let mut ckv = matmul(mem, mem_len, &w.cross_kv_weight, hidden, 2 * hidden);
        for row in ckv.chunks_mut(2 * hidden) {
            for (vv, &b) in row.iter_mut().zip(&w.cross_kv_bias) {
                *vv += b;
            }
        }
        let cq_t = to_bhsd(&cq, tgt_len, 0, hidden);
        let ck_t = to_bhsd(&ckv, mem_len, 0, 2 * hidden);
        let cv_t = to_bhsd(&ckv, mem_len, hidden, 2 * hidden);
        let ca = cross_reference_attention(&cq_t, &ck_t, &cv_t, &[tgt_len], &[mem_len], scale);
        let mut ca_flat = vec![0.0f32; tgt_len * hidden];
        for s in 0..tgt_len {
            for h in 0..heads {
                for d in 0..head {
                    ca_flat[s * hidden + h * head + d] = ca.at(&[0, h, s, d]).unwrap();
                }
            }
        }
        let mut cattn = matmul(&ca_flat, tgt_len, &w.cross_out_weight, hidden, hidden);
        for (i, row) in cattn.chunks_mut(hidden).enumerate() {
            for (j, vv) in row.iter_mut().enumerate() {
                *vv += attn[i * hidden + j] + w.cross_out_bias[j];
            }
            normalize_row(row, &w.ln1_gamma, &w.ln1_beta, config.eps);
        }

        // FFN.
        let inter = config.intermediate();
        let mut up = matmul(&cattn, tgt_len, &w.ffn_up_weight, hidden, inter);
        for row in up.chunks_mut(inter) {
            for (vv, &b) in row.iter_mut().zip(&w.ffn_up_bias) {
                *vv = gelu_tanh(*vv + b);
            }
        }
        let mut out = matmul(&up, tgt_len, &w.ffn_down_weight, inter, hidden);
        for (i, row) in out.chunks_mut(hidden).enumerate() {
            for (j, vv) in row.iter_mut().enumerate() {
                *vv += cattn[i * hidden + j] + w.ffn_down_bias[j];
            }
            normalize_row(row, &w.ln2_gamma, &w.ln2_beta, config.eps);
        }
        out
    }

    fn zeroed(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
        let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..mask.max_seq_len() {
                for h in 0..hidden {
                    t.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        t
    }

    #[test]
    fn decoder_matches_independent_reference() {
        let config = BertConfig::tiny();
        let dec = TransformerDecoder::new_random(config, 2, 7);
        let tgt_mask = BatchMask::from_lens(vec![5, 2], 6).unwrap();
        let mem_mask = BatchMask::from_lens(vec![3, 8], 8).unwrap();
        let tgt = zeroed(&tgt_mask, config.hidden(), 1);
        let memory = zeroed(&mem_mask, config.hidden(), 2);
        let dev = device();
        let got = dec.forward(&dev, &tgt, &tgt_mask, &memory, &mem_mask).unwrap();

        let hidden = config.hidden();
        for (b, (&tl, &ml)) in tgt_mask.seq_lens().iter().zip(mem_mask.seq_lens()).enumerate() {
            let mut x = vec![0.0f32; tl * hidden];
            let mut mem = vec![0.0f32; ml * hidden];
            for s in 0..tl {
                for h in 0..hidden {
                    x[s * hidden + h] = tgt.at(&[b, s, h]).unwrap();
                }
            }
            for s in 0..ml {
                for h in 0..hidden {
                    mem[s * hidden + h] = memory.at(&[b, s, h]).unwrap();
                }
            }
            for w in &dec.weights.layers {
                x = reference_layer(&config, w, &x, tl, &mem, ml);
            }
            for s in 0..tl {
                for h in 0..hidden {
                    let g = got.at(&[b, s, h]).unwrap();
                    let e = x[s * hidden + h];
                    assert!((g - e).abs() < 5e-3, "({b},{s},{h}): {g} vs {e}");
                }
            }
        }
    }

    #[test]
    fn decoder_zeroes_padded_rows() {
        let config = BertConfig::tiny();
        let dec = TransformerDecoder::new_random(config, 1, 3);
        let tgt_mask = BatchMask::from_lens(vec![2], 5).unwrap();
        let mem_mask = BatchMask::from_lens(vec![4], 4).unwrap();
        let dev = device();
        let got = dec
            .forward(
                &dev,
                &zeroed(&tgt_mask, 16, 1),
                &tgt_mask,
                &zeroed(&mem_mask, 16, 2),
                &mem_mask,
            )
            .unwrap();
        for s in 2..5 {
            for h in 0..16 {
                assert_eq!(got.at(&[0, s, h]).unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn seq2seq_end_to_end_is_finite_and_deterministic() {
        let config = BertConfig::tiny();
        let model = Seq2SeqTransformer::new_random(config, 2, 2, 11);
        let src_mask = BatchMask::from_lens(vec![6, 3], 8).unwrap();
        let tgt_mask = BatchMask::from_lens(vec![4, 7], 7).unwrap();
        let src = zeroed(&src_mask, config.hidden(), 5);
        let tgt = zeroed(&tgt_mask, config.hidden(), 6);
        let dev = device();
        let a = model.forward(&dev, &src, &src_mask, &tgt, &tgt_mask).unwrap();
        let b = model.forward(&dev, &src, &src_mask, &tgt, &tgt_mask).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(a.dims(), &[2, 7, config.hidden()]);
    }

    #[test]
    fn decoder_causality_holds_end_to_end() {
        // Changing a *later* target token must not affect earlier outputs.
        let config = BertConfig::tiny();
        let dec = TransformerDecoder::new_random(config, 2, 13);
        let tgt_mask = BatchMask::from_lens(vec![6], 6).unwrap();
        let mem_mask = BatchMask::from_lens(vec![4], 4).unwrap();
        let memory = zeroed(&mem_mask, config.hidden(), 2);
        let tgt_a = zeroed(&tgt_mask, config.hidden(), 3);
        let mut tgt_b = tgt_a.clone();
        for h in 0..config.hidden() {
            tgt_b.set(&[0, 5, h], 9.0).unwrap(); // perturb the last token
        }
        let dev = device();
        let out_a = dec.forward(&dev, &tgt_a, &tgt_mask, &memory, &mem_mask).unwrap();
        let out_b = dec.forward(&dev, &tgt_b, &tgt_mask, &memory, &mem_mask).unwrap();
        for s in 0..5 {
            for h in 0..config.hidden() {
                assert_eq!(
                    out_a.at(&[0, s, h]).unwrap(),
                    out_b.at(&[0, s, h]).unwrap(),
                    "position {s} saw the future"
                );
            }
        }
        // The perturbed position itself must change.
        assert_ne!(out_a.at(&[0, 5, 0]).unwrap(), out_b.at(&[0, 5, 0]).unwrap());
    }

    #[test]
    fn shape_errors_are_typed() {
        let config = BertConfig::tiny();
        let dec = TransformerDecoder::new_random(config, 1, 1);
        let tgt_mask = BatchMask::from_lens(vec![2], 4).unwrap();
        let mem_mask = BatchMask::from_lens(vec![2, 2], 4).unwrap();
        let dev = device();
        // Batch mismatch between target and memory.
        let r = dec.forward(
            &dev,
            &Tensor::zeros([1, 4, 16]),
            &tgt_mask,
            &Tensor::zeros([2, 4, 16]),
            &mem_mask,
        );
        assert!(r.is_err());
        // Wrong hidden.
        let r = dec.forward(
            &dev,
            &Tensor::zeros([1, 4, 7]),
            &tgt_mask,
            &Tensor::zeros([1, 4, 16]),
            &BatchMask::from_lens(vec![2], 4).unwrap(),
        );
        assert!(r.is_err());
    }
}
