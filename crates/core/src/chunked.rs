//! Stateful chunked-transform stages — the streaming form of the
//! pack→forward→unpack pipeline.
//!
//! The paper's pipeline is whole-request-in/whole-batch-out: a request's
//! every token enters one batch, runs, and leaves. Serving wants the
//! incremental form — a long prompt ingested in fixed token-budget chunks
//! that interleave with other work — without changing a single output bit.
//! The packed math makes that free: every row of a packed GEMM, the
//! grouped attention (one `m = 1` problem per row at its true key length)
//! and the per-row LayerNorm/FFN epilogues are computed independently of
//! which other rows share the launch, so splitting a stage's input across
//! launches is purely a *scheduling* decision. `tests/differential_streaming.rs`
//! proves it: chunked output is bitwise identical to whole-input output on
//! every `BYTE_GEMM_ISA` tier, invariant across chunk sizes.
//!
//! [`ChunkedStage`] is the contract: feed chunks with [`transform`]
//! (`last` marks the final chunk), snapshot progress with [`state`], and
//! resume a fresh stage from a snapshot with [`with_state`] — an explicit
//! save/restore in the `ByteTransform` idiom, so a serving loop can park a
//! half-ingested request (or migrate it) and continue later. Stages
//! compose as tuples: `(A, B)` is itself a stage when `B` consumes `A`'s
//! output, with paired state.
//!
//! Three stages cover the model front-to-back:
//!
//! * [`ChunkedEmbeddings`] — chunks **along a sequence**: each chunk of
//!   token ids embeds at an explicit position offset carried in the state.
//! * [`ChunkedEncoder`] — chunks **across sequences**: encoder attention
//!   is bidirectional over a whole sequence, so the streaming unit is a
//!   group of complete sequences, not a sequence prefix.
//! * [`ChunkedPrefill`] — chunks **along time**: causal prefix attention
//!   lets a prompt prefill in pieces against the paged KV cache
//!   ([`crate::paged::PagedDecoder`] resumes at the cached length).
//!
//! [`transform`]: ChunkedStage::transform
//! [`state`]: ChunkedStage::state
//! [`with_state`]: ChunkedStage::with_state

use crate::decoder::TransformerDecoder;
use crate::embeddings::{embed_row, EmbeddingWeights};
use crate::encoder::{BertModel, OptLevel};
use crate::paged::PagedDecoder;
use bt_device::{Device, KernelSpec};
use bt_tensor::Tensor;
use bt_varlen::paged::{PagedLayout, SessionId};
use bt_varlen::BatchMask;

/// A pipeline stage that consumes its input in chunks, carrying explicit
/// state between chunks.
///
/// The contract every implementation (and the differential suite) holds:
/// feeding an input as *n* chunks produces bitwise the same outputs, in
/// order, as feeding it whole, and `stage.with_state(&stage.state())`
/// behaves bitwise like `stage` itself from that point on.
pub trait ChunkedStage {
    /// Everything needed to resume the stage at its current progress.
    type State: Clone + std::fmt::Debug;
    /// One unit of streamed input.
    type Chunk;
    /// What the stage produces per chunk.
    type Output;

    /// Consumes one chunk and returns its output. `last` marks the final
    /// chunk of the stream; the stages here buffer nothing, so it is
    /// advisory, but composed stages forward it so a flushing stage can be
    /// slotted in.
    fn transform(&mut self, chunk: Self::Chunk, last: bool) -> Self::Output;

    /// Snapshots the stage's progress.
    fn state(&self) -> Self::State;

    /// Builds a fresh stage resumed at `state`, sharing `self`'s
    /// configuration and weights.
    fn with_state(&self, state: &Self::State) -> Self
    where
        Self: Sized;
}

/// Two stages in sequence are a stage: `A`'s chunk output feeds `B`, state
/// is the pair of states, and `last` propagates through both.
impl<A: ChunkedStage, B: ChunkedStage<Chunk = A::Output>> ChunkedStage for (A, B) {
    type State = (A::State, B::State);
    type Chunk = A::Chunk;
    type Output = B::Output;

    fn transform(&mut self, chunk: Self::Chunk, last: bool) -> Self::Output {
        let mid = self.0.transform(chunk, last);
        self.1.transform(mid, last)
    }

    fn state(&self) -> Self::State {
        (self.0.state(), self.1.state())
    }

    fn with_state(&self, state: &Self::State) -> Self {
        (self.0.with_state(&state.0), self.1.with_state(&state.1))
    }
}

/// Streaming embeddings for one sequence: each chunk of token ids embeds
/// at the position where the previous chunk stopped.
///
/// [`crate::embeddings::embed_packed`] derives each token's position from
/// its padded slot; a streamed sequence has no padded layout, so the
/// position offset is the stage's [`ChunkedStage::State`]. Row for row the
/// arithmetic is identical, which makes chunked output bitwise equal to
/// the packed front-end's.
pub struct ChunkedEmbeddings<'a> {
    device: &'a Device,
    weights: &'a EmbeddingWeights,
    next_pos: usize,
}

impl<'a> ChunkedEmbeddings<'a> {
    /// A stage at position zero of a fresh sequence.
    pub fn new(device: &'a Device, weights: &'a EmbeddingWeights) -> Self {
        Self {
            device,
            weights,
            next_pos: 0,
        }
    }

    /// Tokens embedded so far (the next chunk's starting position).
    pub fn position(&self) -> usize {
        self.next_pos
    }
}

impl ChunkedStage for ChunkedEmbeddings<'_> {
    /// The next token's position index.
    type State = usize;
    /// `(token ids, segment ids)`, one entry per token, equal lengths.
    type Chunk = (Vec<u32>, Vec<u32>);
    /// Packed `[chunk_len, hidden]` embedded rows.
    type Output = Tensor;

    /// # Panics
    /// Panics on an empty or length-mismatched chunk, an id outside the
    /// tables, or a chunk that would run past the position table.
    fn transform(&mut self, (ids, segments): Self::Chunk, _last: bool) -> Self::Output {
        assert!(!ids.is_empty(), "chunk must hold at least one token");
        assert_eq!(ids.len(), segments.len(), "ids and segments must pair up");
        let w = self.weights;
        let len = ids.len();
        let hidden = w.token.dims()[1];
        let n_seg = w.segment.dims()[0] as u32;
        assert!(
            self.next_pos + len <= w.max_position(),
            "chunk ends at position {} but the table holds {}",
            self.next_pos + len,
            w.max_position()
        );
        for (i, (&t, &s)) in ids.iter().zip(&segments).enumerate() {
            assert!((t as usize) < w.vocab(), "token id {t} out of vocab at chunk row {i}");
            assert!(s < n_seg, "segment id {s} out of range at chunk row {i}");
        }
        let moved = (len * hidden * 4) as u64;
        let data = self.device.launch(
            KernelSpec::new("embedding.chunked")
                .flops((len * hidden * 10) as u64)
                .reads(3 * moved + len as u64 * 12)
                .writes(moved),
            || {
                let mut data = vec![0.0f32; len * hidden];
                for (i, row) in data.chunks_mut(hidden).enumerate() {
                    embed_row(row, w, ids[i] as usize, self.next_pos + i, segments[i] as usize);
                }
                data
            },
        );
        self.next_pos += len;
        Tensor::from_vec(data, [len, hidden]).expect("shape consistent")
    }

    fn state(&self) -> Self::State {
        self.next_pos
    }

    fn with_state(&self, state: &Self::State) -> Self {
        Self {
            device: self.device,
            weights: self.weights,
            next_pos: *state,
        }
    }
}

/// Streaming encoder: each chunk is a group of *complete* sequences run
/// through the full stack.
///
/// Encoder attention is bidirectional — every token attends over its whole
/// sequence — so a sequence cannot be split mid-stream the way a causal
/// prompt can. The streaming unit is therefore a sub-batch of whole
/// sequences; because the packed pipeline's rows never mix across
/// sequences, forwarding sequences in chunks is bitwise identical to
/// forwarding them in one batch.
pub struct ChunkedEncoder<'a> {
    device: &'a Device,
    model: &'a BertModel,
    opt: OptLevel,
    seqs_done: usize,
}

impl<'a> ChunkedEncoder<'a> {
    /// A stage over `model` at the given optimization level.
    pub fn new(device: &'a Device, model: &'a BertModel, opt: OptLevel) -> Self {
        Self {
            device,
            model,
            opt,
            seqs_done: 0,
        }
    }

    /// Sequences forwarded so far.
    pub fn sequences_done(&self) -> usize {
        self.seqs_done
    }
}

impl ChunkedStage for ChunkedEncoder<'_> {
    /// Count of sequences already forwarded.
    type State = usize;
    /// A padded `[batch, seq, hidden]` sub-batch with its mask.
    type Chunk = (Tensor, BatchMask);
    /// The forwarded sub-batch, same shape as the input.
    type Output = Tensor;

    /// # Panics
    /// Panics if the input shape does not match the mask and model (the
    /// same condition [`BertModel::forward`] reports as an error).
    fn transform(&mut self, (input, mask): Self::Chunk, _last: bool) -> Self::Output {
        let out = self
            .model
            .forward(self.device, &input, &mask, self.opt)
            .expect("chunk shape must match its mask");
        self.seqs_done += mask.batch();
        out
    }

    fn state(&self) -> Self::State {
        self.seqs_done
    }

    fn with_state(&self, state: &Self::State) -> Self {
        Self {
            device: self.device,
            model: self.model,
            opt: self.opt,
            seqs_done: *state,
        }
    }
}

/// Resumable snapshot of a [`ChunkedPrefill`]: the prompt prefix consumed
/// so far, flattened `[rows × hidden]`.
///
/// The causal-prefill state *is* the consumed prefix — the KV cache is a
/// deterministic function of it — so restore replays the prefix into a
/// fresh session. The repo's differential suite proves prefill is bitwise
/// deterministic and chunking-invariant, which makes replay an exact
/// restore, at the cost of re-running the prefix (a memory/compute trade:
/// the snapshot is `O(prompt)` floats instead of a cache image).
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedPrefillState {
    /// Consumed prompt rows, `[rows × hidden]` flattened.
    pub consumed: Vec<f32>,
}

/// Streaming prompt ingestion against the paged KV cache: each chunk of
/// prompt rows prefills where the previous chunk stopped.
///
/// Causal attention makes time the natural chunk axis — a prompt row
/// attends only over rows at or before it, so rows ingested earlier are
/// final the moment they are written. [`PagedDecoder::prefill`] already
/// resumes at the session's cached length; this stage adds the explicit
/// state contract on top.
pub struct ChunkedPrefill<'a> {
    device: &'a Device,
    decoder: &'a TransformerDecoder,
    layout: PagedLayout,
    memory: Tensor,
    paged: PagedDecoder<'a>,
    sid: SessionId,
    consumed: Vec<f32>,
}

impl<'a> ChunkedPrefill<'a> {
    /// Opens a fresh session over `decoder` with its own paged cache of
    /// `layout` geometry and the given cross-attention `memory`
    /// (`[mem_len, hidden]`, packed).
    pub fn new(device: &'a Device, decoder: &'a TransformerDecoder, layout: PagedLayout, memory: Tensor) -> Self {
        let mut paged = PagedDecoder::new(decoder, layout);
        let sid = paged.open_session(device, &memory);
        Self {
            device,
            decoder,
            layout,
            memory,
            paged,
            sid,
            consumed: Vec::new(),
        }
    }

    /// Prompt tokens ingested so far.
    pub fn tokens_ingested(&self) -> usize {
        self.paged.session_len(self.sid)
    }

    /// The underlying paged decoder (e.g. to run decode steps after the
    /// last prefill chunk) with its live session id.
    pub fn into_parts(self) -> (PagedDecoder<'a>, SessionId) {
        (self.paged, self.sid)
    }
}

impl ChunkedStage for ChunkedPrefill<'_> {
    type State = ChunkedPrefillState;
    /// `[chunk_len, hidden]` prompt rows.
    type Chunk = Tensor;
    /// One output hidden state per ingested row, in order.
    type Output = Vec<Vec<f32>>;

    /// # Panics
    /// Panics if the chunk is not `[len ≥ 1, hidden]` or the session's
    /// dedicated pool cannot hold it ([`bt_varlen::paged::KvOom`] — size
    /// the layout to the prompt; the serving loop's shared-pool shedding
    /// lives in `bt-frameworks`, not here).
    fn transform(&mut self, chunk: Self::Chunk, _last: bool) -> Self::Output {
        let out = self
            .paged
            .prefill(self.device, self.sid, &chunk)
            .expect("prefill chunk must fit the stage's paged pool");
        self.consumed.extend_from_slice(chunk.as_slice());
        out
    }

    fn state(&self) -> Self::State {
        ChunkedPrefillState {
            consumed: self.consumed.clone(),
        }
    }

    fn with_state(&self, state: &Self::State) -> Self {
        let mut fresh = Self::new(self.device, self.decoder, self.layout, self.memory.clone());
        if !state.consumed.is_empty() {
            let hidden = self.decoder.config.hidden();
            assert_eq!(state.consumed.len() % hidden, 0, "state rows must be [rows, hidden]");
            let rows = state.consumed.len() / hidden;
            let prefix = Tensor::from_vec(state.consumed.clone(), [rows, hidden]).expect("shape consistent");
            fresh
                .paged
                .prefill(fresh.device, fresh.sid, &prefix)
                .expect("restored prefix must fit a fresh pool");
            fresh.consumed = state.consumed.clone();
        }
        fresh
    }
}

/// Splits `total` into chunks of `chunk_tokens` (last one ragged).
/// `chunk_tokens == 0` means "whole": one chunk of everything.
/// Returns an empty vec for `total == 0`.
pub fn chunk_spans(total: usize, chunk_tokens: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    if chunk_tokens == 0 {
        return vec![(0, total)];
    }
    let mut spans = Vec::with_capacity(total.div_ceil(chunk_tokens));
    let mut start = 0;
    while start < total {
        let len = chunk_tokens.min(total - start);
        spans.push((start, len));
        start += len;
    }
    spans
}

/// A tiny convenience used by tests and callers streaming a whole tensor:
/// rows `[start, start + len)` of a packed `[rows, hidden]` tensor.
pub fn row_chunk(t: &Tensor, start: usize, len: usize) -> Tensor {
    let hidden = t.dims()[1];
    let rows = t.as_slice()[start * hidden..(start + len) * hidden].to_vec();
    Tensor::from_vec(rows, [len, hidden]).expect("shape consistent")
}

#[allow(missing_docs)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BertConfig;
    use bt_device::CostModel;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn bits(rows: &[Vec<f32>]) -> Vec<u32> {
        rows.iter().flatten().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn chunk_spans_cover_exactly() {
        assert_eq!(chunk_spans(7, 3), vec![(0, 3), (3, 3), (6, 1)]);
        assert_eq!(chunk_spans(7, 0), vec![(0, 7)]);
        assert_eq!(chunk_spans(7, 64), vec![(0, 7)]);
        assert_eq!(chunk_spans(0, 3), Vec::new());
        assert_eq!(chunk_spans(4, 1).len(), 4);
    }

    #[test]
    fn chunked_prefill_is_bitwise_equal_to_whole() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 2, 17);
        let dev = device();
        let memory = Tensor::randn([3, config.hidden()], 5);
        let prompt = Tensor::randn([7, config.hidden()], 9);
        let layout = PagedLayout::new(4, 64);

        let mut whole = PagedDecoder::new(&decoder, layout);
        let sid = whole.open_session(&dev, &memory);
        let reference = whole.prefill(&dev, sid, &prompt).unwrap();

        for chunk_tokens in [1usize, 3, 64] {
            let mut stage = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
            let spans = chunk_spans(prompt.dims()[0], chunk_tokens);
            let mut outs: Vec<Vec<f32>> = Vec::new();
            for (i, &(start, len)) in spans.iter().enumerate() {
                outs.extend(stage.transform(row_chunk(&prompt, start, len), i + 1 == spans.len()));
            }
            assert_eq!(stage.tokens_ingested(), 7);
            assert_eq!(
                bits(&outs),
                bits(&reference),
                "chunk_tokens={chunk_tokens} diverged from whole prefill"
            );
        }
    }

    #[test]
    fn chunked_embeddings_match_packed_bitwise() {
        let config = BertConfig::tiny();
        let w = EmbeddingWeights::new_random(&config, 50, 16, 3);
        let dev = device();
        let len = 7usize;
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let ids: Vec<u32> = (0..len).map(|_| rng.below(50) as u32).collect();
        let segments: Vec<u32> = (0..len).map(|_| rng.below(2) as u32).collect();

        let mask = BatchMask::from_lens(vec![len], len).unwrap();
        let idx = bt_varlen::PackingIndex::from_mask(&mask);
        let reference = crate::embeddings::embed_packed(&dev, &ids, &segments, &idx, &w).unwrap();

        for chunk_tokens in [1usize, 3, 64] {
            let mut stage = ChunkedEmbeddings::new(&dev, &w);
            let mut out: Vec<f32> = Vec::new();
            let spans = chunk_spans(len, chunk_tokens);
            for (i, &(start, n)) in spans.iter().enumerate() {
                let t = stage.transform(
                    (ids[start..start + n].to_vec(), segments[start..start + n].to_vec()),
                    i + 1 == spans.len(),
                );
                out.extend_from_slice(t.as_slice());
            }
            assert_eq!(stage.position(), len);
            let a: Vec<u32> = out.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = reference.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "chunk_tokens={chunk_tokens} diverged from embed_packed");
        }
    }

    #[test]
    fn chunked_encoder_matches_whole_forward_bitwise() {
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, 2, 42);
        let dev = device();
        let lens = [5usize, 2, 7];
        let max = 8usize;
        let mask = BatchMask::from_lens(lens.to_vec(), max).unwrap();
        let mut input = Tensor::randn([3, max, config.hidden()], 13);
        for (b, &l) in lens.iter().enumerate() {
            for s in l..max {
                for h in 0..config.hidden() {
                    input.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        let whole = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();

        // Stream the same sequences as two sub-batches: [5] then [2, 7].
        let mut stage = ChunkedEncoder::new(&dev, &model, OptLevel::FusedMha);
        let sub = |seqs: std::ops::Range<usize>| {
            let sub_lens: Vec<usize> = lens[seqs.clone()].to_vec();
            let sub_max = sub_lens.iter().copied().max().unwrap();
            let sub_mask = BatchMask::from_lens(sub_lens.clone(), sub_max).unwrap();
            let hidden = config.hidden();
            let mut data = vec![0.0f32; sub_lens.len() * sub_max * hidden];
            for (bi, b) in seqs.clone().enumerate() {
                for s in 0..lens[b] {
                    let src = (b * max + s) * hidden;
                    let dst = (bi * sub_max + s) * hidden;
                    data[dst..dst + hidden].copy_from_slice(&input.as_slice()[src..src + hidden]);
                }
            }
            (
                Tensor::from_vec(data, [sub_lens.len(), sub_max, hidden]).unwrap(),
                sub_mask,
            )
        };
        let out_a = stage.transform(sub(0..1), false);
        let out_b = stage.transform(sub(1..3), true);
        assert_eq!(stage.sequences_done(), 3);

        let hidden = config.hidden();
        let valid =
            |t: &Tensor, sub_lens: &[usize], sub_max: usize, first_seq: usize| -> Vec<(usize, usize, Vec<u32>)> {
                let mut rows = Vec::new();
                for (bi, &l) in sub_lens.iter().enumerate() {
                    for s in 0..l {
                        let o = (bi * sub_max + s) * hidden;
                        rows.push((
                            first_seq + bi,
                            s,
                            t.as_slice()[o..o + hidden].iter().map(|x| x.to_bits()).collect(),
                        ));
                    }
                }
                rows
            };
        let mut streamed = valid(&out_a, &lens[0..1], 5, 0);
        streamed.extend(valid(&out_b, &lens[1..3], 7, 1));
        let reference = valid(&whole, &lens, max, 0);
        assert_eq!(streamed, reference, "chunked sub-batches diverged from the whole batch");
    }

    #[test]
    fn prefill_state_roundtrip_is_bitwise() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 23);
        let dev = device();
        let memory = Tensor::randn([2, config.hidden()], 7);
        let prompt = Tensor::randn([6, config.hidden()], 31);
        let layout = PagedLayout::new(4, 64);

        // Uninterrupted: two chunks of 3.
        let mut base = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let mut base_out = base.transform(row_chunk(&prompt, 0, 3), false);
        base_out.extend(base.transform(row_chunk(&prompt, 3, 3), true));

        // Interrupted: chunk, snapshot, resume a fresh stage, finish there.
        let mut first = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let mut out = first.transform(row_chunk(&prompt, 0, 3), false);
        let snap = first.state();
        drop(first);
        let probe = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let mut resumed = probe.with_state(&snap);
        assert_eq!(resumed.tokens_ingested(), 3);
        out.extend(resumed.transform(row_chunk(&prompt, 3, 3), true));

        assert_eq!(bits(&out), bits(&base_out), "restore must not perturb a single bit");
        assert_eq!(resumed.state(), base.state());
    }

    #[test]
    fn tuple_composition_threads_chunks_and_state() {
        let config = BertConfig::tiny();
        let w = EmbeddingWeights::new_random(&config, 50, 16, 3);
        let decoder = TransformerDecoder::new_random(config, 1, 19);
        let dev = device();
        let memory = Tensor::randn([2, config.hidden()], 3);
        let layout = PagedLayout::new(4, 64);
        let mut rng = Xoshiro256StarStar::seed_from_u64(29);
        let ids: Vec<u32> = (0..6).map(|_| rng.below(50) as u32).collect();
        let segs: Vec<u32> = vec![0; 6];

        // Embed → prefill as one composed stage, fed in chunks of 2.
        let mut pipe = (
            ChunkedEmbeddings::new(&dev, &w),
            ChunkedPrefill::new(&dev, &decoder, layout, memory.clone()),
        );
        let mut outs: Vec<Vec<f32>> = Vec::new();
        for (i, &(start, len)) in chunk_spans(6, 2).iter().enumerate() {
            outs.extend(pipe.transform(
                (ids[start..start + len].to_vec(), segs[start..start + len].to_vec()),
                i == 2,
            ));
        }
        let (embed_pos, prefill_state) = pipe.state();
        assert_eq!(embed_pos, 6);
        assert_eq!(prefill_state.consumed.len(), 6 * config.hidden());

        // Whole-input reference through fresh stages.
        let mut embed = ChunkedEmbeddings::new(&dev, &w);
        let rows = embed.transform((ids.clone(), segs.clone()), true);
        let mut prefill = ChunkedPrefill::new(&dev, &decoder, layout, memory.clone());
        let reference = prefill.transform(rows, true);
        assert_eq!(bits(&outs), bits(&reference));

        // Tuple restore resumes both halves.
        let probe = (
            ChunkedEmbeddings::new(&dev, &w),
            ChunkedPrefill::new(&dev, &decoder, layout, memory),
        );
        let resumed = probe.with_state(&pipe.state());
        assert_eq!(resumed.0.position(), 6);
        assert_eq!(resumed.1.tokens_ingested(), 6);
    }
}
