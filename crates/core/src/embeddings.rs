//! BERT embeddings front-end: token + position + segment lookup, summed and
//! LayerNormed.
//!
//! The paper skips embeddings ("we skip the embedding descriptions in the
//! figure") because they are upstream of its optimizations — but a deployed
//! encoder needs them, and they benefit from the same idea: under the
//! zero-padding algorithm the lookup writes **directly into the packed
//! layout** ([`embed_packed`]), fusing the gather, the three-way sum, the
//! LayerNorm *and* the pack into one kernel, so the padded
//! `[batch, seq, hidden]` embedding tensor never exists.

use crate::config::BertConfig;
use bt_device::{Device, KernelSpec};
use bt_kernels::layernorm::normalize_row;
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex, VarlenError};
use rayon::prelude::*;

/// Embedding tables and the embedding LayerNorm parameters.
#[derive(Debug, Clone)]
pub struct EmbeddingWeights {
    /// Token table, `[vocab, hidden]`.
    pub token: Tensor,
    /// Learned position table, `[max_position, hidden]`.
    pub position: Tensor,
    /// Segment (token-type) table, `[segments, hidden]`.
    pub segment: Tensor,
    /// Embedding LayerNorm scale.
    pub gamma: Vec<f32>,
    /// Embedding LayerNorm shift.
    pub beta: Vec<f32>,
}

impl EmbeddingWeights {
    /// Deterministic random tables.
    pub fn new_random(config: &BertConfig, vocab: usize, max_position: usize, seed: u64) -> Self {
        let hidden = config.hidden();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xE3BED);
        let table = |rows: usize, rng: &mut Xoshiro256StarStar| {
            let data = (0..rows * hidden).map(|_| rng.normal() * 0.02).collect();
            Tensor::from_vec(data, [rows, hidden]).expect("generated size matches")
        };
        Self {
            token: table(vocab, &mut rng),
            position: table(max_position, &mut rng),
            segment: table(2, &mut rng),
            gamma: (0..hidden).map(|_| 1.0 + rng.normal() * 0.02).collect(),
            beta: (0..hidden).map(|_| rng.normal() * 0.02).collect(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.token.dims()[0]
    }

    /// Maximum supported position.
    pub fn max_position(&self) -> usize {
        self.position.dims()[0]
    }
}

/// Validates ids against the tables and mask.
fn validate(ids: &[u32], segments: &[u32], mask: &BatchMask, w: &EmbeddingWeights) -> Result<(), VarlenError> {
    let expect = mask.padded_words();
    if ids.len() != expect || segments.len() != expect {
        return Err(VarlenError::ShapeMismatch {
            expected: format!("ids/segments of {expect} (batch × max_seq_len)"),
            got: format!("{} / {}", ids.len(), segments.len()),
        });
    }
    if mask.max_seq_len() > w.max_position() {
        return Err(VarlenError::ShapeMismatch {
            expected: format!("max_seq_len ≤ {}", w.max_position()),
            got: format!("{}", mask.max_seq_len()),
        });
    }
    let n_seg = w.segment.dims()[0] as u32;
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in 0..len {
            let i = b * mask.max_seq_len() + s;
            if ids[i] >= w.vocab() as u32 {
                return Err(VarlenError::ShapeMismatch {
                    expected: format!("token id < {}", w.vocab()),
                    got: format!("{} at ({b}, {s})", ids[i]),
                });
            }
            if segments[i] >= n_seg {
                return Err(VarlenError::ShapeMismatch {
                    expected: format!("segment id < {n_seg}"),
                    got: format!("{} at ({b}, {s})", segments[i]),
                });
            }
        }
    }
    Ok(())
}

/// Embeds one token into `row`: token + position + segment, then LayerNorm.
/// Shared with [`crate::chunked::ChunkedEmbeddings`], whose chunks carry an
/// explicit position offset instead of deriving it from a padded slot.
pub(crate) fn embed_row(row: &mut [f32], w: &EmbeddingWeights, token: usize, pos: usize, seg: usize) {
    let hidden = row.len();
    let t = &w.token.as_slice()[token * hidden..(token + 1) * hidden];
    let p = &w.position.as_slice()[pos * hidden..(pos + 1) * hidden];
    let s = &w.segment.as_slice()[seg * hidden..(seg + 1) * hidden];
    for i in 0..hidden {
        row[i] = t[i] + p[i] + s[i];
    }
    normalize_row(row, &w.gamma, &w.beta, 1e-6);
}

/// Conventional padded embedding: produces `[batch, seq, hidden]` with
/// zeroed padding rows. One gather + sum + LN pass over every padded slot's
/// row (the padded cost the packed variant avoids).
pub fn embed_padded(
    device: &Device,
    ids: &[u32],
    segments: &[u32],
    mask: &BatchMask,
    w: &EmbeddingWeights,
) -> Result<Tensor, VarlenError> {
    validate(ids, segments, mask, w)?;
    let hidden = w.token.dims()[1];
    let (batch, seq) = (mask.batch(), mask.max_seq_len());
    let out_bytes = (batch * seq * hidden * 4) as u64;
    let data = device.launch(
        KernelSpec::new("embedding.padded")
            .flops((batch * seq * hidden * 10) as u64)
            .reads(3 * out_bytes + (batch * seq * 8) as u64)
            .writes(out_bytes),
        || {
            let mut data = vec![0.0f32; batch * seq * hidden];
            data.par_chunks_mut(seq * hidden).enumerate().for_each(|(b, rows)| {
                let len = mask.seq_lens()[b];
                for s in 0..len {
                    let i = b * seq + s;
                    embed_row(
                        &mut rows[s * hidden..(s + 1) * hidden],
                        w,
                        ids[i] as usize,
                        s,
                        segments[i] as usize,
                    );
                }
            });
            data
        },
    );
    Ok(Tensor::from_vec(data, [batch, seq, hidden]).expect("shape consistent"))
}

/// Packed embedding: gathers straight into the packed `[valid, hidden]`
/// layout — lookup + sum + LayerNorm + pack in one kernel. The input
/// `ids`/`segments` remain in the caller's padded layout (as they arrive
/// from the tokenizer); only valid slots are read.
pub fn embed_packed(
    device: &Device,
    ids: &[u32],
    segments: &[u32],
    idx: &PackingIndex,
    w: &EmbeddingWeights,
) -> Result<Tensor, VarlenError> {
    validate(ids, segments, idx.mask(), w)?;
    let hidden = w.token.dims()[1];
    let valid = idx.valid_words();
    let seq = idx.max_seq_len();
    let moved = (valid * hidden * 4) as u64;
    let data = device.launch(
        KernelSpec::new("embedding.packed_fused")
            .flops((valid * hidden * 10) as u64)
            .reads(3 * moved + valid as u64 * 12)
            .writes(moved),
        || {
            let mut data = vec![0.0f32; valid * hidden];
            data.par_chunks_mut(hidden.max(1))
                .zip(idx.positions().par_iter())
                .for_each(|(row, &slot)| {
                    let slot = slot as usize;
                    let s = slot % seq;
                    embed_row(row, w, ids[slot] as usize, s, segments[slot] as usize);
                });
            data
        },
    );
    Ok(Tensor::from_vec(data, [valid, hidden]).expect("shape consistent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn setup(lens: &[usize], max: usize) -> (EmbeddingWeights, Vec<u32>, Vec<u32>, BatchMask) {
        let config = BertConfig::tiny();
        let w = EmbeddingWeights::new_random(&config, 50, max, 3);
        let mask = BatchMask::from_lens(lens.to_vec(), max).unwrap();
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = mask.padded_words();
        let ids: Vec<u32> = (0..n).map(|_| rng.below(50) as u32).collect();
        let segments: Vec<u32> = (0..n).map(|_| rng.below(2) as u32).collect();
        (w, ids, segments, mask)
    }

    #[test]
    fn packed_equals_pack_of_padded() {
        let (w, ids, segments, mask) = setup(&[5, 2, 7], 8);
        let idx = PackingIndex::from_mask(&mask);
        let dev = device();
        let padded = embed_padded(&dev, &ids, &segments, &mask, &w).unwrap();
        let packed = embed_packed(&dev, &ids, &segments, &idx, &w).unwrap();
        let repacked = idx.pack(&dev, &padded).unwrap();
        bt_tensor::compare::assert_close(packed.as_slice(), repacked.as_slice(), 1e-6);
    }

    #[test]
    fn rows_are_normalized() {
        let (w, ids, segments, mask) = setup(&[4], 4);
        let idx = PackingIndex::from_mask(&mask);
        let dev = device();
        let packed = embed_packed(&dev, &ids, &segments, &idx, &w).unwrap();
        let hidden = w.token.dims()[1];
        for r in 0..4 {
            let row = &packed.as_slice()[r * hidden..(r + 1) * hidden];
            // With gamma ≈ 1, beta ≈ 0 the row stats are near (0, 1).
            let mean: f32 = row.iter().sum::<f32>() / hidden as f32;
            assert!(mean.abs() < 0.2, "mean {mean}");
        }
    }

    #[test]
    fn position_embedding_distinguishes_repeated_tokens() {
        let config = BertConfig::tiny();
        let w = EmbeddingWeights::new_random(&config, 10, 8, 1);
        let mask = BatchMask::from_lens(vec![3], 3).unwrap();
        let idx = PackingIndex::from_mask(&mask);
        let dev = device();
        // Same token at every position: rows still differ (positions).
        let packed = embed_packed(&dev, &[7, 7, 7], &[0, 0, 0], &idx, &w).unwrap();
        assert_ne!(packed.row(0), packed.row(1));
        assert_ne!(packed.row(1), packed.row(2));
    }

    #[test]
    fn packed_declares_only_valid_traffic() {
        let (w, ids, segments, mask) = setup(&[2, 2], 16); // α = 0.125
        let idx = PackingIndex::from_mask(&mask);
        let dev_pad = device();
        embed_padded(&dev_pad, &ids, &segments, &mask, &w).unwrap();
        let dev_pk = device();
        embed_packed(&dev_pk, &ids, &segments, &idx, &w).unwrap();
        assert!(dev_pk.total_bytes() * 4 < dev_pad.total_bytes());
    }

    #[test]
    fn errors_are_typed() {
        let (w, mut ids, segments, mask) = setup(&[3], 4);
        let idx = PackingIndex::from_mask(&mask);
        let dev = device();
        // Wrong length.
        assert!(embed_packed(&dev, &ids[..2], &segments, &idx, &w).is_err());
        // Out-of-vocab id at a VALID position.
        ids[0] = 999;
        assert!(embed_packed(&dev, &ids, &segments, &idx, &w).is_err());
        // Out-of-vocab at a PADDED position is fine (never read).
        ids[0] = 1;
        let mut ids2 = ids.clone();
        ids2[3] = 999; // position 3 is padding (len 3 of 4)
        assert!(embed_packed(&dev, &ids2, &segments, &idx, &w).is_ok());
        // Sequence longer than the position table.
        let long_mask = BatchMask::from_lens(vec![4], 4).unwrap();
        let short_w = EmbeddingWeights::new_random(&BertConfig::tiny(), 50, 2, 1);
        assert!(embed_padded(&dev, &[0; 4], &[0; 4], &long_mask, &short_w).is_err());
    }
}
