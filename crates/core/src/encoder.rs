//! The BERT encoder layer and stacked model with the paper's step-wise
//! optimization levels (Fig. 2 and Fig. 13).
//!
//! Five cumulative levels, each adding one paper optimization on top of the
//! previous (Fig. 13's bars):
//!
//! 1. [`OptLevel::Baseline`] — Fig. 2(a): fully padded, unfused add-bias /
//!    LayerNorm / GELU, batched-GEMM MHA with padded softmax.
//! 2. [`OptLevel::LayernormFusion`] — add-bias + residual + LayerNorm in one
//!    kernel (§III.C.1).
//! 3. [`OptLevel::GeluFusion`] — add-bias + GELU fused into the FFN GEMM
//!    epilogue (§III.C.2).
//! 4. [`OptLevel::ZeroPadding`] — Fig. 2(c): prefix-sum, pack, run all
//!    non-MHA modules on valid tokens only, unpack/re-pack fused with the
//!    bias/transpose kernels around batched MHA (§III.D).
//! 5. [`OptLevel::FusedMha`] — the full ByteTransformer: zero padding plus
//!    fused MHA (short-sequence shared-memory kernel or grouped-GEMM kernel),
//!    which never materializes a padded tensor or a global `seq×seq`
//!    intermediate (§III.E).
//!
//! **Every level computes identical activations on valid tokens** (asserted
//! by the cross-level tests); only the cost structure changes. Padded output
//! rows are zero at levels ≥ 4 (the final unpack zero-fills) and unspecified
//! below (the conventional frameworks' padded garbage).

use crate::attention::{batched_attention, fused_attention};
use crate::config::BertConfig;
use crate::weights::{LayerWeights, ModelWeights};
use bt_device::Device;
use bt_gemm::{gemm_kernel_spec_active, sgemm, sgemm_epilogue, GemmSpec};
use bt_kernels::activation::{add_bias_gelu_unfused, bias_gelu_epilogue};
use bt_kernels::layernorm::{add_bias_residual_layernorm_fused, add_bias_residual_layernorm_unfused};
use bt_kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv, merge_heads_pack};
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex, VarlenError};

/// Cumulative optimization level (each includes all previous ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OptLevel {
    /// Fig. 2(a): padded, unfused.
    Baseline,
    /// + fused add-bias & LayerNorm.
    LayernormFusion,
    /// + add-bias & GELU fused into the FFN GEMM epilogue.
    GeluFusion,
    /// + the zero-padding algorithm (Fig. 2c).
    ZeroPadding,
    /// + fused MHA — the full ByteTransformer.
    FusedMha,
}

impl OptLevel {
    /// All levels in ascending order (the Fig. 13 sweep).
    pub fn all() -> [OptLevel; 5] {
        [
            OptLevel::Baseline,
            OptLevel::LayernormFusion,
            OptLevel::GeluFusion,
            OptLevel::ZeroPadding,
            OptLevel::FusedMha,
        ]
    }

    /// Human-readable label matching the Fig. 13 legend.
    pub fn label(&self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::LayernormFusion => "layernorm fusion",
            OptLevel::GeluFusion => "add bias & GELU fusion",
            OptLevel::ZeroPadding => "rm padding",
            OptLevel::FusedMha => "fused MHA",
        }
    }

    fn layernorm_fused(&self) -> bool {
        *self >= OptLevel::LayernormFusion
    }

    fn gelu_fused(&self) -> bool {
        *self >= OptLevel::GeluFusion
    }

    fn zero_padding(&self) -> bool {
        *self >= OptLevel::ZeroPadding
    }

    fn fused_mha(&self) -> bool {
        *self >= OptLevel::FusedMha
    }
}

/// A stacked BERT encoder.
#[derive(Debug, Clone)]
pub struct BertModel {
    /// Hyper-parameters.
    pub config: BertConfig,
    /// Per-layer weights.
    pub weights: ModelWeights,
}

impl BertModel {
    /// Builds a model with `num_layers` deterministic random layers.
    pub fn new_random(config: BertConfig, num_layers: usize, seed: u64) -> Self {
        Self {
            config,
            weights: ModelWeights::new_random(&config, num_layers, seed),
        }
    }

    /// Runs the full encoder stack on a padded `[batch, seq, hidden]` input.
    ///
    /// Returns a padded tensor of the same shape. At levels ≥
    /// [`OptLevel::ZeroPadding`] the padded rows of the output are zero.
    ///
    /// # Errors
    /// Returns [`VarlenError::ShapeMismatch`] if the input does not match
    /// the mask and configuration.
    pub fn forward(
        &self,
        device: &Device,
        input: &Tensor,
        mask: &BatchMask,
        opt: OptLevel,
    ) -> Result<Tensor, VarlenError> {
        let hidden = self.config.hidden();
        let dims = input.dims();
        if dims.len() != 3 || dims[0] != mask.batch() || dims[1] != mask.max_seq_len() || dims[2] != hidden {
            return Err(VarlenError::ShapeMismatch {
                expected: format!("[{}, {}, {hidden}]", mask.batch(), mask.max_seq_len()),
                got: format!("{dims:?}"),
            });
        }

        if opt.zero_padding() {
            // Fig. 2(c): prefix sum once, pack once, stay packed across all
            // layers, unpack once at the end.
            let idx = PackingIndex::from_mask_on(device, mask);
            let mut x = idx.pack(device, input)?;
            for w in &self.weights.layers {
                x = self.layer_forward_packed(device, &x, w, &idx, opt);
            }
            idx.unpack(device, &x)
        } else {
            // Fig. 2(a): padded throughout.
            let mut x = input.clone();
            for w in &self.weights.layers {
                x = self.layer_forward_padded(device, &x, w, mask, opt);
            }
            Ok(x)
        }
    }

    /// One encoder layer on the padded path. `x` is `[batch, seq, hidden]`.
    pub fn layer_forward_padded(
        &self,
        device: &Device,
        x: &Tensor,
        w: &LayerWeights,
        mask: &BatchMask,
        opt: OptLevel,
    ) -> Tensor {
        assert!(!opt.zero_padding(), "padded path serves levels below ZeroPadding");
        let hidden = self.config.hidden();
        let (batch, seq) = (mask.batch(), mask.max_seq_len());
        let rows = batch * seq;
        // A trivial all-full index turns the fused unpack/split kernels into
        // plain padded bias+transpose kernels with identical traffic.
        let full_idx =
            PackingIndex::from_mask(&BatchMask::from_lens(vec![seq; batch], seq).expect("full lengths are valid"));

        // GEMM0: packed QKV position encoding.
        let qkv = self.gemm(
            device,
            "gemm0.qkv",
            x.as_slice(),
            rows,
            w.qkv_weight.as_slice(),
            hidden,
            3 * hidden,
            None,
        );
        let qkv = Tensor::from_vec(qkv, [rows, 3 * hidden]).expect("shape consistent");
        let (q, k, v) = add_bias_unpack_split_qkv(device, &qkv, &w.qkv_bias, &full_idx, self.config.heads);

        // Attention: batched GEMMs + padded softmax.
        let ctx = batched_attention(
            device,
            &q,
            &k,
            &v,
            mask.seq_lens(),
            self.config.attention_scale(),
            false,
        );
        let ctx = merge_heads_pack(device, &ctx, &full_idx); // full index: plain merge

        self.post_attention(device, x.as_slice(), ctx.into_vec(), rows, w, opt)
            .reshape([batch, seq, hidden])
            .expect("row count unchanged")
    }

    /// One encoder layer on the packed path. `x` is `[valid, hidden]`.
    pub fn layer_forward_packed(
        &self,
        device: &Device,
        x: &Tensor,
        w: &LayerWeights,
        idx: &PackingIndex,
        opt: OptLevel,
    ) -> Tensor {
        assert!(opt.zero_padding(), "packed path serves ZeroPadding and above");
        let hidden = self.config.hidden();
        let rows = idx.valid_words();

        let qkv = self.gemm(
            device,
            "gemm0.qkv",
            x.as_slice(),
            rows,
            w.qkv_weight.as_slice(),
            hidden,
            3 * hidden,
            None,
        );
        let qkv = Tensor::from_vec(qkv, [rows, 3 * hidden]).expect("shape consistent");

        let ctx = if opt.fused_mha() {
            // Fully packed fused MHA; scale folded into Q at the split.
            let (q, k, v) = add_bias_split_qkv_packed(
                device,
                &qkv,
                &w.qkv_bias,
                self.config.heads,
                self.config.attention_scale(),
            );
            fused_attention(device, &q, &k, &v, idx)
        } else {
            // Unpack (fused with bias+transpose) for batched MHA, then
            // re-pack (fused with the output transpose) — Fig. 2(c).
            let (q, k, v) = add_bias_unpack_split_qkv(device, &qkv, &w.qkv_bias, idx, self.config.heads);
            let ctx_pad = batched_attention(
                device,
                &q,
                &k,
                &v,
                idx.mask().seq_lens(),
                self.config.attention_scale(),
                true,
            );
            merge_heads_pack(device, &ctx_pad, idx)
        };

        self.post_attention(device, x.as_slice(), ctx.into_vec(), rows, w, opt)
    }

    /// Shared tail of both paths: projection, layernorm0, FFN, layernorm1.
    /// `rows` is the token count the kernels iterate over — the whole point
    /// of the zero-padding algorithm is that the packed path passes a
    /// smaller `rows` here.
    fn post_attention(
        &self,
        device: &Device,
        residual0: &[f32],
        ctx: Vec<f32>,
        rows: usize,
        w: &LayerWeights,
        opt: OptLevel,
    ) -> Tensor {
        let hidden = self.config.hidden();
        let inter = self.config.intermediate();
        let eps = self.config.eps;

        // GEMM1: attention output projection.
        let mut attn = self.gemm(
            device,
            "gemm1.proj",
            &ctx,
            rows,
            w.attn_out_weight.as_slice(),
            hidden,
            hidden,
            None,
        );

        // layernorm0: add bias + residual + LayerNorm (fused at level ≥ 2).
        if opt.layernorm_fused() {
            add_bias_residual_layernorm_fused(
                device,
                "layernorm0",
                &mut attn,
                residual0,
                &w.attn_out_bias,
                &w.ln0_gamma,
                &w.ln0_beta,
                eps,
                rows,
                hidden,
            );
        } else {
            add_bias_residual_layernorm_unfused(
                device,
                "layernorm0",
                &mut attn,
                residual0,
                &w.attn_out_bias,
                &w.ln0_gamma,
                &w.ln0_beta,
                eps,
                rows,
                hidden,
            );
        }

        // GEMM2: FFN up-projection (+ fused bias & GELU at level ≥ 3).
        let mut ffn = if opt.gelu_fused() {
            let epi = bias_gelu_epilogue(&w.ffn_up_bias);
            self.gemm(
                device,
                "gemm2.ffn_up",
                &attn,
                rows,
                w.ffn_up_weight.as_slice(),
                hidden,
                inter,
                Some(&epi),
            )
        } else {
            let mut ffn = self.gemm(
                device,
                "gemm2.ffn_up",
                &attn,
                rows,
                w.ffn_up_weight.as_slice(),
                hidden,
                inter,
                None,
            );
            add_bias_gelu_unfused(device, "bias_act", &mut ffn, rows, inter, &w.ffn_up_bias);
            ffn
        };

        // GEMM3: FFN down-projection.
        let mut out = self.gemm(
            device,
            "gemm3.ffn_down",
            &ffn,
            rows,
            w.ffn_down_weight.as_slice(),
            inter,
            hidden,
            None,
        );
        ffn.clear();

        // layernorm1.
        if opt.layernorm_fused() {
            add_bias_residual_layernorm_fused(
                device,
                "layernorm1",
                &mut out,
                &attn,
                &w.ffn_down_bias,
                &w.ln1_gamma,
                &w.ln1_beta,
                eps,
                rows,
                hidden,
            );
        } else {
            add_bias_residual_layernorm_unfused(
                device,
                "layernorm1",
                &mut out,
                &attn,
                &w.ffn_down_bias,
                &w.ln1_gamma,
                &w.ln1_beta,
                eps,
                rows,
                hidden,
            );
        }
        Tensor::from_vec(out, [rows, hidden]).expect("shape consistent")
    }

    /// Launches one of the pipeline GEMMs, with an optional fused epilogue
    /// (used for the add-bias+GELU fusion). `a` is `rows×k`, the weight is
    /// `k×n`.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        device: &Device,
        name: &str,
        a: &[f32],
        rows: usize,
        weight: &[f32],
        k: usize,
        n: usize,
        epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
    ) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * n];
        let mut spec = gemm_kernel_spec_active(name, rows, n, k);
        if epilogue.is_some() {
            // The fused element-wise tail adds its flops but no traffic —
            // that is the entire point of epilogue fusion.
            spec.cost.flops += (rows * n * 9) as u64;
        }
        device.launch(spec, || match epilogue {
            None => sgemm(GemmSpec::nn(), rows, n, k, a, weight, &mut out),
            Some(epi) => sgemm_epilogue(GemmSpec::nn(), rows, n, k, a, weight, &mut out, epi),
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_varlen::workload;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn setup(lens: &[usize], max_seq: usize, layers: usize) -> (BertModel, Tensor, BatchMask) {
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, layers, 42);
        let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
        // Zero the padded rows of the input, as a real pipeline would.
        let mut input = Tensor::randn([mask.batch(), max_seq, config.hidden()], 7);
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..max_seq {
                for h in 0..config.hidden() {
                    input.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        (model, input, mask)
    }

    /// Max abs diff across valid tokens between two padded outputs.
    fn valid_diff(a: &Tensor, b: &Tensor, mask: &BatchMask) -> f32 {
        let hidden = a.dims()[2];
        let mut worst = 0.0f32;
        for (bi, &len) in mask.seq_lens().iter().enumerate() {
            for s in 0..len {
                for h in 0..hidden {
                    let d = (a.at(&[bi, s, h]).unwrap() - b.at(&[bi, s, h]).unwrap()).abs();
                    worst = worst.max(d);
                }
            }
        }
        worst
    }

    #[test]
    fn all_opt_levels_agree_on_valid_tokens() {
        let (model, input, mask) = setup(&[5, 9, 2], 12, 2);
        let dev = device();
        let baseline = model.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
        for opt in OptLevel::all() {
            let out = model.forward(&dev, &input, &mask, opt).unwrap();
            let d = valid_diff(&baseline, &out, &mask);
            assert!(d < 5e-3, "{:?} diverges: {d}", opt);
        }
    }

    #[test]
    fn packed_levels_zero_padded_rows() {
        let (model, input, mask) = setup(&[3, 6], 8, 1);
        let dev = device();
        let out = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..8 {
                for h in 0..model.config.hidden() {
                    assert_eq!(out.at(&[b, s, h]).unwrap(), 0.0);
                }
            }
        }
    }

    #[test]
    fn fused_mha_long_path_agrees_too() {
        // max_seq above FUSED_SHORT_MAX_SEQ forces the grouped kernel.
        let (model, input, mask) = setup(&[390, 120], 400, 1);
        let dev = device();
        let a = model.forward(&dev, &input, &mask, OptLevel::ZeroPadding).unwrap();
        let b = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        assert!(valid_diff(&a, &b, &mask) < 5e-3);
    }

    #[test]
    fn zero_padding_reduces_gemm_flops() {
        let (model, input, mask) = setup(&[4, 4], 16, 1); // α = 0.25
        let run = |opt| {
            let dev = device();
            model.forward(&dev, &input, &mask, opt).unwrap();
            let gemm_flops: u64 = dev
                .trace()
                .iter()
                .filter(|r| {
                    // Exclude gemm2, whose ZeroPadding spec includes the
                    // fused GELU epilogue flops.
                    r.name.starts_with("gemm0") || r.name.starts_with("gemm1") || r.name.starts_with("gemm3")
                })
                .map(|r| r.cost.flops)
                .sum();
            gemm_flops
        };
        let base = run(OptLevel::Baseline);
        let zp = run(OptLevel::ZeroPadding);
        // α = 0.25 -> non-MHA GEMMs shrink exactly 4×.
        assert_eq!(zp * 4, base);
    }

    #[test]
    fn fused_mha_reduces_attention_flops_quadratically() {
        let (model, input, mask) = setup(&[8, 8], 32, 1); // α = 0.25
        let run = |opt| {
            let dev = device();
            model.forward(&dev, &input, &mask, opt).unwrap();
            dev.trace()
                .iter()
                .filter(|r| r.name.starts_with("attention"))
                .map(|r| r.cost.flops)
                .sum::<u64>()
        };
        let zp = run(OptLevel::ZeroPadding);
        let fused = run(OptLevel::FusedMha);
        // Quadratic saving: α² = 1/16; allow slack for softmax terms.
        assert!(fused * 8 < zp, "fused {fused} vs zero-padding {zp}");
    }

    #[test]
    fn modeled_time_strictly_improves_across_levels() {
        // The Fig. 13 staircase. A zero-launch-overhead roofline isolates
        // the structural effects (fewer bytes / fewer flops) from the
        // launch-count tradeoff, which only pays off at production shapes
        // (that regime is exercised by the fig13 bench in release mode).
        let roofline = bt_device::CostModel {
            launch_overhead: 0.0,
            ..bt_device::CostModel::a100()
        };
        let config = BertConfig {
            heads: 4,
            head_size: 16,
            ffn_scale: 4,
            layers: 1,
            eps: 1e-6,
        };
        let model = BertModel::new_random(config, 1, 3);
        let mask = workload::paper_workload(8, 128, 5);
        let input = Tensor::randn([8, 128, config.hidden()], 11);
        let mut prev = f64::INFINITY;
        for opt in OptLevel::all() {
            let dev = Device::with_model(roofline);
            model.forward(&dev, &input, &mask, opt).unwrap();
            let t = dev.modeled_total();
            assert!(t < prev, "{:?} did not improve: {t} vs {prev}", opt);
            prev = t;
        }
    }

    #[test]
    fn shape_errors_are_typed() {
        let (model, _input, mask) = setup(&[2], 4, 1);
        let dev = device();
        let bad = Tensor::zeros([1, 5, model.config.hidden()]);
        assert!(model.forward(&dev, &bad, &mask, OptLevel::Baseline).is_err());
        let bad2 = Tensor::zeros([2, 4, model.config.hidden()]);
        assert!(model.forward(&dev, &bad2, &mask, OptLevel::Baseline).is_err());
    }

    #[test]
    fn multi_layer_stack_stays_finite() {
        let (model, input, mask) = setup(&[6, 3], 8, 2);
        let dev = device();
        let out = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
