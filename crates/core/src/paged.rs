//! Batched autoregressive decoding over a block-paged KV cache.
//!
//! [`crate::incremental::DecoderSession`] decodes one sequence at a time
//! against a contiguous, privately owned cache. A serving system runs
//! *hundreds* of such sessions concurrently, and their per-step work — a
//! pile of `1×n` GEMVs and one attention per `(session, head)` at that
//! session's current length — is exactly the variable-shape problem the
//! grouped-GEMM engine was built for (paper Fig. 5). This module supplies
//! the two pieces that turn the single-sequence path into a batched one:
//!
//! * [`PagedKvCache`] — K/V storage indexed through `bt-varlen`'s
//!   [`BlockPool`]: a fixed pool of `block_tokens`-sized blocks, per-session
//!   block tables, and an explicit [`KvOom`] signal when the pool is
//!   exhausted. Sessions grow by whole blocks, so memory held is within one
//!   block of tokens stored — no per-session `max_seq_len` reservation, the
//!   same anti-padding argument as the zero-padding algorithm applied to
//!   the time axis.
//! * [`PagedDecoder`] — many concurrent sessions over one shared cache,
//!   with a **batched step**: [`PagedDecoder::step_batch`] advances every
//!   session by one token in a single pipeline per layer — one `[rows, 3h]`
//!   QKV GEMM for all sessions, one gather of each session's K/V planes via
//!   its block table, and one grouped-GEMM launch carrying every
//!   `(session, head)` attention problem at its true cache length.
//!   [`PagedDecoder::prefill`] ingests a whole prompt through the same
//!   pipeline with causal prefix lengths.
//!
//! Equivalence guarantee (tested here and cross-ISA in
//! `tests/differential_decode.rs`): a paged session tracks the contiguous
//! [`crate::incremental::DecoderSession`] within documented float tolerance
//! (different contraction order through the grouped microkernel), and its
//! outputs are **bitwise invariant** to the block size — paging is memory
//! layout, never math.

use crate::decoder::TransformerDecoder;
use bt_device::{Device, KernelSpec};
use bt_gemm::grouped::{grouped_sgemm, GroupedConfig, GroupedProblem, NoEpilogue, NoTransform};
use bt_kernels::layernorm::normalize_row;
use bt_kernels::softmax::softmax_row;
use bt_tensor::Tensor;
use bt_varlen::paged::{BlockPool, KvOom, PagedLayout, SessionId};

/// Sessions ever opened on a [`PagedDecoder`].
static SESSIONS_OPENED: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_SESSIONS_OPENED);
/// Sessions freed (blocks returned to the pool).
static SESSIONS_FREED: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_SESSIONS_FREED);
/// Appends refused with [`KvOom`] — each one is a shed candidate upstream.
static KV_OOM: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_OOM);
/// Token slots appended across all sessions (prefill + decode).
static KV_TOKENS: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_TOKENS_APPENDED);
/// Rows pushed through the batched decode pipeline.
static DECODE_ROWS: bt_obs::Counter = bt_obs::Counter::new("core.paged.rows");

/// Per-layer K/V storage addressed through a [`BlockPool`].
///
/// One block table per session covers **all** layers: every layer stores its
/// K and V rows for token `i` of a session at the same `(block, slot)` the
/// pool assigned, in that layer's private storage plane. Capacity is
/// therefore checked once per appended token, not once per layer.
pub struct PagedKvCache {
    pool: BlockPool,
    hidden: usize,
    /// Per-layer key storage, `[pool_blocks × block_tokens × hidden]`.
    k: Vec<Vec<f32>>,
    /// Per-layer value storage, same geometry.
    v: Vec<Vec<f32>>,
}

impl PagedKvCache {
    /// Allocates storage for `layers` decoder layers of width `hidden` over
    /// the given pool geometry.
    pub fn new(layout: PagedLayout, layers: usize, hidden: usize) -> Self {
        let elems = layout.pool_blocks * layout.block_tokens * hidden;
        Self {
            pool: BlockPool::new(layout),
            hidden,
            k: (0..layers).map(|_| vec![0.0; elems]).collect(),
            v: (0..layers).map(|_| vec![0.0; elems]).collect(),
        }
    }

    /// The underlying block pool (read-only: occupancy, high water, layout).
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }

    /// Opens a session with an empty block table.
    pub fn create(&mut self) -> SessionId {
        SESSIONS_OPENED.incr();
        self.pool.create()
    }

    /// Reserves cache capacity for `tokens` more tokens of the session —
    /// all-or-nothing; on [`KvOom`] the session is unchanged.
    ///
    /// # Errors
    /// Propagates [`KvOom`] from the pool when the free list cannot cover
    /// the growth.
    pub fn append(&mut self, sid: SessionId, tokens: usize) -> Result<(), KvOom> {
        match self.pool.append(sid, tokens) {
            Ok(()) => {
                KV_TOKENS.add(tokens as u64);
                Ok(())
            }
            Err(e) => {
                KV_OOM.incr();
                Err(e)
            }
        }
    }

    /// Frees the session, returning its block count to the free list.
    pub fn free(&mut self, sid: SessionId) -> usize {
        SESSIONS_FREED.incr();
        self.pool.free(sid)
    }

    /// Tokens stored for the session.
    pub fn len(&self, sid: SessionId) -> usize {
        self.pool.len(sid)
    }

    /// True when the session holds no tokens.
    pub fn is_empty(&self, sid: SessionId) -> bool {
        self.pool.is_empty(sid)
    }

    /// Stores one token's K and V rows (`[hidden]` each, head-interleaved as
    /// produced by the QKV projection) at the session's token `pos`.
    ///
    /// # Panics
    /// Panics if `pos` has no reserved slot (append first) or row widths
    /// mismatch `hidden`.
    pub fn write(&mut self, layer: usize, sid: SessionId, pos: usize, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.hidden, "k row width mismatch");
        assert_eq!(v_row.len(), self.hidden, "v row width mismatch");
        let slot = self.pool.slot(sid, pos);
        let base = (slot.block * self.pool.layout().block_tokens + slot.slot) * self.hidden;
        self.k[layer][base..base + self.hidden].copy_from_slice(k_row);
        self.v[layer][base..base + self.hidden].copy_from_slice(v_row);
    }

    /// Gathers the session's first `klen` K and V rows for one layer into
    /// contiguous `[heads, klen, head]` planes — the layout every attention
    /// kernel in the repo consumes ([`crate::incremental`] uses it for cross
    /// K/V). This is the block-table indirection made dense: downstream
    /// grouped-GEMM problems slice token prefixes of a head's plane
    /// contiguously.
    ///
    /// # Panics
    /// Panics if `klen` exceeds the session length, `heads × head` ≠ hidden,
    /// or the output planes are not `heads × klen × head` long.
    #[allow(clippy::too_many_arguments)] // gather geometry is the point
    pub fn gather(
        &self,
        layer: usize,
        sid: SessionId,
        klen: usize,
        heads: usize,
        head: usize,
        kp: &mut [f32],
        vp: &mut [f32],
    ) {
        assert!(klen <= self.pool.len(sid), "gather past session length");
        assert_eq!(heads * head, self.hidden, "head split mismatch");
        assert_eq!(kp.len(), heads * klen * head, "k plane size mismatch");
        assert_eq!(vp.len(), heads * klen * head, "v plane size mismatch");
        let bt = self.pool.layout().block_tokens;
        for idx in 0..klen {
            let slot = self.pool.slot(sid, idx);
            let base = (slot.block * bt + slot.slot) * self.hidden;
            for h in 0..heads {
                let src = base + h * head;
                let dst = (h * klen + idx) * head;
                kp[dst..dst + head].copy_from_slice(&self.k[layer][src..src + head]);
                vp[dst..dst + head].copy_from_slice(&self.v[layer][src..src + head]);
            }
        }
    }
}

/// Cross-attention state of one live session: per-layer memory K/V planes
/// (`[heads, mem_len, head]`), projected once at session open exactly like
/// [`crate::incremental::DecoderSession`].
struct SessionState {
    cross_kv: Vec<(Vec<f32>, Vec<f32>)>,
    mem_len: usize,
}

/// Result of one batched decode step.
pub struct BatchStepOutput {
    /// Per input session, in call order: the token's output hidden state,
    /// or `None` when that session's cache append was refused.
    pub outputs: Vec<Option<Vec<f32>>>,
    /// Sessions whose append failed this step, with the pool's shortfall.
    /// They produced no token and still hold their blocks — the caller
    /// decides whether to shed ([`PagedDecoder::free_session`]) or retry.
    pub oom: Vec<(SessionId, KvOom)>,
}

/// One row flowing through the batched per-layer pipeline: which gather
/// plane it attends through, where its K/V row lands, and how many cache
/// tokens it may see (causal prefix).
struct RowPlan {
    /// Index into the step's distinct-session list.
    unit: usize,
    /// Token position of this row in its session.
    pos: usize,
    /// Cache tokens visible to this row (`pos + 1`).
    klen: usize,
}

/// Many concurrent decoding sessions over one shared [`PagedKvCache`],
/// advanced in batched token steps through the grouped-GEMM engine.
pub struct PagedDecoder<'a> {
    decoder: &'a TransformerDecoder,
    cache: PagedKvCache,
    /// Cross-attention state, indexed by [`SessionId::index`] (slots are
    /// recycled with the pool's session slots).
    sessions: Vec<Option<SessionState>>,
}

impl<'a> PagedDecoder<'a> {
    /// Builds a paged decoder over `decoder` with a cache of the given
    /// geometry.
    pub fn new(decoder: &'a TransformerDecoder, layout: PagedLayout) -> Self {
        let layers = decoder.weights.layers.len();
        let hidden = decoder.config.hidden();
        Self {
            decoder,
            cache: PagedKvCache::new(layout, layers, hidden),
            sessions: Vec::new(),
        }
    }

    /// The shared KV cache (occupancy, high water, OOM counts).
    pub fn cache(&self) -> &PagedKvCache {
        &self.cache
    }

    /// The decoder whose weights every session runs.
    pub fn decoder(&self) -> &TransformerDecoder {
        self.decoder
    }

    /// Opens a session over one encoder memory sequence
    /// (`[mem_len, hidden]`, packed), projecting cross-attention K/V once.
    /// Never takes cache blocks — those are claimed by prefill/steps.
    ///
    /// # Panics
    /// Panics if `memory` is not `[mem_len, hidden]` with `mem_len ≥ 1`.
    pub fn open_session(&mut self, device: &Device, memory: &Tensor) -> SessionId {
        let hidden = self.decoder.config.hidden();
        let dims = memory.dims();
        assert_eq!(dims.len(), 2, "memory must be [mem_len, hidden]");
        assert_eq!(dims[1], hidden, "memory hidden mismatch");
        let mem_len = dims[0];
        assert!(mem_len >= 1, "memory must hold at least one row");
        let heads = self.decoder.config.heads;
        let head = self.decoder.config.head_size;

        let cross_kv = self
            .decoder
            .weights
            .layers
            .iter()
            .map(|w| {
                let mut kv = vec![0.0f32; mem_len * 2 * hidden];
                device.launch(
                    bt_gemm::gemm_kernel_spec("paged.cross_kv", mem_len, 2 * hidden, hidden, 4),
                    || {
                        bt_gemm::sgemm(
                            bt_gemm::GemmSpec::nn(),
                            mem_len,
                            2 * hidden,
                            hidden,
                            memory.as_slice(),
                            w.cross_kv_weight.as_slice(),
                            &mut kv,
                        )
                    },
                );
                let mut kp = vec![0.0f32; heads * mem_len * head];
                let mut vp = vec![0.0f32; heads * mem_len * head];
                for s in 0..mem_len {
                    for h in 0..heads {
                        for d in 0..head {
                            let c = h * head + d;
                            kp[(h * mem_len + s) * head + d] = kv[s * 2 * hidden + c] + w.cross_kv_bias[c];
                            vp[(h * mem_len + s) * head + d] =
                                kv[s * 2 * hidden + hidden + c] + w.cross_kv_bias[hidden + c];
                        }
                    }
                }
                (kp, vp)
            })
            .collect();

        let sid = self.cache.create();
        if self.sessions.len() <= sid.index() {
            self.sessions.resize_with(sid.index() + 1, || None);
        }
        self.sessions[sid.index()] = Some(SessionState { cross_kv, mem_len });
        sid
    }

    /// Tokens cached for the session.
    pub fn session_len(&self, sid: SessionId) -> usize {
        self.cache.len(sid)
    }

    /// Frees the session's blocks and cross-attention state; returns how
    /// many blocks came back to the pool.
    pub fn free_session(&mut self, sid: SessionId) -> usize {
        self.sessions[sid.index()] = None;
        self.cache.free(sid)
    }

    /// Ingests a whole prompt (`[len, hidden]`, packed) through the batched
    /// pipeline with causal prefix attention, returning every prompt
    /// token's output hidden state. All-or-nothing on capacity: on
    /// [`KvOom`] the session is unchanged.
    ///
    /// # Errors
    /// Returns [`KvOom`] when the pool cannot hold `len` more tokens.
    ///
    /// # Panics
    /// Panics if the session is not open or `tokens` is not
    /// `[len ≥ 1, hidden]`.
    pub fn prefill(&mut self, device: &Device, sid: SessionId, tokens: &Tensor) -> Result<Vec<Vec<f32>>, KvOom> {
        let hidden = self.decoder.config.hidden();
        let dims = tokens.dims();
        assert_eq!(dims.len(), 2, "prompt must be [len, hidden]");
        assert_eq!(dims[1], hidden, "prompt hidden mismatch");
        let len = dims[0];
        assert!(len >= 1, "prompt must hold at least one token");
        let start = self.cache.len(sid);
        self.cache.append(sid, len)?;
        let rows: Vec<RowPlan> = (0..len)
            .map(|i| RowPlan {
                unit: 0,
                pos: start + i,
                klen: start + i + 1,
            })
            .collect();
        let mut h = tokens.as_slice().to_vec();
        self.forward_rows(device, &[sid], &rows, &mut h);
        Ok(h.chunks(hidden).map(|r| r.to_vec()).collect())
    }

    /// Advances many sessions by one token each in a single batched
    /// pipeline. `inputs` is `[ids.len(), hidden]` flattened, row `i` being
    /// session `ids[i]`'s new token. Sessions whose capacity append is
    /// refused are reported in [`BatchStepOutput::oom`] (their state
    /// untouched) and the rest proceed — explicit OOM→shed signaling, never
    /// a partial token.
    ///
    /// # Panics
    /// Panics on a duplicate or unopened session id, or a width mismatch.
    pub fn step_batch(&mut self, device: &Device, ids: &[SessionId], inputs: &[f32]) -> BatchStepOutput {
        let hidden = self.decoder.config.hidden();
        assert_eq!(inputs.len(), ids.len() * hidden, "inputs must be [sessions, hidden]");
        for (i, a) in ids.iter().enumerate() {
            assert!(
                self.sessions.get(a.index()).is_some_and(Option::is_some),
                "session {} is not open",
                a.index()
            );
            assert!(!ids[..i].contains(a), "session {} appears twice in one step", a.index());
        }

        // Phase 0: claim capacity per session; survivors proceed together.
        let mut oom = Vec::new();
        let mut outputs: Vec<Option<Vec<f32>>> = (0..ids.len()).map(|_| None).collect();
        let mut units: Vec<SessionId> = Vec::with_capacity(ids.len());
        let mut rows: Vec<RowPlan> = Vec::with_capacity(ids.len());
        let mut h: Vec<f32> = Vec::with_capacity(ids.len() * hidden);
        let mut survivor_at: Vec<usize> = Vec::with_capacity(ids.len());
        for (i, &sid) in ids.iter().enumerate() {
            match self.cache.append(sid, 1) {
                Ok(()) => {
                    let len = self.cache.len(sid);
                    rows.push(RowPlan {
                        unit: units.len(),
                        pos: len - 1,
                        klen: len,
                    });
                    units.push(sid);
                    h.extend_from_slice(&inputs[i * hidden..(i + 1) * hidden]);
                    survivor_at.push(i);
                }
                Err(e) => oom.push((sid, e)),
            }
        }
        if !units.is_empty() {
            self.forward_rows(device, &units, &rows, &mut h);
            for (r, &i) in survivor_at.iter().enumerate() {
                outputs[i] = Some(h[r * hidden..(r + 1) * hidden].to_vec());
            }
        }
        BatchStepOutput { outputs, oom }
    }

    /// The shared per-layer pipeline: `rows` are token rows (flattened in
    /// `h`, `[rows, hidden]`), each attending over a causal prefix of its
    /// session's cache. Both prefill (many rows, one session) and batched
    /// decode (one row per session) flow through here, so the two paths
    /// cannot diverge numerically.
    fn forward_rows(&mut self, device: &Device, units: &[SessionId], rows: &[RowPlan], h: &mut Vec<f32>) {
        let config = self.decoder.config;
        let hidden = config.hidden();
        let heads = config.heads;
        let head = config.head_size;
        let scale = config.attention_scale();
        let eps = config.eps;
        let inter = config.intermediate();
        let r = rows.len();
        DECODE_ROWS.add(r as u64);
        let grouped_cfg = GroupedConfig::default();

        for (layer, w) in self.decoder.weights.layers.iter().enumerate() {
            // --- QKV projection for every row at once ------------------
            let mut qkv = vec![0.0f32; r * 3 * hidden];
            device.launch(
                bt_gemm::gemm_kernel_spec("paged.self_qkv", r, 3 * hidden, hidden, 4),
                || {
                    bt_gemm::sgemm(
                        bt_gemm::GemmSpec::nn(),
                        r,
                        3 * hidden,
                        hidden,
                        h,
                        w.self_qkv_weight.as_slice(),
                        &mut qkv,
                    )
                },
            );
            for row in 0..r {
                for (v, &b) in qkv[row * 3 * hidden..(row + 1) * 3 * hidden]
                    .iter_mut()
                    .zip(&w.self_qkv_bias)
                {
                    *v += b;
                }
            }

            // --- append K/V through the block tables -------------------
            for (row, plan) in rows.iter().enumerate() {
                let base = row * 3 * hidden;
                let (k_row, v_row) = (
                    &qkv[base + hidden..base + 2 * hidden],
                    &qkv[base + 2 * hidden..base + 3 * hidden],
                );
                self.cache.write(layer, units[plan.unit], plan.pos, k_row, v_row);
            }

            // --- gather each session's K/V planes ----------------------
            let max_klen: Vec<usize> = units
                .iter()
                .enumerate()
                .map(|(u, _)| rows.iter().filter(|p| p.unit == u).map(|p| p.klen).max().unwrap_or(0))
                .collect();
            let gather_bytes: u64 = max_klen.iter().map(|&kl| (2 * kl * hidden * 4) as u64).sum();
            let planes: Vec<(Vec<f32>, Vec<f32>)> = device.launch(
                KernelSpec::new("paged.gather").reads(gather_bytes).writes(gather_bytes),
                || {
                    units
                        .iter()
                        .zip(&max_klen)
                        .map(|(&sid, &kl)| {
                            let mut kp = vec![0.0f32; heads * kl * head];
                            let mut vp = vec![0.0f32; heads * kl * head];
                            self.cache.gather(layer, sid, kl, heads, head, &mut kp, &mut vp);
                            (kp, vp)
                        })
                        .collect()
                },
            );

            // --- self-attention: one grouped launch per GEMM -----------
            let sa = self.grouped_attention(
                device,
                "paged.attn",
                &qkv,
                3 * hidden,
                rows,
                |p| {
                    let (kp, vp) = &planes[p.unit];
                    (kp.as_slice(), vp.as_slice(), max_klen[p.unit], p.klen)
                },
                heads,
                head,
                scale,
                grouped_cfg,
            );
            let mut attn = vec![0.0f32; r * hidden];
            device.launch(
                bt_gemm::gemm_kernel_spec("paged.self_proj", r, hidden, hidden, 4),
                || {
                    bt_gemm::sgemm(
                        bt_gemm::GemmSpec::nn(),
                        r,
                        hidden,
                        hidden,
                        &sa,
                        w.self_out_weight.as_slice(),
                        &mut attn,
                    )
                },
            );
            for row in 0..r {
                let o = &mut attn[row * hidden..(row + 1) * hidden];
                for ((v, &res), &b) in o
                    .iter_mut()
                    .zip(&h[row * hidden..(row + 1) * hidden])
                    .zip(&w.self_out_bias)
                {
                    *v += res + b;
                }
                normalize_row(o, &w.ln0_gamma, &w.ln0_beta, eps);
            }

            // --- cross-attention over per-session memory planes --------
            let mut cq = vec![0.0f32; r * hidden];
            device.launch(bt_gemm::gemm_kernel_spec("paged.cross_q", r, hidden, hidden, 4), || {
                bt_gemm::sgemm(
                    bt_gemm::GemmSpec::nn(),
                    r,
                    hidden,
                    hidden,
                    &attn,
                    w.cross_q_weight.as_slice(),
                    &mut cq,
                )
            });
            for row in 0..r {
                for (v, &b) in cq[row * hidden..(row + 1) * hidden].iter_mut().zip(&w.cross_q_bias) {
                    *v += b;
                }
            }
            let ca = self.grouped_attention(
                device,
                "paged.cross",
                &cq,
                hidden,
                rows,
                |p| {
                    let state = self.sessions[units[p.unit].index()].as_ref().expect("session open");
                    let (kp, vp) = &state.cross_kv[layer];
                    (kp.as_slice(), vp.as_slice(), state.mem_len, state.mem_len)
                },
                heads,
                head,
                scale,
                grouped_cfg,
            );
            let mut cattn = vec![0.0f32; r * hidden];
            device.launch(
                bt_gemm::gemm_kernel_spec("paged.cross_proj", r, hidden, hidden, 4),
                || {
                    bt_gemm::sgemm(
                        bt_gemm::GemmSpec::nn(),
                        r,
                        hidden,
                        hidden,
                        &ca,
                        w.cross_out_weight.as_slice(),
                        &mut cattn,
                    )
                },
            );
            for row in 0..r {
                let o = &mut cattn[row * hidden..(row + 1) * hidden];
                for ((v, &res), &b) in o
                    .iter_mut()
                    .zip(&attn[row * hidden..(row + 1) * hidden])
                    .zip(&w.cross_out_bias)
                {
                    *v += res + b;
                }
                normalize_row(o, &w.ln1_gamma, &w.ln1_beta, eps);
            }

            // --- FFN ----------------------------------------------------
            let mut up = vec![0.0f32; r * inter];
            device.launch(bt_gemm::gemm_kernel_spec("paged.ffn_up", r, inter, hidden, 4), || {
                bt_gemm::sgemm(
                    bt_gemm::GemmSpec::nn(),
                    r,
                    inter,
                    hidden,
                    &cattn,
                    w.ffn_up_weight.as_slice(),
                    &mut up,
                )
            });
            for row in 0..r {
                for (v, &b) in up[row * inter..(row + 1) * inter].iter_mut().zip(&w.ffn_up_bias) {
                    *v = bt_kernels::activation::gelu_tanh(*v + b);
                }
            }
            let mut out = vec![0.0f32; r * hidden];
            device.launch(bt_gemm::gemm_kernel_spec("paged.ffn_down", r, hidden, inter, 4), || {
                bt_gemm::sgemm(
                    bt_gemm::GemmSpec::nn(),
                    r,
                    hidden,
                    inter,
                    &up,
                    w.ffn_down_weight.as_slice(),
                    &mut out,
                )
            });
            for row in 0..r {
                let o = &mut out[row * hidden..(row + 1) * hidden];
                for ((v, &res), &b) in o
                    .iter_mut()
                    .zip(&cattn[row * hidden..(row + 1) * hidden])
                    .zip(&w.ffn_down_bias)
                {
                    *v += res + b;
                }
                normalize_row(o, &w.ln2_gamma, &w.ln2_beta, eps);
            }
            *h = out;
        }
    }

    /// One attention pass as two grouped-GEMM launches: `Q·Kᵀ` over every
    /// `(row, head)` problem at its causal length, a softmax per logits row,
    /// then `P·V` back into `[rows, hidden]`. `planes_of` maps a row to its
    /// `(K plane, V plane, plane_klen, visible_klen)` — plane rows are
    /// `[heads, plane_klen, head]`, the problem consumes the first
    /// `visible_klen` tokens of each head (a contiguous prefix slice).
    #[allow(clippy::too_many_arguments)]
    fn grouped_attention<'p>(
        &self,
        device: &Device,
        name: &str,
        q: &'p [f32],
        q_stride: usize,
        rows: &[RowPlan],
        planes_of: impl Fn(&RowPlan) -> (&'p [f32], &'p [f32], usize, usize),
        heads: usize,
        head: usize,
        scale: f32,
        grouped_cfg: GroupedConfig,
    ) -> Vec<f32> {
        let r = rows.len();
        let hidden = heads * head;
        // Logits buffers, one per (row, head) problem, row-major order.
        let mut logits: Vec<Vec<f32>> = Vec::with_capacity(r * heads);
        let mut qk_problems = Vec::with_capacity(r * heads);
        let mut total_flops = 0u64;
        let mut k_bytes = 0u64;
        for (row, p) in rows.iter().enumerate() {
            let (kp, _vp, plane_kl, kl) = planes_of(p);
            for hh in 0..heads {
                logits.push(vec![0.0f32; kl]);
                qk_problems.push(GroupedProblem {
                    m: 1,
                    n: kl,
                    k: head,
                    transb: true,
                    alpha: scale,
                    a: &q[row * q_stride + hh * head..row * q_stride + (hh + 1) * head],
                    b: &kp[hh * plane_kl * head..hh * plane_kl * head + kl * head],
                });
            }
            total_flops += (2 * heads * kl * head) as u64;
            k_bytes += (heads * kl * head * 4) as u64;
        }
        let logit_elems: u64 = logits.iter().map(|l| l.len() as u64).sum();
        device.launch(
            KernelSpec::new(format!("{name}.qk"))
                .flops(total_flops)
                .reads((r * hidden * 4) as u64 + k_bytes)
                .writes(logit_elems * 4),
            || {
                grouped_sgemm(
                    &qk_problems,
                    logits.iter_mut().map(Vec::as_mut_slice).collect(),
                    grouped_cfg,
                    &NoEpilogue,
                    &NoTransform,
                )
            },
        );
        drop(qk_problems);
        device.launch(
            KernelSpec::new(format!("{name}.softmax"))
                .flops(logit_elems * 3)
                .reads(logit_elems * 4)
                .writes(logit_elems * 4),
            || {
                for l in logits.iter_mut() {
                    softmax_row(l);
                }
            },
        );

        let mut out = vec![0.0f32; r * hidden];
        let mut pv_problems = Vec::with_capacity(r * heads);
        let mut li = 0;
        for p in rows.iter() {
            let (_kp, vp, plane_kl, kl) = planes_of(p);
            for hh in 0..heads {
                pv_problems.push(GroupedProblem {
                    m: 1,
                    n: head,
                    k: kl,
                    transb: false,
                    alpha: 1.0,
                    a: logits[li].as_slice(),
                    b: &vp[hh * plane_kl * head..hh * plane_kl * head + kl * head],
                });
                li += 1;
            }
        }
        device.launch(
            KernelSpec::new(format!("{name}.pv"))
                .flops(total_flops)
                .reads(logit_elems * 4 + k_bytes)
                .writes((r * hidden * 4) as u64),
            || {
                grouped_sgemm(
                    &pv_problems,
                    out.chunks_mut(head).collect(),
                    grouped_cfg,
                    &NoEpilogue,
                    &NoTransform,
                )
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BertConfig;
    use crate::incremental::DecoderSession;
    use bt_device::CostModel;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    /// Documented tolerance of the paged path vs the contiguous cache: the
    /// grouped microkernel contracts in a different order than the scalar
    /// attention loops (same bound as teacher-forcing vs incremental).
    const TOL: f32 = 5e-3;

    #[test]
    fn batched_decode_matches_contiguous_sessions() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 2, 7);
        let hidden = config.hidden();
        let dev = device();
        let mem_lens = [4usize, 3, 5];
        let memories: Vec<Tensor> = mem_lens
            .iter()
            .enumerate()
            .map(|(i, &l)| Tensor::randn([l, hidden], 20 + i as u64))
            .collect();

        let mut paged = PagedDecoder::new(&decoder, PagedLayout::new(4, 32));
        let ids: Vec<SessionId> = memories.iter().map(|m| paged.open_session(&dev, m)).collect();
        let mut reference: Vec<DecoderSession<'_>> = memories
            .iter()
            .map(|m| DecoderSession::new(&decoder, &dev, m))
            .collect();

        let steps = 6;
        let inputs: Vec<Tensor> = (0..memories.len())
            .map(|i| Tensor::randn([steps, hidden], 40 + i as u64))
            .collect();
        for t in 0..steps {
            let mut flat = Vec::with_capacity(ids.len() * hidden);
            for inp in &inputs {
                flat.extend_from_slice(&inp.as_slice()[t * hidden..(t + 1) * hidden]);
            }
            let out = paged.step_batch(&dev, &ids, &flat);
            assert!(out.oom.is_empty(), "pool sized to fit");
            for (s, session) in reference.iter_mut().enumerate() {
                let want = session.step(&dev, &inputs[s].as_slice()[t * hidden..(t + 1) * hidden]);
                let got = out.outputs[s].as_ref().expect("no shed");
                for (d, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        (g - w).abs() < TOL,
                        "step {t}, session {s}, dim {d}: paged {g} vs contiguous {w}"
                    );
                }
            }
        }
        for &sid in &ids {
            assert_eq!(paged.session_len(sid), steps);
        }
    }

    #[test]
    fn prefill_matches_step_by_step() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 2, 9);
        let hidden = config.hidden();
        let dev = device();
        let memory = Tensor::randn([4, hidden], 5);
        let prompt_len = 5;
        let prompt = Tensor::randn([prompt_len, hidden], 6);

        let mut a = PagedDecoder::new(&decoder, PagedLayout::new(2, 16));
        let sa = a.open_session(&dev, &memory);
        let prefilled = a.prefill(&dev, sa, &prompt).unwrap();

        let mut b = PagedDecoder::new(&decoder, PagedLayout::new(2, 16));
        let sb = b.open_session(&dev, &memory);
        for (i, row) in prompt.as_slice().chunks(hidden).enumerate() {
            let out = b.step_batch(&dev, &[sb], row);
            let got = out.outputs[0].as_ref().unwrap();
            for (d, (&p, &s)) in prefilled[i].iter().zip(got).enumerate() {
                assert!((p - s).abs() < 1e-5, "token {i}, dim {d}: prefill {p} vs step {s}");
            }
        }
    }

    #[test]
    fn block_size_is_memory_layout_not_math() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 2, 11);
        let hidden = config.hidden();
        let dev = device();
        let memory = Tensor::randn([3, hidden], 8);
        let prompt = Tensor::randn([7, hidden], 9);

        let mut outs: Vec<Vec<Vec<f32>>> = Vec::new();
        for block_tokens in [1usize, 3, 16] {
            let mut d = PagedDecoder::new(&decoder, PagedLayout::new(block_tokens, 64));
            let sid = d.open_session(&dev, &memory);
            outs.push(d.prefill(&dev, sid, &prompt).unwrap());
        }
        for alt in &outs[1..] {
            assert_eq!(&outs[0], alt, "outputs must be bitwise invariant to block size");
        }
    }

    #[test]
    fn cache_oom_is_explicit_and_partial_steps_survive() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 13);
        let hidden = config.hidden();
        let dev = device();
        // 3 blocks × 2 tokens: room for 6 tokens total.
        let mut paged = PagedDecoder::new(&decoder, PagedLayout::new(2, 3));
        let memory = Tensor::randn([2, hidden], 3);
        let a = paged.open_session(&dev, &memory);
        let b = paged.open_session(&dev, &memory);

        // Oversized prefill fails all-or-nothing.
        let big = Tensor::randn([7, hidden], 4);
        let err = paged.prefill(&dev, a, &big).unwrap_err();
        assert_eq!(err.needed_blocks, 4);
        assert_eq!(paged.session_len(a), 0, "failed prefill leaves nothing behind");

        paged.prefill(&dev, a, &Tensor::randn([3, hidden], 5)).unwrap(); // 2 blocks
        paged.prefill(&dev, b, &Tensor::randn([2, hidden], 6)).unwrap(); // 1 block

        // a has a slot left in its tail block; b needs a new block and pool
        // is empty → b sheds, a still decodes.
        let mut flat = vec![0.0f32; 2 * hidden];
        flat[0] = 0.5;
        let out = paged.step_batch(&dev, &[a, b], &flat);
        assert!(out.outputs[0].is_some(), "session with tail-block room proceeds");
        assert!(out.outputs[1].is_none(), "session without capacity sheds");
        assert_eq!(out.oom.len(), 1);
        assert_eq!(out.oom[0].0, b);
        assert_eq!(paged.session_len(b), 2, "failed step leaves the session unchanged");

        // Freeing b returns its block; b's slot is gone but a keeps going.
        assert_eq!(paged.free_session(b), 1);
        assert_eq!(paged.cache().pool().free_blocks(), 1);
        let out = paged.step_batch(&dev, &[a], &flat[..hidden]);
        assert!(out.outputs[0].is_some());
        assert_eq!(paged.session_len(a), 5);
        assert!(paged.cache().pool().oom_events() >= 2);
    }

    #[test]
    fn gather_walks_block_tables() {
        let mut cache = PagedKvCache::new(PagedLayout::new(2, 8), 1, 4);
        let s = cache.create();
        cache.append(s, 5).unwrap();
        for pos in 0..5 {
            let row: Vec<f32> = (0..4).map(|d| (pos * 10 + d) as f32).collect();
            let neg: Vec<f32> = row.iter().map(|v| -v).collect();
            cache.write(0, s, pos, &row, &neg);
        }
        // heads=2, head=2: plane [2, 5, 2].
        let mut kp = vec![0.0f32; 2 * 5 * 2];
        let mut vp = vec![0.0f32; 2 * 5 * 2];
        cache.gather(0, s, 5, 2, 2, &mut kp, &mut vp);
        for pos in 0..5 {
            for h in 0..2 {
                for d in 0..2 {
                    let want = (pos * 10 + h * 2 + d) as f32;
                    assert_eq!(kp[(h * 5 + pos) * 2 + d], want);
                    assert_eq!(vp[(h * 5 + pos) * 2 + d], -want);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_session_in_step_panics() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 15);
        let dev = device();
        let mut paged = PagedDecoder::new(&decoder, PagedLayout::default());
        let memory = Tensor::randn([2, config.hidden()], 1);
        let s = paged.open_session(&dev, &memory);
        let flat = vec![0.0f32; 2 * config.hidden()];
        paged.step_batch(&dev, &[s, s], &flat);
    }
}
