//! Encoder weights: packed QKV projection, output projection, FFN, and
//! LayerNorm parameters.

use crate::config::BertConfig;
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;

/// Weights of one encoder layer.
///
/// The Q/K/V projection matrices are **packed** into a single
/// `[hidden, 3·hidden]` matrix so position encoding runs as one GEMM — the
/// paper's §III.A: "we pack these three matrices and launch a single batched
/// GEMM kernel to reduce the run-time kernel launch overhead".
#[derive(Debug, Clone)]
pub struct LayerWeights {
    /// Packed QKV projection, `[hidden, 3·hidden]` (columns: Q | K | V).
    pub qkv_weight: Tensor,
    /// Packed QKV bias, `[3·hidden]`.
    pub qkv_bias: Vec<f32>,
    /// Attention output projection, `[hidden, hidden]`.
    pub attn_out_weight: Tensor,
    /// Attention output bias, `[hidden]`.
    pub attn_out_bias: Vec<f32>,
    /// Post-attention LayerNorm scale, `[hidden]`.
    pub ln0_gamma: Vec<f32>,
    /// Post-attention LayerNorm shift, `[hidden]`.
    pub ln0_beta: Vec<f32>,
    /// FFN up-projection, `[hidden, intermediate]`.
    pub ffn_up_weight: Tensor,
    /// FFN up-projection bias, `[intermediate]`.
    pub ffn_up_bias: Vec<f32>,
    /// FFN down-projection, `[intermediate, hidden]`.
    pub ffn_down_weight: Tensor,
    /// FFN down-projection bias, `[hidden]`.
    pub ffn_down_bias: Vec<f32>,
    /// Post-FFN LayerNorm scale, `[hidden]`.
    pub ln1_gamma: Vec<f32>,
    /// Post-FFN LayerNorm shift, `[hidden]`.
    pub ln1_beta: Vec<f32>,
}

impl LayerWeights {
    /// Deterministic random initialization, scaled `1/√hidden` so
    /// activations stay well-conditioned through a 12-layer stack.
    pub fn new_random(config: &BertConfig, seed: u64) -> Self {
        let hidden = config.hidden();
        let inter = config.intermediate();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mat = |rows: usize, cols: usize, rng: &mut Xoshiro256StarStar| {
            let scale = 1.0 / (rows as f32).sqrt();
            let data = (0..rows * cols).map(|_| rng.normal() * scale).collect();
            Tensor::from_vec(data, [rows, cols]).expect("generated size matches")
        };
        let vec_small =
            |n: usize, rng: &mut Xoshiro256StarStar| -> Vec<f32> { (0..n).map(|_| rng.normal() * 0.02).collect() };
        let qkv_weight = mat(hidden, 3 * hidden, &mut rng);
        let qkv_bias = vec_small(3 * hidden, &mut rng);
        let attn_out_weight = mat(hidden, hidden, &mut rng);
        let attn_out_bias = vec_small(hidden, &mut rng);
        let ffn_up_weight = mat(hidden, inter, &mut rng);
        let ffn_up_bias = vec_small(inter, &mut rng);
        let ffn_down_weight = mat(inter, hidden, &mut rng);
        let ffn_down_bias = vec_small(hidden, &mut rng);
        let gamma =
            |rng: &mut Xoshiro256StarStar| -> Vec<f32> { (0..hidden).map(|_| 1.0 + rng.normal() * 0.02).collect() };
        Self {
            qkv_weight,
            qkv_bias,
            attn_out_weight,
            attn_out_bias,
            ln0_gamma: gamma(&mut rng),
            ln0_beta: vec_small(hidden, &mut rng),
            ffn_up_weight,
            ffn_up_bias,
            ffn_down_weight,
            ffn_down_bias,
            ln1_gamma: gamma(&mut rng),
            ln1_beta: vec_small(hidden, &mut rng),
        }
    }
}

/// Weights of one Transformer *decoder* layer (the paper's §II/§V decoder
/// extension): causal self-attention, cross-attention over the encoder
/// memory, and the FFN, each followed by LayerNorm.
#[derive(Debug, Clone)]
pub struct DecoderLayerWeights {
    /// Packed self-attention QKV projection, `[hidden, 3·hidden]`.
    pub self_qkv_weight: Tensor,
    /// Packed self-attention QKV bias, `[3·hidden]`.
    pub self_qkv_bias: Vec<f32>,
    /// Self-attention output projection, `[hidden, hidden]`.
    pub self_out_weight: Tensor,
    /// Self-attention output bias, `[hidden]`.
    pub self_out_bias: Vec<f32>,
    /// Post-self-attention LayerNorm scale/shift.
    pub ln0_gamma: Vec<f32>,
    /// Post-self-attention LayerNorm shift.
    pub ln0_beta: Vec<f32>,
    /// Cross-attention query projection, `[hidden, hidden]`.
    pub cross_q_weight: Tensor,
    /// Cross-attention query bias, `[hidden]`.
    pub cross_q_bias: Vec<f32>,
    /// Packed cross-attention K|V projection of the memory, `[hidden, 2·hidden]`.
    pub cross_kv_weight: Tensor,
    /// Packed cross-attention K|V bias, `[2·hidden]`.
    pub cross_kv_bias: Vec<f32>,
    /// Cross-attention output projection, `[hidden, hidden]`.
    pub cross_out_weight: Tensor,
    /// Cross-attention output bias, `[hidden]`.
    pub cross_out_bias: Vec<f32>,
    /// Post-cross-attention LayerNorm scale.
    pub ln1_gamma: Vec<f32>,
    /// Post-cross-attention LayerNorm shift.
    pub ln1_beta: Vec<f32>,
    /// FFN up-projection, `[hidden, intermediate]`.
    pub ffn_up_weight: Tensor,
    /// FFN up-projection bias, `[intermediate]`.
    pub ffn_up_bias: Vec<f32>,
    /// FFN down-projection, `[intermediate, hidden]`.
    pub ffn_down_weight: Tensor,
    /// FFN down-projection bias, `[hidden]`.
    pub ffn_down_bias: Vec<f32>,
    /// Post-FFN LayerNorm scale.
    pub ln2_gamma: Vec<f32>,
    /// Post-FFN LayerNorm shift.
    pub ln2_beta: Vec<f32>,
}

impl DecoderLayerWeights {
    /// Deterministic random initialization (same scaling policy as
    /// [`LayerWeights::new_random`]).
    pub fn new_random(config: &BertConfig, seed: u64) -> Self {
        let hidden = config.hidden();
        let inter = config.intermediate();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed ^ 0xDEC0DE);
        let mat = |rows: usize, cols: usize, rng: &mut Xoshiro256StarStar| {
            let scale = 1.0 / (rows as f32).sqrt();
            let data = (0..rows * cols).map(|_| rng.normal() * scale).collect();
            Tensor::from_vec(data, [rows, cols]).expect("generated size matches")
        };
        let vec_small =
            |n: usize, rng: &mut Xoshiro256StarStar| -> Vec<f32> { (0..n).map(|_| rng.normal() * 0.02).collect() };
        let gamma =
            |rng: &mut Xoshiro256StarStar| -> Vec<f32> { (0..hidden).map(|_| 1.0 + rng.normal() * 0.02).collect() };
        Self {
            self_qkv_weight: mat(hidden, 3 * hidden, &mut rng),
            self_qkv_bias: vec_small(3 * hidden, &mut rng),
            self_out_weight: mat(hidden, hidden, &mut rng),
            self_out_bias: vec_small(hidden, &mut rng),
            ln0_gamma: gamma(&mut rng),
            ln0_beta: vec_small(hidden, &mut rng),
            cross_q_weight: mat(hidden, hidden, &mut rng),
            cross_q_bias: vec_small(hidden, &mut rng),
            cross_kv_weight: mat(hidden, 2 * hidden, &mut rng),
            cross_kv_bias: vec_small(2 * hidden, &mut rng),
            cross_out_weight: mat(hidden, hidden, &mut rng),
            cross_out_bias: vec_small(hidden, &mut rng),
            ln1_gamma: gamma(&mut rng),
            ln1_beta: vec_small(hidden, &mut rng),
            ffn_up_weight: mat(hidden, inter, &mut rng),
            ffn_up_bias: vec_small(inter, &mut rng),
            ffn_down_weight: mat(inter, hidden, &mut rng),
            ffn_down_bias: vec_small(hidden, &mut rng),
            ln2_gamma: gamma(&mut rng),
            ln2_beta: vec_small(hidden, &mut rng),
        }
    }
}

/// Weights for a stacked decoder.
#[derive(Debug, Clone)]
pub struct DecoderWeights {
    /// Per-layer weights, in stacking order.
    pub layers: Vec<DecoderLayerWeights>,
}

impl DecoderWeights {
    /// Deterministic random decoder with `num_layers` layers.
    pub fn new_random(config: &BertConfig, num_layers: usize, seed: u64) -> Self {
        let layers = (0..num_layers)
            .map(|i| DecoderLayerWeights::new_random(config, seed.wrapping_add(i as u64 * 6151)))
            .collect();
        Self { layers }
    }
}

/// Weights for a full stacked encoder.
#[derive(Debug, Clone)]
pub struct ModelWeights {
    /// Per-layer weights, in stacking order.
    pub layers: Vec<LayerWeights>,
}

impl ModelWeights {
    /// Deterministic random model with `num_layers` layers.
    pub fn new_random(config: &BertConfig, num_layers: usize, seed: u64) -> Self {
        let layers = (0..num_layers)
            .map(|i| LayerWeights::new_random(config, seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Self { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let c = BertConfig::tiny();
        let w = LayerWeights::new_random(&c, 1);
        assert_eq!(w.qkv_weight.dims(), &[16, 48]);
        assert_eq!(w.qkv_bias.len(), 48);
        assert_eq!(w.ffn_up_weight.dims(), &[16, 64]);
        assert_eq!(w.ffn_down_weight.dims(), &[64, 16]);
        assert_eq!(w.ln0_gamma.len(), 16);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let c = BertConfig::tiny();
        let a = LayerWeights::new_random(&c, 5);
        let b = LayerWeights::new_random(&c, 5);
        let d = LayerWeights::new_random(&c, 6);
        assert_eq!(a.qkv_weight.as_slice(), b.qkv_weight.as_slice());
        assert_ne!(a.qkv_weight.as_slice(), d.qkv_weight.as_slice());
    }

    #[test]
    fn model_layers_differ() {
        let c = BertConfig::tiny();
        let m = ModelWeights::new_random(&c, 3, 9);
        assert_eq!(m.layers.len(), 3);
        assert_ne!(m.layers[0].qkv_weight.as_slice(), m.layers[1].qkv_weight.as_slice());
    }

    #[test]
    fn gamma_near_one() {
        let c = BertConfig::tiny();
        let w = LayerWeights::new_random(&c, 2);
        assert!(w.ln0_gamma.iter().all(|&g| (g - 1.0).abs() < 0.2));
    }
}
