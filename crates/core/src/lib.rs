//! # bt-core — ByteTransformer: fused MHA and the variable-length BERT encoder
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrates below it:
//!
//! * [`attention`] — every MHA implementation the paper measures
//!   (Figs. 11–12): the PyTorch-style unfused baseline, cuBLAS-style batched
//!   GEMM, batched + zero-padding softmax, the **fused MHA for short
//!   sequences** (Algorithm III.1), the **grouped-GEMM fused MHA for long
//!   sequences** (Figs. 6–8, Algorithm III.2), and a FlashAttention-style
//!   fixed-shape baseline for the variable-length ablation.
//! * [`encoder`] — the BERT encoder layer and stacked model with the
//!   paper's *step-wise optimization levels* (Fig. 13): baseline →
//!   +layernorm fusion → +bias/GELU fusion → +zero padding → +fused MHA.
//!   Every level produces identical activations on valid tokens; only cost
//!   changes.
//! * [`flops`] — Table II's closed-form FLOP counts, cross-checked in tests
//!   against the FLOPs the device trace actually counted.
//! * [`config`] / [`weights`] — model hyper-parameters and deterministic
//!   random weights.
//!
//! Quick start:
//!
//! ```
//! use bt_core::config::BertConfig;
//! use bt_core::encoder::{BertModel, OptLevel};
//! use bt_device::Device;
//! use bt_tensor::Tensor;
//! use bt_varlen::workload;
//!
//! let config = BertConfig::tiny(); // 2 heads / head_size 8 for doc tests
//! let model = BertModel::new_random(config, 1, 42);
//! let device = Device::new();
//! let mask = workload::paper_workload(4, 32, 7);
//! let input = Tensor::randn([4, 32, config.hidden()], 3);
//! let out = model
//!     .forward(&device, &input, &mask, OptLevel::FusedMha)
//!     .unwrap();
//! assert_eq!(out.dims(), input.dims());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod chunked;
pub mod config;
pub mod decoder;
pub mod embeddings;
pub mod encoder;
pub mod flops;
pub mod incremental;
pub mod paged;
pub mod weights;
