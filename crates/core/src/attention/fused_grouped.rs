//! Grouped-GEMM based fused MHA for long sequences — paper §III.E.2,
//! Figs. 6–8, Algorithm III.2.
//!
//! Pipeline (Fig. 6), one attention unit per `(batch, head)` at its true
//! sequence length:
//!
//! 1. **Grouped GEMM 1** `P_i = Q_i · K_iᵀ` with the **softmax partial
//!    reduction fused into the epilogue** (Fig. 8): while each output tile
//!    is still in registers, per-row partial `max` and partial
//!    `Σ exp(x − max)` are reduced and stored — one pair per
//!    `(row, column-tile)`.
//! 2. A **lightweight full-reduction kernel** merges the partials across
//!    column tiles into per-row `max`/`sum` vectors (the only
//!    cross-threadblock step; the paper measures it at ~2% of fused MHA).
//! 3. **Grouped GEMM 2** `O_i = P_i · V_i` with the normalization
//!    `exp(x − max)/sum` fused into the **mainloop** (Algorithm III.2): the
//!    transform runs on each `A` fragment right after it is loaded, and the
//!    `max`/`sum` vectors are k-invariant so they load once in the prologue.
//!    The epilogue stores each context block *directly into the packed
//!    `[valid, hidden]` tensor* (strided placement), so no merge pass runs.
//!
//! Both GEMMs go through the grouped scheduler with the paper's
//! warp-prefetch optimization; scheduler visits are counted exactly and
//! charged to the modeled time, which is what the A1 ablation measures.
//!
//! The engine is shape-generic over attention units — query and key/value
//! ranges may differ per unit — which is what lets the decoder's
//! cross-attention (`q_len = decoder length, kv_len = encoder length`) reuse
//! it verbatim (see [`crate::decoder`]).

use super::packed_dims;
use bt_device::{Device, KernelSpec};
use bt_gemm::grouped::{
    grouped_sgemm, grouped_sgemm_strided, ALoadTransform, GroupedConfig, GroupedProblem, NoTransform, Scheduler,
    StridedOutput, TileEpilogue, PREFETCH_WIDTH,
};
use bt_gemm::DisjointWriter;
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;

/// Modeled cost of one scheduler visit (seconds), charged along the
/// critical path as `visits / num_ctas × cost`. The stock CUTLASS problem
/// visitor advances with division/modulo chains and problem-metadata loads
/// per tile (~hundreds of cycles ⇒ ~250 ns); at standard BERT grouped
/// shapes (~100 tiles/CTA at ~2.9 µs/tile) this puts the per-tile scheduler
/// ~9% behind — the paper's measured ~10% gap (§III.E.2) — while the
/// warp-prefetch scheduler amortizes it 32×.
pub const SCHEDULER_VISIT_COST: f64 = 250e-9;

/// Exact scheduler-visit count for a given tile total, grid size and
/// scheduler — each CTA walks `ceil`-distributed tiles and prefetches in
/// batches of [`PREFETCH_WIDTH`].
pub fn expected_scheduler_visits(total_tiles: u64, num_ctas: usize, scheduler: Scheduler) -> u64 {
    match scheduler {
        Scheduler::PerTile => total_tiles,
        Scheduler::WarpPrefetch => {
            let n = num_ctas as u64;
            (0..n)
                .map(|cta| {
                    let tiles_cta = total_tiles / n + u64::from(cta < total_tiles % n);
                    tiles_cta.div_ceil(PREFETCH_WIDTH as u64)
                })
                .sum()
        }
    }
}

/// One attention sub-problem of the grouped engine: head plane `h`, query
/// rows `q_off .. q_off + q_len` of the packed Q tensor, key/value rows
/// `kv_off .. kv_off + kv_len` of the packed K/V tensors. For self-attention
/// the two ranges coincide; for cross-attention they do not.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AttnUnit {
    pub h: usize,
    pub q_off: usize,
    pub q_len: usize,
    pub kv_off: usize,
    pub kv_len: usize,
}

/// Per-problem softmax-partial stores fed by the GEMM-1 epilogue:
/// `max[row, col_tile]` and `sum[row, col_tile] = Σ exp(x − max)` over that
/// tile's columns, row-major `[rows, n_tiles]`.
///
/// Tiles partition the `(row, col_tile)` grid, so CTAs write their partials
/// lock-free through [`DisjointWriter`]s — exactly like the CUDA epilogue
/// stores to global memory without synchronization.
struct PartialStore<'a> {
    n_tiles: usize,
    max: DisjointWriter<'a>,
    sum: DisjointWriter<'a>,
}

/// The Fig. 8 epilogue: intra-tile (thread + warp level on the GPU)
/// reduction of row max and exp-sum, stored to global partials.
struct SoftmaxPartialEpilogue<'a> {
    partials: Vec<PartialStore<'a>>,
    tile_n: usize,
    /// Causal self-attention: mask logits where key position > query
    /// position (tiles are aligned, so the condition is on tile-local
    /// global coordinates). Fully-masked tiles reduce to `-inf`/0 partials,
    /// which the streaming merge in the full reduction handles exactly.
    causal: bool,
}

impl TileEpilogue for SoftmaxPartialEpilogue<'_> {
    fn apply(&self, problem: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &mut [f32]) {
        let pb = &self.partials[problem];
        let tcol = col0 / self.tile_n;
        for i in 0..rows {
            let row = &mut tile[i * cols..(i + 1) * cols];
            if self.causal {
                for (j, x) in row.iter_mut().enumerate() {
                    if col0 + j > row0 + i {
                        *x = f32::NEG_INFINITY;
                    }
                }
            }
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let (m_out, s_out) = if m == f32::NEG_INFINITY {
                // Fully masked tile row: identity element of the merge.
                (f32::NEG_INFINITY, 0.0)
            } else {
                (m, row.iter().map(|&x| (x - m).exp()).sum())
            };
            pb.max.write_at((row0 + i) * pb.n_tiles + tcol, m_out);
            pb.sum.write_at((row0 + i) * pb.n_tiles + tcol, s_out);
        }
    }
}

/// Fully reduced per-row softmax statistics for one problem.
struct RowNorms {
    max: Vec<f32>,
    inv_sum: Vec<f32>,
}

/// The Algorithm III.2 mainloop fusion: `A ← exp(A − max[row]) / sum[row]`
/// applied to each loaded `A` fragment of GEMM 2.
struct SoftmaxNormalize<'a> {
    norms: &'a [RowNorms],
}

impl ALoadTransform for SoftmaxNormalize<'_> {
    fn transform(&self, problem: usize, row: usize, _k0: usize, chunk: &mut [f32]) {
        let n = &self.norms[problem];
        let m = n.max[row];
        let inv = n.inv_sum[row];
        for x in chunk {
            *x = (*x - m).exp() * inv;
        }
    }
}

/// The grouped softmax-attention engine shared by self- and cross-attention:
/// runs the three-step pipeline over arbitrary attention units and writes a
/// packed `[out_rows, heads·head]` context.
///
/// `q` is `[heads, q_valid, head]`; `k`/`v` are `[heads, kv_valid, head]`.
/// `Q` is assumed pre-scaled. Each unit's output lands at rows
/// `q_off .. q_off + q_len`, columns `h·head ..`, written directly by the
/// second GEMM's strided store.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grouped_softmax_attention(
    device: &Device,
    name: &str,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    units: &[AttnUnit],
    out_rows: usize,
    scheduler: Scheduler,
) -> Tensor {
    grouped_softmax_attention_ex(device, name, q, k, v, units, out_rows, scheduler, false)
}

/// [`grouped_softmax_attention`] with an optional causal mask applied in the
/// first GEMM's epilogue (decoder self-attention).
#[allow(clippy::too_many_arguments)]
pub(crate) fn grouped_softmax_attention_ex(
    device: &Device,
    name: &str,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    units: &[AttnUnit],
    out_rows: usize,
    scheduler: Scheduler,
    causal: bool,
) -> Tensor {
    let qd = q.dims();
    let kd = k.dims();
    assert_eq!(qd.len(), 3, "packed Q must be [heads, q_valid, head]");
    assert_eq!(k.dims(), v.dims(), "K/V shape mismatch");
    assert_eq!(qd[0], kd[0], "head count mismatch");
    assert_eq!(qd[2], kd[2], "head size mismatch");
    let (heads, q_valid, head) = (qd[0], qd[1], qd[2]);
    let kv_valid = kd[1];
    let hidden = heads * head;
    let config = GroupedConfig {
        scheduler,
        ..Default::default()
    };

    let qs = q.as_slice();
    let ks = k.as_slice();
    let vs = v.as_slice();
    let q_plane = q_valid * head;
    let kv_plane = kv_valid * head;

    // ---- Grouped GEMM 1: P = Q·Kᵀ with fused partial softmax ----------
    let problems1: Vec<GroupedProblem<'_>> = units
        .iter()
        .map(|u| GroupedProblem {
            m: u.q_len,
            n: u.kv_len,
            k: head,
            transb: true,
            alpha: 1.0,
            a: &qs[u.h * q_plane + u.q_off * head..u.h * q_plane + (u.q_off + u.q_len) * head],
            b: &ks[u.h * kv_plane + u.kv_off * head..u.h * kv_plane + (u.kv_off + u.kv_len) * head],
        })
        .collect();
    let mut p_bufs: Vec<Vec<f32>> = units.iter().map(|u| vec![0.0f32; u.q_len * u.kv_len]).collect();
    // Partial backing stores, initialized to the merge identity so rows of
    // problems with no key tiles (kv_len = 0) reduce correctly.
    let n_tiles_per: Vec<usize> = units.iter().map(|u| u.kv_len.div_ceil(config.tile_n).max(1)).collect();
    let mut max_bufs: Vec<Vec<f32>> = units
        .iter()
        .zip(&n_tiles_per)
        .map(|(u, &nt)| vec![f32::NEG_INFINITY; u.q_len * nt])
        .collect();
    let mut sum_bufs: Vec<Vec<f32>> = units
        .iter()
        .zip(&n_tiles_per)
        .map(|(u, &nt)| vec![0.0f32; u.q_len * nt])
        .collect();
    let epilogue = SoftmaxPartialEpilogue {
        partials: max_bufs
            .iter_mut()
            .zip(sum_bufs.iter_mut())
            .zip(&n_tiles_per)
            .map(|((m, s), &nt)| PartialStore {
                n_tiles: nt,
                max: DisjointWriter::new(m),
                sum: DisjointWriter::new(s),
            })
            .collect(),
        tile_n: config.tile_n,
        causal,
    };

    let sq_sum: u64 = units.iter().map(|u| (u.q_len * u.kv_len) as u64).sum();
    let gemm_flops: u64 = units.iter().map(|u| 2 * (u.q_len * u.kv_len * head) as u64).sum();
    let tiles1: u64 = units
        .iter()
        .map(|u| (u.q_len.div_ceil(config.tile_m) * u.kv_len.div_ceil(config.tile_n)) as u64)
        .sum();
    let visits1 = expected_scheduler_visits(tiles1, config.num_ctas, scheduler);
    let partial_elems: u64 = units
        .iter()
        .map(|u| (u.q_len * u.kv_len.div_ceil(config.tile_n).max(1)) as u64)
        .sum();
    let q_bytes = (q_valid * hidden * 4) as u64;
    let kv_bytes = (kv_valid * hidden * 4) as u64;
    let stats1 = device.launch(
        KernelSpec::new(format!("{name}.qk"))
            .flops(gemm_flops + 3 * sq_sum) // GEMM + epilogue max/exp/sum
            .reads(q_bytes + kv_bytes)
            .writes(sq_sum * 4 + partial_elems * 8)
            .host_overhead(visits1 as f64 / config.num_ctas as f64 * SCHEDULER_VISIT_COST),
        || {
            grouped_sgemm(
                &problems1,
                p_bufs.iter_mut().map(|p| p.as_mut_slice()).collect(),
                config,
                &epilogue,
                &NoTransform,
            )
        },
    );
    debug_assert_eq!(stats1.scheduler_visits, visits1, "visit model out of sync");
    device.bump_metric("grouped.scheduler_visits", stats1.scheduler_visits);
    device.bump_metric("grouped.tiles", stats1.tiles);
    MHA_SCHED_VISITS.add(stats1.scheduler_visits);
    drop(epilogue); // release the partial borrows for the reduction below

    // ---- Full reduction: merge partials across column tiles ------------
    // Streaming-softmax merge: M = max_t m_t, S = Σ_t s_t · exp(m_t − M).
    let norms: Vec<RowNorms> = device.launch(
        KernelSpec::new(format!("{name}.full_reduce"))
            .flops(partial_elems * 3)
            .reads(partial_elems * 8)
            .writes(units.iter().map(|u| (u.q_len * 8) as u64).sum()),
        || {
            max_bufs
                .iter()
                .zip(&sum_bufs)
                .zip(units)
                .zip(&n_tiles_per)
                .map(|(((maxes, sums), u), &nt)| {
                    let mut max = vec![f32::NEG_INFINITY; u.q_len];
                    let mut inv_sum = vec![0.0f32; u.q_len];
                    for r in 0..u.q_len {
                        let row_m = &maxes[r * nt..(r + 1) * nt];
                        let row_s = &sums[r * nt..(r + 1) * nt];
                        let big = row_m.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        let total: f32 = row_m.iter().zip(row_s).map(|(&m, &s)| s * (m - big).exp()).sum();
                        max[r] = big;
                        inv_sum[r] = if total > 0.0 { 1.0 / total } else { 0.0 };
                    }
                    RowNorms { max, inv_sum }
                })
                .collect()
        },
    );

    // ---- Grouped GEMM 2: O = softmax(P)·V, normalization in mainloop ---
    let problems2: Vec<GroupedProblem<'_>> = units
        .iter()
        .zip(&p_bufs)
        .map(|(u, p)| GroupedProblem {
            m: u.q_len,
            n: head,
            k: u.kv_len,
            transb: false,
            alpha: 1.0,
            a: p,
            b: &vs[u.h * kv_plane + u.kv_off * head..u.h * kv_plane + (u.kv_off + u.kv_len) * head],
        })
        .collect();
    let placements: Vec<StridedOutput> = units
        .iter()
        .map(|u| StridedOutput {
            offset: u.q_off * hidden + u.h * head,
            ld: hidden,
        })
        .collect();
    let mut out = vec![0.0f32; out_rows * hidden];
    let tiles2: u64 = units
        .iter()
        .map(|u| (u.q_len.div_ceil(config.tile_m) * head.div_ceil(config.tile_n)) as u64)
        .sum();
    let visits2 = expected_scheduler_visits(tiles2, config.num_ctas, scheduler);
    let transform = SoftmaxNormalize { norms: &norms };
    let norm_bytes: u64 = units.iter().map(|u| (u.q_len * 8) as u64).sum();
    let stats2 = device.launch(
        KernelSpec::new(format!("{name}.pv"))
            .flops(gemm_flops + 2 * sq_sum) // GEMM + exp/mul transform
            .reads(sq_sum * 4 + kv_bytes + norm_bytes)
            .writes((out_rows * hidden * 4) as u64)
            .host_overhead(visits2 as f64 / config.num_ctas as f64 * SCHEDULER_VISIT_COST),
        || {
            grouped_sgemm_strided(
                &problems2,
                &mut out,
                &placements,
                config,
                &bt_gemm::grouped::NoEpilogue,
                &transform,
            )
        },
    );
    debug_assert_eq!(stats2.scheduler_visits, visits2, "visit model out of sync");
    device.bump_metric("grouped.scheduler_visits", stats2.scheduler_visits);
    device.bump_metric("grouped.tiles", stats2.tiles);
    MHA_SCHED_VISITS.add(stats2.scheduler_visits);

    Tensor::from_vec(out, [out_rows, hidden]).expect("shape consistent")
}

/// Warp-prefetch scheduler visits issued by the grouped-MHA engine (both
/// the Q·Kᵀ and P·V stages), mirroring the `grouped.scheduler_visits`
/// device metric into the telemetry registry.
static MHA_SCHED_VISITS: bt_obs::Counter = bt_obs::Counter::new("mha.grouped.scheduler_visits");
/// Attention units (batch × heads sub-problems) handed to the grouped
/// driver per `fused_grouped_attention` call, accumulated.
static MHA_PROBLEMS: bt_obs::Counter = bt_obs::Counter::new("mha.grouped.problems");

/// Grouped fused MHA over packed `[heads, valid, head]` Q/K/V (`Q`
/// pre-scaled). Returns the packed `[valid, hidden]` context.
///
/// # Panics
/// Panics on shape mismatches.
pub fn fused_grouped_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    idx: &PackingIndex,
    scheduler: Scheduler,
) -> Tensor {
    let (heads, valid, _head) = packed_dims(q, k, v, idx);
    // Problem list: batch-major, heads inner — batch_size × head_num
    // attention units (Fig. 6); self-attention: q range == kv range.
    let units: Vec<AttnUnit> = (0..idx.batch())
        .flat_map(|b| (0..heads).map(move |h| (b, h)))
        .map(|(b, h)| {
            let off = idx.seq_offset(b);
            let len = idx.seq_len(b);
            AttnUnit {
                h,
                q_off: off,
                q_len: len,
                kv_off: off,
                kv_len: len,
            }
        })
        .collect();
    MHA_PROBLEMS.add(units.len() as u64);
    grouped_softmax_attention(device, "attention.grouped", q, k, v, &units, valid, scheduler)
}

#[cfg(test)]
mod tests {
    use super::super::reference_attention;
    use super::super::test_support::{fixture, pack_context};
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn check(lens: &[usize], max: usize, heads: usize, head: usize, seed: u64) {
        let fx = fixture(lens, max, heads, head, seed);
        let dev = device();
        let got = fused_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::WarpPrefetch,
        );
        let expect_pad = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, lens, fx.scale);
        let expect = pack_context(&expect_pad, &fx.idx);
        assert_close(got.as_slice(), &expect, 3e-4);
    }

    #[test]
    fn matches_reference_various_shapes() {
        check(&[70, 130, 65], 130, 2, 8, 1); // spans multiple 64-wide tiles
        check(&[5, 9], 16, 2, 4, 2); // single tile per unit
        check(&[64, 64], 64, 1, 16, 3); // exact tile boundary
        check(&[1], 8, 2, 4, 4); // single token
    }

    #[test]
    fn handles_empty_sequences() {
        check(&[0, 80, 0], 80, 2, 8, 5);
    }

    #[test]
    fn per_tile_and_prefetch_agree_numerically() {
        let fx = fixture(&[100, 40], 100, 2, 8, 6);
        let dev = device();
        let a = fused_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::PerTile,
        );
        let b = fused_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::WarpPrefetch,
        );
        assert_close(a.as_slice(), b.as_slice(), 1e-6);
    }

    #[test]
    fn prefetch_models_less_scheduler_overhead() {
        let fx = fixture(&[256; 8], 256, 4, 16, 7);
        let run = |sched: Scheduler| {
            let dev = device();
            fused_grouped_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, sched);
            (dev.modeled_total(), dev.metric("grouped.scheduler_visits"))
        };
        let (t_per_tile, v_per_tile) = run(Scheduler::PerTile);
        let (t_prefetch, v_prefetch) = run(Scheduler::WarpPrefetch);
        // With 108 CTAs and few tiles per CTA the prefetch factor is
        // bounded by one visit per CTA per GEMM, so assert a 2x+ cut (the
        // full 32x shows up at scale, covered by the ablation bench).
        assert!(v_prefetch * 2 < v_per_tile, "{v_prefetch} vs {v_per_tile}");
        assert!(t_prefetch < t_per_tile);
    }

    #[test]
    fn expected_visits_formula() {
        assert_eq!(expected_scheduler_visits(100, 10, Scheduler::PerTile), 100);
        // 10 CTAs × 10 tiles each -> ceil(10/32)=1 visit each.
        assert_eq!(expected_scheduler_visits(100, 10, Scheduler::WarpPrefetch), 10);
        // 1 CTA, 100 tiles -> ceil(100/32) = 4.
        assert_eq!(expected_scheduler_visits(100, 1, Scheduler::WarpPrefetch), 4);
        assert_eq!(expected_scheduler_visits(0, 8, Scheduler::WarpPrefetch), 0);
    }

    #[test]
    fn full_reduce_kernel_is_tiny_fraction() {
        // The paper measures the full-reduction kernel at ~2% of fused MHA.
        let fx = fixture(&[160; 4], 160, 4, 16, 8);
        let dev = device();
        fused_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::WarpPrefetch,
        );
        let trace = dev.trace();
        let total: f64 = trace.iter().map(|r| r.modeled).sum();
        let reduce: f64 = trace
            .iter()
            .filter(|r| r.name.contains("full_reduce"))
            .map(|r| r.modeled)
            .sum();
        assert!(reduce / total < 0.1, "full reduce fraction {}", reduce / total);
    }

    #[test]
    fn three_launches() {
        let fx = fixture(&[32, 16], 32, 2, 8, 9);
        let dev = device();
        fused_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::WarpPrefetch,
        );
        assert_eq!(dev.launches(), 3);
    }

    #[test]
    fn cross_shaped_units_match_host_reference() {
        // Rectangular attention: 7 query rows against 19 key/value rows in
        // one head plane — the cross-attention shape.
        let heads = 2;
        let head = 8;
        let q_valid = 7;
        let kv_valid = 19;
        let q = Tensor::randn([heads, q_valid, head], 1);
        let k = Tensor::randn([heads, kv_valid, head], 2);
        let v = Tensor::randn([heads, kv_valid, head], 3);
        let units: Vec<AttnUnit> = (0..heads)
            .map(|h| AttnUnit {
                h,
                q_off: 0,
                q_len: q_valid,
                kv_off: 0,
                kv_len: kv_valid,
            })
            .collect();
        let dev = device();
        let got = grouped_softmax_attention(
            &dev,
            "attention.grouped",
            &q,
            &k,
            &v,
            &units,
            q_valid,
            Scheduler::WarpPrefetch,
        );
        // Host reference.
        let hidden = heads * head;
        let mut expect = vec![0.0f32; q_valid * hidden];
        for h in 0..heads {
            for i in 0..q_valid {
                let mut logits = vec![0.0f32; kv_valid];
                for (j, l) in logits.iter_mut().enumerate() {
                    let mut dot = 0.0;
                    for d in 0..head {
                        dot += q.at(&[h, i, d]).unwrap() * k.at(&[h, j, d]).unwrap();
                    }
                    *l = dot;
                }
                bt_kernels::softmax::softmax_row(&mut logits);
                for d in 0..head {
                    let mut acc = 0.0;
                    for (j, &p) in logits.iter().enumerate() {
                        acc += p * v.at(&[h, j, d]).unwrap();
                    }
                    expect[i * hidden + h * head + d] = acc;
                }
            }
        }
        assert_close(got.as_slice(), &expect, 3e-4);
    }
}
