//! cuBLAS-style batched-GEMM attention, optionally with the zero-padding
//! softmax (the `cuBLAS` and `cuBLAS + zero padding` variants of
//! Figs. 11–12).
//!
//! Three launches instead of nine: the scale folds into the GEMM's `alpha`
//! (as cuBLAS allows), no layout copies, no separate mask pass. The batched
//! GEMMs still run on padded shapes — "the zero padding algorithm … cannot
//! directly benefit batched GEMM operations in MHA" (§III.E) — but the
//! softmax between them can skip dead rows when `zeropad_softmax` is set.

use super::padded_dims;
use bt_device::Device;
use bt_gemm::batched::{batched_sgemm, BatchedArgs};
use bt_gemm::GemmSpec;
use bt_kernels::softmax::{masked_softmax_padded, masked_softmax_zeropad};
use bt_tensor::Tensor;

/// Padded batched-GEMM attention.
///
/// With `zeropad_softmax`, the softmax touches only valid query rows using
/// the known sequence lengths (paper: "by only accessing unpadded tokens
/// according to the known indices"); the GEMMs stay padded either way.
pub fn batched_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    seq_lens: &[usize],
    scale: f32,
    zeropad_softmax: bool,
) -> Tensor {
    let (batch, heads, seq, head) = padded_dims(q, k, v, seq_lens);
    let planes = batch * heads;

    // Batched GEMM 1: scores = (scale · Q) · Kᵀ — alpha folded, cuBLAS-style.
    let mut scores = vec![0.0f32; planes * seq * seq];
    device.launch(
        bt_gemm::gemm_kernel_spec("attention.batched.scores", planes * seq, seq, head, 4),
        || {
            batched_sgemm(
                GemmSpec::nt().alpha(scale),
                BatchedArgs::dense(planes, seq, seq, head),
                q.as_slice(),
                k.as_slice(),
                &mut scores,
            )
        },
    );

    // Softmax: padded or zero-padding variant.
    if zeropad_softmax {
        masked_softmax_zeropad(
            device,
            "attention.batched.softmax",
            &mut scores,
            batch,
            heads,
            seq,
            seq_lens,
        );
        // Dead query rows still hold raw logits; the downstream `P·V` GEMM
        // would propagate them into dead context rows (which the re-pack
        // drops), so no cleanup pass is spent on them — that is the point
        // of the optimization.
    } else {
        masked_softmax_padded(
            device,
            "attention.batched.softmax",
            &mut scores,
            batch,
            heads,
            seq,
            seq_lens,
        );
    }

    // Batched GEMM 2: context = P · V.
    let mut ctx = vec![0.0f32; planes * seq * head];
    device.launch(
        bt_gemm::gemm_kernel_spec("attention.batched.ctx", planes * seq, head, seq, 4),
        || {
            batched_sgemm(
                GemmSpec::nn(),
                BatchedArgs {
                    batch: planes,
                    m: seq,
                    n: head,
                    k: seq,
                    stride_a: seq * seq,
                    stride_b: seq * head,
                    stride_c: seq * head,
                },
                &scores,
                v.as_slice(),
                &mut ctx,
            )
        },
    );
    Tensor::from_vec(ctx, [batch, heads, seq, head]).expect("shape consistent")
}

#[cfg(test)]
mod tests {
    use super::super::reference_attention;
    use super::super::test_support::fixture;
    use super::*;
    use bt_device::CostModel;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn check_valid_rows(lens: &[usize], got: &Tensor, expect: &Tensor, heads: usize, head: usize) {
        for (b, &len) in lens.iter().enumerate() {
            for h in 0..heads {
                for s in 0..len {
                    for dd in 0..head {
                        let g = got.at(&[b, h, s, dd]).unwrap();
                        let e = expect.at(&[b, h, s, dd]).unwrap();
                        assert!((g - e).abs() < 1e-4, "({b},{h},{s},{dd}): {g} vs {e}");
                    }
                }
            }
        }
    }

    #[test]
    fn padded_softmax_matches_reference() {
        let lens = [5usize, 2, 8];
        let fx = fixture(&lens, 8, 3, 8, 21);
        let dev = device();
        let got = batched_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, false);
        let expect = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        check_valid_rows(&lens, &got, &expect, 3, 8);
    }

    #[test]
    fn zeropad_softmax_matches_reference_on_valid_rows() {
        let lens = [5usize, 2, 8];
        let fx = fixture(&lens, 8, 3, 8, 22);
        let dev = device();
        let got = batched_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, true);
        let expect = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        check_valid_rows(&lens, &got, &expect, 3, 8);
    }

    #[test]
    fn three_launches_only() {
        let lens = [4usize; 2];
        let fx = fixture(&lens, 4, 2, 4, 3);
        let dev = device();
        batched_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, false);
        assert_eq!(dev.launches(), 3);
    }

    #[test]
    fn zeropad_softmax_reduces_traffic_but_not_gemm_flops() {
        let lens = [2usize; 4];
        let fx = fixture(&lens, 16, 2, 4, 9);
        let dev_p = device();
        batched_attention(&dev_p, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, false);
        let dev_z = device();
        batched_attention(&dev_z, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, true);
        assert!(dev_z.total_bytes() < dev_p.total_bytes());
        // GEMM flops identical: batched GEMM cannot skip padding.
        let gemm_flops = |dev: &Device| {
            dev.trace()
                .iter()
                .filter(|r| r.name.contains("scores") || r.name.contains("ctx"))
                .map(|r| r.cost.flops)
                .sum::<u64>()
        };
        assert_eq!(gemm_flops(&dev_p), gemm_flops(&dev_z));
    }
}
