//! Cross-attention over packed variable-length memory — the decoder's
//! second attention, built directly on the grouped-GEMM engine.
//!
//! Cross-attention is where grouped GEMM shines brightest: every
//! `(batch, head)` unit is a *rectangular* problem (`decoder_len ×
//! encoder_len`), and both lengths vary per batch. A batched-GEMM
//! implementation must pad both sides to their maxima; the grouped scheduler
//! simply walks the true shapes — zero padding on either axis.

use super::fused_grouped::{grouped_softmax_attention, AttnUnit};
use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;

/// Packed cross-attention: queries `[heads, tgt_valid, head]` (pre-scaled)
/// against memory keys/values `[heads, mem_valid, head]`. Returns the packed
/// `[tgt_valid, hidden]` context.
///
/// # Panics
/// Panics if the target and memory batches differ in sequence count or on
/// shape mismatches.
pub fn cross_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tgt_idx: &PackingIndex,
    mem_idx: &PackingIndex,
    scheduler: Scheduler,
) -> Tensor {
    assert_eq!(tgt_idx.batch(), mem_idx.batch(), "target and memory batches must align");
    let heads = q.dims()[0];
    assert_eq!(q.dims()[1], tgt_idx.valid_words(), "Q rows != target valid words");
    assert_eq!(k.dims()[1], mem_idx.valid_words(), "K rows != memory valid words");
    let units: Vec<AttnUnit> = (0..tgt_idx.batch())
        .flat_map(|b| (0..heads).map(move |h| (b, h)))
        .map(|(b, h)| AttnUnit {
            h,
            q_off: tgt_idx.seq_offset(b),
            q_len: tgt_idx.seq_len(b),
            kv_off: mem_idx.seq_offset(b),
            kv_len: mem_idx.seq_len(b),
        })
        .collect();
    grouped_softmax_attention(
        device,
        "cross_attention.grouped",
        q,
        k,
        v,
        &units,
        tgt_idx.valid_words(),
        scheduler,
    )
}

/// Host oracle for cross-attention on padded tensors: `q` is
/// `[batch, heads, tgt_seq, head]`, `k`/`v` are `[batch, heads, mem_seq,
/// head]`; lengths per batch on both sides. Padded query rows produce zeros.
#[allow(clippy::needless_range_loop)] // index loops are the oracle idiom here
pub fn cross_reference_attention(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    tgt_lens: &[usize],
    mem_lens: &[usize],
    scale: f32,
) -> Tensor {
    let qd = q.dims();
    let kd = k.dims();
    let (batch, heads, tgt_seq, head) = (qd[0], qd[1], qd[2], qd[3]);
    let mut out = Tensor::zeros([batch, heads, tgt_seq, head]);
    for b in 0..batch {
        let tl = tgt_lens[b];
        let ml = mem_lens[b];
        for h in 0..heads {
            for i in 0..tl {
                let mut logits = vec![0.0f32; ml];
                for (j, l) in logits.iter_mut().enumerate() {
                    let mut dot = 0.0f32;
                    for d in 0..head {
                        dot += q.at(&[b, h, i, d]).unwrap() * k.at(&[b, h, j, d]).unwrap();
                    }
                    *l = dot * scale;
                }
                bt_kernels::softmax::softmax_row(&mut logits);
                for d in 0..head {
                    let mut acc = 0.0f32;
                    for (j, &p) in logits.iter().enumerate() {
                        acc += p * v.at(&[b, h, j, d]).unwrap();
                    }
                    out.set(&[b, h, i, d], acc).unwrap();
                }
            }
        }
    }
    let _ = kd;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;
    use bt_varlen::BatchMask;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    struct CrossFixture {
        tgt_idx: PackingIndex,
        mem_idx: PackingIndex,
        q_pad: Tensor,
        k_pad: Tensor,
        v_pad: Tensor,
        q_pk: Tensor,
        k_pk: Tensor,
        v_pk: Tensor,
        scale: f32,
    }

    fn fixture(tgt_lens: &[usize], mem_lens: &[usize], heads: usize, head: usize, seed: u64) -> CrossFixture {
        let tgt_max = tgt_lens.iter().copied().max().unwrap_or(1).max(1);
        let mem_max = mem_lens.iter().copied().max().unwrap_or(1).max(1);
        let tgt_idx = PackingIndex::from_mask(&BatchMask::from_lens(tgt_lens.to_vec(), tgt_max).unwrap());
        let mem_idx = PackingIndex::from_mask(&BatchMask::from_lens(mem_lens.to_vec(), mem_max).unwrap());
        let batch = tgt_lens.len();
        let scale = 1.0 / (head as f32).sqrt();
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut q_pad = Tensor::zeros([batch, heads, tgt_max, head]);
        let mut k_pad = Tensor::zeros([batch, heads, mem_max, head]);
        let mut v_pad = Tensor::zeros([batch, heads, mem_max, head]);
        let mut q_pk = Tensor::zeros([heads, tgt_idx.valid_words(), head]);
        let mut k_pk = Tensor::zeros([heads, mem_idx.valid_words(), head]);
        let mut v_pk = Tensor::zeros([heads, mem_idx.valid_words(), head]);
        for b in 0..batch {
            for s in 0..tgt_lens[b] {
                let w = tgt_idx.seq_offset(b) + s;
                for h in 0..heads {
                    for d in 0..head {
                        let x = rng.uniform(-1.0, 1.0);
                        q_pad.set(&[b, h, s, d], x).unwrap();
                        q_pk.set(&[h, w, d], x * scale).unwrap();
                    }
                }
            }
            for s in 0..mem_lens[b] {
                let w = mem_idx.seq_offset(b) + s;
                for h in 0..heads {
                    for d in 0..head {
                        let kx = rng.uniform(-1.0, 1.0);
                        let vx = rng.uniform(-1.0, 1.0);
                        k_pad.set(&[b, h, s, d], kx).unwrap();
                        v_pad.set(&[b, h, s, d], vx).unwrap();
                        k_pk.set(&[h, w, d], kx).unwrap();
                        v_pk.set(&[h, w, d], vx).unwrap();
                    }
                }
            }
        }
        CrossFixture {
            tgt_idx,
            mem_idx,
            q_pad,
            k_pad,
            v_pad,
            q_pk,
            k_pk,
            v_pk,
            scale,
        }
    }

    #[allow(clippy::needless_range_loop)] // oracle-style index loops
    fn check(tgt_lens: &[usize], mem_lens: &[usize], heads: usize, head: usize, seed: u64) {
        let fx = fixture(tgt_lens, mem_lens, heads, head, seed);
        let dev = device();
        let got = cross_attention(
            &dev,
            &fx.q_pk,
            &fx.k_pk,
            &fx.v_pk,
            &fx.tgt_idx,
            &fx.mem_idx,
            Scheduler::WarpPrefetch,
        );
        let expect_pad = cross_reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, tgt_lens, mem_lens, fx.scale);
        let hidden = heads * head;
        let mut expect = vec![0.0f32; fx.tgt_idx.valid_words() * hidden];
        for b in 0..tgt_lens.len() {
            for s in 0..tgt_lens[b] {
                let w = fx.tgt_idx.seq_offset(b) + s;
                for h in 0..heads {
                    for d in 0..head {
                        expect[w * hidden + h * head + d] = expect_pad.at(&[b, h, s, d]).unwrap();
                    }
                }
            }
        }
        assert_close(got.as_slice(), &expect, 3e-4);
    }

    #[test]
    fn rectangular_units_match_reference() {
        check(&[4, 9], &[17, 3], 2, 8, 1); // tgt shorter AND longer than mem
        check(&[70], &[130], 2, 8, 2); // multi-tile on both axes
        check(&[1, 1], &[50, 2], 1, 4, 3); // single-token queries
    }

    #[test]
    fn empty_sequences_on_either_side() {
        check(&[0, 5], &[9, 9], 2, 4, 4);
        // Empty memory: attention output for that sequence is all zeros
        // (inv_sum = 0 guard) rather than NaN.
        let fx = fixture(&[3, 2], &[4, 0], 2, 4, 5);
        let dev = device();
        let got = cross_attention(
            &dev,
            &fx.q_pk,
            &fx.k_pk,
            &fx.v_pk,
            &fx.tgt_idx,
            &fx.mem_idx,
            Scheduler::WarpPrefetch,
        );
        assert!(got.as_slice().iter().all(|v| v.is_finite()));
        // Sequence 1 (empty memory) rows are zero.
        for w in fx.tgt_idx.seq_offset(1)..fx.tgt_idx.seq_offset(1) + 2 {
            for c in 0..8 {
                assert_eq!(got.at(&[w, c]).unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn cost_scales_with_both_valid_lengths() {
        let fx_small = fixture(&[8; 4], &[8; 4], 2, 8, 6);
        let fx_big = fixture(&[8; 4], &[64; 4], 2, 8, 6);
        let run = |fx: &CrossFixture| {
            let dev = device();
            cross_attention(
                &dev,
                &fx.q_pk,
                &fx.k_pk,
                &fx.v_pk,
                &fx.tgt_idx,
                &fx.mem_idx,
                Scheduler::WarpPrefetch,
            );
            dev.total_flops()
        };
        let small = run(&fx_small);
        let big = run(&fx_big);
        assert!(big > small * 6, "cost must track memory length: {small} vs {big}");
    }

    #[test]
    #[should_panic(expected = "batches must align")]
    fn mismatched_batches_rejected() {
        let fx_a = fixture(&[3], &[4], 1, 4, 7);
        let fx_b = fixture(&[3, 3], &[4, 4], 1, 4, 8);
        let dev = device();
        cross_attention(
            &dev,
            &fx_a.q_pk,
            &fx_b.k_pk,
            &fx_b.v_pk,
            &fx_a.tgt_idx,
            &fx_b.mem_idx,
            Scheduler::WarpPrefetch,
        );
    }
}
