//! "Standard PyTorch MHA"-style attention: the unfused, fully padded
//! baseline of Figs. 11–12.
//!
//! `torch.nn.MultiheadAttention` executes attention as a chain of separate
//! CUDA kernels, each taking a full round trip through global memory:
//! layout copies for Q/K/V, the `QKᵀ` batched GEMM, a separate scale kernel,
//! a separate additive-mask kernel, the softmax, the `P·V` batched GEMM, and
//! an output layout copy — all on padded shapes, all paying per-kernel
//! dispatch. The paper measures its fused MHA at 6.13× over this baseline;
//! the gap comes from exactly the extra passes and dead tokens reproduced
//! here.

use super::padded_dims;
use bt_device::{Device, KernelSpec};
use bt_gemm::batched::{batched_sgemm, BatchedArgs};
use bt_gemm::GemmSpec;
use bt_kernels::softmax::masked_softmax_padded;
use bt_tensor::Tensor;
use rayon::prelude::*;

/// Padded, unfused multi-head attention.
///
/// `dispatch_overhead` is the host-side per-kernel tax (seconds) added to
/// each launch's modeled time — the framework property that makes the
/// PyTorch baseline pay for its many small kernels. Pass `0.0` to measure
/// the pure kernel pipeline.
pub fn naive_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    seq_lens: &[usize],
    scale: f32,
    dispatch_overhead: f64,
) -> Tensor {
    let (batch, heads, seq, head) = padded_dims(q, k, v, seq_lens);
    let planes = batch * heads;
    let qkv_bytes = (planes * seq * head * 4) as u64;
    let logits_elems = planes * seq * seq;
    let logits_bytes = (logits_elems * 4) as u64;

    // Kernel 1–3: contiguity copies of Q, K, V (PyTorch's
    // `transpose(1, 2).contiguous()` reshapes around `baddbmm`).
    let copy = |name: &str, t: &Tensor| -> Tensor {
        device.launch(
            KernelSpec::new(name)
                .reads(qkv_bytes)
                .writes(qkv_bytes)
                .host_overhead(dispatch_overhead),
            || t.clone(),
        )
    };
    let q = copy("attention.naive.copy_q", q);
    let k = copy("attention.naive.copy_k", k);
    let v = copy("attention.naive.copy_v", v);

    // Kernel 4: scores = Q · Kᵀ (batched GEMM over batch × heads planes).
    let mut scores = vec![0.0f32; logits_elems];
    device.launch(
        bt_gemm::gemm_kernel_spec("attention.naive.scores", planes * seq, seq, head, 4)
            .host_overhead(dispatch_overhead),
        || {
            batched_sgemm(
                GemmSpec::nt(),
                BatchedArgs::dense(planes, seq, seq, head),
                q.as_slice(),
                k.as_slice(),
                &mut scores,
            )
        },
    );

    // Kernel 5: separate scale pass (PyTorch folds this into an extra
    // element-wise kernel, not into the GEMM).
    device.launch(
        KernelSpec::new("attention.naive.scale")
            .flops(logits_elems as u64)
            .reads(logits_bytes)
            .writes(logits_bytes)
            .host_overhead(dispatch_overhead),
        || {
            scores.par_chunks_mut(seq).for_each(|row| {
                for x in row {
                    *x *= scale;
                }
            });
        },
    );

    // Kernel 6: additive key-padding mask — another full pass.
    device.launch(
        KernelSpec::new("attention.naive.mask")
            .flops(logits_elems as u64)
            .reads(logits_bytes)
            .writes(logits_bytes)
            .host_overhead(dispatch_overhead),
        || {
            scores.par_chunks_mut(seq).enumerate().for_each(|(row_idx, row)| {
                let b = row_idx / (heads * seq);
                for x in &mut row[seq_lens[b]..] {
                    *x = f32::NEG_INFINITY;
                }
            });
        },
    );

    // Kernel 7: padded softmax over every row. The mask is already applied,
    // but the padded kernel re-applies it idempotently (seq_lens given).
    masked_softmax_padded(
        device,
        "attention.naive.softmax",
        &mut scores,
        batch,
        heads,
        seq,
        seq_lens,
    );

    // Kernel 8: context = P · V.
    let mut ctx = vec![0.0f32; planes * seq * head];
    device.launch(
        bt_gemm::gemm_kernel_spec("attention.naive.ctx", planes * seq, head, seq, 4).host_overhead(dispatch_overhead),
        || {
            batched_sgemm(
                GemmSpec::nn(),
                BatchedArgs {
                    batch: planes,
                    m: seq,
                    n: head,
                    k: seq,
                    stride_a: seq * seq,
                    stride_b: seq * head,
                    stride_c: seq * head,
                },
                &scores,
                v.as_slice(),
                &mut ctx,
            )
        },
    );

    // Kernel 9: output contiguity copy.
    device.launch(
        KernelSpec::new("attention.naive.copy_out")
            .reads(qkv_bytes)
            .writes(qkv_bytes)
            .host_overhead(dispatch_overhead),
        || (),
    );

    Tensor::from_vec(ctx, [batch, heads, seq, head]).expect("shape consistent")
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle-style index loops
mod tests {
    use super::super::reference_attention;
    use super::super::test_support::fixture;
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    #[test]
    fn matches_reference_on_valid_rows() {
        let lens = [3usize, 7, 1];
        let fx = fixture(&lens, 8, 2, 4, 11);
        let dev = device();
        let got = naive_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, 0.0);
        let expect = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        for b in 0..3 {
            for h in 0..2 {
                for s in 0..lens[b] {
                    for dd in 0..4 {
                        let g = got.at(&[b, h, s, dd]).unwrap();
                        let e = expect.at(&[b, h, s, dd]).unwrap();
                        assert!((g - e).abs() < 1e-4, "({b},{h},{s},{dd}): {g} vs {e}");
                    }
                }
            }
        }
    }

    #[test]
    fn launches_the_whole_unfused_chain() {
        let lens = [4usize; 2];
        let fx = fixture(&lens, 4, 2, 4, 3);
        let dev = device();
        naive_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, 0.0);
        // copies(3) + scores + scale + mask + softmax + ctx + copy_out = 9.
        assert_eq!(dev.launches(), 9);
    }

    #[test]
    fn dispatch_overhead_inflates_modeled_time_only() {
        let lens = [4usize; 2];
        let fx = fixture(&lens, 4, 2, 4, 3);
        let d0 = device();
        let a = naive_attention(&d0, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, 0.0);
        let d1 = device();
        let b = naive_attention(&d1, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, 1.0);
        assert_close(a.as_slice(), b.as_slice(), 0.0);
        // 8 of the 9 kernels carry the tax (the softmax helper does not).
        assert!(d1.modeled_total() >= d0.modeled_total() + 8.0);
    }

    #[test]
    fn cost_is_padded_quadratic() {
        // Halving valid lengths must NOT reduce declared flops: the padded
        // pipeline pays for dead tokens.
        let full = [8usize; 2];
        let halfv = [4usize; 2];
        let fx_full = fixture(&full, 8, 1, 4, 5);
        let fx_half = fixture(&halfv, 8, 1, 4, 5);
        let d_full = device();
        naive_attention(&d_full, &fx_full.q_pad, &fx_full.k_pad, &fx_full.v_pad, &full, 0.5, 0.0);
        let d_half = device();
        naive_attention(
            &d_half,
            &fx_half.q_pad,
            &fx_half.k_pad,
            &fx_half.v_pad,
            &halfv,
            0.5,
            0.0,
        );
        assert_eq!(d_full.total_flops(), d_half.total_flops());
    }
}
