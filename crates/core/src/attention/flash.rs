//! FlashAttention-style fixed-shape attention baseline (ablation A3).
//!
//! The paper's related-work discussion (§II): FlashAttention "assumes
//! identical shapes of inputs and assigns the workload of a whole attention
//! unit to a single CTA. However, FlashAttention brings significant wasted
//! computations if input sequence lengths are variable." This module
//! implements that design point faithfully — streaming/online softmax with
//! no materialized `seq×seq` intermediate, but over the *padded* shape: every
//! `(batch, head)` unit processes all `max_seq` query rows and key columns,
//! masking rather than skipping dead tokens. Comparing it against
//! [`super::fused_grouped_attention`] under a sweep of α reproduces the
//! argument for variable-shape awareness.

use super::padded_dims;
use bt_device::{Device, KernelSpec};
use bt_tensor::Tensor;
use rayon::prelude::*;

/// Query/key tile height of the streaming kernel.
const TILE: usize = 64;

/// FlashAttention-style padded attention with online softmax.
///
/// Q/K/V are padded `[batch, heads, seq, head]`; `scale` multiplies the
/// logits; padded keys are masked with `-inf`; padded query rows produce
/// zeros. Cost is the full `seq²` regardless of valid lengths — that is the
/// design point being measured.
pub fn flash_attention(device: &Device, q: &Tensor, k: &Tensor, v: &Tensor, seq_lens: &[usize], scale: f32) -> Tensor {
    let (batch, heads, seq, head) = padded_dims(q, k, v, seq_lens);
    let planes = batch * heads;
    let qkv_bytes = (planes * seq * head * 4) as u64;
    let k_tiles = seq.div_ceil(TILE) as u64;

    let out = device.launch(
        KernelSpec::new("attention.flash")
            // Full padded flops: 4·seq²·head per plane plus softmax work.
            .flops(planes as u64 * (4 * (seq * seq * head) as u64 + 6 * (seq * seq) as u64))
            // Q once; K and V once per q-tile (they stream through SRAM).
            .reads(qkv_bytes + 2 * qkv_bytes * (seq.div_ceil(TILE) as u64).min(k_tiles))
            .writes(qkv_bytes),
        || {
            let qs = q.as_slice();
            let ks = k.as_slice();
            let vs = v.as_slice();
            let mut out = vec![0.0f32; planes * seq * head];
            out.par_chunks_mut(seq * head)
                .enumerate()
                .for_each(|(plane_idx, o_plane)| {
                    let b = plane_idx / heads;
                    let len = seq_lens[b];
                    let base = plane_idx * seq * head;
                    let q_plane = &qs[base..base + seq * head];
                    let k_plane = &ks[base..base + seq * head];
                    let v_plane = &vs[base..base + seq * head];
                    // Process q-tiles; every row keeps running (max, sum,
                    // acc) — the online-softmax state.
                    let mut qt = 0;
                    while qt < seq {
                        let q_rows = TILE.min(seq - qt);
                        let mut run_max = vec![f32::NEG_INFINITY; q_rows];
                        let mut run_sum = vec![0.0f32; q_rows];
                        let mut acc = vec![0.0f32; q_rows * head];
                        let mut kt = 0;
                        while kt < seq {
                            let k_rows = TILE.min(seq - kt);
                            // Scores block (computed even for fully masked
                            // tiles: fixed-shape kernels do not skip).
                            for i in 0..q_rows {
                                let q_row = &q_plane[(qt + i) * head..(qt + i + 1) * head];
                                let mut block = vec![f32::NEG_INFINITY; k_rows];
                                for (j, s) in block.iter_mut().enumerate() {
                                    let kj = kt + j;
                                    let k_row = &k_plane[kj * head..(kj + 1) * head];
                                    let mut dot = 0.0f32;
                                    for (&a, &bv) in q_row.iter().zip(k_row) {
                                        dot += a * bv;
                                    }
                                    // Mask dead keys (but the dot was paid).
                                    *s = if kj < len { dot * scale } else { f32::NEG_INFINITY };
                                }
                                // Online-softmax update for this row.
                                let block_max = block.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                                let new_max = run_max[i].max(block_max);
                                if new_max == f32::NEG_INFINITY {
                                    continue; // fully masked so far
                                }
                                let correction = if run_max[i] == f32::NEG_INFINITY {
                                    0.0
                                } else {
                                    (run_max[i] - new_max).exp()
                                };
                                run_sum[i] *= correction;
                                for a in &mut acc[i * head..(i + 1) * head] {
                                    *a *= correction;
                                }
                                for (j, &s) in block.iter().enumerate() {
                                    if s == f32::NEG_INFINITY {
                                        continue;
                                    }
                                    let p = (s - new_max).exp();
                                    run_sum[i] += p;
                                    let v_row = &v_plane[(kt + j) * head..(kt + j + 1) * head];
                                    for (a, &vv) in acc[i * head..(i + 1) * head].iter_mut().zip(v_row) {
                                        *a += p * vv;
                                    }
                                }
                                run_max[i] = new_max;
                            }
                            kt += k_rows;
                        }
                        for i in 0..q_rows {
                            let o_row = &mut o_plane[(qt + i) * head..(qt + i + 1) * head];
                            if run_sum[i] > 0.0 {
                                let inv = 1.0 / run_sum[i];
                                for (o, &a) in o_row.iter_mut().zip(&acc[i * head..(i + 1) * head]) {
                                    *o = a * inv;
                                }
                            } else {
                                o_row.fill(0.0);
                            }
                        }
                        qt += q_rows;
                    }
                });
            out
        },
    );
    Tensor::from_vec(out, [batch, heads, seq, head]).expect("shape consistent")
}

#[cfg(test)]
mod tests {
    use super::super::reference_attention;
    use super::super::test_support::fixture;
    use super::*;
    use bt_device::CostModel;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn check(lens: &[usize], max: usize, heads: usize, head: usize, seed: u64) {
        let fx = fixture(lens, max, heads, head, seed);
        let dev = device();
        let got = flash_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, lens, fx.scale);
        let expect = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, lens, fx.scale);
        // Padded query rows are dead outputs (a fixed-shape kernel computes
        // them as uniform attention over valid keys); compare valid rows.
        for (b, &len) in lens.iter().enumerate() {
            for h in 0..heads {
                for s in 0..len {
                    for dd in 0..head {
                        let g = got.at(&[b, h, s, dd]).unwrap();
                        let e = expect.at(&[b, h, s, dd]).unwrap();
                        assert!((g - e).abs() < 3e-4, "({b},{h},{s},{dd}): {g} vs {e}");
                    }
                }
            }
        }
    }

    #[test]
    fn matches_reference_on_valid_rows() {
        check(&[3, 7], 8, 2, 4, 1);
        check(&[100, 30, 70], 130, 2, 8, 2); // multiple online-softmax tiles
        check(&[64], 64, 1, 16, 3); // exact tile boundary
        check(&[0, 5], 8, 2, 4, 4); // empty sequence -> zero rows
    }

    #[test]
    fn flops_do_not_shrink_with_valid_length() {
        // Fixed-shape design: α has no effect on declared work.
        let fx_a = fixture(&[128; 4], 128, 2, 8, 5);
        let fx_b = fixture(&[16; 4], 128, 2, 8, 5);
        let da = device();
        flash_attention(&da, &fx_a.q_pad, &fx_a.k_pad, &fx_a.v_pad, &[128; 4], fx_a.scale);
        let db = device();
        flash_attention(&db, &fx_b.q_pad, &fx_b.k_pad, &fx_b.v_pad, &[16; 4], fx_b.scale);
        assert_eq!(da.total_flops(), db.total_flops());
    }

    #[test]
    fn no_quadratic_intermediate_traffic() {
        let fx = fixture(&[256; 2], 256, 2, 16, 6);
        let dev = device();
        flash_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &[256; 2], fx.scale);
        // Bytes stay far below a materialized 2·2·256²·4 logits tensor
        // round trip.
        assert!(dev.total_bytes() < (2 * 2 * 256 * 256 * 4) as u64);
    }
}
