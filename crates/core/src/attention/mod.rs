//! Multi-head attention implementations (paper §III.E, Figs. 11–12).
//!
//! Two input conventions exist, mirroring the paper's pipeline:
//!
//! * **Padded**: `Q, K, V` as `[batch, heads, seq, head]` tensors plus the
//!   per-sequence valid lengths. Used by the conventional baselines
//!   ([`naive`], [`batched`], [`flash`]), whose batched GEMMs require
//!   identical shapes.
//! * **Packed**: `Q, K, V` as `[heads, valid_words, head]` tensors indexed
//!   through a [`PackingIndex`] — per `(batch, head)` the rows
//!   `seq_offset(b) .. seq_offset(b)+len` are that attention unit's
//!   operand. Used by the fused paths ([`fused_short`], [`fused_grouped`]),
//!   which never materialize a padded tensor. The `1/√d_k` scale is folded
//!   into `Q` upstream (fused with the bias-add load, Algorithm III.1).
//!
//! [`fused_attention`] dispatches between the two fused kernels on the
//! paper's sequence-length boundary.

pub mod batched;
pub mod causal;
pub mod cross;
pub mod flash;
pub mod fused_grouped;
pub mod fused_short;
pub mod naive;

pub use batched::batched_attention;
pub use causal::{causal_fused_attention, causal_reference_attention};
pub use cross::{cross_attention, cross_reference_attention};
pub use flash::flash_attention;
pub use fused_grouped::{fused_grouped_attention, SCHEDULER_VISIT_COST};
pub use fused_short::{fused_short_attention, DEFAULT_SPLIT_SEQ_LEN, FUSED_SHORT_MAX_SEQ};
pub use naive::naive_attention;

use bt_device::Device;
use bt_gemm::grouped::Scheduler;
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;

/// Validates a padded `[batch, heads, seq, head]` Q/K/V triple, returning
/// `(batch, heads, seq, head)`.
///
/// # Panics
/// Panics when shapes disagree — attention entry points are internal to the
/// encoder, which has already validated user input.
pub(crate) fn padded_dims(q: &Tensor, k: &Tensor, v: &Tensor, seq_lens: &[usize]) -> (usize, usize, usize, usize) {
    let d = q.dims();
    assert_eq!(d.len(), 4, "Q must be [batch, heads, seq, head]");
    assert_eq!(q.dims(), k.dims(), "Q/K shape mismatch");
    assert_eq!(q.dims(), v.dims(), "Q/V shape mismatch");
    assert_eq!(seq_lens.len(), d[0], "seq_lens length mismatch");
    (d[0], d[1], d[2], d[3])
}

/// Validates a packed `[heads, valid, head]` Q/K/V triple against its
/// packing index, returning `(heads, valid, head)`.
pub(crate) fn packed_dims(q: &Tensor, k: &Tensor, v: &Tensor, idx: &PackingIndex) -> (usize, usize, usize) {
    let d = q.dims();
    assert_eq!(d.len(), 3, "packed Q must be [heads, valid, head]");
    assert_eq!(q.dims(), k.dims(), "Q/K shape mismatch");
    assert_eq!(q.dims(), v.dims(), "Q/V shape mismatch");
    assert_eq!(d[1], idx.valid_words(), "packed rows != valid words");
    (d[0], d[1], d[2])
}

/// ByteTransformer's fused MHA dispatcher: the shared-memory kernel for
/// short sequences, the grouped-GEMM kernel beyond
/// [`FUSED_SHORT_MAX_SEQ`] (paper: "With the explicit design for both short
/// and long sequences…"). Returns the packed `[valid, hidden]` context.
pub fn fused_attention(device: &Device, q: &Tensor, k: &Tensor, v: &Tensor, idx: &PackingIndex) -> Tensor {
    static SHORT_PATH: bt_obs::Counter = bt_obs::Counter::new("mha.path.short");
    static LONG_PATH: bt_obs::Counter = bt_obs::Counter::new("mha.path.long");
    if idx.max_seq_len() <= FUSED_SHORT_MAX_SEQ {
        SHORT_PATH.incr();
        let _span = bt_obs::span!("mha.fused.short");
        fused_short_attention(device, q, k, v, idx, DEFAULT_SPLIT_SEQ_LEN)
    } else {
        LONG_PATH.incr();
        let _span = bt_obs::span!("mha.fused.long");
        fused_grouped_attention(device, q, k, v, idx, Scheduler::WarpPrefetch)
    }
}

/// Straight-line host reference attention over padded inputs — the oracle
/// every variant is tested against. `scale` is applied to the logits;
/// padded key columns are masked; padded query rows produce zeros.
#[allow(clippy::needless_range_loop)] // index loops are the oracle idiom here
pub fn reference_attention(q: &Tensor, k: &Tensor, v: &Tensor, seq_lens: &[usize], scale: f32) -> Tensor {
    let (batch, heads, seq, head) = padded_dims(q, k, v, seq_lens);
    let mut out = Tensor::zeros([batch, heads, seq, head]);
    let qs = q.as_slice();
    let ks = k.as_slice();
    let vs = v.as_slice();
    let os = out.as_mut_slice();
    for b in 0..batch {
        let len = seq_lens[b];
        for h in 0..heads {
            let plane = ((b * heads) + h) * seq * head;
            for i in 0..len {
                // logits over valid keys
                let mut logits = vec![0.0f32; len];
                for (j, lj) in logits.iter_mut().enumerate() {
                    let mut dot = 0.0f32;
                    for dd in 0..head {
                        dot += qs[plane + i * head + dd] * ks[plane + j * head + dd];
                    }
                    *lj = dot * scale;
                }
                bt_kernels::softmax::softmax_row(&mut logits);
                for dd in 0..head {
                    let mut acc = 0.0f32;
                    for (j, &lj) in logits.iter().enumerate() {
                        acc += lj * vs[plane + j * head + dd];
                    }
                    os[plane + i * head + dd] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle-style index loops
pub(crate) mod test_support {
    use super::*;
    use bt_varlen::BatchMask;

    /// Builds padded and packed Q/K/V for the same random attention inputs,
    /// so padded baselines and packed fused kernels can be cross-checked.
    /// Packed Q is pre-scaled by `scale`; padded Q is returned unscaled.
    #[allow(dead_code)] // some variants consume only a subset of fields
    pub struct AttentionFixture {
        pub idx: PackingIndex,
        pub q_pad: Tensor,
        pub k_pad: Tensor,
        pub v_pad: Tensor,
        pub q_packed: Tensor,
        pub k_packed: Tensor,
        pub v_packed: Tensor,
        pub scale: f32,
        pub heads: usize,
        pub head: usize,
    }

    pub fn fixture(lens: &[usize], max_seq: usize, heads: usize, head: usize, seed: u64) -> AttentionFixture {
        let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
        let idx = PackingIndex::from_mask(&mask);
        let batch = lens.len();
        let scale = 1.0 / (head as f32).sqrt();
        let valid = idx.valid_words();

        let mut q_pad = Tensor::zeros([batch, heads, max_seq, head]);
        let mut k_pad = Tensor::zeros([batch, heads, max_seq, head]);
        let mut v_pad = Tensor::zeros([batch, heads, max_seq, head]);
        let mut q_pk = Tensor::zeros([heads, valid, head]);
        let mut k_pk = Tensor::zeros([heads, valid, head]);
        let mut v_pk = Tensor::zeros([heads, valid, head]);

        let mut rng = bt_tensor::rng::Xoshiro256StarStar::seed_from_u64(seed);
        for b in 0..batch {
            for s in 0..lens[b] {
                let w = idx.seq_offset(b) + s;
                for h in 0..heads {
                    for dd in 0..head {
                        let qv = rng.uniform(-1.0, 1.0);
                        let kv = rng.uniform(-1.0, 1.0);
                        let vv = rng.uniform(-1.0, 1.0);
                        q_pad.set(&[b, h, s, dd], qv).unwrap();
                        k_pad.set(&[b, h, s, dd], kv).unwrap();
                        v_pad.set(&[b, h, s, dd], vv).unwrap();
                        q_pk.set(&[h, w, dd], qv * scale).unwrap();
                        k_pk.set(&[h, w, dd], kv).unwrap();
                        v_pk.set(&[h, w, dd], vv).unwrap();
                    }
                }
            }
        }
        AttentionFixture {
            idx,
            q_pad,
            k_pad,
            v_pad,
            q_packed: q_pk,
            k_packed: k_pk,
            v_packed: v_pk,
            scale,
            heads,
            head,
        }
    }

    /// Extracts the valid rows of a padded `[b,h,s,d]` context into the
    /// packed `[valid, hidden]` layout for comparison with fused outputs.
    pub fn pack_context(ctx: &Tensor, idx: &PackingIndex) -> Vec<f32> {
        let dims = ctx.dims();
        let (heads, head) = (dims[1], dims[3]);
        let hidden = heads * head;
        let mut out = vec![0.0f32; idx.valid_words() * hidden];
        for b in 0..idx.batch() {
            for s in 0..idx.seq_len(b) {
                let w = idx.seq_offset(b) + s;
                for h in 0..heads {
                    for dd in 0..head {
                        out[w * hidden + h * head + dd] = ctx.at(&[b, h, s, dd]).unwrap();
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn reference_rows_are_convex_combinations() {
        // With V = all-ones, every valid output row must be exactly 1.
        let fx = fixture(&[3, 5], 5, 2, 4, 1);
        let ones = Tensor::filled(fx.v_pad.shape().clone(), 1.0);
        let out = reference_attention(&fx.q_pad, &fx.k_pad, &ones, &[3, 5], fx.scale);
        for b in 0..2 {
            let len = [3, 5][b];
            for h in 0..2 {
                for s in 0..len {
                    for dd in 0..4 {
                        let v = out.at(&[b, h, s, dd]).unwrap();
                        assert!((v - 1.0).abs() < 1e-5, "({b},{h},{s},{dd}) = {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn reference_zeroes_padded_rows() {
        let fx = fixture(&[2], 6, 1, 4, 2);
        let out = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &[2], fx.scale);
        for s in 2..6 {
            for dd in 0..4 {
                assert_eq!(out.at(&[0, 0, s, dd]).unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn fixture_padded_and_packed_agree() {
        let fx = fixture(&[2, 4], 4, 2, 4, 3);
        // Packed row for (b=1, s=1) is seq_offset(1) + 1 = 3.
        let w = fx.idx.seq_offset(1) + 1;
        for h in 0..2 {
            for dd in 0..4 {
                let padded = fx.q_pad.at(&[1, h, 1, dd]).unwrap();
                let packed = fx.q_packed.at(&[h, w, dd]).unwrap();
                assert!((packed - padded * fx.scale).abs() < 1e-7);
                assert_eq!(
                    fx.k_pad.at(&[1, h, 1, dd]).unwrap(),
                    fx.k_packed.at(&[h, w, dd]).unwrap()
                );
            }
        }
    }
}
