//! Causal (autoregressive) attention for the decoder extension.
//!
//! The paper presents an encoder-only BERT but notes that "one can easily
//! extend to other transformers that contain the decoder part using the
//! optimizations and algorithm proposed in the paper" (§II). This module is
//! that extension for the decoder's masked self-attention: the same
//! padding-free fused kernels, with token `i` attending only to `j ≤ i`.
//!
//! * [`causal_fused_short_attention`] — the Algorithm III.1 kernel with the
//!   per-row key range truncated at the diagonal. Because the iteration
//!   range *is* the mask, the causal constraint costs nothing — it removes
//!   work instead of masking it (half the logits of the square kernel).
//! * [`causal_grouped_attention`] — the grouped-GEMM engine with a causal
//!   epilogue: future positions are masked to `-inf` in the logits tile
//!   before the partial softmax reduction, so the mainloop-fused
//!   normalization in the second GEMM zeroes them exactly.
//! * [`causal_fused_attention`] — dispatcher on the same short/long boundary
//!   as the encoder path.

use super::fused_short::FUSED_SHORT_MAX_SEQ;
use super::packed_dims;
use bt_device::{Device, KernelSpec};
use bt_gemm::grouped::Scheduler;
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;
use rayon::prelude::*;

/// Causal fused MHA dispatcher over packed `[heads, valid, head]` Q/K/V
/// (`Q` pre-scaled). Returns the packed `[valid, hidden]` context.
pub fn causal_fused_attention(device: &Device, q: &Tensor, k: &Tensor, v: &Tensor, idx: &PackingIndex) -> Tensor {
    if idx.max_seq_len() <= FUSED_SHORT_MAX_SEQ {
        causal_fused_short_attention(device, q, k, v, idx, super::fused_short::DEFAULT_SPLIT_SEQ_LEN)
    } else {
        causal_grouped_attention(device, q, k, v, idx, Scheduler::WarpPrefetch)
    }
}

/// Causal variant of the short-sequence fused kernel: identical structure to
/// [`super::fused_short_attention`], but each query row `i` loads and
/// reduces only keys `0..=i` — the triangular iteration space.
///
/// # Panics
/// Panics if `idx.max_seq_len() > FUSED_SHORT_MAX_SEQ`, `split_seq_len == 0`
/// or on shape mismatches.
pub fn causal_fused_short_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    idx: &PackingIndex,
    split_seq_len: usize,
) -> Tensor {
    let (heads, valid, head) = packed_dims(q, k, v, idx);
    assert!(split_seq_len > 0, "split_seq_len must be positive");
    assert!(
        idx.max_seq_len() <= FUSED_SHORT_MAX_SEQ,
        "causal fused short MHA caps at {FUSED_SHORT_MAX_SEQ}, got {}",
        idx.max_seq_len()
    );
    let hidden = heads * head;

    // Triangular cost: Σ_b Σ_i (i + 1) ≈ len(len+1)/2 per head per GEMM.
    let mut flops = 0u64;
    let mut kv_reads = 0u64;
    for b in 0..idx.batch() {
        let len = idx.seq_len(b) as u64;
        let tri = len * (len + 1) / 2;
        flops += heads as u64 * (4 * tri * head as u64 + 4 * tri);
        // Each q-tile streams keys up to its last row.
        let tiles = len.div_ceil(split_seq_len as u64);
        kv_reads += heads as u64 * tiles * len * head as u64 * 4; // upper bound staging
    }
    let q_bytes = (valid * hidden * 4) as u64;

    let out = device.launch(
        KernelSpec::new("attention.causal_short")
            .flops(flops)
            .reads(q_bytes + kv_reads)
            .writes(q_bytes),
        || {
            let mut out = vec![0.0f32; valid * hidden];
            let mut tasks: Vec<(usize, usize, &mut [f32])> = Vec::new();
            {
                let mut rest: &mut [f32] = &mut out;
                for b in 0..idx.batch() {
                    let len = idx.seq_len(b);
                    let mut t0 = 0;
                    while t0 < len {
                        let rows = split_seq_len.min(len - t0);
                        let (chunk, tail) = rest.split_at_mut(rows * hidden);
                        rest = tail;
                        tasks.push((b, t0, chunk));
                        t0 += rows;
                    }
                }
            }
            let qs = q.as_slice();
            let ks = k.as_slice();
            let vs = v.as_slice();
            let plane = valid * head;
            tasks.into_par_iter().for_each(|(b, t0, out_chunk)| {
                let off = idx.seq_offset(b);
                let rows = out_chunk.len() / hidden;
                // Longest row of this tile attends to t0 + rows keys.
                let reach = t0 + rows;
                let mut logits = vec![0.0f32; reach];
                for h in 0..heads {
                    let qp = &qs[h * plane..(h + 1) * plane];
                    let kp = &ks[h * plane..(h + 1) * plane];
                    let vp = &vs[h * plane..(h + 1) * plane];
                    for i in 0..rows {
                        let klen = t0 + i + 1; // causal reach of this row
                        let q_row = &qp[(off + t0 + i) * head..(off + t0 + i + 1) * head];
                        let l_row = &mut logits[..klen];
                        for (j, lv) in l_row.iter_mut().enumerate() {
                            let k_row = &kp[(off + j) * head..(off + j + 1) * head];
                            let mut dot = 0.0f32;
                            for (&a, &bv) in q_row.iter().zip(k_row) {
                                dot += a * bv;
                            }
                            *lv = dot;
                        }
                        bt_kernels::softmax::softmax_row(l_row);
                        let o_row = &mut out_chunk[i * hidden + h * head..i * hidden + (h + 1) * head];
                        o_row.fill(0.0);
                        for (j, &p) in l_row.iter().enumerate() {
                            let v_row = &vp[(off + j) * head..(off + j + 1) * head];
                            for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                                *ov += p * vv;
                            }
                        }
                    }
                }
            });
            out
        },
    );
    Tensor::from_vec(out, [valid, hidden]).expect("shape consistent")
}

/// Causal variant of the grouped-GEMM fused MHA (long sequences).
pub fn causal_grouped_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    idx: &PackingIndex,
    scheduler: Scheduler,
) -> Tensor {
    let (heads, valid, _head) = packed_dims(q, k, v, idx);
    let units: Vec<super::fused_grouped::AttnUnit> = (0..idx.batch())
        .flat_map(|b| (0..heads).map(move |h| (b, h)))
        .map(|(b, h)| {
            let off = idx.seq_offset(b);
            let len = idx.seq_len(b);
            super::fused_grouped::AttnUnit {
                h,
                q_off: off,
                q_len: len,
                kv_off: off,
                kv_len: len,
            }
        })
        .collect();
    super::fused_grouped::grouped_softmax_attention_ex(
        device,
        "attention.causal_grouped",
        q,
        k,
        v,
        &units,
        valid,
        scheduler,
        true,
    )
}

/// Host oracle: causal attention over padded `[batch, heads, seq, head]`
/// inputs. Padded query rows produce zeros.
#[allow(clippy::needless_range_loop)] // index loops are the oracle idiom here
pub fn causal_reference_attention(q: &Tensor, k: &Tensor, v: &Tensor, seq_lens: &[usize], scale: f32) -> Tensor {
    let dims = q.dims();
    let (batch, heads, seq, head) = (dims[0], dims[1], dims[2], dims[3]);
    let mut out = Tensor::zeros([batch, heads, seq, head]);
    for b in 0..batch {
        let len = seq_lens[b];
        for h in 0..heads {
            for i in 0..len {
                let mut logits = vec![0.0f32; i + 1];
                for (j, l) in logits.iter_mut().enumerate() {
                    let mut dot = 0.0f32;
                    for d in 0..head {
                        dot += q.at(&[b, h, i, d]).unwrap() * k.at(&[b, h, j, d]).unwrap();
                    }
                    *l = dot * scale;
                }
                bt_kernels::softmax::softmax_row(&mut logits);
                for d in 0..head {
                    let mut acc = 0.0f32;
                    for (j, &p) in logits.iter().enumerate() {
                        acc += p * v.at(&[b, h, j, d]).unwrap();
                    }
                    out.set(&[b, h, i, d], acc).unwrap();
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{fixture, pack_context};
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn check_short(lens: &[usize], max: usize, heads: usize, head: usize, split: usize, seed: u64) {
        let fx = fixture(lens, max, heads, head, seed);
        let dev = device();
        let got = causal_fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, split);
        let expect_pad = causal_reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, lens, fx.scale);
        let expect = pack_context(&expect_pad, &fx.idx);
        assert_close(got.as_slice(), &expect, 3e-4);
    }

    #[test]
    fn short_kernel_matches_causal_reference() {
        check_short(&[3, 7, 1], 8, 2, 4, 32, 1);
        check_short(&[16, 16], 16, 3, 8, 4, 2);
        check_short(&[33], 33, 1, 4, 8, 3); // uneven tiles
        check_short(&[0, 5], 8, 2, 4, 32, 4); // empty sequence
    }

    #[test]
    fn grouped_kernel_matches_causal_reference() {
        let lens = [90usize, 130, 40];
        let fx = fixture(&lens, 130, 2, 8, 5);
        let dev = device();
        let got = causal_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::WarpPrefetch,
        );
        let expect_pad = causal_reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        let expect = pack_context(&expect_pad, &fx.idx);
        assert_close(got.as_slice(), &expect, 3e-4);
    }

    #[test]
    fn short_and_grouped_agree() {
        let lens = [50usize, 20];
        let fx = fixture(&lens, 50, 2, 8, 6);
        let dev = device();
        let a = causal_fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 16);
        let b = causal_grouped_attention(
            &dev,
            &fx.q_packed,
            &fx.k_packed,
            &fx.v_packed,
            &fx.idx,
            Scheduler::PerTile,
        );
        assert_close(a.as_slice(), b.as_slice(), 3e-4);
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        // With causal masking, row 0's output is exactly V[0].
        let fx = fixture(&[6], 6, 2, 4, 7);
        let dev = device();
        let got = causal_fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 32);
        for h in 0..2 {
            for d in 0..4 {
                let expect = fx.v_packed.at(&[h, 0, d]).unwrap();
                let v = got.at(&[0, h * 4 + d]).unwrap();
                assert!((v - expect).abs() < 1e-5, "h={h} d={d}: {v} vs {expect}");
            }
        }
    }

    #[test]
    fn causal_costs_less_than_square() {
        let fx = fixture(&[64; 4], 64, 4, 16, 8);
        let dev_sq = device();
        super::super::fused_short_attention(&dev_sq, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 32);
        let dev_ca = device();
        causal_fused_short_attention(&dev_ca, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 32);
        // Triangular ≈ half the square's flops.
        assert!(dev_ca.total_flops() < dev_sq.total_flops() * 6 / 10);
    }

    #[test]
    fn dispatcher_picks_both_paths() {
        let fx_short = fixture(&[30], 30, 1, 4, 9);
        let dev = device();
        causal_fused_attention(
            &dev,
            &fx_short.q_packed,
            &fx_short.k_packed,
            &fx_short.v_packed,
            &fx_short.idx,
        );
        assert!(dev.trace().iter().any(|r| r.name.contains("causal_short")));
        let fx_long = fixture(&[400], 400, 1, 4, 10);
        let dev = device();
        causal_fused_attention(
            &dev,
            &fx_long.q_packed,
            &fx_long.k_packed,
            &fx_long.v_packed,
            &fx_long.idx,
        );
        assert!(dev.trace().iter().any(|r| r.name.contains("causal_grouped")));
    }
}
