//! Unpadded fused MHA for short sequences — Algorithm III.1.
//!
//! One kernel computes the whole attention unit: a threadblock owns a
//! `split_seq_len`-row tile of Q for one `(batch, head)`, stages Q/K/V tiles
//! in shared memory (`s_query`, `s_kv`), computes `P = Q·Kᵀ` into `s_logits`,
//! runs the softmax with whole rows held in registers ("register-level data
//! re-use"), multiplies by V, and streams the context straight into the
//! **packed** output tensor. The `seq×seq` intermediate never touches global
//! memory, and Q/K/V are addressed through the packing offsets, so neither
//! the memory overhead nor the padded FLOPs of the baseline exist here.
//!
//! The CPU mapping: a rayon task = one threadblock = one `(batch, q-tile)`
//! pair (looping heads inside, which keeps the packed output rows of a task
//! disjoint); stack/`Vec` tile buffers = shared memory; per-row arrays =
//! register files. Buffer sizes respect the same limits that bound the GPU
//! kernel, enforced by [`FUSED_SHORT_MAX_SEQ`].

use super::packed_dims;
use bt_device::{Device, KernelSpec};
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;
use rayon::prelude::*;

/// Upper sequence-length bound of the shared-memory kernel. The paper's
/// Fig. 11 evaluates this path below 384 and switches to grouped GEMM past
/// it (TensorRT's comparable fused MHA caps at 512).
pub const FUSED_SHORT_MAX_SEQ: usize = 384;

/// Default `split_seq_len` — the paper sets the Q-tile height "typically
/// to 32 or 48".
pub const DEFAULT_SPLIT_SEQ_LEN: usize = 32;

/// Fused short-sequence MHA over packed `[heads, valid, head]` Q/K/V
/// (`Q` pre-scaled by `1/√d_k`). Returns the packed `[valid, hidden]`
/// context.
///
/// # Panics
/// Panics if `idx.max_seq_len() > FUSED_SHORT_MAX_SEQ` (the dispatcher in
/// [`super::fused_attention`] routes long sequences to the grouped kernel),
/// if `split_seq_len == 0`, or on shape mismatches.
pub fn fused_short_attention(
    device: &Device,
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    idx: &PackingIndex,
    split_seq_len: usize,
) -> Tensor {
    let (heads, valid, head) = packed_dims(q, k, v, idx);
    assert!(split_seq_len > 0, "split_seq_len must be positive");
    assert!(
        idx.max_seq_len() <= FUSED_SHORT_MAX_SEQ,
        "fused short MHA caps at {FUSED_SHORT_MAX_SEQ}, got {}",
        idx.max_seq_len()
    );
    let hidden = heads * head;

    // Cost: the two tile GEMMs (4·len²·d per head) plus softmax transforms;
    // K and V are re-staged once per Q tile (ceil(len/split) times), Q and
    // the output move once. The logits matrix contributes nothing — it
    // lives in shared memory.
    let mut flops = 0u64;
    let mut kv_reads = 0u64;
    for b in 0..idx.batch() {
        let len = idx.seq_len(b) as u64;
        let tiles = len.div_ceil(split_seq_len as u64);
        flops += heads as u64 * (4 * len * len * head as u64 + 4 * len * len);
        kv_reads += heads as u64 * tiles * len * head as u64 * 4 * 2;
    }
    let q_bytes = (valid * hidden * 4) as u64;

    let out = device.launch(
        KernelSpec::new("attention.fused_short")
            .flops(flops)
            .reads(q_bytes + kv_reads)
            .writes(q_bytes),
        || {
            let mut out = vec![0.0f32; valid * hidden];
            // One task per (batch, q-tile): split the packed output into
            // disjoint row chunks in sequence order.
            let mut tasks: Vec<(usize, usize, &mut [f32])> = Vec::new();
            {
                let mut rest: &mut [f32] = &mut out;
                for b in 0..idx.batch() {
                    let len = idx.seq_len(b);
                    let mut t0 = 0;
                    while t0 < len {
                        let rows = split_seq_len.min(len - t0);
                        let (chunk, tail) = rest.split_at_mut(rows * hidden);
                        rest = tail;
                        tasks.push((b, t0, chunk));
                        t0 += rows;
                    }
                }
            }
            let qs = q.as_slice();
            let ks = k.as_slice();
            let vs = v.as_slice();
            let plane = valid * head;
            // "s_logits": the per-tile intermediate, shared-memory sized.
            // Thread-local so each worker allocates it once and reuses it
            // across every tile it processes — like a threadblock's fixed
            // shared-memory carve-out, and zero heap traffic per tile.
            thread_local! {
                static LOGITS: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
            }
            tasks.into_par_iter().for_each(|(b, t0, out_chunk)| {
                let off = idx.seq_offset(b);
                let len = idx.seq_len(b);
                let rows = out_chunk.len() / hidden;
                LOGITS.with(|cell| {
                    let mut logits_buf = cell.borrow_mut();
                    if logits_buf.len() < rows * len {
                        logits_buf.resize(rows * len, 0.0);
                    }
                    let logits = &mut logits_buf[..rows * len];
                    for h in 0..heads {
                        let qp = &qs[h * plane..(h + 1) * plane];
                        let kp = &ks[h * plane..(h + 1) * plane];
                        let vp = &vs[h * plane..(h + 1) * plane];
                        let k_seq = &kp[off * head..(off + len) * head];
                        let v_seq = &vp[off * head..(off + len) * head];
                        // P = Q_tile · Kᵀ (Q already carries the 1/√d scale).
                        for i in 0..rows {
                            let q_row = &qp[(off + t0 + i) * head..(off + t0 + i + 1) * head];
                            let l_row = &mut logits[i * len..(i + 1) * len];
                            for (j, lv) in l_row.iter_mut().enumerate() {
                                let k_row = &k_seq[j * head..(j + 1) * head];
                                let mut dot = 0.0f32;
                                for (&a, &bv) in q_row.iter().zip(k_row) {
                                    dot += a * bv;
                                }
                                *lv = dot;
                            }
                            // Softmax with the whole row in "registers".
                            bt_kernels::softmax::softmax_row(l_row);
                        }
                        // O = P · V, streamed into the packed output columns of
                        // this head.
                        for i in 0..rows {
                            let l_row = &logits[i * len..(i + 1) * len];
                            let o_row = &mut out_chunk[i * hidden + h * head..i * hidden + (h + 1) * head];
                            o_row.fill(0.0);
                            for (j, &p) in l_row.iter().enumerate() {
                                let v_row = &v_seq[j * head..(j + 1) * head];
                                for (ov, &vv) in o_row.iter_mut().zip(v_row) {
                                    *ov += p * vv;
                                }
                            }
                        }
                    }
                });
            });
            out
        },
    );
    Tensor::from_vec(out, [valid, hidden]).expect("shape consistent")
}

#[cfg(test)]
mod tests {
    use super::super::reference_attention;
    use super::super::test_support::{fixture, pack_context};
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn check(lens: &[usize], max: usize, heads: usize, head: usize, split: usize, seed: u64) {
        let fx = fixture(lens, max, heads, head, seed);
        let dev = device();
        let got = fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, split);
        let expect_pad = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, lens, fx.scale);
        let expect = pack_context(&expect_pad, &fx.idx);
        assert_close(got.as_slice(), &expect, 2e-4);
    }

    #[test]
    fn matches_reference_various_shapes() {
        check(&[3, 7, 1], 8, 2, 4, 32, 1);
        check(&[16, 16], 16, 3, 8, 4, 2); // multiple q-tiles per sequence
        check(&[5], 5, 1, 2, 2, 3); // uneven tile tail
        check(&[1, 1, 1], 4, 2, 4, 32, 4); // single-token sequences
    }

    #[test]
    fn handles_empty_sequences() {
        check(&[0, 5, 0, 3], 8, 2, 4, 32, 5);
    }

    #[test]
    fn single_launch_no_logits_traffic() {
        let lens = [32usize; 4];
        let fx = fixture(&lens, 32, 2, 8, 6);
        let dev = device();
        fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 32);
        assert_eq!(dev.launches(), 1);
        // Declared traffic excludes the seq² logits: it must be far below
        // batch·heads·seq²·4 bytes.
        let logits_bytes = (4 * 2 * 32 * 32 * 4) as u64;
        assert!(dev.total_bytes() < logits_bytes * 3);
    }

    #[test]
    fn cost_scales_with_valid_tokens_not_padding() {
        let fx_short = fixture(&[8, 8], 64, 2, 4, 7);
        let fx_full = fixture(&[64, 64], 64, 2, 4, 7);
        let d_short = device();
        fused_short_attention(
            &d_short,
            &fx_short.q_packed,
            &fx_short.k_packed,
            &fx_short.v_packed,
            &fx_short.idx,
            32,
        );
        let d_full = device();
        fused_short_attention(
            &d_full,
            &fx_full.q_packed,
            &fx_full.k_packed,
            &fx_full.v_packed,
            &fx_full.idx,
            32,
        );
        // 8 vs 64 tokens: ~64× fewer attention flops.
        assert!(d_short.total_flops() * 32 < d_full.total_flops());
    }

    #[test]
    #[should_panic(expected = "caps at")]
    fn long_sequences_rejected() {
        let fx = fixture(&[400], 400, 1, 4, 8);
        let dev = device();
        fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 32);
    }

    #[test]
    fn split_seq_len_does_not_change_results() {
        let lens = [13usize, 29];
        let fx = fixture(&lens, 32, 2, 4, 9);
        let dev = device();
        let a = fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 4);
        let b = fused_short_attention(&dev, &fx.q_packed, &fx.k_packed, &fx.v_packed, &fx.idx, 48);
        assert_close(a.as_slice(), b.as_slice(), 1e-6);
    }
}
