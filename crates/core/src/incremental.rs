//! Incremental (token-by-token) decoding with a KV cache.
//!
//! The serving systems the paper targets decode autoregressively: each step
//! feeds one new token through the decoder, attending over everything
//! generated so far. Recomputing past keys/values every step would be
//! quadratic in practice, so a [`DecoderSession`] keeps per-layer **KV
//! caches**:
//!
//! * self-attention K/V of all generated tokens (appended each step),
//! * cross-attention K/V of the encoder memory, projected **once** at
//!   session creation (they are step-invariant — the same fusion-of-
//!   invariants idea as Algorithm III.2's prologue-loaded `max`/`sum`).
//!
//! Each step is a handful of `1×n` GEMV-shaped kernels plus two cache
//! attentions — all launched through the device, so the trace shows the
//! per-token cost profile a serving system would see.
//!
//! Equivalence guarantee (tested): feeding a target sequence one token at a
//! time produces bit-for-bit the same per-row outputs as the packed
//! teacher-forcing forward of [`crate::decoder::TransformerDecoder`] up to
//! float tolerance.

use crate::decoder::TransformerDecoder;
use crate::weights::DecoderLayerWeights;
use bt_device::{Device, KernelSpec};
use bt_kernels::layernorm::normalize_row;
use bt_kernels::softmax::softmax_row;
use bt_tensor::Tensor;

/// Per-layer self-attention cache: keys and values of every generated
/// token, stored `[heads, step, head]` row-major with amortized growth.
struct LayerCache {
    k: Vec<f32>,
    v: Vec<f32>,
    /// Tokens currently cached.
    len: usize,
}

impl LayerCache {
    fn new() -> Self {
        Self {
            k: Vec::new(),
            v: Vec::new(),
            len: 0,
        }
    }
}

/// A single-sequence incremental decoding session.
///
/// Construction projects the encoder memory into per-layer cross-attention
/// K/V once; each [`DecoderSession::step`] advances the sequence by one
/// token and returns its hidden state.
pub struct DecoderSession<'a> {
    decoder: &'a TransformerDecoder,
    /// Per-layer cross K/V: `[heads, mem_len, head]` planes.
    cross_kv: Vec<(Vec<f32>, Vec<f32>)>,
    cache: Vec<LayerCache>,
    mem_len: usize,
}

impl<'a> DecoderSession<'a> {
    /// Opens a session over one encoder memory sequence
    /// (`[mem_len, hidden]`, packed).
    ///
    /// # Panics
    /// Panics if `memory` is not `[mem_len, hidden]` for the decoder's
    /// hidden size.
    pub fn new(decoder: &'a TransformerDecoder, device: &Device, memory: &Tensor) -> Self {
        let hidden = decoder.config.hidden();
        let dims = memory.dims();
        assert_eq!(dims.len(), 2, "memory must be [mem_len, hidden]");
        assert_eq!(dims[1], hidden, "memory hidden mismatch");
        let mem_len = dims[0];
        let heads = decoder.config.heads;
        let head = decoder.config.head_size;

        // Project the memory once per layer: K|V = memory × W_kv + bias,
        // split to head planes.
        let cross_kv = decoder
            .weights
            .layers
            .iter()
            .map(|w| {
                let mut kv = vec![0.0f32; mem_len * 2 * hidden];
                device.launch(
                    bt_gemm::gemm_kernel_spec("incremental.cross_kv", mem_len, 2 * hidden, hidden, 4),
                    || {
                        bt_gemm::sgemm(
                            bt_gemm::GemmSpec::nn(),
                            mem_len,
                            2 * hidden,
                            hidden,
                            memory.as_slice(),
                            w.cross_kv_weight.as_slice(),
                            &mut kv,
                        )
                    },
                );
                let mut kp = vec![0.0f32; heads * mem_len * head];
                let mut vp = vec![0.0f32; heads * mem_len * head];
                for s in 0..mem_len {
                    for h in 0..heads {
                        for d in 0..head {
                            let c = h * head + d;
                            kp[(h * mem_len + s) * head + d] = kv[s * 2 * hidden + c] + w.cross_kv_bias[c];
                            vp[(h * mem_len + s) * head + d] =
                                kv[s * 2 * hidden + hidden + c] + w.cross_kv_bias[hidden + c];
                        }
                    }
                }
                (kp, vp)
            })
            .collect();

        Self {
            decoder,
            cross_kv,
            cache: (0..decoder.weights.layers.len()).map(|_| LayerCache::new()).collect(),
            mem_len,
        }
    }

    /// Tokens decoded so far.
    pub fn steps(&self) -> usize {
        self.cache.first().map_or(0, |c| c.len)
    }

    /// Advances the session by one token: `x` is the new token's input
    /// hidden state; returns its output hidden state.
    ///
    /// # Panics
    /// Panics if `x.len() != hidden`.
    pub fn step(&mut self, device: &Device, x: &[f32]) -> Vec<f32> {
        let config = self.decoder.config;
        let hidden = config.hidden();
        assert_eq!(x.len(), hidden, "token hidden mismatch");
        let heads = config.heads;
        let head = config.head_size;
        let scale = config.attention_scale();
        let eps = config.eps;
        let mem_len = self.mem_len;

        let mut h_state = x.to_vec();
        let layers: &[DecoderLayerWeights] = &self.decoder.weights.layers;
        for (w, (cache, (ck, cv))) in layers.iter().zip(self.cache.iter_mut().zip(self.cross_kv.iter())) {
            // --- self-attention over the cache + this token -----------
            let mut qkv = vec![0.0f32; 3 * hidden];
            gemv(
                device,
                "incremental.self_qkv",
                &h_state,
                w.self_qkv_weight.as_slice(),
                hidden,
                3 * hidden,
                &mut qkv,
            );
            for (v, &b) in qkv.iter_mut().zip(&w.self_qkv_bias) {
                *v += b;
            }
            // Append K/V to the cache ([heads, len+1, head] layout rebuild
            // amortized by per-head interleaving on read instead).
            let step = cache.len;
            cache.k.resize((step + 1) * hidden, 0.0);
            cache.v.resize((step + 1) * hidden, 0.0);
            cache.k[step * hidden..(step + 1) * hidden].copy_from_slice(&qkv[hidden..2 * hidden]);
            cache.v[step * hidden..(step + 1) * hidden].copy_from_slice(&qkv[2 * hidden..3 * hidden]);
            cache.len += 1;
            let klen = cache.len;

            let mut sa = vec![0.0f32; hidden];
            device.launch(
                KernelSpec::new("incremental.self_attn")
                    .flops((heads * klen * head * 4) as u64)
                    .reads((2 * klen * hidden * 4 + hidden * 4) as u64)
                    .writes((hidden * 4) as u64),
                || {
                    for h in 0..heads {
                        let q_row = &qkv[h * head..(h + 1) * head];
                        let mut logits = vec![0.0f32; klen];
                        for (j, l) in logits.iter_mut().enumerate() {
                            let k_row = &cache.k[j * hidden + h * head..j * hidden + (h + 1) * head];
                            let mut dot = 0.0f32;
                            for (&a, &b) in q_row.iter().zip(k_row) {
                                dot += a * b;
                            }
                            *l = dot * scale;
                        }
                        softmax_row(&mut logits);
                        let out = &mut sa[h * head..(h + 1) * head];
                        for (j, &p) in logits.iter().enumerate() {
                            let v_row = &cache.v[j * hidden + h * head..j * hidden + (h + 1) * head];
                            for (o, &vv) in out.iter_mut().zip(v_row) {
                                *o += p * vv;
                            }
                        }
                    }
                },
            );
            let mut attn = vec![0.0f32; hidden];
            gemv(
                device,
                "incremental.self_proj",
                &sa,
                w.self_out_weight.as_slice(),
                hidden,
                hidden,
                &mut attn,
            );
            for ((v, &r), &b) in attn.iter_mut().zip(&h_state).zip(&w.self_out_bias) {
                *v += r + b;
            }
            normalize_row(&mut attn, &w.ln0_gamma, &w.ln0_beta, eps);

            // --- cross-attention over the precomputed memory K/V -------
            let mut cq = vec![0.0f32; hidden];
            gemv(
                device,
                "incremental.cross_q",
                &attn,
                w.cross_q_weight.as_slice(),
                hidden,
                hidden,
                &mut cq,
            );
            for (v, &b) in cq.iter_mut().zip(&w.cross_q_bias) {
                *v += b;
            }
            let mut ca = vec![0.0f32; hidden];
            device.launch(
                KernelSpec::new("incremental.cross_attn")
                    .flops((heads * mem_len * head * 4) as u64)
                    .reads((2 * mem_len * hidden * 4 + hidden * 4) as u64)
                    .writes((hidden * 4) as u64),
                || {
                    for h in 0..heads {
                        let q_row = &cq[h * head..(h + 1) * head];
                        let mut logits = vec![0.0f32; mem_len];
                        for (j, l) in logits.iter_mut().enumerate() {
                            let k_row = &ck[(h * mem_len + j) * head..(h * mem_len + j + 1) * head];
                            let mut dot = 0.0f32;
                            for (&a, &b) in q_row.iter().zip(k_row) {
                                dot += a * b;
                            }
                            *l = dot * scale;
                        }
                        softmax_row(&mut logits);
                        let out = &mut ca[h * head..(h + 1) * head];
                        for (j, &p) in logits.iter().enumerate() {
                            let v_row = &cv[(h * mem_len + j) * head..(h * mem_len + j + 1) * head];
                            for (o, &vv) in out.iter_mut().zip(v_row) {
                                *o += p * vv;
                            }
                        }
                    }
                },
            );
            let mut cattn = vec![0.0f32; hidden];
            gemv(
                device,
                "incremental.cross_proj",
                &ca,
                w.cross_out_weight.as_slice(),
                hidden,
                hidden,
                &mut cattn,
            );
            for ((v, &r), &b) in cattn.iter_mut().zip(&attn).zip(&w.cross_out_bias) {
                *v += r + b;
            }
            normalize_row(&mut cattn, &w.ln1_gamma, &w.ln1_beta, eps);

            // --- FFN ----------------------------------------------------
            let inter = config.intermediate();
            let mut up = vec![0.0f32; inter];
            gemv(
                device,
                "incremental.ffn_up",
                &cattn,
                w.ffn_up_weight.as_slice(),
                hidden,
                inter,
                &mut up,
            );
            for (v, &b) in up.iter_mut().zip(&w.ffn_up_bias) {
                *v = bt_kernels::activation::gelu_tanh(*v + b);
            }
            let mut out = vec![0.0f32; hidden];
            gemv(
                device,
                "incremental.ffn_down",
                &up,
                w.ffn_down_weight.as_slice(),
                inter,
                hidden,
                &mut out,
            );
            for ((v, &r), &b) in out.iter_mut().zip(&cattn).zip(&w.ffn_down_bias) {
                *v += r + b;
            }
            normalize_row(&mut out, &w.ln2_gamma, &w.ln2_beta, eps);
            h_state = out;
        }
        h_state
    }
}

/// `1×n` GEMV launched as a kernel: `out = x · W` with `W: k×n` row-major.
fn gemv(device: &Device, name: &str, x: &[f32], w: &[f32], k: usize, n: usize, out: &mut [f32]) {
    device.launch(bt_gemm::gemm_kernel_spec(name, 1, n, k, 4), || {
        bt_gemm::sgemm(bt_gemm::GemmSpec::nn(), 1, n, k, x, w, out)
    });
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle-style index loops
mod tests {
    use super::*;
    use crate::config::BertConfig;
    use bt_device::CostModel;
    use bt_varlen::BatchMask;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    #[test]
    fn incremental_matches_teacher_forcing_forward() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 2, 7);
        let hidden = config.hidden();
        let tgt_len = 6;
        let mem_len = 4;
        let dev = device();

        // Full packed forward (batch of one).
        let tgt_mask = BatchMask::from_lens(vec![tgt_len], tgt_len).unwrap();
        let mem_mask = BatchMask::from_lens(vec![mem_len], mem_len).unwrap();
        let tgt = Tensor::randn([1, tgt_len, hidden], 1);
        let memory = Tensor::randn([1, mem_len, hidden], 2);
        let full = decoder.forward(&dev, &tgt, &tgt_mask, &memory, &mem_mask).unwrap();

        // Incremental session over the same memory.
        let mem_packed = memory.clone().reshape([mem_len, hidden]).unwrap();
        let mut session = DecoderSession::new(&decoder, &dev, &mem_packed);
        for s in 0..tgt_len {
            let x: Vec<f32> = (0..hidden).map(|h| tgt.at(&[0, s, h]).unwrap()).collect();
            let out = session.step(&dev, &x);
            for h in 0..hidden {
                let e = full.at(&[0, s, h]).unwrap();
                assert!((out[h] - e).abs() < 5e-3, "step {s}, dim {h}: {} vs {e}", out[h]);
            }
        }
        assert_eq!(session.steps(), tgt_len);
    }

    #[test]
    fn cross_kv_projected_once() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 3, 9);
        let dev = device();
        let memory = Tensor::randn([5, config.hidden()], 3);
        let mut session = DecoderSession::new(&decoder, &dev, &memory);
        let kv_launches_after_new = dev.trace().iter().filter(|r| r.name.contains("cross_kv")).count();
        assert_eq!(kv_launches_after_new, 3); // one per layer, at session open
        session.step(&dev, &vec![0.1; config.hidden()]);
        session.step(&dev, &vec![0.2; config.hidden()]);
        let kv_launches_after_steps = dev.trace().iter().filter(|r| r.name.contains("cross_kv")).count();
        assert_eq!(kv_launches_after_steps, 3, "steps must not re-project memory");
    }

    #[test]
    fn per_step_cost_grows_linearly_with_cache() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 11);
        let dev = device();
        let memory = Tensor::randn([4, config.hidden()], 5);
        let mut session = DecoderSession::new(&decoder, &dev, &memory);
        let mut self_attn_flops = Vec::new();
        for s in 0..8 {
            dev.reset();
            session.step(&dev, &vec![0.05 * s as f32; config.hidden()]);
            let f: u64 = dev
                .trace()
                .iter()
                .filter(|r| r.name.contains("self_attn"))
                .map(|r| r.cost.flops)
                .sum();
            self_attn_flops.push(f);
        }
        // flops at step t ∝ (t + 1).
        assert_eq!(self_attn_flops[3], self_attn_flops[0] * 4);
        assert_eq!(self_attn_flops[7], self_attn_flops[0] * 8);
    }

    #[test]
    #[should_panic(expected = "token hidden mismatch")]
    fn wrong_token_width_panics() {
        let config = BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 13);
        let dev = device();
        let memory = Tensor::randn([3, config.hidden()], 1);
        let mut session = DecoderSession::new(&decoder, &dev, &memory);
        session.step(&dev, &[0.0; 3]);
    }
}
