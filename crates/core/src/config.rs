//! Model hyper-parameters.

/// BERT encoder configuration.
///
/// The paper's "standard BERT Transformer configuration" (§III.B, §IV) is
/// 12 heads × head size 64 (hidden 768), FFN scale 4, 12 layers —
/// [`BertConfig::bert_base`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BertConfig {
    /// Number of attention heads.
    pub heads: usize,
    /// Dimensionality of each head (`d_k`).
    pub head_size: usize,
    /// FFN expansion factor (intermediate = `ffn_scale × hidden`).
    pub ffn_scale: usize,
    /// Number of stacked encoder layers.
    pub layers: usize,
    /// LayerNorm epsilon.
    pub eps: f32,
}

impl BertConfig {
    /// The paper's standard configuration: 12 heads, head size 64, FFN ×4,
    /// 12 layers.
    pub fn bert_base() -> Self {
        Self {
            heads: 12,
            head_size: 64,
            ffn_scale: 4,
            layers: 12,
            eps: 1e-6,
        }
    }

    /// A small configuration for unit tests and doc examples (hidden 16).
    pub fn tiny() -> Self {
        Self {
            heads: 2,
            head_size: 8,
            ffn_scale: 4,
            layers: 2,
            eps: 1e-6,
        }
    }

    /// Hidden dimension, `heads × head_size`.
    pub fn hidden(&self) -> usize {
        self.heads * self.head_size
    }

    /// FFN intermediate dimension, `ffn_scale × hidden`.
    pub fn intermediate(&self) -> usize {
        self.ffn_scale * self.hidden()
    }

    /// The attention scale `1/√d_k`.
    pub fn attention_scale(&self) -> f32 {
        1.0 / (self.head_size as f32).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_base_dimensions() {
        let c = BertConfig::bert_base();
        assert_eq!(c.hidden(), 768);
        assert_eq!(c.intermediate(), 3072);
        assert_eq!(c.layers, 12);
        assert!((c.attention_scale() - 0.125).abs() < 1e-7);
    }

    #[test]
    fn tiny_is_consistent() {
        let c = BertConfig::tiny();
        assert_eq!(c.hidden(), 16);
        assert_eq!(c.intermediate(), 64);
    }
}
