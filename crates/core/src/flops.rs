//! Table II — closed-form FLOP counts of a single-layer BERT Transformer.
//!
//! Notation follows the paper: `m = batch_size · max_seq_len`, `k = hidden`
//! (= head_num · head_size), `bs = batch_size`, and the average sequence
//! length is `α · max_seq_len`. Memory-bound operations are excluded, as in
//! the paper ("negligible compared with the listed modules").
//!
//! | module | Baseline | Zero padding | Zero padding + fused MHA |
//! |--------|----------|--------------|--------------------------|
//! | GEMM0  | `6mk²`   | `6(αm)k²`    | `6(αm)k²`                |
//! | MHA    | `4m²k/bs`| `4m²k/bs`    | `4(αm)²k/bs`             |
//! | GEMM1  | `2mk²`   | `2(αm)k²`    | `2(αm)k²`                |
//! | GEMM2  | `8mk²`   | `8(αm)k²`    | `8(αm)k²`                |
//! | GEMM3  | `8mk²`   | `8(αm)k²`    | `8(αm)k²`                |
//!
//! The fused-MHA row uses the paper's equal-length approximation
//! `Σ len_b² ≈ bs · (α·s)²`; [`mha_fused_exact`] gives the exact
//! per-sequence sum, which is what the device trace counts.

use bt_varlen::BatchMask;

/// FLOP counts of one encoder layer, per module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerFlops {
    /// QKV positioning encoding GEMM (`[m,k]×[k,3k]`).
    pub gemm0: u64,
    /// Both attention batched GEMMs (softmax excluded, as in the paper).
    pub mha: u64,
    /// Attention output projection (`[m,k]×[k,k]`).
    pub gemm1: u64,
    /// FFN up-projection (`[m,k]×[k,4k]`).
    pub gemm2: u64,
    /// FFN down-projection (`[m,4k]×[4k,k]`).
    pub gemm3: u64,
}

impl LayerFlops {
    /// Total FLOPs across the listed modules.
    pub fn total(&self) -> u64 {
        self.gemm0 + self.mha + self.gemm1 + self.gemm2 + self.gemm3
    }
}

/// Variant column of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlopVariant {
    /// Fully padded pipeline.
    Baseline,
    /// Zero-padding on all GEMMs except MHA (batched GEMM restriction).
    ZeroPadding,
    /// Zero padding everywhere, MHA via fused (grouped/short) kernels.
    ZeroPaddingFusedMha,
}

/// Table II for a batch described by `mask`, hidden size `k`.
///
/// `m` is taken as `mask.padded_words()` and the valid token count as the
/// exact `Σ len_b` (`= α·m`). The MHA entry under [`FlopVariant::ZeroPaddingFusedMha`]
/// uses the exact `Σ len_b²` ([`mha_fused_exact`]); the paper's formula
/// `4(αm)²k/bs` is the equal-length special case.
pub fn layer_flops(mask: &BatchMask, k: usize, variant: FlopVariant) -> LayerFlops {
    let m = mask.padded_words() as u64;
    let valid = mask.valid_words() as u64;
    let k = k as u64;
    let s = mask.max_seq_len() as u64;
    let rows = match variant {
        FlopVariant::Baseline => m,
        _ => valid,
    };
    let mha = match variant {
        FlopVariant::ZeroPaddingFusedMha => mha_fused_exact(mask, k as usize),
        // Padded batched MHA: per sequence, 2 GEMMs of 2·s·s·k flops.
        _ => 4 * mask.batch() as u64 * s * s * k,
    };
    LayerFlops {
        gemm0: 6 * rows * k * k,
        mha,
        gemm1: 2 * rows * k * k,
        gemm2: 8 * rows * k * k,
        gemm3: 8 * rows * k * k,
    }
}

/// Exact fused-MHA GEMM FLOPs: `Σ_b 4·len_b²·k`.
pub fn mha_fused_exact(mask: &BatchMask, k: usize) -> u64 {
    mask.seq_lens()
        .iter()
        .map(|&l| 4 * (l as u64) * (l as u64) * k as u64)
        .sum()
}

/// The paper's equal-length approximation of the fused-MHA row:
/// `4·(α·m)²·k / bs`.
pub fn mha_fused_paper_formula(mask: &BatchMask, k: usize) -> f64 {
    let m = mask.padded_words() as f64;
    let alpha = mask.alpha();
    let bs = mask.batch().max(1) as f64;
    4.0 * (alpha * m).powi(2) * k as f64 / bs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(lens: &[usize], max: usize) -> BatchMask {
        BatchMask::from_lens(lens.to_vec(), max).unwrap()
    }

    #[test]
    fn baseline_matches_paper_formulas() {
        let m = mask(&[128; 16], 128); // fully packed, α = 1
        let k = 768usize;
        let f = layer_flops(&m, k, FlopVariant::Baseline);
        let mm = (16 * 128) as u64;
        let kk = k as u64;
        assert_eq!(f.gemm0, 6 * mm * kk * kk);
        assert_eq!(f.gemm1, 2 * mm * kk * kk);
        assert_eq!(f.gemm2, 8 * mm * kk * kk);
        assert_eq!(f.gemm3, 8 * mm * kk * kk);
        // 4 m² k / bs
        assert_eq!(f.mha, 4 * mm * mm * kk / 16);
    }

    #[test]
    fn zero_padding_scales_gemms_not_mha() {
        let m = mask(&[64; 16], 128); // α = 0.5
        let k = 768;
        let base = layer_flops(&m, k, FlopVariant::Baseline);
        let zp = layer_flops(&m, k, FlopVariant::ZeroPadding);
        assert_eq!(zp.gemm0 * 2, base.gemm0);
        assert_eq!(zp.gemm2 * 2, base.gemm2);
        assert_eq!(zp.mha, base.mha); // batched GEMM restriction
    }

    #[test]
    fn fused_mha_scales_quadratically() {
        let m = mask(&[64; 16], 128); // α = 0.5, equal lengths
        let k = 768;
        let base = layer_flops(&m, k, FlopVariant::Baseline);
        let fused = layer_flops(&m, k, FlopVariant::ZeroPaddingFusedMha);
        assert_eq!(fused.mha * 4, base.mha); // α² = 1/4
                                             // Equal lengths: exact sum equals the paper formula.
        assert_eq!(fused.mha as f64, mha_fused_paper_formula(&m, k));
    }

    #[test]
    fn paper_formula_underestimates_unequal_lengths() {
        // Jensen: Σ len² ≥ bs·(mean)², strict for unequal lengths.
        let m = mask(&[10, 90], 100);
        let exact = mha_fused_exact(&m, 64) as f64;
        let approx = mha_fused_paper_formula(&m, 64);
        assert!(exact > approx);
    }

    #[test]
    fn alpha_06_saving_matches_paper_claim() {
        // Paper §III.D: at α = 0.6 the zero-padding algorithm accelerates
        // the (non-MHA) modules by turning m into 0.6m — a 24.7% end-to-end
        // gain. Check the FLOP-side arithmetic at seq 256 that motivates it:
        // non-MHA flops drop by exactly 40%.
        let m = mask(&[154; 16], 256); // ≈0.6 α (154/256 ≈ 0.602)
        let k = 768;
        let base = layer_flops(&m, k, FlopVariant::Baseline);
        let zp = layer_flops(&m, k, FlopVariant::ZeroPadding);
        let non_mha_base = base.total() - base.mha;
        let non_mha_zp = zp.total() - zp.mha;
        let ratio = non_mha_zp as f64 / non_mha_base as f64;
        assert!((ratio - 154.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn totals_add_up() {
        let m = mask(&[7, 13], 16);
        let f = layer_flops(&m, 32, FlopVariant::Baseline);
        assert_eq!(f.total(), f.gemm0 + f.mha + f.gemm1 + f.gemm2 + f.gemm3);
    }
}
