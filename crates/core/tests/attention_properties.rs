//! Property-based cross-checks of every attention implementation against
//! the straight-line reference, on random variable-length batches.
#![allow(clippy::needless_range_loop)] // oracle-style index loops

use bt_core::attention::{
    batched_attention, causal_fused_attention, causal_reference_attention, flash_attention, fused_attention,
    naive_attention, reference_attention,
};
use bt_device::{CostModel, Device};
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex};
use proptest::prelude::*;

fn device() -> Device {
    Device::with_model(CostModel::unit())
}

/// Builds consistent padded + packed Q/K/V for random lengths.
struct Fixture {
    idx: PackingIndex,
    q_pad: Tensor,
    k_pad: Tensor,
    v_pad: Tensor,
    q_pk: Tensor,
    k_pk: Tensor,
    v_pk: Tensor,
    scale: f32,
}

fn fixture(lens: &[usize], heads: usize, head: usize, seed: u64) -> Fixture {
    let max = lens.iter().copied().max().unwrap_or(0).max(1);
    let mask = BatchMask::from_lens(lens.to_vec(), max).unwrap();
    let idx = PackingIndex::from_mask(&mask);
    let batch = lens.len();
    let scale = 1.0 / (head as f32).sqrt();
    let valid = idx.valid_words();
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut q_pad = Tensor::zeros([batch, heads, max, head]);
    let mut k_pad = Tensor::zeros([batch, heads, max, head]);
    let mut v_pad = Tensor::zeros([batch, heads, max, head]);
    let mut q_pk = Tensor::zeros([heads, valid, head]);
    let mut k_pk = Tensor::zeros([heads, valid, head]);
    let mut v_pk = Tensor::zeros([heads, valid, head]);
    for b in 0..batch {
        for s in 0..lens[b] {
            let w = idx.seq_offset(b) + s;
            for h in 0..heads {
                for d in 0..head {
                    let (qv, kv, vv) = (rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
                    q_pad.set(&[b, h, s, d], qv).unwrap();
                    k_pad.set(&[b, h, s, d], kv).unwrap();
                    v_pad.set(&[b, h, s, d], vv).unwrap();
                    q_pk.set(&[h, w, d], qv * scale).unwrap();
                    k_pk.set(&[h, w, d], kv).unwrap();
                    v_pk.set(&[h, w, d], vv).unwrap();
                }
            }
        }
    }
    Fixture {
        idx,
        q_pad,
        k_pad,
        v_pad,
        q_pk,
        k_pk,
        v_pk,
        scale,
    }
}

fn pack_ctx(ctx: &Tensor, idx: &PackingIndex) -> Vec<f32> {
    let dims = ctx.dims();
    let (heads, head) = (dims[1], dims[3]);
    let hidden = heads * head;
    let mut out = vec![0.0f32; idx.valid_words() * hidden];
    for b in 0..idx.batch() {
        for s in 0..idx.seq_len(b) {
            let w = idx.seq_offset(b) + s;
            for h in 0..heads {
                for d in 0..head {
                    out[w * hidden + h * head + d] = ctx.at(&[b, h, s, d]).unwrap();
                }
            }
        }
    }
    out
}

fn max_diff_valid(a: &Tensor, reference: &Tensor, lens: &[usize]) -> f32 {
    let dims = a.dims();
    let (heads, head) = (dims[1], dims[3]);
    let mut worst = 0.0f32;
    for (b, &len) in lens.iter().enumerate() {
        for h in 0..heads {
            for s in 0..len {
                for d in 0..head {
                    worst = worst.max((a.at(&[b, h, s, d]).unwrap() - reference.at(&[b, h, s, d]).unwrap()).abs());
                }
            }
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_all_padded_variants_match_reference(
        lens in proptest::collection::vec(0usize..24, 1..5),
        heads in 1usize..4,
        head in 1usize..9,
        seed in 0u64..1000,
    ) {
        let fx = fixture(&lens, heads, head, seed);
        let dev = device();
        let reference = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        let naive = naive_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, 0.0);
        prop_assert!(max_diff_valid(&naive, &reference, &lens) < 1e-3);
        for zeropad in [false, true] {
            let batched = batched_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale, zeropad);
            prop_assert!(max_diff_valid(&batched, &reference, &lens) < 1e-3);
        }
        let flash = flash_attention(&dev, &fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        prop_assert!(max_diff_valid(&flash, &reference, &lens) < 1e-3);
    }

    #[test]
    fn prop_fused_dispatcher_matches_reference(
        lens in proptest::collection::vec(0usize..40, 1..5),
        heads in 1usize..4,
        head in 1usize..9,
        seed in 0u64..1000,
    ) {
        let fx = fixture(&lens, heads, head, seed);
        let dev = device();
        let reference = reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        let expect = pack_ctx(&reference, &fx.idx);
        let fused = fused_attention(&dev, &fx.q_pk, &fx.k_pk, &fx.v_pk, &fx.idx);
        let worst = fused
            .as_slice()
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(worst < 1e-3, "worst {worst}");
    }

    #[test]
    fn prop_causal_dispatcher_matches_causal_reference(
        lens in proptest::collection::vec(1usize..30, 1..4),
        heads in 1usize..3,
        head in 1usize..9,
        seed in 0u64..1000,
    ) {
        let fx = fixture(&lens, heads, head, seed);
        let dev = device();
        let reference = causal_reference_attention(&fx.q_pad, &fx.k_pad, &fx.v_pad, &lens, fx.scale);
        let expect = pack_ctx(&reference, &fx.idx);
        let fused = causal_fused_attention(&dev, &fx.q_pk, &fx.k_pk, &fx.v_pk, &fx.idx);
        let worst = fused
            .as_slice()
            .iter()
            .zip(&expect)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        prop_assert!(worst < 1e-3, "worst {worst}");
    }

    #[test]
    fn prop_attention_rows_are_convex_combinations(
        lens in proptest::collection::vec(1usize..16, 1..4),
        seed in 0u64..1000,
    ) {
        // With V ≡ c per head plane, every valid output equals c.
        let heads = 2;
        let head = 4;
        let fx = fixture(&lens, heads, head, seed);
        let dev = device();
        let v_const = Tensor::filled([heads, fx.idx.valid_words(), head], 2.5);
        let out = fused_attention(&dev, &fx.q_pk, &fx.k_pk, &v_const, &fx.idx);
        for &x in out.as_slice() {
            prop_assert!((x - 2.5).abs() < 1e-4, "{x}");
        }
    }
}
