//! The [`Device`] handle and its execution trace.

use crate::cost::{CostModel, KernelCost, KernelSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One completed kernel launch.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name as declared by the caller (bucketed by prefix in reports).
    pub name: String,
    /// Declared cost counters.
    pub cost: KernelCost,
    /// Measured CPU wall time of the kernel body.
    pub wall: Duration,
    /// Roofline-modeled GPU time in seconds (see [`CostModel`]).
    pub modeled: f64,
}

/// Per-launch framework tax applied uniformly to every kernel on a device —
/// how the competitor simulations express "this runtime dispatches slower /
/// generates less-tuned kernels" without touching the kernels themselves.
///
/// `bw_derate`/`flops_derate` multiply into each launch's own derates; since
/// the roofline takes `max(compute, memory)`, a bandwidth derate effectively
/// taxes memory-bound kernels and a FLOP derate taxes compute-bound ones.
#[derive(Debug, Clone, Copy)]
pub struct LaunchTax {
    /// Host-side dispatch overhead per kernel, seconds.
    pub dispatch: f64,
    /// Achieved-bandwidth multiplier (≤ 1) for this runtime's kernels.
    pub bw_derate: f64,
    /// Achieved-FLOP multiplier (≤ 1) for this runtime's GEMM backend.
    pub flops_derate: f64,
}

impl Default for LaunchTax {
    fn default() -> Self {
        Self {
            dispatch: 0.0,
            bw_derate: 1.0,
            flops_derate: 1.0,
        }
    }
}

/// A simulated accelerator: runs kernels, records an execution trace, and
/// models each launch with a roofline [`CostModel`].
///
/// `Device` is `Sync`; kernels may be launched concurrently, and kernel
/// bodies usually parallelize internally with rayon. The trace order is the
/// completion order under concurrent launches (launch order when, as in this
/// workspace's pipelines, kernels are issued sequentially).
pub struct Device {
    model: CostModel,
    tax: LaunchTax,
    trace: Mutex<Vec<KernelRecord>>,
    total_flops: AtomicU64,
    total_bytes: AtomicU64,
    launches: AtomicU64,
    metrics: Mutex<HashMap<String, u64>>,
    tracing: bool,
}

impl Device {
    /// Creates a device with the default A100 roofline and tracing enabled.
    pub fn new() -> Self {
        Self::with_model(CostModel::a100())
    }

    /// Creates a device with a specific cost model.
    pub fn with_model(model: CostModel) -> Self {
        Self {
            model,
            tax: LaunchTax::default(),
            trace: Mutex::new(Vec::new()),
            total_flops: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            launches: AtomicU64::new(0),
            metrics: Mutex::new(HashMap::new()),
            tracing: true,
        }
    }

    /// Creates a device applying a per-launch framework tax on top of the
    /// cost model (used by the framework strategy simulations).
    pub fn with_tax(model: CostModel, tax: LaunchTax) -> Self {
        assert!(tax.bw_derate > 0.0 && tax.bw_derate <= 1.0, "bw_derate in (0,1]");
        assert!(
            tax.flops_derate > 0.0 && tax.flops_derate <= 1.0,
            "flops_derate in (0,1]"
        );
        Self {
            tax,
            ..Self::with_model(model)
        }
    }

    /// Creates a device that keeps aggregate counters but no per-kernel
    /// trace, for benchmarks where trace pushes would pollute timings.
    pub fn untraced(model: CostModel) -> Self {
        Self {
            tracing: false,
            ..Self::with_model(model)
        }
    }

    /// The device's cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Runs a kernel body, recording its declared cost and measured time.
    ///
    /// This is the single entry point every kernel in the workspace goes
    /// through — the launch discipline that makes the trace a complete audit
    /// of arithmetic and memory traffic.
    pub fn launch<R>(&self, mut spec: KernelSpec, body: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = {
            // Mirror the kernel into the telemetry rings under its trace
            // name so `btx profile` can join measured spans against the
            // modeled `KernelRecord`s bucket by bucket.
            let _span = if self.tracing {
                bt_obs::span_dyn(&spec.name)
            } else {
                bt_obs::SpanGuard::none()
            };
            body()
        };
        let wall = start.elapsed();
        self.total_flops.fetch_add(spec.cost.flops, Ordering::Relaxed);
        self.total_bytes.fetch_add(spec.cost.bytes(), Ordering::Relaxed);
        self.launches.fetch_add(1, Ordering::Relaxed);
        // Fold in the device-wide framework tax.
        spec.bw_derate *= self.tax.bw_derate;
        spec.flops_derate *= self.tax.flops_derate;
        spec.host_overhead += self.tax.dispatch;
        let modeled = self.model.kernel_time(&spec);
        if self.tracing {
            self.trace.lock().push(KernelRecord {
                name: spec.name,
                cost: spec.cost,
                wall,
                modeled,
            });
        }
        out
    }

    /// Adds `n` to a named free-form metric (e.g. grouped-GEMM scheduler
    /// visits, packed-token counts). Metrics are for diagnostics and
    /// ablations; they do not affect modeled time.
    pub fn bump_metric(&self, name: &str, n: u64) {
        *self.metrics.lock().entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads a named metric (0 if never bumped).
    pub fn metric(&self, name: &str) -> u64 {
        self.metrics.lock().get(name).copied().unwrap_or(0)
    }

    /// Total FLOPs declared across all launches.
    pub fn total_flops(&self) -> u64 {
        self.total_flops.load(Ordering::Relaxed)
    }

    /// Total bytes (read + written) declared across all launches.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Number of kernel launches.
    pub fn launches(&self) -> u64 {
        self.launches.load(Ordering::Relaxed)
    }

    /// Snapshot of the execution trace.
    pub fn trace(&self) -> Vec<KernelRecord> {
        self.trace.lock().clone()
    }

    /// Sum of modeled kernel times over the whole trace, in seconds.
    pub fn modeled_total(&self) -> f64 {
        self.trace.lock().iter().map(|r| r.modeled).sum()
    }

    /// Sum of measured wall times over the whole trace.
    pub fn wall_total(&self) -> Duration {
        self.trace.lock().iter().map(|r| r.wall).sum()
    }

    /// Clears the trace, counters, and metrics.
    pub fn reset(&self) {
        self.trace.lock().clear();
        self.total_flops.store(0, Ordering::Relaxed);
        self.total_bytes.store(0, Ordering::Relaxed);
        self.launches.store(0, Ordering::Relaxed);
        self.metrics.lock().clear();
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_body_and_records() {
        let dev = Device::with_model(CostModel::unit());
        let out = dev.launch(KernelSpec::new("k1").flops(7).reads(3).writes(2), || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(dev.total_flops(), 7);
        assert_eq!(dev.total_bytes(), 5);
        assert_eq!(dev.launches(), 1);
        let trace = dev.trace();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].name, "k1");
        // Unit model: memory-bound side = 5 bytes / 1 B/s.
        assert_eq!(trace[0].modeled, 7.0f64.max(5.0));
    }

    #[test]
    fn untraced_keeps_counters_only() {
        let dev = Device::untraced(CostModel::unit());
        dev.launch(KernelSpec::new("k").flops(1), || ());
        assert_eq!(dev.launches(), 1);
        assert!(dev.trace().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("k").flops(1), || ());
        dev.bump_metric("visits", 3);
        dev.reset();
        assert_eq!(dev.launches(), 0);
        assert_eq!(dev.metric("visits"), 0);
        assert!(dev.trace().is_empty());
    }

    #[test]
    fn metrics_accumulate() {
        let dev = Device::new();
        dev.bump_metric("scheduler_visits", 10);
        dev.bump_metric("scheduler_visits", 5);
        assert_eq!(dev.metric("scheduler_visits"), 15);
        assert_eq!(dev.metric("missing"), 0);
    }

    #[test]
    fn concurrent_launches_are_safe() {
        let dev = Device::with_model(CostModel::unit());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        dev.launch(KernelSpec::new("k").flops(1).reads(1), || ());
                    }
                });
            }
        });
        assert_eq!(dev.launches(), 800);
        assert_eq!(dev.total_flops(), 800);
        assert_eq!(dev.trace().len(), 800);
    }

    #[test]
    fn launch_tax_applies_to_every_kernel() {
        let dev = Device::with_tax(
            CostModel::unit(),
            LaunchTax {
                dispatch: 2.0,
                bw_derate: 0.5,
                flops_derate: 1.0,
            },
        );
        dev.launch(KernelSpec::new("k").reads(10), || ());
        // 10 bytes at 0.5 bandwidth = 20 s, plus 2 s dispatch.
        assert_eq!(dev.modeled_total(), 22.0);
    }

    #[test]
    #[should_panic(expected = "bw_derate")]
    fn invalid_tax_rejected() {
        Device::with_tax(
            CostModel::unit(),
            LaunchTax {
                dispatch: 0.0,
                bw_derate: 0.0,
                flops_derate: 1.0,
            },
        );
    }

    #[test]
    fn modeled_total_sums_trace() {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("a").reads(10), || ());
        dev.launch(KernelSpec::new("b").reads(20), || ());
        assert_eq!(dev.modeled_total(), 30.0);
    }
}
