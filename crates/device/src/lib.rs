//! # bt-device — kernel-launch substrate, trace, and roofline cost model
//!
//! The ByteTransformer paper's optimizations are *structural*: fuse two
//! kernels into one (halve the global-memory round trips), pack the token
//! grid (shrink every kernel's iteration space), pick a smarter grouped-GEMM
//! scheduler (fewer scheduler visits). To evaluate those structures without
//! an A100, this crate provides:
//!
//! * [`Device`] — a "GPU" handle. Every kernel in the workspace executes
//!   through [`Device::launch`], which runs the (rayon-parallel) kernel body,
//!   measures wall time, and appends a [`KernelRecord`] to the execution
//!   trace.
//! * [`KernelSpec`] — the per-launch cost declaration: FLOPs performed,
//!   bytes read, bytes written, plus optional derates for less-tuned kernels.
//!   Kernels declare *exact* counts (asserted against closed-form totals in
//!   the test suite), so the trace doubles as an arithmetic/traffic audit.
//! * [`CostModel`] — an A100 roofline: per-kernel modeled time
//!   `max(flops / peak_flops, bytes / mem_bw) + launch_overhead`. Summing
//!   modeled times over the trace reproduces the *shape* of the paper's GPU
//!   measurements (who wins, by what factor, where crossovers fall); absolute
//!   values are not claimed.
//! * [`TraceReport`] — grouping/aggregation of the trace by pipeline stage,
//!   used directly by the Fig. 3 breakdown and every figure harness.
//!
//! The device is thread-safe; kernels may be launched from any thread and the
//! kernel bodies themselves typically fan out over rayon.

#![warn(missing_docs)]

mod cost;
mod device;
mod report;

pub use cost::{CostModel, KernelCost, KernelSpec};
pub use device::{Device, KernelRecord, LaunchTax};
pub use report::{trace_to_csv, trace_to_jsonl, BucketStats, TraceReport};
