//! Per-kernel cost declarations and the A100 roofline model.

/// Raw cost counters for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Floating-point operations performed (multiply-adds count as 2).
    pub flops: u64,
    /// Bytes read from "global memory" (the big tensors a GPU kernel would
    /// stream from HBM — tile-local scratch does not count, exactly as shared
    /// memory does not count on the GPU).
    pub bytes_read: u64,
    /// Bytes written to global memory.
    pub bytes_written: u64,
}

impl KernelCost {
    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Component-wise sum of two costs.
    pub fn add(&self, other: &KernelCost) -> KernelCost {
        KernelCost {
            flops: self.flops + other.flops,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
        }
    }
}

/// A kernel launch declaration: name, cost, and optional derates.
///
/// Built with a fluent API:
/// ```
/// use bt_device::KernelSpec;
/// let spec = KernelSpec::new("encoder.layernorm0")
///     .flops(100)
///     .reads(4096)
///     .writes(4096);
/// assert_eq!(spec.cost.bytes(), 8192);
/// ```
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name; harnesses bucket names by prefix (e.g. `"encoder.gemm0"`).
    pub name: String,
    /// Declared cost counters.
    pub cost: KernelCost,
    /// Multiplier (≤ 1.0) on *achieved* memory bandwidth for this kernel.
    /// Used by framework simulations to model less-tuned kernels (e.g. XLA
    /// codegen vs. hand-tuned CUDA); our own kernels use 1.0.
    pub bw_derate: f64,
    /// Multiplier (≤ 1.0) on achieved FLOP throughput for this kernel.
    pub flops_derate: f64,
    /// Extra fixed host-side overhead in seconds added to the modeled time
    /// (framework dispatch/launch tax on top of the raw driver launch).
    pub host_overhead: f64,
}

impl KernelSpec {
    /// Starts a spec with zero cost and no derates.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cost: KernelCost::default(),
            bw_derate: 1.0,
            flops_derate: 1.0,
            host_overhead: 0.0,
        }
    }

    /// Sets the FLOP count.
    pub fn flops(mut self, flops: u64) -> Self {
        self.cost.flops = flops;
        self
    }

    /// Sets the bytes read from global memory.
    pub fn reads(mut self, bytes: u64) -> Self {
        self.cost.bytes_read = bytes;
        self
    }

    /// Sets the bytes written to global memory.
    pub fn writes(mut self, bytes: u64) -> Self {
        self.cost.bytes_written = bytes;
        self
    }

    /// Derates achieved bandwidth for this kernel (0 < derate ≤ 1).
    pub fn bw_derate(mut self, derate: f64) -> Self {
        assert!(derate > 0.0 && derate <= 1.0, "bw_derate must be in (0, 1]");
        self.bw_derate = derate;
        self
    }

    /// Derates achieved FLOP throughput for this kernel (0 < derate ≤ 1).
    pub fn flops_derate(mut self, derate: f64) -> Self {
        assert!(derate > 0.0 && derate <= 1.0, "flops_derate must be in (0, 1]");
        self.flops_derate = derate;
        self
    }

    /// Adds fixed host-side dispatch overhead (seconds) to the modeled time.
    pub fn host_overhead(mut self, seconds: f64) -> Self {
        self.host_overhead = seconds;
        self
    }
}

/// A roofline model of a GPU: modeled kernel time is
/// `max(flops / peak_flops, bytes / mem_bw) + launch_overhead (+ host)`.
///
/// Calibration constants are documented in DESIGN.md §6 and are deliberately
/// few: an effective FLOP rate, an effective memory bandwidth, and a launch
/// overhead. Everything else in the reproduction's performance story comes
/// from *counted* flops/bytes/launches, not from tunables.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Effective dense-math throughput in FLOP/s.
    pub peak_flops: f64,
    /// Effective memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fixed per-launch overhead in seconds.
    pub launch_overhead: f64,
}

impl CostModel {
    /// NVIDIA A100 SXM roofline used throughout the reproduction:
    /// FP16 tensor-core peak 312 TFLOP/s at a 0.55 achieved fraction
    /// (typical cuBLAS efficiency at BERT shapes), HBM2e 1555 GB/s at a
    /// 0.85 achieved fraction, 5 µs per kernel launch.
    pub fn a100() -> Self {
        Self {
            peak_flops: 312e12 * 0.55,
            mem_bw: 1555e9 * 0.85,
            launch_overhead: 5e-6,
        }
    }

    /// A unit-speed model (1 FLOP/s, 1 byte/s, zero launch cost) for tests
    /// that want modeled time to equal raw counters.
    pub fn unit() -> Self {
        Self {
            peak_flops: 1.0,
            mem_bw: 1.0,
            launch_overhead: 0.0,
        }
    }

    /// Modeled execution time of one launch, in seconds.
    pub fn kernel_time(&self, spec: &KernelSpec) -> f64 {
        let compute = spec.cost.flops as f64 / (self.peak_flops * spec.flops_derate);
        let memory = spec.cost.bytes() as f64 / (self.mem_bw * spec.bw_derate);
        compute.max(memory) + self.launch_overhead + spec.host_overhead
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_takes_max_of_compute_and_memory() {
        let m = CostModel {
            peak_flops: 100.0,
            mem_bw: 10.0,
            launch_overhead: 1.0,
        };
        // Memory-bound: 40 bytes / 10 B/s = 4 s vs 100 flops / 100 = 1 s.
        let spec = KernelSpec::new("k").flops(100).reads(30).writes(10);
        assert_eq!(m.kernel_time(&spec), 4.0 + 1.0);
        // Compute-bound case.
        let spec = KernelSpec::new("k").flops(1000).reads(10);
        assert_eq!(m.kernel_time(&spec), 10.0 + 1.0);
    }

    #[test]
    fn derates_slow_the_kernel_down() {
        let m = CostModel::unit();
        let base = KernelSpec::new("k").reads(100);
        let derated = KernelSpec::new("k").reads(100).bw_derate(0.5);
        assert!(m.kernel_time(&derated) > m.kernel_time(&base));
        assert_eq!(m.kernel_time(&derated), 200.0);
    }

    #[test]
    fn host_overhead_is_additive() {
        let m = CostModel::unit();
        let spec = KernelSpec::new("k").reads(10).host_overhead(5.0);
        assert_eq!(m.kernel_time(&spec), 15.0);
    }

    #[test]
    fn cost_addition() {
        let a = KernelCost {
            flops: 1,
            bytes_read: 2,
            bytes_written: 3,
        };
        let b = KernelCost {
            flops: 10,
            bytes_read: 20,
            bytes_written: 30,
        };
        let c = a.add(&b);
        assert_eq!(c.flops, 11);
        assert_eq!(c.bytes(), 55);
    }

    #[test]
    #[should_panic(expected = "bw_derate")]
    fn invalid_derate_panics() {
        KernelSpec::new("k").bw_derate(0.0);
    }

    #[test]
    fn a100_is_sane() {
        let m = CostModel::a100();
        // A 1 GB memory-bound kernel should take ~0.76 ms.
        let spec = KernelSpec::new("k").reads(1 << 30);
        let t = m.kernel_time(&spec);
        assert!(t > 5e-4 && t < 2e-3, "modeled {t}");
    }
}
