//! Trace aggregation: grouping kernel records into pipeline-stage buckets.
//!
//! The paper's Fig. 3 reports the single-layer BERT breakdown as percentages
//! per module (GEMM0..3, attention, layernorm0/1, others). [`TraceReport`]
//! reproduces exactly that view from a [`Device`](crate::Device) trace.

use crate::device::KernelRecord;
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregated statistics for one bucket of kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketStats {
    /// Number of launches in the bucket.
    pub launches: u64,
    /// Total FLOPs.
    pub flops: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total measured wall time.
    pub wall: Duration,
    /// Total modeled GPU time (seconds).
    pub modeled: f64,
}

/// A bucketed view over an execution trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    buckets: BTreeMap<String, BucketStats>,
    total: BucketStats,
}

impl TraceReport {
    /// Builds a report, assigning each record to the bucket returned by
    /// `bucket_of`. Returning `None` drops the record from the report.
    pub fn new(trace: &[KernelRecord], mut bucket_of: impl FnMut(&KernelRecord) -> Option<String>) -> Self {
        let mut buckets: BTreeMap<String, BucketStats> = BTreeMap::new();
        let mut total = BucketStats::default();
        for rec in trace {
            let Some(bucket) = bucket_of(rec) else {
                continue;
            };
            let stats = buckets.entry(bucket).or_default();
            for s in [stats, &mut total] {
                s.launches += 1;
                s.flops += rec.cost.flops;
                s.bytes += rec.cost.bytes();
                s.wall += rec.wall;
                s.modeled += rec.modeled;
            }
        }
        Self { buckets, total }
    }

    /// Builds a report bucketed by the kernel-name prefix before the first
    /// `'.'` (the workspace naming convention is `"stage.detail"`).
    pub fn by_prefix(trace: &[KernelRecord]) -> Self {
        Self::new(trace, |r| Some(r.name.split('.').next().unwrap_or(&r.name).to_string()))
    }

    /// The buckets, sorted by name.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &BucketStats)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stats for one bucket, if present.
    pub fn bucket(&self, name: &str) -> Option<&BucketStats> {
        self.buckets.get(name)
    }

    /// Totals across all bucketed records.
    pub fn total(&self) -> &BucketStats {
        &self.total
    }

    /// Fraction of total modeled time spent in `bucket` (0.0 if absent or
    /// the trace is empty).
    pub fn modeled_fraction(&self, bucket: &str) -> f64 {
        if self.total.modeled == 0.0 {
            return 0.0;
        }
        self.buckets.get(bucket).map_or(0.0, |b| b.modeled / self.total.modeled)
    }

    /// Renders a fixed-width table of the report (modeled ms, wall ms, %,
    /// GFLOP, GB per bucket) — the output format used by the figure
    /// harnesses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>10} {:>8} {:>10} {:>10}\n",
            "bucket", "launches", "modeled_ms", "wall_ms", "pct", "GFLOP", "GB"
        ));
        for (name, b) in &self.buckets {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12.4} {:>10.3} {:>7.1}% {:>10.3} {:>10.4}\n",
                name,
                b.launches,
                b.modeled * 1e3,
                b.wall.as_secs_f64() * 1e3,
                self.modeled_fraction(name) * 100.0,
                b.flops as f64 / 1e9,
                b.bytes as f64 / 1e9,
            ));
        }
        let t = &self.total;
        out.push_str(&format!(
            "{:<24} {:>9} {:>12.4} {:>10.3} {:>7.1}% {:>10.3} {:>10.4}\n",
            "TOTAL",
            t.launches,
            t.modeled * 1e3,
            t.wall.as_secs_f64() * 1e3,
            100.0,
            t.flops as f64 / 1e9,
            t.bytes as f64 / 1e9,
        ));
        out
    }
}

/// RFC 4180-style field quoting: wrap in quotes (doubling inner quotes)
/// when the field contains a comma, quote, or line break.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Serializes a trace as CSV (`name,flops,bytes_read,bytes_written,wall_us,
/// modeled_us`) for offline analysis/plotting. Names containing commas,
/// quotes, or newlines are RFC 4180-quoted.
pub fn trace_to_csv(trace: &[KernelRecord]) -> String {
    let mut out = String::from("name,flops,bytes_read,bytes_written,wall_us,modeled_us\n");
    for r in trace {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3}\n",
            csv_field(&r.name),
            r.cost.flops,
            r.cost.bytes_read,
            r.cost.bytes_written,
            r.wall.as_secs_f64() * 1e6,
            r.modeled * 1e6,
        ));
    }
    out
}

/// Serializes a trace as JSON lines (one kernel record per line), suitable
/// for `jq`-style processing. Kernel names in this workspace contain no
/// characters requiring JSON escaping, but quotes, backslashes, and
/// control characters are escaped defensively anyway.
pub fn trace_to_jsonl(trace: &[KernelRecord]) -> String {
    let mut out = String::new();
    for r in trace {
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"flops\":{},\"bytes_read\":{},\"bytes_written\":{},\"wall_us\":{:.3},\"modeled_us\":{:.3}}}\n",
            bt_obs::profile::json_escape(&r.name),
            r.cost.flops,
            r.cost.bytes_read,
            r.cost.bytes_written,
            r.wall.as_secs_f64() * 1e6,
            r.modeled * 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, KernelSpec};
    use crate::device::Device;

    fn sample_device() -> Device {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("gemm0.qkv").flops(100).reads(10), || ());
        dev.launch(KernelSpec::new("attention.qk").flops(50).reads(5), || ());
        dev.launch(KernelSpec::new("attention.pv").flops(50).reads(5), || ());
        dev.launch(KernelSpec::new("layernorm0.fused").reads(40), || ());
        dev
    }

    #[test]
    fn prefix_bucketing() {
        let dev = sample_device();
        let report = TraceReport::by_prefix(&dev.trace());
        assert_eq!(report.bucket("attention").unwrap().launches, 2);
        assert_eq!(report.bucket("attention").unwrap().flops, 100);
        assert_eq!(report.bucket("gemm0").unwrap().flops, 100);
        assert_eq!(report.total().launches, 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let dev = sample_device();
        let report = TraceReport::by_prefix(&dev.trace());
        let sum: f64 = ["gemm0", "attention", "layernorm0"]
            .iter()
            .map(|b| report.modeled_fraction(b))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(report.modeled_fraction("missing"), 0.0);
    }

    #[test]
    fn custom_bucketing_can_drop_records() {
        let dev = sample_device();
        let report = TraceReport::new(&dev.trace(), |r| {
            r.name.starts_with("attention").then(|| "mha".to_string())
        });
        assert_eq!(report.total().launches, 2);
        assert_eq!(report.bucket("mha").unwrap().flops, 100);
    }

    #[test]
    fn empty_trace_renders() {
        let report = TraceReport::by_prefix(&[]);
        assert_eq!(report.total().launches, 0);
        assert!(report.render().contains("TOTAL"));
        assert_eq!(report.modeled_fraction("x"), 0.0);
    }

    #[test]
    fn render_contains_buckets() {
        let dev = sample_device();
        let text = TraceReport::by_prefix(&dev.trace()).render();
        assert!(text.contains("attention"));
        assert!(text.contains("gemm0"));
    }

    #[test]
    fn csv_export_round_numbers() {
        let dev = sample_device();
        let csv = trace_to_csv(&dev.trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 kernels
        assert!(lines[0].starts_with("name,flops"));
        assert!(lines[1].starts_with("gemm0.qkv,100,10,0,"));
    }

    #[test]
    fn jsonl_export_is_line_per_kernel() {
        let dev = sample_device();
        let jsonl = trace_to_jsonl(&dev.trace());
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"flops\":"));
        }
    }

    #[test]
    fn jsonl_escapes_quotes() {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("weird\"name"), || ());
        let jsonl = trace_to_jsonl(&dev.trace());
        assert!(jsonl.contains("weird\\\"name"));
    }

    /// Minimal RFC 4180 parser for the round-trip tests: splits one CSV
    /// line into fields, honoring quoted fields with doubled quotes.
    fn parse_csv_line(line: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut chars = line.chars().peekable();
        let mut quoted = false;
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                '"' if cur.is_empty() => quoted = true,
                ',' if !quoted => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
        fields.push(cur);
        fields
    }

    #[test]
    fn csv_round_trips_field_values() {
        let dev = sample_device();
        let trace = dev.trace();
        let csv = trace_to_csv(&trace);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), trace.len() + 1);
        for (rec, line) in trace.iter().zip(&lines[1..]) {
            let fields = parse_csv_line(line);
            assert_eq!(fields.len(), 6);
            assert_eq!(fields[0], rec.name);
            assert_eq!(fields[1].parse::<u64>().unwrap(), rec.cost.flops);
            assert_eq!(fields[2].parse::<u64>().unwrap(), rec.cost.bytes_read);
            assert_eq!(fields[3].parse::<u64>().unwrap(), rec.cost.bytes_written);
            let wall_us: f64 = fields[4].parse().unwrap();
            assert!((wall_us - rec.wall.as_secs_f64() * 1e6).abs() < 1e-3);
            let modeled_us: f64 = fields[5].parse().unwrap();
            assert!((modeled_us - rec.modeled * 1e6).abs() < 1e-3);
        }
    }

    #[test]
    fn csv_quotes_hostile_names() {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("comma,name").flops(1), || ());
        dev.launch(KernelSpec::new("quote\"name").flops(2), || ());
        dev.launch(KernelSpec::new("plain.name").flops(3), || ());
        let csv = trace_to_csv(&dev.trace());
        let lines: Vec<&str> = csv.lines().collect();
        // A comma inside a name must not create an extra column.
        let f0 = parse_csv_line(lines[1]);
        assert_eq!(f0.len(), 6);
        assert_eq!(f0[0], "comma,name");
        let f1 = parse_csv_line(lines[2]);
        assert_eq!(f1[0], "quote\"name");
        assert!(lines[2].starts_with("\"quote\"\"name\""));
        // Unquoted plain names stay unquoted.
        assert!(lines[3].starts_with("plain.name,"));
    }

    /// Minimal JSON string unescape for the round-trip test.
    fn json_unescape(s: &str) -> String {
        let mut out = String::new();
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).unwrap()).unwrap());
                }
                Some(other) => out.push(other),
                None => {}
            }
        }
        out
    }

    #[test]
    fn jsonl_round_trips_hostile_names() {
        let dev = Device::with_model(CostModel::unit());
        let hostile = "a\"b\\c\nd\te\u{1}f";
        dev.launch(KernelSpec::new(hostile).flops(7), || ());
        let jsonl = trace_to_jsonl(&dev.trace());
        let line = jsonl.lines().next().unwrap();
        // The line must stay a single line (control chars escaped)...
        assert_eq!(jsonl.lines().count(), 1);
        assert!(line.contains("\\u0001"));
        // ...and the name must unescape back to the original.
        let start = line.find("\"name\":\"").unwrap() + 8;
        let end = line[start..].find("\",\"flops\"").unwrap() + start;
        assert_eq!(json_unescape(&line[start..end]), hostile);
    }
}
