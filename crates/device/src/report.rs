//! Trace aggregation: grouping kernel records into pipeline-stage buckets.
//!
//! The paper's Fig. 3 reports the single-layer BERT breakdown as percentages
//! per module (GEMM0..3, attention, layernorm0/1, others). [`TraceReport`]
//! reproduces exactly that view from a [`Device`](crate::Device) trace.

use crate::device::KernelRecord;
use std::collections::BTreeMap;
use std::time::Duration;

/// Aggregated statistics for one bucket of kernels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketStats {
    /// Number of launches in the bucket.
    pub launches: u64,
    /// Total FLOPs.
    pub flops: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Total measured wall time.
    pub wall: Duration,
    /// Total modeled GPU time (seconds).
    pub modeled: f64,
}

/// A bucketed view over an execution trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    buckets: BTreeMap<String, BucketStats>,
    total: BucketStats,
}

impl TraceReport {
    /// Builds a report, assigning each record to the bucket returned by
    /// `bucket_of`. Returning `None` drops the record from the report.
    pub fn new(trace: &[KernelRecord], mut bucket_of: impl FnMut(&KernelRecord) -> Option<String>) -> Self {
        let mut buckets: BTreeMap<String, BucketStats> = BTreeMap::new();
        let mut total = BucketStats::default();
        for rec in trace {
            let Some(bucket) = bucket_of(rec) else {
                continue;
            };
            let stats = buckets.entry(bucket).or_default();
            for s in [stats, &mut total] {
                s.launches += 1;
                s.flops += rec.cost.flops;
                s.bytes += rec.cost.bytes();
                s.wall += rec.wall;
                s.modeled += rec.modeled;
            }
        }
        Self { buckets, total }
    }

    /// Builds a report bucketed by the kernel-name prefix before the first
    /// `'.'` (the workspace naming convention is `"stage.detail"`).
    pub fn by_prefix(trace: &[KernelRecord]) -> Self {
        Self::new(trace, |r| Some(r.name.split('.').next().unwrap_or(&r.name).to_string()))
    }

    /// The buckets, sorted by name.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &BucketStats)> {
        self.buckets.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stats for one bucket, if present.
    pub fn bucket(&self, name: &str) -> Option<&BucketStats> {
        self.buckets.get(name)
    }

    /// Totals across all bucketed records.
    pub fn total(&self) -> &BucketStats {
        &self.total
    }

    /// Fraction of total modeled time spent in `bucket` (0.0 if absent or
    /// the trace is empty).
    pub fn modeled_fraction(&self, bucket: &str) -> f64 {
        if self.total.modeled == 0.0 {
            return 0.0;
        }
        self.buckets.get(bucket).map_or(0.0, |b| b.modeled / self.total.modeled)
    }

    /// Renders a fixed-width table of the report (modeled ms, wall ms, %,
    /// GFLOP, GB per bucket) — the output format used by the figure
    /// harnesses.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>10} {:>8} {:>10} {:>10}\n",
            "bucket", "launches", "modeled_ms", "wall_ms", "pct", "GFLOP", "GB"
        ));
        for (name, b) in &self.buckets {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12.4} {:>10.3} {:>7.1}% {:>10.3} {:>10.4}\n",
                name,
                b.launches,
                b.modeled * 1e3,
                b.wall.as_secs_f64() * 1e3,
                self.modeled_fraction(name) * 100.0,
                b.flops as f64 / 1e9,
                b.bytes as f64 / 1e9,
            ));
        }
        let t = &self.total;
        out.push_str(&format!(
            "{:<24} {:>9} {:>12.4} {:>10.3} {:>7.1}% {:>10.3} {:>10.4}\n",
            "TOTAL",
            t.launches,
            t.modeled * 1e3,
            t.wall.as_secs_f64() * 1e3,
            100.0,
            t.flops as f64 / 1e9,
            t.bytes as f64 / 1e9,
        ));
        out
    }
}

/// Serializes a trace as CSV (`name,flops,bytes_read,bytes_written,wall_us,
/// modeled_us`) for offline analysis/plotting.
pub fn trace_to_csv(trace: &[KernelRecord]) -> String {
    let mut out = String::from("name,flops,bytes_read,bytes_written,wall_us,modeled_us\n");
    for r in trace {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3}\n",
            r.name,
            r.cost.flops,
            r.cost.bytes_read,
            r.cost.bytes_written,
            r.wall.as_secs_f64() * 1e6,
            r.modeled * 1e6,
        ));
    }
    out
}

/// Serializes a trace as JSON lines (one kernel record per line), suitable
/// for `jq`-style processing. Kernel names in this workspace contain no
/// characters requiring JSON escaping, but quotes/backslashes are escaped
/// defensively anyway.
pub fn trace_to_jsonl(trace: &[KernelRecord]) -> String {
    let mut out = String::new();
    for r in trace {
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"flops\":{},\"bytes_read\":{},\"bytes_written\":{},\"wall_us\":{:.3},\"modeled_us\":{:.3}}}\n",
            name,
            r.cost.flops,
            r.cost.bytes_read,
            r.cost.bytes_written,
            r.wall.as_secs_f64() * 1e6,
            r.modeled * 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, KernelSpec};
    use crate::device::Device;

    fn sample_device() -> Device {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("gemm0.qkv").flops(100).reads(10), || ());
        dev.launch(KernelSpec::new("attention.qk").flops(50).reads(5), || ());
        dev.launch(KernelSpec::new("attention.pv").flops(50).reads(5), || ());
        dev.launch(KernelSpec::new("layernorm0.fused").reads(40), || ());
        dev
    }

    #[test]
    fn prefix_bucketing() {
        let dev = sample_device();
        let report = TraceReport::by_prefix(&dev.trace());
        assert_eq!(report.bucket("attention").unwrap().launches, 2);
        assert_eq!(report.bucket("attention").unwrap().flops, 100);
        assert_eq!(report.bucket("gemm0").unwrap().flops, 100);
        assert_eq!(report.total().launches, 4);
    }

    #[test]
    fn fractions_sum_to_one() {
        let dev = sample_device();
        let report = TraceReport::by_prefix(&dev.trace());
        let sum: f64 = ["gemm0", "attention", "layernorm0"]
            .iter()
            .map(|b| report.modeled_fraction(b))
            .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(report.modeled_fraction("missing"), 0.0);
    }

    #[test]
    fn custom_bucketing_can_drop_records() {
        let dev = sample_device();
        let report = TraceReport::new(&dev.trace(), |r| {
            r.name.starts_with("attention").then(|| "mha".to_string())
        });
        assert_eq!(report.total().launches, 2);
        assert_eq!(report.bucket("mha").unwrap().flops, 100);
    }

    #[test]
    fn empty_trace_renders() {
        let report = TraceReport::by_prefix(&[]);
        assert_eq!(report.total().launches, 0);
        assert!(report.render().contains("TOTAL"));
        assert_eq!(report.modeled_fraction("x"), 0.0);
    }

    #[test]
    fn render_contains_buckets() {
        let dev = sample_device();
        let text = TraceReport::by_prefix(&dev.trace()).render();
        assert!(text.contains("attention"));
        assert!(text.contains("gemm0"));
    }

    #[test]
    fn csv_export_round_numbers() {
        let dev = sample_device();
        let csv = trace_to_csv(&dev.trace());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 kernels
        assert!(lines[0].starts_with("name,flops"));
        assert!(lines[1].starts_with("gemm0.qkv,100,10,0,"));
    }

    #[test]
    fn jsonl_export_is_line_per_kernel() {
        let dev = sample_device();
        let jsonl = trace_to_jsonl(&dev.trace());
        assert_eq!(jsonl.lines().count(), 4);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"flops\":"));
        }
    }

    #[test]
    fn jsonl_escapes_quotes() {
        let dev = Device::with_model(CostModel::unit());
        dev.launch(KernelSpec::new("weird\"name"), || ());
        let jsonl = trace_to_jsonl(&dev.trace());
        assert!(jsonl.contains("weird\\\"name"));
    }
}
