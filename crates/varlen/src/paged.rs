//! Block-paged KV-cache allocation — the variable-length memory manager
//! for autoregressive decoding.
//!
//! An incremental decoding session appends one key/value row per generated
//! token, and a server runs *many* sessions whose lengths differ wildly and
//! change every step — the same variable-length problem the paper solves
//! for encoder batches, transposed into the time dimension. Reserving
//! `max_seq_len` per session up front would reintroduce padding skew as
//! memory waste; TurboTransformers' variable-length memory manager and the
//! vLLM-style paged layouts in PAPERS.md solve it by **paging**:
//!
//! * the cache is a fixed pool of `pool_blocks` blocks, each holding
//!   `block_tokens` token slots ([`PagedLayout`]);
//! * a session owns a **block table** — an ordered list of block indices —
//!   and grows by whole blocks with amortized-growth append
//!   ([`BlockPool::append`]);
//! * freed sessions return every block to a **free list**, so fragmentation
//!   is impossible by construction (any free block fits any session);
//! * exhaustion is an **explicit, typed signal** ([`KvOom`]) rather than an
//!   allocation failure: the serving layer turns it into a shed decision
//!   (`ShedReason::CacheOom` in `bt-serve`), which is the overload story of
//!   the rest of the stack applied to memory instead of compute.
//!
//! This module is pure bookkeeping — block indices and token counts, no
//! floats — so the allocator's invariants (no block aliasing across
//! sessions, exact free-list accounting, free returns everything) are
//! property-tested in isolation (`tests/paged_properties.rs`). The actual
//! K/V storage indexed by these tables lives in `bt-core`'s paged KV cache.
//!
//! Pool pressure is surfaced to `bt-obs`: `kvcache.pool.high_water_blocks`
//! (a `record_max` high-water counter the windowed snapshot merges by max)
//! and `kvcache.pool.oom_events`, so operators can see "pool too small"
//! without waiting for a [`BlockPool::high_water_blocks`] ledger read.

use std::fmt;

/// High-water mark of blocks simultaneously in use, across every pool in
/// the process (merges by max across shards).
static POOL_HIGH_WATER: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_POOL_HIGH_WATER);
/// Appends refused with [`KvOom`] across every pool in the process.
static POOL_OOM_EVENTS: bt_obs::Counter = bt_obs::Counter::new(bt_obs::names::KV_POOL_OOM_EVENTS);

/// Default tokens per block (`BYTE_KV_BLOCK` overrides).
pub const DEFAULT_BLOCK_TOKENS: usize = 16;
/// Default pool capacity in blocks (`BYTE_KV_BLOCKS` overrides).
pub const DEFAULT_POOL_BLOCKS: usize = 512;

/// Geometry of a paged KV cache: tokens per block × blocks in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagedLayout {
    /// Token slots per block.
    pub block_tokens: usize,
    /// Total blocks in the pool.
    pub pool_blocks: usize,
}

impl PagedLayout {
    /// Builds a layout.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(block_tokens: usize, pool_blocks: usize) -> Self {
        assert!(block_tokens > 0, "block_tokens must be positive");
        assert!(pool_blocks > 0, "pool_blocks must be positive");
        Self {
            block_tokens,
            pool_blocks,
        }
    }

    /// Reads the layout from the environment: `BYTE_KV_BLOCK` (tokens per
    /// block, default [`DEFAULT_BLOCK_TOKENS`]) and `BYTE_KV_BLOCKS` (pool
    /// capacity, default [`DEFAULT_POOL_BLOCKS`]).
    ///
    /// # Panics
    /// Panics on an unparseable or zero value, naming the offending
    /// variable — same contract as `BYTE_GEMM_ISA`: a typo'd knob must not
    /// silently fall back.
    pub fn from_env() -> Self {
        let read = |name: &str, default: usize| -> usize {
            match std::env::var(name) {
                Ok(raw) => match raw.trim().parse::<usize>() {
                    Ok(v) if v > 0 => v,
                    _ => panic!("{name}={raw:?} is not a positive integer"),
                },
                Err(_) => default,
            }
        };
        Self::new(
            read("BYTE_KV_BLOCK", DEFAULT_BLOCK_TOKENS),
            read("BYTE_KV_BLOCKS", DEFAULT_POOL_BLOCKS),
        )
    }

    /// Blocks needed to hold `tokens` token slots.
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_tokens)
    }

    /// Total token slots the pool can hold.
    pub fn capacity_tokens(&self) -> usize {
        self.block_tokens * self.pool_blocks
    }

    /// Splits one shared block budget into `shards` per-shard layouts: the
    /// block size is preserved (bitwise block-size invariance holds per
    /// shard) and `pool_blocks` is divided as evenly as possible, with the
    /// first `pool_blocks % shards` shards taking one extra block. The
    /// shard router sizes each shard's private [`BlockPool`] from these, so
    /// N shards never hold more cache memory than the single-instance
    /// budget they replaced.
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds `pool_blocks` (a shard with an
    /// empty pool could never admit a decode request).
    pub fn per_shard(&self, shards: usize) -> Vec<PagedLayout> {
        assert!(shards > 0, "shards must be positive");
        assert!(
            shards <= self.pool_blocks,
            "cannot split {} blocks across {shards} shards: every shard needs at least one block",
            self.pool_blocks
        );
        let base = self.pool_blocks / shards;
        let extra = self.pool_blocks % shards;
        (0..shards)
            .map(|i| PagedLayout::new(self.block_tokens, base + usize::from(i < extra)))
            .collect()
    }
}

impl Default for PagedLayout {
    fn default() -> Self {
        Self::new(DEFAULT_BLOCK_TOKENS, DEFAULT_POOL_BLOCKS)
    }
}

/// Handle to one session's block table inside a [`BlockPool`].
///
/// Indices are recycled after [`BlockPool::free`]; holding a stale id is a
/// logic error the pool detects (panics) rather than silently honoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(usize);

impl SessionId {
    /// The session's slot index (stable while the session is live; reused
    /// after free).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// The pool is out of blocks: the explicit OOM→shed signal.
///
/// Carries the shortfall so the serving layer can report *how* overloaded
/// the cache was, not just that it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvOom {
    /// Blocks the failed operation needed.
    pub needed_blocks: usize,
    /// Blocks that were actually free.
    pub free_blocks: usize,
}

impl fmt::Display for KvOom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KV-cache pool exhausted: needed {} block(s), {} free",
            self.needed_blocks, self.free_blocks
        )
    }
}

impl std::error::Error for KvOom {}

/// Physical location of one token's K/V row: which block, which slot in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Pool block index.
    pub block: usize,
    /// Token slot within the block (`0..block_tokens`).
    pub slot: usize,
}

#[derive(Debug)]
struct SessionTable {
    blocks: Vec<u32>,
    /// Tokens currently stored (≤ `blocks.len() × block_tokens`).
    len: usize,
    live: bool,
}

/// A fixed-size block pool with a free list and per-session block tables.
///
/// All operations are O(blocks moved); [`BlockPool::append`] is
/// **all-or-nothing** — on [`KvOom`] the session is left exactly as it was,
/// so a shed decision never has to unwind a partial allocation.
#[derive(Debug)]
pub struct BlockPool {
    layout: PagedLayout,
    /// LIFO free list of block indices.
    free: Vec<u32>,
    tables: Vec<SessionTable>,
    /// Recycled session slots.
    retired: Vec<usize>,
    high_water_blocks: usize,
    oom_events: u64,
}

impl BlockPool {
    /// An empty pool with every block on the free list.
    pub fn new(layout: PagedLayout) -> Self {
        Self {
            layout,
            // LIFO with block 0 on top: freshly created pools hand out low
            // indices first, which keeps tests readable.
            free: (0..layout.pool_blocks as u32).rev().collect(),
            tables: Vec::new(),
            retired: Vec::new(),
            high_water_blocks: 0,
            oom_events: 0,
        }
    }

    /// The pool's geometry.
    pub fn layout(&self) -> PagedLayout {
        self.layout
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently owned by live sessions.
    pub fn blocks_in_use(&self) -> usize {
        self.layout.pool_blocks - self.free.len()
    }

    /// Most blocks ever simultaneously in use.
    pub fn high_water_blocks(&self) -> usize {
        self.high_water_blocks
    }

    /// Times an operation failed with [`KvOom`].
    pub fn oom_events(&self) -> u64 {
        self.oom_events
    }

    /// Live sessions.
    pub fn live_sessions(&self) -> usize {
        self.tables.iter().filter(|t| t.live).count()
    }

    /// Opens a session with an empty block table (never fails: blocks are
    /// only taken on append).
    pub fn create(&mut self) -> SessionId {
        let table = SessionTable {
            blocks: Vec::new(),
            len: 0,
            live: true,
        };
        match self.retired.pop() {
            Some(idx) => {
                self.tables[idx] = table;
                SessionId(idx)
            }
            None => {
                self.tables.push(table);
                SessionId(self.tables.len() - 1)
            }
        }
    }

    fn table(&self, sid: SessionId) -> &SessionTable {
        let t = self.tables.get(sid.0).expect("session id out of range");
        assert!(t.live, "session {} was already freed", sid.0);
        t
    }

    /// Tokens stored in the session.
    pub fn len(&self, sid: SessionId) -> usize {
        self.table(sid).len
    }

    /// True when the session holds no tokens.
    pub fn is_empty(&self, sid: SessionId) -> bool {
        self.len(sid) == 0
    }

    /// The session's block table, in append order.
    pub fn block_table(&self, sid: SessionId) -> &[u32] {
        &self.table(sid).blocks
    }

    /// Extends the session by `tokens` token slots, taking new blocks from
    /// the free list as needed (amortized: most appends touch no block).
    ///
    /// # Errors
    /// Returns [`KvOom`] — with the session **unchanged** — when the free
    /// list cannot cover the growth.
    ///
    /// # Panics
    /// Panics on a freed/out-of-range session id.
    pub fn append(&mut self, sid: SessionId, tokens: usize) -> Result<(), KvOom> {
        let t = {
            let t = self.tables.get(sid.0).expect("session id out of range");
            assert!(t.live, "session {} was already freed", sid.0);
            t
        };
        let need_total = self.layout.blocks_for(t.len + tokens);
        let grow = need_total.saturating_sub(t.blocks.len());
        if grow > self.free.len() {
            self.oom_events += 1;
            POOL_OOM_EVENTS.incr();
            return Err(KvOom {
                needed_blocks: grow,
                free_blocks: self.free.len(),
            });
        }
        let t = &mut self.tables[sid.0];
        for _ in 0..grow {
            t.blocks.push(self.free.pop().expect("checked above"));
        }
        t.len += tokens;
        self.high_water_blocks = self.high_water_blocks.max(self.layout.pool_blocks - self.free.len());
        POOL_HIGH_WATER.record_max(self.high_water_blocks as u64);
        Ok(())
    }

    /// Physical location of the session's token `idx`.
    ///
    /// # Panics
    /// Panics if `idx >= len(sid)` or the session is not live.
    pub fn slot(&self, sid: SessionId, idx: usize) -> Slot {
        let t = self.table(sid);
        assert!(idx < t.len, "token {idx} out of range (len {})", t.len);
        Slot {
            block: t.blocks[idx / self.layout.block_tokens] as usize,
            slot: idx % self.layout.block_tokens,
        }
    }

    /// Frees the session, returning **all** its blocks to the free list;
    /// reports how many came back.
    ///
    /// # Panics
    /// Panics on double free or an out-of-range id.
    pub fn free(&mut self, sid: SessionId) -> usize {
        let t = self.tables.get_mut(sid.0).expect("session id out of range");
        assert!(t.live, "session {} freed twice", sid.0);
        t.live = false;
        let returned = t.blocks.len();
        self.free.append(&mut t.blocks);
        t.len = 0;
        self.retired.push(sid.0);
        returned
    }

    /// Structural invariant check, used by the property suite after every
    /// operation: every block is *either* on the free list *or* in exactly
    /// one live session's table, and counts reconcile exactly.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.layout.pool_blocks;
        let mut owner = vec![usize::MAX; n]; // usize::MAX = unseen
        for (i, &b) in self.free.iter().enumerate() {
            let b = b as usize;
            if b >= n {
                return Err(format!("free list entry {b} out of range ({n} blocks)"));
            }
            if owner[b] != usize::MAX {
                return Err(format!("block {b} appears twice in the free list"));
            }
            owner[b] = n + i; // any value ≥ n marks "free"
        }
        let mut used = 0usize;
        for (s, t) in self.tables.iter().enumerate() {
            if !t.live {
                if !t.blocks.is_empty() {
                    return Err(format!("freed session {s} still holds {} blocks", t.blocks.len()));
                }
                continue;
            }
            if t.len > t.blocks.len() * self.layout.block_tokens {
                return Err(format!(
                    "session {s} claims {} tokens in {} blocks of {}",
                    t.len,
                    t.blocks.len(),
                    self.layout.block_tokens
                ));
            }
            for &b in &t.blocks {
                let b = b as usize;
                if b >= n {
                    return Err(format!("session {s} holds out-of-range block {b}"));
                }
                if owner[b] != usize::MAX {
                    return Err(format!("block {b} aliased: session {s} and owner {}", owner[b]));
                }
                owner[b] = s;
                used += 1;
            }
        }
        if used + self.free.len() != n {
            return Err(format!(
                "accounting drift: {} in use + {} free != {n} total",
                used,
                self.free.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_shard_split_conserves_the_block_budget() {
        let layout = PagedLayout::new(16, 511);
        for shards in [1usize, 2, 3, 4, 8] {
            let split = layout.per_shard(shards);
            assert_eq!(split.len(), shards);
            assert_eq!(
                split.iter().map(|l| l.pool_blocks).sum::<usize>(),
                layout.pool_blocks,
                "split must conserve the shared budget exactly"
            );
            for l in &split {
                assert_eq!(l.block_tokens, layout.block_tokens);
                assert!(l.pool_blocks >= layout.pool_blocks / shards);
            }
            // Remainder blocks go to the lowest-indexed shards.
            assert!(split.windows(2).all(|w| w[0].pool_blocks >= w[1].pool_blocks));
        }
    }

    #[test]
    #[should_panic(expected = "every shard needs at least one block")]
    fn per_shard_refuses_empty_shard_pools() {
        let _ = PagedLayout::new(16, 2).per_shard(3);
    }

    #[test]
    fn append_grows_by_whole_blocks() {
        let mut pool = BlockPool::new(PagedLayout::new(4, 8));
        let s = pool.create();
        pool.append(s, 1).unwrap();
        assert_eq!(pool.block_table(s).len(), 1);
        pool.append(s, 3).unwrap(); // fills block 0
        assert_eq!(pool.block_table(s).len(), 1);
        pool.append(s, 1).unwrap(); // spills into block 1
        assert_eq!(pool.block_table(s).len(), 2);
        assert_eq!(pool.len(s), 5);
        assert_eq!(pool.blocks_in_use(), 2);
    }

    #[test]
    fn slots_walk_the_block_table_in_order() {
        let mut pool = BlockPool::new(PagedLayout::new(3, 4));
        let s = pool.create();
        pool.append(s, 7).unwrap();
        let table = pool.block_table(s).to_vec();
        for i in 0..7 {
            let slot = pool.slot(s, i);
            assert_eq!(slot.block, table[i / 3] as usize);
            assert_eq!(slot.slot, i % 3);
        }
    }

    #[test]
    fn oom_is_all_or_nothing() {
        let mut pool = BlockPool::new(PagedLayout::new(2, 2));
        let s = pool.create();
        pool.append(s, 3).unwrap(); // 2 blocks
        let err = pool.append(s, 2).unwrap_err(); // needs 1 more, 0 free
        assert_eq!(err.needed_blocks, 1);
        assert_eq!(err.free_blocks, 0);
        assert_eq!(pool.len(s), 3, "failed append must not change the session");
        assert_eq!(pool.oom_events(), 1);
        pool.check_invariants().unwrap();
    }

    #[test]
    fn free_returns_every_block() {
        let mut pool = BlockPool::new(PagedLayout::new(4, 16));
        let a = pool.create();
        let b = pool.create();
        pool.append(a, 9).unwrap();
        pool.append(b, 4).unwrap();
        assert_eq!(pool.high_water_blocks(), 4);
        assert_eq!(pool.free(a), 3);
        assert_eq!(pool.free(b), 1);
        assert_eq!(pool.free_blocks(), 16);
        assert_eq!(pool.live_sessions(), 0);
        assert_eq!(pool.high_water_blocks(), 4, "high water survives frees");
        pool.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "freed twice")]
    fn double_free_panics() {
        let mut pool = BlockPool::new(PagedLayout::default());
        let s = pool.create();
        pool.free(s);
        pool.free(s);
    }

    #[test]
    fn session_slots_are_recycled() {
        let mut pool = BlockPool::new(PagedLayout::new(2, 4));
        let a = pool.create();
        pool.append(a, 2).unwrap();
        pool.free(a);
        let b = pool.create();
        assert_eq!(b.index(), a.index(), "retired slot is reused");
        assert!(pool.is_empty(b), "recycled session starts empty");
    }

    #[test]
    fn layout_math() {
        let l = PagedLayout::new(16, 8);
        assert_eq!(l.blocks_for(0), 0);
        assert_eq!(l.blocks_for(1), 1);
        assert_eq!(l.blocks_for(16), 1);
        assert_eq!(l.blocks_for(17), 2);
        assert_eq!(l.capacity_tokens(), 128);
    }
}
