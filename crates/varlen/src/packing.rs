//! The packing index: prefix-sum-derived position offsets, and the
//! pack/unpack kernels (paper Fig. 4 and Fig. 2c).

use crate::mask::{BatchMask, VarlenError};
use crate::scan::warp_style_scan;
use bt_device::{Device, KernelSpec};
use bt_tensor::Tensor;
use rayon::prelude::*;

/// Positioning information produced by the zero-padding algorithm: for every
/// valid token, where it lives in the packed tensor, and for every sequence,
/// where it starts.
///
/// This is the "position offset vector for all Transformer operations to
/// index" from the paper's contribution list. Kernels that fuse
/// pack/unpack with bias-add or transpose consume it directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackingIndex {
    mask: BatchMask,
    /// Exclusive prefix sum of sequence lengths: sequence `b` occupies packed
    /// rows `seq_offsets[b] .. seq_offsets[b + 1]`. Length `batch + 1`.
    seq_offsets: Vec<u32>,
    /// For each packed row, its padded slot `b * max_seq_len + s`.
    positions: Vec<u32>,
}

impl PackingIndex {
    /// Computes the index from a batch mask (pure host version).
    pub fn from_mask(mask: &BatchMask) -> Self {
        let batch = mask.batch();
        let max_seq = mask.max_seq_len();
        // The prefix sum over the 0/1 mask gives, at each valid slot, its
        // packed row. We run the warp-style kernel on the real mask matrix
        // to mirror the GPU implementation, then derive both vectors.
        let mask_matrix: Vec<u32> = mask.to_mask_matrix().iter().map(|&m| m as u32).collect();
        let prefix = warp_style_scan(&mask_matrix, batch, max_seq);

        let mut seq_offsets = Vec::with_capacity(batch + 1);
        seq_offsets.push(0u32);
        let mut positions = vec![0u32; mask.valid_words()];
        for b in 0..batch {
            let len = mask.seq_lens()[b];
            for s in 0..len {
                let slot = b * max_seq + s;
                positions[prefix[slot] as usize] = slot as u32;
            }
            let last = seq_offsets[b];
            seq_offsets.push(last + len as u32);
        }
        Self {
            mask: mask.clone(),
            seq_offsets,
            positions,
        }
    }

    /// Computes the index as a launched kernel with traffic accounting —
    /// the `prefix sum & position offset` kernel of Fig. 2(c).
    pub fn from_mask_on(device: &Device, mask: &BatchMask) -> Self {
        let padded = mask.padded_words() as u64;
        let valid = mask.valid_words() as u64;
        device.launch(
            KernelSpec::new("varlen.prefix_sum")
                .flops(padded)
                .reads(padded * 4)
                .writes(valid * 4 + (mask.batch() as u64 + 1) * 4),
            || Self::from_mask(mask),
        )
    }

    /// The batch mask this index was derived from.
    pub fn mask(&self) -> &BatchMask {
        &self.mask
    }

    /// Number of sequences.
    pub fn batch(&self) -> usize {
        self.mask.batch()
    }

    /// Padded sequence length.
    pub fn max_seq_len(&self) -> usize {
        self.mask.max_seq_len()
    }

    /// Total valid tokens (packed row count).
    pub fn valid_words(&self) -> usize {
        self.positions.len()
    }

    /// Valid length of sequence `b`.
    pub fn seq_len(&self, b: usize) -> usize {
        self.mask.seq_lens()[b]
    }

    /// First packed row of sequence `b` (the paper's batch offset).
    pub fn seq_offset(&self, b: usize) -> usize {
        self.seq_offsets[b] as usize
    }

    /// Exclusive prefix of sequence lengths (length `batch + 1`).
    pub fn seq_offsets(&self) -> &[u32] {
        &self.seq_offsets
    }

    /// Padded slot (`b * max_seq_len + s`) of each packed row.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Packs a padded `[batch, max_seq_len, hidden]` tensor into
    /// `[valid_words, hidden]` (launched kernel).
    ///
    /// # Errors
    /// Returns [`VarlenError::ShapeMismatch`] if the input is not
    /// `[batch, max_seq_len, hidden]`.
    pub fn pack(&self, device: &Device, padded: &Tensor) -> Result<Tensor, VarlenError> {
        let dims = padded.dims();
        if dims.len() != 3 || dims[0] != self.batch() || dims[1] != self.max_seq_len() {
            return Err(VarlenError::ShapeMismatch {
                expected: format!("[{}, {}, hidden]", self.batch(), self.max_seq_len()),
                got: format!("{:?}", dims),
            });
        }
        let hidden = dims[2];
        let valid = self.valid_words();
        let bytes = (valid * hidden * 4) as u64;
        let out = device.launch(
            KernelSpec::new("varlen.pack")
                .reads(bytes + valid as u64 * 4)
                .writes(bytes),
            || {
                let src = padded.as_slice();
                let mut data = vec![0.0f32; valid * hidden];
                data.par_chunks_mut(hidden.max(1))
                    .zip(self.positions.par_iter())
                    .for_each(|(dst, &slot)| {
                        let s = slot as usize * hidden;
                        dst.copy_from_slice(&src[s..s + hidden]);
                    });
                data
            },
        );
        Ok(Tensor::from_vec(out, [valid, hidden]).expect("packed shape consistent"))
    }

    /// Unpacks a `[valid_words, hidden]` tensor back to a zero-padded
    /// `[batch, max_seq_len, hidden]` tensor (launched kernel).
    ///
    /// # Errors
    /// Returns [`VarlenError::ShapeMismatch`] if the input is not
    /// `[valid_words, hidden]`.
    pub fn unpack(&self, device: &Device, packed: &Tensor) -> Result<Tensor, VarlenError> {
        let dims = packed.dims();
        if dims.len() != 2 || dims[0] != self.valid_words() {
            return Err(VarlenError::ShapeMismatch {
                expected: format!("[{}, hidden]", self.valid_words()),
                got: format!("{:?}", dims),
            });
        }
        let hidden = dims[1];
        let valid = self.valid_words();
        let padded_words = self.mask.padded_words();
        let out = device.launch(
            KernelSpec::new("varlen.unpack")
                .reads((valid * hidden * 4) as u64 + valid as u64 * 4)
                .writes((padded_words * hidden * 4) as u64),
            || {
                let src = packed.as_slice();
                let mut data = vec![0.0f32; padded_words * hidden];
                // Parallelize over sequences; each writes its own rows.
                let max_seq = self.max_seq_len();
                data.par_chunks_mut(max_seq.max(1) * hidden)
                    .enumerate()
                    .for_each(|(b, dst)| {
                        let off = self.seq_offset(b);
                        let len = self.seq_len(b);
                        dst[..len * hidden].copy_from_slice(&src[off * hidden..(off + len) * hidden]);
                    });
                data
            },
        );
        Ok(Tensor::from_vec(out, [self.batch(), self.max_seq_len(), hidden]).expect("padded shape consistent"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::with_model(bt_device::CostModel::unit())
    }

    fn index(lens: &[usize], max: usize) -> PackingIndex {
        PackingIndex::from_mask(&BatchMask::from_lens(lens.to_vec(), max).unwrap())
    }

    #[test]
    fn paper_figure4_offsets() {
        // Sentences of lengths 5, 2, 4; packed rows 0..5, 5..7, 7..11.
        let idx = index(&[5, 2, 4], 5);
        assert_eq!(idx.seq_offsets(), &[0, 5, 7, 11]);
        assert_eq!(idx.valid_words(), 11);
        // Packed row 5 is sentence 1, token 0 -> padded slot 1*5+0 = 5.
        assert_eq!(idx.positions()[5], 5);
        // Packed row 7 is sentence 2, token 0 -> slot 10.
        assert_eq!(idx.positions()[7], 10);
    }

    #[test]
    fn pack_extracts_valid_rows() {
        let idx = index(&[2, 1], 3);
        let hidden = 4;
        // Padded tensor: row value = padded slot index.
        let mut t = Tensor::zeros([2, 3, hidden]);
        for slot in 0..6 {
            for h in 0..hidden {
                t.as_mut_slice()[slot * hidden + h] = slot as f32;
            }
        }
        let dev = device();
        let packed = idx.pack(&dev, &t).unwrap();
        assert_eq!(packed.dims(), &[3, 4]);
        // Valid slots: 0, 1 (seq 0), 3 (seq 1).
        assert_eq!(packed.row(0)[0], 0.0);
        assert_eq!(packed.row(1)[0], 1.0);
        assert_eq!(packed.row(2)[0], 3.0);
    }

    #[test]
    fn unpack_zeroes_padding() {
        let idx = index(&[1, 2], 3);
        let packed = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3, 1]).unwrap();
        let dev = device();
        let padded = idx.unpack(&dev, &packed).unwrap();
        assert_eq!(
            padded.as_slice(),
            &[1.0, 0.0, 0.0, 2.0, 3.0, 0.0] // [b=0: 1,pad,pad][b=1: 2,3,pad]
        );
    }

    #[test]
    fn shape_errors() {
        let idx = index(&[1, 1], 2);
        let dev = device();
        let bad = Tensor::zeros([3, 2, 4]);
        assert!(idx.pack(&dev, &bad).is_err());
        let bad2 = Tensor::zeros([5, 4]);
        assert!(idx.unpack(&dev, &bad2).is_err());
    }

    #[test]
    fn launched_variant_records_kernels() {
        let dev = device();
        let mask = BatchMask::from_lens(vec![2, 3], 4).unwrap();
        let idx = PackingIndex::from_mask_on(&dev, &mask);
        assert_eq!(idx, PackingIndex::from_mask(&mask));
        assert_eq!(dev.launches(), 1);
        assert!(dev.trace()[0].name.contains("prefix_sum"));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let idx = index(&[], 4);
        let dev = device();
        let packed = idx.pack(&dev, &Tensor::zeros([0, 4, 8])).unwrap();
        assert_eq!(packed.dims(), &[0, 8]);
        let padded = idx.unpack(&dev, &packed).unwrap();
        assert_eq!(padded.numel(), 0);
    }

    #[test]
    fn all_empty_sequences() {
        let idx = index(&[0, 0, 0], 4);
        assert_eq!(idx.valid_words(), 0);
        let dev = device();
        let packed = idx.pack(&dev, &Tensor::zeros([3, 4, 2])).unwrap();
        assert_eq!(packed.dims(), &[0, 2]);
        let padded = idx.unpack(&dev, &packed).unwrap();
        assert!(padded.as_slice().iter().all(|&v| v == 0.0));
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_roundtrip(
            lens in proptest::collection::vec(0usize..17, 1..12),
            hidden in 1usize..9
        ) {
            let max = lens.iter().copied().max().unwrap_or(0).max(1);
            let idx = index(&lens, max);
            let dev = device();
            let batch = lens.len();
            let padded = Tensor::randn([batch, max, hidden], 7);
            let packed = idx.pack(&dev, &padded).unwrap();
            let back = idx.unpack(&dev, &packed).unwrap();
            // Valid positions survive the roundtrip; padding becomes zero.
            for (b, &len) in lens.iter().enumerate() {
                for s in 0..max {
                    for h in 0..hidden {
                        let v = back.at(&[b, s, h]).unwrap();
                        if s < len {
                            prop_assert_eq!(v, padded.at(&[b, s, h]).unwrap());
                        } else {
                            prop_assert_eq!(v, 0.0);
                        }
                    }
                }
            }
        }

        #[test]
        fn prop_positions_strictly_increasing(
            lens in proptest::collection::vec(0usize..9, 0..10)
        ) {
            let max = lens.iter().copied().max().unwrap_or(0).max(1);
            let idx = index(&lens, max);
            // Left-aligned sentences pack in slot order, so positions are
            // strictly increasing.
            for w in idx.positions().windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            prop_assert_eq!(idx.positions().len(), lens.iter().sum::<usize>());
        }
    }
}
