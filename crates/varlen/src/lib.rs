//! # bt-varlen — the zero-padding algorithm (paper §III.D, Fig. 4)
//!
//! NLP serving batches contain sentences of different lengths. Conventional
//! frameworks pad every sequence to the batch maximum and burn FLOPs and
//! bandwidth on dead tokens. ByteTransformer's *zero-padding algorithm*
//! instead:
//!
//! 1. computes a **prefix sum** over the input mask (one warp per sentence on
//!    the GPU; one rayon task per sentence here — [`scan::warp_style_scan`]),
//! 2. derives a **position offset vector** mapping each valid token to its
//!    slot in a *packed* tensor ([`PackingIndex`]),
//! 3. **packs** the `[batch, seq, hidden]` activation into
//!    `[valid_words, hidden]` so every downstream kernel iterates over real
//!    tokens only ([`PackingIndex::pack`] / [`PackingIndex::unpack`]).
//!
//! The packed/unpacked transitions around batched-GEMM MHA (paper Fig. 2c)
//! are the two `unpack`/`pack` calls in `bt-core`'s encoder; fused MHA reads
//! Q/K/V directly through the offsets and never unpacks.
//!
//! The crate also ships the synthetic variable-length workload generators
//! used by every experiment ([`workload`]): the paper's evaluation draws
//! batches with *average length = 0.6 × maximum*, which
//! [`workload::LengthDistribution::PaperUniform`] reproduces exactly in
//! expectation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
mod mask;
mod packing;
pub mod paged;
pub mod scan;
pub mod workload;

pub use chunk::chunk_tokens_from_env;
pub use mask::{BatchMask, VarlenError};
pub use packing::PackingIndex;
pub use paged::{BlockPool, KvOom, PagedLayout, SessionId, Slot};
