//! Synthetic variable-length workload generators.
//!
//! The paper evaluates on batches whose *average* sequence length is 60% of
//! the maximum (Fig. 14 caption; Table II's α = 0.6). Production traces from
//! TikTok/Douyin are not available, so these generators provide the closest
//! synthetic equivalents: the paper's own uniform-α distribution plus Zipf
//! and clamped-normal shapes for the serving example's request streams.

use crate::mask::{BatchMask, VarlenError};
use bt_tensor::rng::Xoshiro256StarStar;

/// A distribution over sequence lengths, all bounded by a maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthDistribution {
    /// Every sequence has exactly the maximum length (the fixed-shape case
    /// conventional frameworks assume).
    Fixed,
    /// Uniform over `[ceil((2α−1)·max), max]`, whose mean is `α·max`; with
    /// the paper's α = 0.6 this is uniform on `[0.2·max, max]`. Requires
    /// `0.5 ≤ α ≤ 1.0`.
    PaperUniform {
        /// Target ratio of average length to maximum length.
        alpha: f64,
    },
    /// Uniform over `[lo, max]`.
    Uniform {
        /// Inclusive lower bound on lengths.
        lo: usize,
    },
    /// Zipf-like: lengths cluster near short values with a heavy tail up to
    /// the maximum — a common shape for user-generated text.
    Zipf {
        /// Skew exponent (larger ⇒ shorter sequences dominate). Must be > 0.
        exponent: f64,
    },
    /// Normal with the given mean fraction and coefficient of variation,
    /// clamped to `[1, max]`.
    NormalClamped {
        /// Mean length as a fraction of the maximum.
        mean_frac: f64,
        /// Standard deviation as a fraction of the maximum.
        std_frac: f64,
    },
}

impl LengthDistribution {
    /// Samples `batch` sequence lengths bounded by `max_seq_len`.
    ///
    /// # Panics
    /// Panics if `max_seq_len == 0`, or on invalid distribution parameters
    /// (`alpha` outside `[0.5, 1]`, non-positive Zipf exponent).
    pub fn sample(&self, batch: usize, max_seq_len: usize, seed: u64) -> Vec<usize> {
        assert!(max_seq_len > 0, "max_seq_len must be positive");
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..batch).map(|_| self.sample_one(max_seq_len, &mut rng)).collect()
    }

    fn sample_one(&self, max: usize, rng: &mut Xoshiro256StarStar) -> usize {
        match *self {
            LengthDistribution::Fixed => max,
            LengthDistribution::PaperUniform { alpha } => {
                assert!(
                    (0.5..=1.0).contains(&alpha),
                    "PaperUniform alpha must be in [0.5, 1], got {alpha}"
                );
                let lo = (((2.0 * alpha - 1.0) * max as f64).ceil() as usize).max(1);
                rng.range_inclusive(lo as u64, max as u64) as usize
            }
            LengthDistribution::Uniform { lo } => {
                let lo = lo.clamp(1, max);
                rng.range_inclusive(lo as u64, max as u64) as usize
            }
            LengthDistribution::Zipf { exponent } => {
                assert!(exponent > 0.0, "Zipf exponent must be positive");
                // Inverse-CDF sampling of a truncated power law on [1, max].
                let u = rng.next_f64().max(1e-12);
                let a = 1.0 - exponent;
                let len = if a.abs() < 1e-9 {
                    // exponent == 1: CDF is log.
                    (max as f64).powf(u)
                } else {
                    (u * ((max as f64).powf(a) - 1.0) + 1.0).powf(1.0 / a)
                };
                (len as usize).clamp(1, max)
            }
            LengthDistribution::NormalClamped { mean_frac, std_frac } => {
                let x = mean_frac * max as f64 + std_frac * max as f64 * rng.normal() as f64;
                (x.round() as isize).clamp(1, max as isize) as usize
            }
        }
    }

    /// Samples lengths and wraps them in a [`BatchMask`].
    ///
    /// # Panics
    /// As [`LengthDistribution::sample`].
    pub fn sample_mask(&self, batch: usize, max_seq_len: usize, seed: u64) -> BatchMask {
        let lens = self.sample(batch, max_seq_len, seed);
        BatchMask::from_lens(lens, max_seq_len).expect("sampled lengths are bounded by max")
    }
}

/// The paper's evaluation distribution: average length = 0.6 × maximum.
pub fn paper_workload(batch: usize, max_seq_len: usize, seed: u64) -> BatchMask {
    LengthDistribution::PaperUniform { alpha: 0.6 }.sample_mask(batch, max_seq_len, seed)
}

/// Convenience: a fully padded (fixed-length) mask.
pub fn fixed_workload(batch: usize, max_seq_len: usize) -> BatchMask {
    BatchMask::from_lens(vec![max_seq_len; batch], max_seq_len).expect("fixed lengths equal the maximum")
}

/// Returns an error-typed variant of [`BatchMask::from_lens`] re-exported
/// for workload code that builds custom masks.
pub fn custom_workload(lens: Vec<usize>, max_seq_len: usize) -> Result<BatchMask, VarlenError> {
    BatchMask::from_lens(lens, max_seq_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_all_max() {
        let m = fixed_workload(4, 128);
        assert!(m.seq_lens().iter().all(|&l| l == 128));
        assert_eq!(m.alpha(), 1.0);
    }

    #[test]
    fn paper_uniform_mean_is_alpha_max() {
        let lens = LengthDistribution::PaperUniform { alpha: 0.6 }.sample(20_000, 1000, 42);
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((mean / 1000.0 - 0.6).abs() < 0.01, "mean ratio {}", mean / 1000.0);
        assert!(lens.iter().all(|&l| (200..=1000).contains(&l)));
    }

    #[test]
    fn paper_uniform_alpha_09() {
        let lens = LengthDistribution::PaperUniform { alpha: 0.9 }.sample(20_000, 500, 1);
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((mean / 500.0 - 0.9).abs() < 0.01);
    }

    #[test]
    fn zipf_skews_short() {
        let lens = LengthDistribution::Zipf { exponent: 1.5 }.sample(10_000, 512, 7);
        let short = lens.iter().filter(|&&l| l <= 64).count();
        assert!(short > 5_000, "zipf should be mostly short, got {short}");
        assert!(lens.iter().all(|&l| (1..=512).contains(&l)));
    }

    #[test]
    fn normal_clamped_in_bounds() {
        let d = LengthDistribution::NormalClamped {
            mean_frac: 0.5,
            std_frac: 0.3,
        };
        let lens = d.sample(5_000, 256, 3);
        assert!(lens.iter().all(|&l| (1..=256).contains(&l)));
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!((mean - 128.0).abs() < 8.0, "mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = paper_workload(16, 384, 5);
        let b = paper_workload(16, 384, 5);
        let c = paper_workload(16, 384, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        LengthDistribution::PaperUniform { alpha: 0.3 }.sample(1, 10, 0);
    }

    #[test]
    fn custom_workload_propagates_errors() {
        assert!(custom_workload(vec![5], 4).is_err());
        assert!(custom_workload(vec![4], 4).is_ok());
    }
}
