//! Prefix-sum kernels.
//!
//! The paper implements "an efficient CUDA kernel to calculate the prefix
//! sum and the position offset. Each warp computes the prefix sum for tokens
//! of a whole sentence" (§III.D). [`warp_style_scan`] mirrors that layout:
//! one parallel task per sentence computes the within-sentence running sum,
//! then a (tiny) cross-sentence pass adds the per-sentence bases.
//!
//! A general work-efficient Blelloch scan ([`blelloch_scan`]) is also
//! provided as substrate: it handles arbitrary (non-prefix-form) masks and
//! doubles as the reference for the property tests.

use rayon::prelude::*;

/// Serial exclusive prefix sum — the correctness oracle.
pub fn exclusive_scan_serial(input: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0u32;
    for &x in input {
        out.push(acc);
        acc += x;
    }
    out
}

/// Warp-per-sentence exclusive scan over a `batch × max_seq_len` mask.
///
/// Task `b` scans its own sentence (the warp in Algorithm §III.D); sentence
/// base offsets are then combined in a second pass, exactly like the
/// block-level carry propagation of the CUDA kernel. Returns the exclusive
/// prefix sum of the whole flattened mask.
///
/// # Panics
/// Panics if `mask.len() != batch * max_seq_len`.
pub fn warp_style_scan(mask: &[u32], batch: usize, max_seq_len: usize) -> Vec<u32> {
    assert_eq!(mask.len(), batch * max_seq_len, "mask shape mismatch");
    // Pass 1: per-sentence local exclusive scans + sentence totals.
    let mut out = vec![0u32; mask.len()];
    let totals: Vec<u32> = out
        .par_chunks_mut(max_seq_len.max(1))
        .zip(mask.par_chunks(max_seq_len.max(1)))
        .map(|(out_row, mask_row)| {
            let mut acc = 0u32;
            for (o, &m) in out_row.iter_mut().zip(mask_row) {
                *o = acc;
                acc += m;
            }
            acc
        })
        .collect();
    // Pass 2: carry per-sentence bases (batch is small; serial is exact and
    // cheap, matching the single-block carry kernel on the GPU).
    let bases = exclusive_scan_serial(&totals);
    out.par_chunks_mut(max_seq_len.max(1))
        .zip(bases.par_iter())
        .for_each(|(row, &base)| {
            for o in row {
                *o += base;
            }
        });
    out
}

/// Work-efficient (Blelloch) parallel exclusive scan over an arbitrary
/// sequence. Splits into chunks, scans chunks in parallel, scans the chunk
/// totals, then adds the bases back in parallel.
pub fn blelloch_scan(input: &[u32]) -> Vec<u32> {
    const CHUNK: usize = 4096;
    if input.len() <= CHUNK {
        return exclusive_scan_serial(input);
    }
    let mut out = vec![0u32; input.len()];
    let totals: Vec<u32> = out
        .par_chunks_mut(CHUNK)
        .zip(input.par_chunks(CHUNK))
        .map(|(out_chunk, in_chunk)| {
            let mut acc = 0u32;
            for (o, &x) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += x;
            }
            acc
        })
        .collect();
    let bases = exclusive_scan_serial(&totals);
    out.par_chunks_mut(CHUNK)
        .zip(bases.par_iter())
        .for_each(|(chunk, &base)| {
            for o in chunk {
                *o += base;
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_tensor::rng::Xoshiro256StarStar;
    use proptest::prelude::*;

    #[test]
    fn serial_scan_basics() {
        assert_eq!(exclusive_scan_serial(&[]), Vec::<u32>::new());
        assert_eq!(exclusive_scan_serial(&[5]), vec![0]);
        assert_eq!(exclusive_scan_serial(&[1, 2, 3]), vec![0, 1, 3]);
    }

    #[test]
    fn warp_scan_matches_serial_on_mask() {
        let mask = [1u32, 1, 1, 0, 0, 1, 1, 0, 0, 0, 1, 1, 1, 1, 0];
        let got = warp_style_scan(&mask, 3, 5);
        assert_eq!(got, exclusive_scan_serial(&mask));
    }

    #[test]
    fn warp_scan_empty_batch() {
        assert_eq!(warp_style_scan(&[], 0, 5), Vec::<u32>::new());
        assert_eq!(warp_style_scan(&[], 5, 0), Vec::<u32>::new());
    }

    #[test]
    fn blelloch_matches_serial_large() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let input: Vec<u32> = (0..20_000).map(|_| rng.below(4) as u32).collect();
        assert_eq!(blelloch_scan(&input), exclusive_scan_serial(&input));
    }

    #[test]
    #[should_panic(expected = "mask shape mismatch")]
    fn warp_scan_shape_checked() {
        warp_style_scan(&[1, 0], 2, 5);
    }

    proptest! {
        #[test]
        fn prop_warp_scan_equals_serial(
            rows in proptest::collection::vec(proptest::collection::vec(0u32..2, 0..40), 0..20)
        ) {
            let max_seq = rows.iter().map(|r| r.len()).max().unwrap_or(0);
            let batch = rows.len();
            let mut mask = vec![0u32; batch * max_seq];
            for (b, row) in rows.iter().enumerate() {
                mask[b * max_seq..b * max_seq + row.len()].copy_from_slice(row);
            }
            prop_assert_eq!(warp_style_scan(&mask, batch, max_seq), exclusive_scan_serial(&mask));
        }

        #[test]
        fn prop_blelloch_equals_serial(input in proptest::collection::vec(0u32..100, 0..10_000)) {
            prop_assert_eq!(blelloch_scan(&input), exclusive_scan_serial(&input));
        }

        #[test]
        fn prop_scan_last_plus_tail_is_total(input in proptest::collection::vec(0u32..10, 1..500)) {
            let scan = exclusive_scan_serial(&input);
            let total: u32 = input.iter().sum();
            prop_assert_eq!(scan[input.len() - 1] + input[input.len() - 1], total);
        }
    }
}
