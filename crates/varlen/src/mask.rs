//! Batch masks for variable-length inputs.

use std::fmt;

/// Errors produced when constructing variable-length batch descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarlenError {
    /// A sequence length exceeds the declared maximum.
    LengthExceedsMax {
        /// Batch index of the offending sequence.
        batch: usize,
        /// Its declared length.
        len: usize,
        /// The batch-wide maximum.
        max_seq_len: usize,
    },
    /// A mask row is not of prefix form (a 0 appears before a 1).
    ///
    /// The paper's input convention (Fig. 4) is left-aligned sentences:
    /// `valid tokens ... padding`. Scattered masks would need a gather
    /// rather than a pack and are rejected explicitly.
    NonPrefixMask {
        /// Batch index of the offending row.
        batch: usize,
    },
    /// The mask buffer does not match `batch × max_seq_len`.
    MaskShape {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// A tensor passed to pack/unpack had an unexpected shape.
    ShapeMismatch {
        /// Human-readable expectation.
        expected: String,
        /// What was received.
        got: String,
    },
}

impl fmt::Display for VarlenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarlenError::LengthExceedsMax {
                batch,
                len,
                max_seq_len,
            } => write!(f, "sequence {batch} has length {len} > max_seq_len {max_seq_len}"),
            VarlenError::NonPrefixMask { batch } => {
                write!(f, "mask row {batch} is not left-aligned (0 before 1)")
            }
            VarlenError::MaskShape { expected, got } => {
                write!(f, "mask has {got} elements, expected {expected}")
            }
            VarlenError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for VarlenError {}

/// A variable-length batch descriptor: per-sequence valid-token counts under
/// a common `max_seq_len`, equivalent to the paper's 0/1 input mask matrix
/// with left-aligned sentences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchMask {
    seq_lens: Vec<usize>,
    max_seq_len: usize,
}

impl BatchMask {
    /// Builds a mask from explicit sequence lengths.
    ///
    /// # Errors
    /// Returns [`VarlenError::LengthExceedsMax`] if any length exceeds
    /// `max_seq_len`.
    pub fn from_lens(seq_lens: Vec<usize>, max_seq_len: usize) -> Result<Self, VarlenError> {
        for (batch, &len) in seq_lens.iter().enumerate() {
            if len > max_seq_len {
                return Err(VarlenError::LengthExceedsMax {
                    batch,
                    len,
                    max_seq_len,
                });
            }
        }
        Ok(Self { seq_lens, max_seq_len })
    }

    /// Builds a mask from a `batch × max_seq_len` 0/1 matrix (the paper's
    /// input-mask tensor).
    ///
    /// # Errors
    /// Returns [`VarlenError::MaskShape`] on a size mismatch and
    /// [`VarlenError::NonPrefixMask`] if a row has a gap (a zero before a
    /// one), which would make packing a gather instead of a shift.
    pub fn from_mask_matrix(mask: &[u8], batch: usize, max_seq_len: usize) -> Result<Self, VarlenError> {
        if mask.len() != batch * max_seq_len {
            return Err(VarlenError::MaskShape {
                expected: batch * max_seq_len,
                got: mask.len(),
            });
        }
        let mut seq_lens = Vec::with_capacity(batch);
        for b in 0..batch {
            let row = &mask[b * max_seq_len..(b + 1) * max_seq_len];
            let len = row.iter().take_while(|&&m| m != 0).count();
            if row[len..].iter().any(|&m| m != 0) {
                return Err(VarlenError::NonPrefixMask { batch: b });
            }
            seq_lens.push(len);
        }
        Ok(Self { seq_lens, max_seq_len })
    }

    /// Per-sequence valid lengths.
    pub fn seq_lens(&self) -> &[usize] {
        &self.seq_lens
    }

    /// Number of sequences in the batch.
    pub fn batch(&self) -> usize {
        self.seq_lens.len()
    }

    /// The padded sequence length.
    pub fn max_seq_len(&self) -> usize {
        self.max_seq_len
    }

    /// Total valid tokens across the batch (the packed row count).
    pub fn valid_words(&self) -> usize {
        self.seq_lens.iter().sum()
    }

    /// Total padded slots, `batch × max_seq_len`.
    pub fn padded_words(&self) -> usize {
        self.batch() * self.max_seq_len
    }

    /// The paper's α: average length / maximum length (0 for empty batches).
    pub fn alpha(&self) -> f64 {
        if self.padded_words() == 0 {
            return 0.0;
        }
        self.valid_words() as f64 / self.padded_words() as f64
    }

    /// Renders the 0/1 mask matrix (mostly for tests and diagnostics).
    pub fn to_mask_matrix(&self) -> Vec<u8> {
        let mut m = vec![0u8; self.padded_words()];
        for (b, &len) in self.seq_lens.iter().enumerate() {
            m[b * self.max_seq_len..b * self.max_seq_len + len].fill(1);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lens_validates() {
        assert!(BatchMask::from_lens(vec![2, 5, 4], 5).is_ok());
        let err = BatchMask::from_lens(vec![2, 6], 5).unwrap_err();
        assert!(matches!(err, VarlenError::LengthExceedsMax { batch: 1, len: 6, .. }));
    }

    #[test]
    fn paper_figure4_example() {
        // Fig. 4: 3 sentences of lengths 5, 2, 4 under max 5.
        let m = BatchMask::from_lens(vec![5, 2, 4], 5).unwrap();
        assert_eq!(m.valid_words(), 11);
        assert_eq!(m.padded_words(), 15);
        assert!((m.alpha() - 11.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn mask_matrix_roundtrip() {
        let m = BatchMask::from_lens(vec![3, 0, 2], 4).unwrap();
        let mat = m.to_mask_matrix();
        assert_eq!(mat, vec![1, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0]);
        let back = BatchMask::from_mask_matrix(&mat, 3, 4).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn non_prefix_mask_rejected() {
        let mat = vec![1, 0, 1, 0];
        let err = BatchMask::from_mask_matrix(&mat, 1, 4).unwrap_err();
        assert!(matches!(err, VarlenError::NonPrefixMask { batch: 0 }));
    }

    #[test]
    fn mask_shape_checked() {
        let err = BatchMask::from_mask_matrix(&[1, 1], 2, 2).unwrap_err();
        assert!(matches!(err, VarlenError::MaskShape { expected: 4, got: 2 }));
    }

    #[test]
    fn empty_batch() {
        let m = BatchMask::from_lens(vec![], 8).unwrap();
        assert_eq!(m.valid_words(), 0);
        assert_eq!(m.alpha(), 0.0);
    }

    #[test]
    fn errors_display() {
        let e = BatchMask::from_lens(vec![9], 5).unwrap_err();
        assert!(e.to_string().contains("length 9"));
    }
}
