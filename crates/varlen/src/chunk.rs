//! The `BYTE_CHUNK_TOKENS` knob: how many prompt tokens a streaming stage
//! ingests per chunk.
//!
//! Chunked prefill (the serving loops in `bt-frameworks` and the
//! [`ChunkedStage`] pipeline in `bt-core`) splits a long prompt into
//! fixed token-budget chunks so it interleaves with in-flight decode steps
//! instead of monopolising whole token steps. The chunk size is a pure
//! scheduling knob — the packed math is row-independent, so results are
//! bitwise identical for every chunk size (proven by
//! `tests/differential_streaming.rs`).
//!
//! [`ChunkedStage`]: https://docs.rs/bt-core

/// Environment variable naming the chunk size.
pub const ENV_CHUNK_TOKENS: &str = "BYTE_CHUNK_TOKENS";

/// Reads `BYTE_CHUNK_TOKENS` from the environment.
///
/// * unset → `None` (caller picks its default),
/// * `"whole"` or `"0"` → `Some(0)` — chunking disabled, prompts prefill
///   in one piece,
/// * a positive integer → `Some(n)` tokens per chunk.
///
/// # Panics
/// Panics on any other value, naming the variable and the accepted forms —
/// same contract as `BYTE_GEMM_ISA` and `BYTE_KV_BLOCK`: a typo'd knob
/// must not silently fall back.
pub fn chunk_tokens_from_env() -> Option<usize> {
    let raw = std::env::var(ENV_CHUNK_TOKENS).ok()?;
    let trimmed = raw.trim();
    if trimmed.eq_ignore_ascii_case("whole") {
        return Some(0);
    }
    match trimmed.parse::<usize>() {
        Ok(v) => Some(v),
        Err(_) => panic!("{ENV_CHUNK_TOKENS}={raw:?} is not \"whole\" or a non-negative integer"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env mutation is process-global; one test owns every case so no lock
    // is needed.
    #[test]
    fn parses_every_accepted_form() {
        std::env::remove_var(ENV_CHUNK_TOKENS);
        assert_eq!(chunk_tokens_from_env(), None);
        for (raw, want) in [("whole", 0), ("WHOLE", 0), ("0", 0), ("1", 1), (" 64 ", 64)] {
            std::env::set_var(ENV_CHUNK_TOKENS, raw);
            assert_eq!(chunk_tokens_from_env(), Some(want), "raw={raw:?}");
        }
        std::env::remove_var(ENV_CHUNK_TOKENS);
    }
}
