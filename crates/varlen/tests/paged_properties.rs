//! Property tests for the block-paged KV-cache allocator.
//!
//! The allocator is pure bookkeeping, so its safety argument can be
//! exhaustive: under arbitrary create/append/free interleavings,
//!
//! * no block is ever owned by two live sessions (no aliasing — the
//!   property that makes lock-free paged K/V writes sound),
//! * free-list accounting is exact (`free + in_use == pool`, always),
//! * freeing a session returns *all* its blocks (no leak, churn-tested
//!   across 10k randomized sessions),
//! * a refused append is all-or-nothing (the session is untouched).
//!
//! [`BlockPool::check_invariants`] re-derives ownership from scratch after
//! every operation, so a violation is caught at the step that introduces
//! it, not at the end of the sequence.

use bt_varlen::paged::{BlockPool, PagedLayout, SessionId};
use proptest::prelude::*;

/// One step of a randomized allocator workout. Indices are taken modulo
/// the live-session count at execution time, so every generated sequence
/// is valid by construction.
#[derive(Debug, Clone, Copy)]
enum Op {
    Create,
    /// Append `tokens` to the live session at `index % live`.
    Append {
        index: usize,
        tokens: usize,
    },
    /// Free the live session at `index % live`.
    Free {
        index: usize,
    },
}

/// Decodes a generated `(kind, index, tokens)` triple into an [`Op`]:
/// kinds 0–1 create, 2–6 append (append-heavy on purpose — growth is where
/// the accounting lives), 7–8 free.
fn decode_op(kind: usize, index: usize, tokens: usize) -> Op {
    match kind {
        0 | 1 => Op::Create,
        2..=6 => Op::Append { index, tokens },
        _ => Op::Free { index },
    }
}

/// Runs an op sequence against the pool, checking invariants after every
/// operation. Returns the live sessions at the end.
fn run_ops(pool: &mut BlockPool, ops: &[(usize, usize, usize)]) -> Vec<SessionId> {
    let mut live: Vec<SessionId> = Vec::new();
    for &(kind, index, tokens) in ops {
        match decode_op(kind, index, tokens) {
            Op::Create => live.push(pool.create()),
            Op::Append { index, tokens } => {
                if live.is_empty() {
                    continue;
                }
                let sid = live[index % live.len()];
                let before_len = pool.len(sid);
                let before_blocks = pool.block_table(sid).len();
                let before_free = pool.free_blocks();
                match pool.append(sid, tokens) {
                    Ok(()) => assert_eq!(pool.len(sid), before_len + tokens),
                    Err(oom) => {
                        // All-or-nothing: a refused append changes nothing.
                        assert_eq!(pool.len(sid), before_len);
                        assert_eq!(pool.block_table(sid).len(), before_blocks);
                        assert_eq!(pool.free_blocks(), before_free);
                        assert!(oom.needed_blocks > oom.free_blocks);
                    }
                }
            }
            Op::Free { index } => {
                if live.is_empty() {
                    continue;
                }
                let sid = live.swap_remove(index % live.len());
                let held = pool.block_table(sid).len();
                let before_free = pool.free_blocks();
                let returned = pool.free(sid);
                assert_eq!(returned, held, "free must return every block the session held");
                assert_eq!(pool.free_blocks(), before_free + held);
            }
        }
        pool.check_invariants().expect("invariants after every op");
    }
    live
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings never alias blocks across sessions and keep
    /// free-list accounting exact (checked inside `run_ops` at every step).
    #[test]
    fn prop_interleavings_preserve_invariants(
        block_tokens in 1usize..9,
        pool_blocks in 1usize..48,
        ops in proptest::collection::vec((0usize..9, 0usize..64, 1usize..40), 1..120),
    ) {
        let mut pool = BlockPool::new(PagedLayout::new(block_tokens, pool_blocks));
        run_ops(&mut pool, &ops);
        prop_assert!(pool.check_invariants().is_ok());
    }

    /// Freeing everything always returns the pool to fully free, regardless
    /// of the interleaving that got it there.
    #[test]
    fn prop_freeing_all_sessions_leaks_nothing(
        block_tokens in 1usize..9,
        pool_blocks in 1usize..48,
        ops in proptest::collection::vec((0usize..9, 0usize..64, 1usize..40), 1..120),
    ) {
        let mut pool = BlockPool::new(PagedLayout::new(block_tokens, pool_blocks));
        let live = run_ops(&mut pool, &ops);
        for sid in live {
            pool.free(sid);
        }
        prop_assert_eq!(pool.free_blocks(), pool_blocks);
        prop_assert_eq!(pool.blocks_in_use(), 0);
        prop_assert_eq!(pool.live_sessions(), 0);
        prop_assert!(pool.check_invariants().is_ok());
    }

    /// Two sessions' slot assignments never collide: every (block, slot)
    /// pair maps to at most one (session, token).
    #[test]
    fn prop_slots_never_alias(
        block_tokens in 1usize..9,
        lens in proptest::collection::vec(1usize..30, 1..8),
    ) {
        let pool_blocks: usize = lens.iter().map(|&l| l.div_ceil(block_tokens)).sum();
        let mut pool = BlockPool::new(PagedLayout::new(block_tokens, pool_blocks));
        let sids: Vec<SessionId> = lens.iter().map(|_| pool.create()).collect();
        for (&sid, &len) in sids.iter().zip(&lens) {
            pool.append(sid, len).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for (&sid, &len) in sids.iter().zip(&lens) {
            for idx in 0..len {
                let slot = pool.slot(sid, idx);
                prop_assert!(slot.slot < block_tokens);
                prop_assert!(seen.insert((slot.block, slot.slot)), "slot aliased: {:?}", slot);
            }
        }
    }
}

/// The satellite's churn requirement, deterministic rather than shrunk:
/// 10k sessions cycle through a small pool; if free ever leaked a block the
/// pool would wedge long before the end.
#[test]
fn ten_thousand_session_churn_never_leaks() {
    let layout = PagedLayout::new(4, 32);
    let mut pool = BlockPool::new(layout);
    let mut rng: u64 = 0x5eed;
    let mut next = |m: u64| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((rng >> 33) % m) as usize
    };
    let mut live: Vec<(SessionId, usize)> = Vec::new();
    let mut churned = 0usize;
    while churned < 10_000 {
        // Keep a handful of sessions live, cycling constantly.
        if live.len() < 6 {
            let sid = pool.create();
            let want = 1 + next(24);
            match pool.append(sid, want) {
                Ok(()) => live.push((sid, want)),
                Err(_) => {
                    pool.free(sid);
                    // Make room by retiring the oldest.
                    if let Some((old, _)) = live.first().copied() {
                        live.remove(0);
                        pool.free(old);
                        churned += 1;
                    }
                }
            }
        } else {
            let (sid, len) = live.remove(next(live.len() as u64));
            assert_eq!(pool.len(sid), len);
            pool.free(sid);
            churned += 1;
        }
        if churned.is_multiple_of(997) {
            pool.check_invariants().expect("mid-churn invariants");
        }
    }
    for (sid, _) in live {
        pool.free(sid);
    }
    assert_eq!(pool.free_blocks(), 32, "no block leaked across 10k churned sessions");
    pool.check_invariants().unwrap();
}
