//! Property-based tests: fused kernels are observationally identical to
//! their unfused pipelines, and the normalization/softmax invariants hold on
//! arbitrary shapes.

use bt_device::{CostModel, Device};
use bt_kernels::activation::{add_bias_gelu_fused, add_bias_gelu_unfused};
use bt_kernels::layernorm::{add_bias_residual_layernorm_fused, add_bias_residual_layernorm_unfused};
use bt_kernels::layout::{add_bias_split_qkv_packed, add_bias_unpack_split_qkv, merge_heads_pack};
use bt_kernels::softmax::softmax_row;
use bt_tensor::compare::max_abs_diff;
use bt_tensor::rng::Xoshiro256StarStar;
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex};
use proptest::prelude::*;

fn device() -> Device {
    Device::with_model(CostModel::unit())
}

fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-2.0, 2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_layernorm_fused_equals_unfused(
        rows in 1usize..32,
        hidden in 1usize..64,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let x = rand_vec(rows * hidden, seed);
        let residual = rand_vec(rows * hidden, seed + 1);
        let bias = rand_vec(hidden, seed + 2);
        let gamma = rand_vec(hidden, seed + 3);
        let beta = rand_vec(hidden, seed + 4);
        let mut a = x.clone();
        add_bias_residual_layernorm_unfused(&dev, "ln", &mut a, &residual, &bias, &gamma, &beta, 1e-6, rows, hidden);
        let mut b = x;
        add_bias_residual_layernorm_fused(&dev, "ln", &mut b, &residual, &bias, &gamma, &beta, 1e-6, rows, hidden);
        prop_assert!(max_abs_diff(&a, &b) < 1e-4);
    }

    #[test]
    fn prop_layernorm_output_statistics(
        rows in 1usize..16,
        hidden in 4usize..96,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let mut x = rand_vec(rows * hidden, seed);
        let residual = vec![0.0f32; rows * hidden];
        let bias = vec![0.0f32; hidden];
        let gamma = vec![1.0f32; hidden];
        let beta = vec![0.0f32; hidden];
        add_bias_residual_layernorm_fused(&dev, "ln", &mut x, &residual, &bias, &gamma, &beta, 1e-6, rows, hidden);
        for row in x.chunks(hidden) {
            let mean: f32 = row.iter().sum::<f32>() / hidden as f32;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / hidden as f32;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
            // Degenerate constant rows normalize to ~0 variance; otherwise 1.
            prop_assert!(var < 1.2, "var {var}");
        }
    }

    #[test]
    fn prop_bias_gelu_fused_equals_unfused(
        rows in 1usize..24,
        cols in 1usize..64,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let base = rand_vec(rows * cols, seed);
        let bias = rand_vec(cols, seed + 1);
        let mut a = base.clone();
        add_bias_gelu_unfused(&dev, "ba", &mut a, rows, cols, &bias);
        let mut b = base;
        add_bias_gelu_fused(&dev, "ba", &mut b, rows, cols, &bias);
        prop_assert!(max_abs_diff(&a, &b) < 1e-5);
    }

    #[test]
    fn prop_softmax_row_is_probability_vector(
        row in proptest::collection::vec(-50.0f32..50.0, 1..128)
    ) {
        let mut r = row;
        softmax_row(&mut r);
        let sum: f32 = r.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        prop_assert!(r.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    #[test]
    fn prop_softmax_preserves_order(
        row in proptest::collection::vec(-10.0f32..10.0, 2..32)
    ) {
        let original = row.clone();
        let mut r = row;
        softmax_row(&mut r);
        for i in 0..original.len() {
            for j in 0..original.len() {
                if original[i] < original[j] {
                    prop_assert!(r[i] <= r[j] + 1e-7);
                }
            }
        }
    }

    #[test]
    fn prop_unpack_split_then_merge_pack_is_identity(
        lens in proptest::collection::vec(0usize..12, 1..6),
        heads in 1usize..4,
        head in 1usize..6,
        seed in 0u64..1000,
    ) {
        let dev = device();
        let max = lens.iter().copied().max().unwrap_or(0).max(1);
        let idx = PackingIndex::from_mask(&BatchMask::from_lens(lens, max).unwrap());
        let hidden = heads * head;
        let valid = idx.valid_words();
        // A pure-Q QKV (K = V = 0): unpack+split then merge+pack must return Q.
        let q = rand_vec(valid * hidden, seed);
        let mut qkv = vec![0.0f32; valid * 3 * hidden];
        for w in 0..valid {
            qkv[w * 3 * hidden..w * 3 * hidden + hidden].copy_from_slice(&q[w * hidden..(w + 1) * hidden]);
        }
        let qkv = Tensor::from_vec(qkv, [valid, 3 * hidden]).unwrap();
        let zero_bias = vec![0.0f32; 3 * hidden];
        let (qp, _, _) = add_bias_unpack_split_qkv(&dev, &qkv, &zero_bias, &idx, heads);
        let back = merge_heads_pack(&dev, &qp, &idx);
        prop_assert!(max_abs_diff(back.as_slice(), &q) == 0.0);
    }

    #[test]
    fn prop_packed_split_is_layout_only(
        valid in 1usize..20,
        heads in 1usize..4,
        head in 1usize..6,
        seed in 0u64..1000,
    ) {
        // With zero bias and unit scale, every input value must appear at
        // its head-plane position, unchanged.
        let dev = device();
        let hidden = heads * head;
        let qkv = Tensor::from_vec(rand_vec(valid * 3 * hidden, seed), [valid, 3 * hidden]).unwrap();
        let zero_bias = vec![0.0f32; 3 * hidden];
        let (q, k, v) = add_bias_split_qkv_packed(&dev, &qkv, &zero_bias, heads, 1.0);
        for w in 0..valid {
            for h in 0..heads {
                for d in 0..head {
                    let c = h * head + d;
                    prop_assert_eq!(q.at(&[h, w, d]).unwrap(), qkv.at(&[w, c]).unwrap());
                    prop_assert_eq!(k.at(&[h, w, d]).unwrap(), qkv.at(&[w, hidden + c]).unwrap());
                    prop_assert_eq!(v.at(&[h, w, d]).unwrap(), qkv.at(&[w, 2 * hidden + c]).unwrap());
                }
            }
        }
    }
}
