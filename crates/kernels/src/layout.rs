//! Layout kernels around attention: head split/merge transposes, and the
//! pack/unpack transitions *fused* with bias-add and transpose.
//!
//! Paper Fig. 2(c): "padding and remove padding operations are fused with
//! existing memory-bound footprints such as adding bias and transpose to
//! minimize the overhead led by this feature." These kernels are those
//! footprints:
//!
//! * [`add_bias_unpack_split_qkv`] — from the packed QKV projection output
//!   straight to three *padded* `[batch, heads, seq, head]` tensors (bias
//!   fused), feeding the batched-GEMM attention path.
//! * [`merge_heads_pack`] — from padded attention output straight back to
//!   the packed `[valid, hidden]` layout (re-pack fused with the transpose).
//! * [`add_bias_split_qkv_packed`] — for the fused MHA paths: packed QKV to
//!   per-head packed `[heads, valid, head]` operands with bias fused; no
//!   padded tensor is ever materialized.
//! * [`split_heads`] / [`merge_heads`] — the plain padded transposes used by
//!   the conventional baselines.

use bt_device::{Device, KernelSpec};
use bt_tensor::Tensor;
use bt_varlen::PackingIndex;
use rayon::prelude::*;

/// Padded `[batch, seq, hidden]` → `[batch, heads, seq, head]`.
///
/// # Panics
/// Panics if the tensor is not rank-3 or `hidden % heads != 0`.
pub fn split_heads(device: &Device, input: &Tensor, heads: usize) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 3, "split_heads expects [batch, seq, hidden]");
    let (batch, seq, hidden) = (dims[0], dims[1], dims[2]);
    assert_eq!(hidden % heads, 0, "hidden not divisible by heads");
    let head = hidden / heads;
    let nbytes = (input.numel() * 4) as u64;
    let out = device.launch(
        KernelSpec::new("layout.split_heads").reads(nbytes).writes(nbytes),
        || {
            let src = input.as_slice();
            let mut data = vec![0.0f32; input.numel()];
            data.par_chunks_mut(heads * seq * head)
                .enumerate()
                .for_each(|(b, dst)| {
                    for s in 0..seq {
                        for h in 0..heads {
                            let from = (b * seq + s) * hidden + h * head;
                            let to = (h * seq + s) * head;
                            dst[to..to + head].copy_from_slice(&src[from..from + head]);
                        }
                    }
                });
            data
        },
    );
    Tensor::from_vec(out, [batch, heads, seq, head]).expect("shape consistent")
}

/// Padded `[batch, heads, seq, head]` → `[batch, seq, hidden]`.
///
/// # Panics
/// Panics if the tensor is not rank-4.
pub fn merge_heads(device: &Device, input: &Tensor) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "merge_heads expects [batch, heads, seq, head]");
    let (batch, heads, seq, head) = (dims[0], dims[1], dims[2], dims[3]);
    let hidden = heads * head;
    let nbytes = (input.numel() * 4) as u64;
    let out = device.launch(
        KernelSpec::new("layout.merge_heads").reads(nbytes).writes(nbytes),
        || {
            let src = input.as_slice();
            let mut data = vec![0.0f32; input.numel()];
            data.par_chunks_mut(seq * hidden).enumerate().for_each(|(b, dst)| {
                for h in 0..heads {
                    for s in 0..seq {
                        let from = ((b * heads + h) * seq + s) * head;
                        let to = s * hidden + h * head;
                        dst[to..to + head].copy_from_slice(&src[from..from + head]);
                    }
                }
            });
            data
        },
    );
    Tensor::from_vec(out, [batch, seq, hidden]).expect("shape consistent")
}

/// Fused unpack + bias + head-split for the batched-GEMM attention path:
/// packed QKV GEMM output `[valid, 3·hidden]` (Q|K|V interleaved per row)
/// plus `qkv_bias[3·hidden]` → three zero-padded `[batch, heads, seq, head]`
/// tensors. One read of the packed tensor, one write of each padded tensor —
/// the unpad transition costs no extra pass.
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_unpack_split_qkv(
    device: &Device,
    qkv: &Tensor,
    qkv_bias: &[f32],
    idx: &PackingIndex,
    heads: usize,
) -> (Tensor, Tensor, Tensor) {
    let dims = qkv.dims();
    assert_eq!(dims.len(), 2, "qkv must be [valid, 3*hidden]");
    assert_eq!(dims[0], idx.valid_words(), "qkv rows != valid words");
    let three_hidden = dims[1];
    assert_eq!(three_hidden % 3, 0, "qkv columns must be 3*hidden");
    let hidden = three_hidden / 3;
    assert_eq!(qkv_bias.len(), three_hidden, "qkv bias length mismatch");
    assert_eq!(hidden % heads, 0, "hidden not divisible by heads");
    let head = hidden / heads;
    let (batch, seq) = (idx.batch(), idx.max_seq_len());
    let padded = batch * heads * seq * head;

    let read_bytes = (idx.valid_words() * three_hidden * 4 + three_hidden * 4) as u64 + idx.valid_words() as u64 * 4;
    let write_bytes = (3 * padded * 4) as u64;
    let (q, k, v) = device.launch(
        KernelSpec::new("layout.add_bias_unpack_split_qkv")
            .flops((idx.valid_words() * three_hidden) as u64)
            .reads(read_bytes)
            .writes(write_bytes),
        || {
            let src = qkv.as_slice();
            let mut q = vec![0.0f32; padded];
            let mut k = vec![0.0f32; padded];
            let mut v = vec![0.0f32; padded];
            // Parallelize over sequences; each writes disjoint [b] slabs.
            let q_slabs: Vec<&mut [f32]> = q.chunks_mut(heads * seq * head).collect();
            let k_slabs: Vec<&mut [f32]> = k.chunks_mut(heads * seq * head).collect();
            let v_slabs: Vec<&mut [f32]> = v.chunks_mut(heads * seq * head).collect();
            q_slabs
                .into_par_iter()
                .zip(k_slabs.into_par_iter())
                .zip(v_slabs.into_par_iter())
                .enumerate()
                .for_each(|(b, ((qd, kd), vd))| {
                    let off = idx.seq_offset(b);
                    let len = idx.seq_len(b);
                    for s in 0..len {
                        let row = &src[(off + s) * three_hidden..(off + s + 1) * three_hidden];
                        for h in 0..heads {
                            let to = (h * seq + s) * head;
                            for d in 0..head {
                                let c = h * head + d;
                                qd[to + d] = row[c] + qkv_bias[c];
                                kd[to + d] = row[hidden + c] + qkv_bias[hidden + c];
                                vd[to + d] = row[2 * hidden + c] + qkv_bias[2 * hidden + c];
                            }
                        }
                    }
                });
            (q, k, v)
        },
    );
    let shape = [batch, heads, seq, head];
    (
        Tensor::from_vec(q, shape).expect("shape consistent"),
        Tensor::from_vec(k, shape).expect("shape consistent"),
        Tensor::from_vec(v, shape).expect("shape consistent"),
    )
}

/// Fused re-pack + head-merge after batched-GEMM attention: padded
/// `[batch, heads, seq, head]` context → packed `[valid, hidden]`.
///
/// # Panics
/// Panics on shape mismatches.
pub fn merge_heads_pack(device: &Device, ctx: &Tensor, idx: &PackingIndex) -> Tensor {
    let dims = ctx.dims();
    assert_eq!(dims.len(), 4, "ctx must be [batch, heads, seq, head]");
    let (batch, heads, seq, head) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(batch, idx.batch(), "batch mismatch");
    assert_eq!(seq, idx.max_seq_len(), "seq mismatch");
    let hidden = heads * head;
    let valid = idx.valid_words();
    let moved = (valid * hidden * 4) as u64;
    let out = device.launch(
        KernelSpec::new("layout.merge_heads_pack")
            .reads(moved + valid as u64 * 4)
            .writes(moved),
        || {
            let src = ctx.as_slice();
            let mut data = vec![0.0f32; valid * hidden];
            data.par_chunks_mut(hidden.max(1))
                .zip(idx.positions().par_iter())
                .for_each(|(dst, &slot)| {
                    let b = slot as usize / seq;
                    let s = slot as usize % seq;
                    for h in 0..heads {
                        let from = ((b * heads + h) * seq + s) * head;
                        dst[h * head..(h + 1) * head].copy_from_slice(&src[from..from + head]);
                    }
                });
            data
        },
    );
    Tensor::from_vec(out, [valid, hidden]).expect("shape consistent")
}

/// Fused bias + head-split **staying packed**, for the fused MHA paths:
/// packed QKV `[valid, 3·hidden]` → three `[heads, valid, head]` tensors.
/// Per `(batch, head)`, rows `seq_offset(b) .. seq_offset(b)+len` of plane
/// `h` form the contiguous `len×head` operand the grouped GEMM consumes —
/// no padded tensor exists anywhere on this path.
///
/// `q_scale` is folded into Q here (the paper fuses the `1/√d_k` scaling
/// with the load, Algorithm III.1 line 12).
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_split_qkv_packed(
    device: &Device,
    qkv: &Tensor,
    qkv_bias: &[f32],
    heads: usize,
    q_scale: f32,
) -> (Tensor, Tensor, Tensor) {
    let dims = qkv.dims();
    assert_eq!(dims.len(), 2, "qkv must be [valid, 3*hidden]");
    let valid = dims[0];
    let three_hidden = dims[1];
    assert_eq!(three_hidden % 3, 0, "qkv columns must be 3*hidden");
    let hidden = three_hidden / 3;
    assert_eq!(qkv_bias.len(), three_hidden, "qkv bias length mismatch");
    assert_eq!(hidden % heads, 0, "hidden not divisible by heads");
    let head = hidden / heads;
    let moved = (valid * three_hidden * 4) as u64;

    let (q, k, v) = device.launch(
        KernelSpec::new("layout.add_bias_split_qkv_packed")
            .flops((valid * three_hidden) as u64)
            .reads(moved + three_hidden as u64 * 4)
            .writes(moved),
        || {
            let src = qkv.as_slice();
            let plane = valid * head;
            let mut q = vec![0.0f32; heads * plane];
            let mut k = vec![0.0f32; heads * plane];
            let mut v = vec![0.0f32; heads * plane];
            // Parallelize over head planes: each (tensor, head) region is a
            // disjoint chunk. (`max(1)`: empty batches have zero-sized
            // planes, and chunk sizes must be positive.)
            q.par_chunks_mut(plane.max(1))
                .zip(k.par_chunks_mut(plane.max(1)))
                .zip(v.par_chunks_mut(plane.max(1)))
                .enumerate()
                .for_each(|(h, ((qp, kp), vp))| {
                    for w in 0..valid {
                        let row = &src[w * three_hidden..(w + 1) * three_hidden];
                        for d in 0..head {
                            let c = h * head + d;
                            qp[w * head + d] = (row[c] + qkv_bias[c]) * q_scale;
                            kp[w * head + d] = row[hidden + c] + qkv_bias[hidden + c];
                            vp[w * head + d] = row[2 * hidden + c] + qkv_bias[2 * hidden + c];
                        }
                    }
                });
            (q, k, v)
        },
    );
    let shape = [heads, valid, head];
    (
        Tensor::from_vec(q, shape).expect("shape consistent"),
        Tensor::from_vec(k, shape).expect("shape consistent"),
        Tensor::from_vec(v, shape).expect("shape consistent"),
    )
}

/// Fused bias + head-split of a single packed projection `[valid, hidden]`
/// → `[heads, valid, head]`, with an optional scale folded in (used for the
/// decoder's cross-attention Q; the encoder path uses the 3-way
/// [`add_bias_split_qkv_packed`]).
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_split_heads_packed(
    device: &Device,
    name: &str,
    x: &Tensor,
    bias: &[f32],
    heads: usize,
    scale: f32,
) -> Tensor {
    let dims = x.dims();
    assert_eq!(dims.len(), 2, "x must be [valid, hidden]");
    let (valid, hidden) = (dims[0], dims[1]);
    assert_eq!(bias.len(), hidden, "bias length mismatch");
    assert_eq!(hidden % heads, 0, "hidden not divisible by heads");
    let head = hidden / heads;
    let moved = (valid * hidden * 4) as u64;
    let out = device.launch(
        KernelSpec::new(format!("{name}.add_bias_split_heads"))
            .flops((valid * hidden * 2) as u64)
            .reads(moved + hidden as u64 * 4)
            .writes(moved),
        || {
            let src = x.as_slice();
            let plane = valid * head;
            let mut out = vec![0.0f32; heads * plane];
            out.par_chunks_mut(plane.max(1)).enumerate().for_each(|(h, p)| {
                for w in 0..valid {
                    let row = &src[w * hidden..(w + 1) * hidden];
                    for d in 0..head {
                        let c = h * head + d;
                        p[w * head + d] = (row[c] + bias[c]) * scale;
                    }
                }
            });
            out
        },
    );
    Tensor::from_vec(out, [heads, valid, head]).expect("shape consistent")
}

/// Fused bias + head-split of a packed KV projection `[valid, 2·hidden]`
/// (columns K | V) → two `[heads, valid, head]` tensors (the decoder's
/// per-layer cross-attention memory projection).
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_split_kv_packed(
    device: &Device,
    name: &str,
    kv: &Tensor,
    kv_bias: &[f32],
    heads: usize,
) -> (Tensor, Tensor) {
    let dims = kv.dims();
    assert_eq!(dims.len(), 2, "kv must be [valid, 2*hidden]");
    let valid = dims[0];
    let two_hidden = dims[1];
    assert_eq!(two_hidden % 2, 0, "kv columns must be 2*hidden");
    let hidden = two_hidden / 2;
    assert_eq!(kv_bias.len(), two_hidden, "kv bias length mismatch");
    assert_eq!(hidden % heads, 0, "hidden not divisible by heads");
    let head = hidden / heads;
    let moved = (valid * two_hidden * 4) as u64;
    let (k, v) = device.launch(
        KernelSpec::new(format!("{name}.add_bias_split_kv"))
            .flops((valid * two_hidden) as u64)
            .reads(moved + two_hidden as u64 * 4)
            .writes(moved),
        || {
            let src = kv.as_slice();
            let plane = valid * head;
            let mut k = vec![0.0f32; heads * plane];
            let mut v = vec![0.0f32; heads * plane];
            k.par_chunks_mut(plane.max(1))
                .zip(v.par_chunks_mut(plane.max(1)))
                .enumerate()
                .for_each(|(h, (kp, vp))| {
                    for w in 0..valid {
                        let row = &src[w * two_hidden..(w + 1) * two_hidden];
                        for d in 0..head {
                            let c = h * head + d;
                            kp[w * head + d] = row[c] + kv_bias[c];
                            vp[w * head + d] = row[hidden + c] + kv_bias[hidden + c];
                        }
                    }
                });
            (k, v)
        },
    );
    let shape = [heads, valid, head];
    (
        Tensor::from_vec(k, shape).expect("shape consistent"),
        Tensor::from_vec(v, shape).expect("shape consistent"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;
    use bt_varlen::BatchMask;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn idx(lens: &[usize], max: usize) -> PackingIndex {
        PackingIndex::from_mask(&BatchMask::from_lens(lens.to_vec(), max).unwrap())
    }

    #[test]
    fn split_merge_roundtrip() {
        let dev = device();
        let t = Tensor::randn([2, 5, 12], 1);
        let split = split_heads(&dev, &t, 4);
        assert_eq!(split.dims(), &[2, 4, 5, 3]);
        let merged = merge_heads(&dev, &split);
        assert_eq!(merged.dims(), t.dims());
        assert_close(merged.as_slice(), t.as_slice(), 0.0);
    }

    #[test]
    fn split_heads_places_elements() {
        let dev = device();
        // hidden = 4, heads = 2, head = 2; value = s*100 + c.
        let mut t = Tensor::zeros([1, 2, 4]);
        for s in 0..2 {
            for c in 0..4 {
                t.set(&[0, s, c], (s * 100 + c) as f32).unwrap();
            }
        }
        let split = split_heads(&dev, &t, 2);
        // [b, h, s, d]: element (h=1, s=0, d=1) should be column 3 of row 0.
        assert_eq!(split.at(&[0, 1, 0, 1]).unwrap(), 3.0);
        assert_eq!(split.at(&[0, 0, 1, 0]).unwrap(), 100.0);
    }

    #[test]
    fn unpack_split_qkv_bias_and_padding() {
        let dev = device();
        let lens = [2usize, 1];
        let index = idx(&lens, 3);
        let hidden = 4;
        let heads = 2;
        let valid = 3;
        // Row w holds: Q = w, K = 10 + w, V = 20 + w in every column.
        let mut data = vec![0.0f32; valid * 3 * hidden];
        for w in 0..valid {
            for c in 0..hidden {
                data[w * 3 * hidden + c] = w as f32;
                data[w * 3 * hidden + hidden + c] = 10.0 + w as f32;
                data[w * 3 * hidden + 2 * hidden + c] = 20.0 + w as f32;
            }
        }
        let qkv = Tensor::from_vec(data, [valid, 3 * hidden]).unwrap();
        let bias = vec![0.5f32; 3 * hidden];
        let (q, k, v) = add_bias_unpack_split_qkv(&dev, &qkv, &bias, &index, heads);
        assert_eq!(q.dims(), &[2, heads, 3, hidden / heads]);
        // Sequence 0 token 1 -> packed row 1 -> Q value 1.5 after bias.
        assert_eq!(q.at(&[0, 0, 1, 0]).unwrap(), 1.5);
        // Sequence 1 token 0 -> packed row 2.
        assert_eq!(k.at(&[1, 1, 0, 1]).unwrap(), 12.5);
        assert_eq!(v.at(&[1, 0, 0, 0]).unwrap(), 22.5);
        // Padding slots are zero.
        assert_eq!(q.at(&[0, 0, 2, 0]).unwrap(), 0.0);
        assert_eq!(v.at(&[1, 1, 2, 1]).unwrap(), 0.0);
    }

    #[test]
    fn merge_heads_pack_inverts_unpack_split() {
        let dev = device();
        let lens = [3usize, 2];
        let index = idx(&lens, 4);
        let heads = 3;
        let hidden = 6;
        let valid = index.valid_words();
        let packed = Tensor::randn([valid, hidden], 7);
        // Build the padded per-head tensor via unpack+split of a pure-Q QKV.
        let mut qkv_data = vec![0.0f32; valid * 3 * hidden];
        for w in 0..valid {
            qkv_data[w * 3 * hidden..w * 3 * hidden + hidden]
                .copy_from_slice(&packed.as_slice()[w * hidden..(w + 1) * hidden]);
        }
        let qkv = Tensor::from_vec(qkv_data, [valid, 3 * hidden]).unwrap();
        let (q, _, _) = add_bias_unpack_split_qkv(&dev, &qkv, &vec![0.0; 3 * hidden], &index, heads);
        let repacked = merge_heads_pack(&dev, &q, &index);
        assert_eq!(repacked.dims(), packed.dims());
        assert_close(repacked.as_slice(), packed.as_slice(), 0.0);
    }

    #[test]
    fn packed_split_stays_packed_and_scales_q() {
        let dev = device();
        let valid = 4;
        let hidden = 4;
        let heads = 2;
        let qkv = Tensor::randn([valid, 3 * hidden], 3);
        let bias = vec![0.0f32; 3 * hidden];
        let (q, k, _v) = add_bias_split_qkv_packed(&dev, &qkv, &bias, heads, 0.5);
        assert_eq!(q.dims(), &[heads, valid, hidden / heads]);
        // Q plane h=0, word 0, d=0 == qkv[0, 0] * 0.5.
        assert_eq!(q.at(&[0, 0, 0]).unwrap(), qkv.at(&[0, 0]).unwrap() * 0.5);
        // K not scaled.
        assert_eq!(k.at(&[0, 0, 0]).unwrap(), qkv.at(&[0, hidden]).unwrap());
        // Head 1 plane takes columns head..2*head.
        assert_eq!(q.at(&[1, 2, 1]).unwrap(), qkv.at(&[2, 3]).unwrap() * 0.5);
    }

    #[test]
    fn single_split_matches_qkv_split_q_lane() {
        let dev = device();
        let valid = 5;
        let hidden = 8;
        let heads = 2;
        let x = Tensor::randn([valid, hidden], 11);
        let bias: Vec<f32> = (0..hidden).map(|i| 0.1 * i as f32).collect();
        let single = add_bias_split_heads_packed(&dev, "q", &x, &bias, heads, 0.5);
        // Compose an equivalent QKV tensor with K=V=0 and compare the Q lane.
        let mut qkv_data = vec![0.0f32; valid * 3 * hidden];
        for w in 0..valid {
            qkv_data[w * 3 * hidden..w * 3 * hidden + hidden]
                .copy_from_slice(&x.as_slice()[w * hidden..(w + 1) * hidden]);
        }
        let qkv = Tensor::from_vec(qkv_data, [valid, 3 * hidden]).unwrap();
        let mut qkv_bias = vec![0.0f32; 3 * hidden];
        qkv_bias[..hidden].copy_from_slice(&bias);
        let (q3, _, _) = add_bias_split_qkv_packed(&dev, &qkv, &qkv_bias, heads, 0.5);
        assert_close(single.as_slice(), q3.as_slice(), 0.0);
    }

    #[test]
    fn kv_split_places_lanes() {
        let dev = device();
        let valid = 3;
        let hidden = 4;
        let heads = 2;
        // Row w: K columns = 10+w, V columns = 20+w.
        let mut data = vec![0.0f32; valid * 2 * hidden];
        for w in 0..valid {
            for c in 0..hidden {
                data[w * 2 * hidden + c] = 10.0 + w as f32;
                data[w * 2 * hidden + hidden + c] = 20.0 + w as f32;
            }
        }
        let kv = Tensor::from_vec(data, [valid, 2 * hidden]).unwrap();
        let bias = vec![0.5f32; 2 * hidden];
        let (k, v) = add_bias_split_kv_packed(&dev, "cross", &kv, &bias, heads);
        assert_eq!(k.dims(), &[heads, valid, hidden / heads]);
        assert_eq!(k.at(&[1, 2, 1]).unwrap(), 12.5);
        assert_eq!(v.at(&[0, 0, 0]).unwrap(), 20.5);
    }

    #[test]
    fn empty_batch_zero_valid_words() {
        // Regression: an all-empty batch has zero-sized head planes; the
        // split kernels must not panic on zero-width chunking.
        let dev = device();
        let qkv = Tensor::zeros([0, 12]);
        let bias = vec![0.0f32; 12];
        let (q, k, v) = add_bias_split_qkv_packed(&dev, &qkv, &bias, 2, 1.0);
        assert_eq!(q.numel() + k.numel() + v.numel(), 0);
        let single = add_bias_split_heads_packed(&dev, "q", &Tensor::zeros([0, 4]), &[0.0; 4], 2, 1.0);
        assert_eq!(single.numel(), 0);
        let (ck, cv) = add_bias_split_kv_packed(&dev, "kv", &Tensor::zeros([0, 8]), &[0.0; 8], 2);
        assert_eq!(ck.numel() + cv.numel(), 0);
    }

    #[test]
    #[should_panic(expected = "hidden not divisible")]
    fn bad_head_count_panics() {
        let dev = device();
        let t = Tensor::zeros([1, 2, 5]);
        split_heads(&dev, &t, 2);
    }
}
