//! GELU activation and the add-bias + activation pipelines (paper §III.C.2,
//! Fig. 10).
//!
//! After the FFN up-projection, BERT adds a bias and applies GELU. The
//! unfused pipeline stores the GEMM output, then launches a kernel that
//! re-reads it, adds bias, applies GELU, and writes again. ByteTransformer
//! fuses the element-wise work into the GEMM epilogue so the result "matrix
//! is held in registers" — [`bias_gelu_epilogue`] builds exactly that
//! epilogue closure for `bt_gemm::sgemm_epilogue`.

use bt_device::{Device, KernelSpec};
use rayon::prelude::*;

/// √(2/π), the constant of the tanh GELU approximation.
const SQRT_2_OVER_PI: f32 = 0.797_884_6;

/// GELU, tanh approximation (the form used by BERT and by the paper's
/// reference \[31\]): `0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))`.
#[inline]
pub fn gelu_tanh(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)).tanh())
}

/// Exact GELU: `x/2 · (1 + erf(x/√2))`, using a high-accuracy rational
/// erf approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
#[inline]
pub fn gelu_erf(x: f32) -> f32 {
    0.5 * x as f64 as f32 * (1.0 + erf((x as f64) / std::f64::consts::SQRT_2) as f32)
}

/// Error function via Abramowitz & Stegun 7.1.26 (double precision,
/// |ε| ≤ 1.5e-7). `std` ships no `erf`, so the substrate provides one.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Unfused pipeline: **two launches**. Kernel 1 adds the per-column bias and
/// writes the intermediate; kernel 2 re-reads it and applies GELU. This is
/// the right-hand stacked bar of Fig. 10.
///
/// `data` is `rows × cols` row-major; `bias` has length `cols`.
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_gelu_unfused(device: &Device, name: &str, data: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
    assert_eq!(data.len(), rows * cols, "data shape mismatch");
    assert_eq!(bias.len(), cols, "bias length mismatch");
    let nbytes = (rows * cols * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.add_bias"))
            .flops((rows * cols) as u64)
            .reads(nbytes + (cols * 4) as u64)
            .writes(nbytes),
        || {
            data.par_chunks_mut(cols).for_each(|row| {
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            });
        },
    );
    device.launch(
        KernelSpec::new(format!("{name}.gelu"))
            .flops((rows * cols * 8) as u64)
            .reads(nbytes)
            .writes(nbytes),
        || {
            data.par_chunks_mut(cols).for_each(|row| {
                for v in row {
                    *v = gelu_tanh(*v);
                }
            });
        },
    );
}

/// Fused kernel: **one launch, one pass** — bias-add and GELU applied while
/// each element is loaded once (the standalone-fused middle ground; the full
/// ByteTransformer fuses into the GEMM epilogue via
/// [`bias_gelu_epilogue`]).
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias_gelu_fused(device: &Device, name: &str, data: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
    assert_eq!(data.len(), rows * cols, "data shape mismatch");
    assert_eq!(bias.len(), cols, "bias length mismatch");
    let nbytes = (rows * cols * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.fused"))
            .flops((rows * cols * 9) as u64)
            .reads(nbytes + (cols * 4) as u64)
            .writes(nbytes),
        || {
            data.par_chunks_mut(cols).for_each(|row| {
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v = gelu_tanh(*v + b);
                }
            });
        },
    );
}

/// Builds the GEMM-epilogue closure `x ↦ gelu(x + bias[col])` used to hide
/// add-bias + GELU entirely inside the FFN GEMM (paper: "a customized and
/// fused CUTLASS epilogue").
pub fn bias_gelu_epilogue(bias: &[f32]) -> impl Fn(usize, f32) -> f32 + Sync + '_ {
    move |j, x| gelu_tanh(x + bias[j])
}

/// Plain add-bias kernel (no activation) — used after the attention output
/// projection where the bias is folded into the fused layernorm instead.
///
/// # Panics
/// Panics on shape mismatches.
pub fn add_bias(device: &Device, name: &str, data: &mut [f32], rows: usize, cols: usize, bias: &[f32]) {
    assert_eq!(data.len(), rows * cols, "data shape mismatch");
    assert_eq!(bias.len(), cols, "bias length mismatch");
    let nbytes = (rows * cols * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.add"))
            .flops((rows * cols) as u64)
            .reads(nbytes + (cols * 4) as u64)
            .writes(nbytes),
        || {
            data.par_chunks_mut(cols).for_each(|row| {
                for (v, &b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            });
        },
    );
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // oracle-style index loops
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    #[test]
    fn erf_known_values() {
        // A&S 7.1.26 has |ε| ≤ 1.5e-7, including at the origin.
        assert!((erf(0.0)).abs() < 2e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 2e-7);
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu_tanh(0.0), 0.0);
        // Exact GELU(1) = 0.5·(1 + erf(1/√2)) = 0.8413447.
        assert!((gelu_erf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((gelu_tanh(1.0) - 0.8413447).abs() < 1e-3);
        // Large |x| limits: identity / zero.
        assert!((gelu_tanh(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu_tanh(-10.0).abs() < 1e-4);
    }

    #[test]
    fn tanh_approx_close_to_erf_form() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for _ in 0..1_000 {
            let x = rng.uniform(-6.0, 6.0);
            assert!((gelu_tanh(x) - gelu_erf(x)).abs() < 3e-3, "x={x}");
        }
    }

    #[test]
    fn fused_matches_unfused() {
        let dev = device();
        let rows = 33;
        let cols = 48;
        let bias: Vec<f32> = (0..cols).map(|j| 0.01 * j as f32 - 0.2).collect();
        let mut a = bt_tensor::Tensor::randn([rows, cols], 3).into_vec();
        let mut b = a.clone();
        add_bias_gelu_unfused(&dev, "bias_act", &mut a, rows, cols, &bias);
        add_bias_gelu_fused(&dev, "bias_act", &mut b, rows, cols, &bias);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn fused_declares_less_traffic_and_fewer_launches() {
        let rows = 64;
        let cols = 768;
        let bias = vec![0.0f32; cols];
        let dev_u = device();
        let mut x = vec![1.0f32; rows * cols];
        add_bias_gelu_unfused(&dev_u, "bias_act", &mut x, rows, cols, &bias);
        let dev_f = device();
        let mut y = vec![1.0f32; rows * cols];
        add_bias_gelu_fused(&dev_f, "bias_act", &mut y, rows, cols, &bias);
        assert_eq!(dev_u.launches(), 2);
        assert_eq!(dev_f.launches(), 1);
        assert!(dev_f.total_bytes() < dev_u.total_bytes());
        // Fused moves exactly half the tensor traffic plus one bias read:
        // unfused = 4 tensor passes + bias, fused = 2 passes + bias.
        let tensor_bytes = (rows * cols * 4) as u64;
        assert_eq!(dev_u.total_bytes(), 4 * tensor_bytes + (cols * 4) as u64);
        assert_eq!(dev_f.total_bytes(), 2 * tensor_bytes + (cols * 4) as u64);
    }

    #[test]
    fn epilogue_closure_matches_fused_kernel() {
        let cols = 16;
        let bias: Vec<f32> = (0..cols).map(|j| j as f32 * 0.1).collect();
        let epi = bias_gelu_epilogue(&bias);
        for j in 0..cols {
            let x = -1.0 + j as f32 * 0.3;
            assert_eq!(epi(j, x), gelu_tanh(x + bias[j]));
        }
    }

    #[test]
    fn add_bias_only() {
        let dev = device();
        let mut x = vec![1.0f32; 6];
        add_bias(&dev, "bias", &mut x, 2, 3, &[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "bias length mismatch")]
    fn shape_mismatch_panics() {
        let dev = device();
        let mut x = vec![0.0f32; 6];
        add_bias_gelu_fused(&dev, "bias_act", &mut x, 2, 3, &[0.0; 4]);
    }
}
