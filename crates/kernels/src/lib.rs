//! # bt-kernels — memory-bound Transformer kernels (paper §III.C)
//!
//! Profiling a single BERT layer (paper Fig. 3) shows that beyond the GEMMs,
//! the remaining time goes to *memory-bound* operations: add-bias +
//! layernorm, add-bias + GELU, softmax, and the layout shuffles around
//! attention. The paper attacks each by **kernel fusion**: do the work while
//! the data is in registers instead of taking another round trip through
//! global memory.
//!
//! Every operation here therefore exists in two forms:
//!
//! * an **unfused** pipeline (separate launches, intermediate written to and
//!   re-read from "global memory") — what PyTorch/TensorFlow do and what the
//!   paper's baselines measure; and
//! * a **fused** kernel (one launch, one pass) — the ByteTransformer
//!   version. The fused form both *does* less memory traffic on the real CPU
//!   and *declares* less traffic to the cost model, so the Fig. 9/10 shapes
//!   emerge from structure, not tuning.
//!
//! Module map:
//! * [`activation`] — GELU (tanh and erf-exact forms) and add-bias +
//!   activation pipelines (Fig. 10).
//! * [`layernorm`] — add-bias + residual + LayerNorm, fused vs unfused
//!   (Fig. 9), plus the FP16 SIMD2 variant (§IV.A).
//! * [`softmax`] — row softmax, padded-with-masking and zero-padding forms
//!   (the `cuBLAS + zero padding` variant of Figs. 11–12).
//! * [`layout`] — head split/merge transposes and the pack/unpack-fused
//!   transposes the zero-padding algorithm needs around batched MHA.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod layernorm;
pub mod layout;
pub mod softmax;
