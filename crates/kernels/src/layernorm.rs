//! Add-bias + residual + LayerNorm, fused and unfused (paper §III.C.1,
//! Fig. 9), plus the FP16 SIMD2 variant (§IV.A).
//!
//! After both the attention output projection and the FFN down-projection,
//! BERT computes `LayerNorm(x + residual + bias)`. The naive implementation
//! "introduces two rounds of memory access to load and store the tensor";
//! the fused kernel "only needs to access the global memory in one round to
//! finish both layernorm and adding bias" — the two variants below declare
//! (and on CPU actually perform) exactly those traffic patterns.

use bt_device::{Device, KernelSpec};
use bt_tensor::half::{f16, half2};
use rayon::prelude::*;

/// Normalizes one row in place: `x ← γ ⊙ (x − μ)/σ + β`.
///
/// Shared by every variant; the row is assumed resident in near memory
/// (registers/L1 — the "register-level data re-use" of the paper), so the
/// two passes here cost one global-memory round trip.
#[inline]
pub fn normalize_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let inv_std = 1.0 / (var + eps).sqrt();
    for ((x, &g), &b) in row.iter_mut().zip(gamma).zip(beta) {
        *x = g * (*x - mean) * inv_std + b;
    }
}

/// Unfused pipeline: **two launches**.
/// 1. `out ← out + residual + bias` (full tensor load + store),
/// 2. LayerNorm over `out` (another full load + store).
///
/// This is the left stacked bar of Fig. 9 and what unfused frameworks run.
///
/// # Panics
/// Panics on shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn add_bias_residual_layernorm_unfused(
    device: &Device,
    name: &str,
    out: &mut [f32],
    residual: &[f32],
    bias: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    hidden: usize,
) {
    check_shapes(out, residual, bias, gamma, beta, rows, hidden);
    let nbytes = (rows * hidden * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.add_bias_residual"))
            .flops((rows * hidden * 2) as u64)
            .reads(2 * nbytes + (hidden * 4) as u64)
            .writes(nbytes),
        || {
            out.par_chunks_mut(hidden)
                .zip(residual.par_chunks(hidden))
                .for_each(|(o, r)| {
                    for ((v, &res), &b) in o.iter_mut().zip(r).zip(bias) {
                        *v += res + b;
                    }
                });
        },
    );
    device.launch(
        KernelSpec::new(format!("{name}.norm"))
            .flops((rows * hidden * 8) as u64)
            .reads(nbytes + (2 * hidden * 4) as u64)
            .writes(nbytes),
        || {
            out.par_chunks_mut(hidden)
                .for_each(|row| normalize_row(row, gamma, beta, eps));
        },
    );
}

/// Fused kernel: **one launch, one global-memory round trip** — bias,
/// residual and normalization all happen while each row sits in registers.
/// The paper measured this fusion alone at +61% on the sub-kernel and +3.2%
/// on the single layer.
///
/// # Panics
/// Panics on shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn add_bias_residual_layernorm_fused(
    device: &Device,
    name: &str,
    out: &mut [f32],
    residual: &[f32],
    bias: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    hidden: usize,
) {
    check_shapes(out, residual, bias, gamma, beta, rows, hidden);
    let nbytes = (rows * hidden * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.fused"))
            .flops((rows * hidden * 10) as u64)
            .reads(2 * nbytes + (3 * hidden * 4) as u64)
            .writes(nbytes),
        || {
            out.par_chunks_mut(hidden)
                .zip(residual.par_chunks(hidden))
                .for_each(|(o, r)| {
                    for ((v, &res), &b) in o.iter_mut().zip(r).zip(bias) {
                        *v += res + b;
                    }
                    normalize_row(o, gamma, beta, eps);
                });
        },
    );
}

/// FP16 SIMD2 fused variant: activations stored as `f16`, processed two
/// lanes per step through [`half2`] (paper §IV.A: "We leverage FP16 SIMD2 to
/// increase the computational throughput of layernorm by assigning more
/// workloads to a thread"). Accumulation is FP32, storage rounds once —
/// the tensor-core convert–compute–round pipeline. Traffic is half the FP32
/// kernel's, which is the whole point.
///
/// # Panics
/// Panics on shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn add_bias_residual_layernorm_fused_f16(
    device: &Device,
    name: &str,
    out: &mut [f16],
    residual: &[f16],
    bias: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
    rows: usize,
    hidden: usize,
) {
    assert_eq!(out.len(), rows * hidden, "out shape mismatch");
    assert_eq!(residual.len(), rows * hidden, "residual shape mismatch");
    assert_eq!(bias.len(), hidden, "bias length mismatch");
    assert_eq!(gamma.len(), hidden, "gamma length mismatch");
    assert_eq!(beta.len(), hidden, "beta length mismatch");
    let nbytes = (rows * hidden * 2) as u64; // FP16: 2 bytes per element
    device.launch(
        KernelSpec::new(format!("{name}.fused_f16"))
            .flops((rows * hidden * 10) as u64)
            .reads(2 * nbytes + (3 * hidden * 4) as u64)
            .writes(nbytes),
        || {
            out.par_chunks_mut(hidden)
                .zip(residual.par_chunks(hidden))
                .for_each(|(o, r)| {
                    // Widen two lanes at a time into an f32 row buffer.
                    let mut row = vec![0.0f32; hidden];
                    let mut i = 0;
                    while i + 1 < hidden {
                        let a = half2 { lo: o[i], hi: o[i + 1] };
                        let b = half2 { lo: r[i], hi: r[i + 1] };
                        let (a0, a1) = a.to_f32();
                        let (b0, b1) = b.to_f32();
                        row[i] = a0 + b0 + bias[i];
                        row[i + 1] = a1 + b1 + bias[i + 1];
                        i += 2;
                    }
                    if i < hidden {
                        row[i] = o[i].to_f32() + r[i].to_f32() + bias[i];
                    }
                    normalize_row(&mut row, gamma, beta, eps);
                    // Round once on store.
                    let mut i = 0;
                    while i + 1 < hidden {
                        let packed = half2::from_f32(row[i], row[i + 1]);
                        o[i] = packed.lo;
                        o[i + 1] = packed.hi;
                        i += 2;
                    }
                    if i < hidden {
                        o[i] = f16::from_f32(row[i]);
                    }
                });
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn check_shapes(out: &[f32], residual: &[f32], bias: &[f32], gamma: &[f32], beta: &[f32], rows: usize, hidden: usize) {
    assert_eq!(out.len(), rows * hidden, "out shape mismatch");
    assert_eq!(residual.len(), rows * hidden, "residual shape mismatch");
    assert_eq!(bias.len(), hidden, "bias length mismatch");
    assert_eq!(gamma.len(), hidden, "gamma length mismatch");
    assert_eq!(beta.len(), hidden, "beta length mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::{assert_close, max_abs_diff};
    use bt_tensor::half::{to_f16_vec, to_f32_vec};
    use bt_tensor::Tensor;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn params(hidden: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let bias: Vec<f32> = (0..hidden).map(|i| 0.01 * i as f32).collect();
        let gamma: Vec<f32> = (0..hidden).map(|i| 1.0 + 0.001 * i as f32).collect();
        let beta: Vec<f32> = (0..hidden).map(|i| -0.02 * i as f32).collect();
        (bias, gamma, beta)
    }

    #[test]
    fn normalize_row_zero_mean_unit_var() {
        let mut row: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        normalize_row(&mut row, &gamma, &beta, 1e-6);
        let mean: f32 = row.iter().sum::<f32>() / 64.0;
        let var: f32 = row.iter().map(|&x| x * x).sum::<f32>() / 64.0 - mean * mean;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn fused_matches_unfused() {
        let rows = 37;
        let hidden = 96;
        let (bias, gamma, beta) = params(hidden);
        let x = Tensor::randn([rows, hidden], 1).into_vec();
        let residual = Tensor::randn([rows, hidden], 2).into_vec();
        let dev = device();
        let mut a = x.clone();
        add_bias_residual_layernorm_unfused(
            &dev,
            "layernorm",
            &mut a,
            &residual,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let mut b = x;
        add_bias_residual_layernorm_fused(
            &dev,
            "layernorm",
            &mut b,
            &residual,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        assert_close(&a, &b, 1e-5);
    }

    #[test]
    fn fused_traffic_is_lower() {
        let rows = 16;
        let hidden = 768;
        let (bias, gamma, beta) = params(hidden);
        let residual = vec![0.0f32; rows * hidden];
        let dev_u = device();
        let mut a = vec![1.0f32; rows * hidden];
        add_bias_residual_layernorm_unfused(
            &dev_u,
            "layernorm",
            &mut a,
            &residual,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let dev_f = device();
        let mut b = vec![1.0f32; rows * hidden];
        add_bias_residual_layernorm_fused(
            &dev_f,
            "layernorm",
            &mut b,
            &residual,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        assert_eq!(dev_u.launches(), 2);
        assert_eq!(dev_f.launches(), 1);
        let t = (rows * hidden * 4) as u64;
        // Unfused: (2 loads + 1 store) + (1 load + 1 store) = 5 tensor passes.
        // Fused:   2 loads + 1 store = 3 tensor passes.
        assert_eq!(dev_u.total_bytes() - dev_u.total_bytes() % t, 5 * t);
        assert_eq!(dev_f.total_bytes() - dev_f.total_bytes() % t, 3 * t);
    }

    #[test]
    fn f16_variant_close_to_f32() {
        let rows = 9;
        let hidden = 64;
        let (bias, gamma, beta) = params(hidden);
        let x = Tensor::rand_uniform([rows, hidden], -2.0, 2.0, 3).into_vec();
        let residual = Tensor::rand_uniform([rows, hidden], -2.0, 2.0, 4).into_vec();
        let dev = device();
        let mut f32_out = x.clone();
        add_bias_residual_layernorm_fused(
            &dev,
            "layernorm",
            &mut f32_out,
            &residual,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let mut h_out = to_f16_vec(&x);
        let h_res = to_f16_vec(&residual);
        add_bias_residual_layernorm_fused_f16(
            &dev,
            "layernorm",
            &mut h_out,
            &h_res,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let widened = to_f32_vec(&h_out);
        // FP16 storage error after normalization stays within ~1e-2.
        assert!(max_abs_diff(&widened, &f32_out) < 2e-2);
    }

    #[test]
    fn f16_traffic_is_half() {
        let rows = 8;
        let hidden = 128;
        let (bias, gamma, beta) = params(hidden);
        let dev32 = device();
        let mut a = vec![0.5f32; rows * hidden];
        let res32 = vec![0.5f32; rows * hidden];
        add_bias_residual_layernorm_fused(
            &dev32,
            "layernorm",
            &mut a,
            &res32,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let dev16 = device();
        let mut b = to_f16_vec(&a);
        let res16 = to_f16_vec(&res32);
        add_bias_residual_layernorm_fused_f16(
            &dev16,
            "layernorm",
            &mut b,
            &res16,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let param_bytes = (3 * hidden * 4) as u64;
        let t32 = dev32.total_bytes() - param_bytes;
        let t16 = dev16.total_bytes() - param_bytes;
        assert_eq!(t16 * 2, t32);
    }

    #[test]
    fn odd_hidden_dimension_f16() {
        // Exercises the scalar tail of the SIMD2 loop.
        let rows = 3;
        let hidden = 7;
        let (bias, gamma, beta) = params(hidden);
        let x = Tensor::randn([rows, hidden], 5).into_vec();
        let res = vec![0.0f32; rows * hidden];
        let dev = device();
        let mut f32_out = x.clone();
        add_bias_residual_layernorm_fused(
            &dev,
            "layernorm",
            &mut f32_out,
            &res,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        let mut h = to_f16_vec(&x);
        let h_res = to_f16_vec(&res);
        add_bias_residual_layernorm_fused_f16(
            &dev,
            "layernorm",
            &mut h,
            &h_res,
            &bias,
            &gamma,
            &beta,
            1e-6,
            rows,
            hidden,
        );
        assert!(max_abs_diff(&to_f32_vec(&h), &f32_out) < 2e-2);
    }

    #[test]
    #[should_panic(expected = "residual shape mismatch")]
    fn shape_checked() {
        let dev = device();
        let mut out = vec![0.0f32; 8];
        add_bias_residual_layernorm_fused(
            &dev,
            "layernorm",
            &mut out,
            &[0.0; 4],
            &[0.0; 4],
            &[1.0; 4],
            &[0.0; 4],
            1e-6,
            2,
            4,
        );
    }
}
