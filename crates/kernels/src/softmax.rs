//! Softmax kernels: padded-with-masking (the conventional cost) and the
//! zero-padding variant that skips dead query rows (paper Figs. 11–12,
//! "cuBLAS + zero padding").
//!
//! Attention logits live in a `[batch, heads, seq, seq]` tensor whose cost is
//! quadratic in the padded length. The conventional kernel processes every
//! row with an additive mask; the zero-padding variant uses the known
//! sequence lengths to touch only the `len_b` valid query rows per sequence
//! (and only their `len_b` valid columns), zeroing the masked columns so the
//! following `P·V` batched GEMM stays exact.

use bt_device::{Device, KernelSpec};
use rayon::prelude::*;

/// In-place numerically stable softmax of one row: `x ← exp(x−max)/Σ`.
#[inline]
pub fn softmax_row(row: &mut [f32]) {
    if row.is_empty() {
        return;
    }
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

/// Plain row-wise softmax over a dense `rows × cols` tensor (launched).
///
/// # Panics
/// Panics if `data.len() != rows * cols`.
pub fn softmax_rows(device: &Device, data: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(data.len(), rows * cols, "softmax shape mismatch");
    let nbytes = (rows * cols * 4) as u64;
    device.launch(
        KernelSpec::new("softmax.rows")
            .flops((rows * cols * 4) as u64)
            .reads(nbytes)
            .writes(nbytes),
        || {
            data.par_chunks_mut(cols.max(1)).for_each(softmax_row);
        },
    );
}

/// Conventional padded softmax over `[batch, heads, seq, seq]` logits with
/// an additive key mask: every one of the `batch·heads·seq` rows is
/// processed over all `seq` columns (`exp(-inf) = 0` kills padded keys).
/// Cost is the full quadratic `batch·heads·seq²` regardless of how short the
/// real sentences are — the waste the zero-padding algorithm removes.
///
/// # Panics
/// Panics on shape mismatches.
pub fn masked_softmax_padded(
    device: &Device,
    name: &str,
    logits: &mut [f32],
    batch: usize,
    heads: usize,
    seq: usize,
    seq_lens: &[usize],
) {
    assert_eq!(logits.len(), batch * heads * seq * seq, "logits shape mismatch");
    assert_eq!(seq_lens.len(), batch, "seq_lens length mismatch");
    let nbytes = (logits.len() * 4) as u64;
    device.launch(
        KernelSpec::new(format!("{name}.padded"))
            .flops((logits.len() * 4) as u64)
            .reads(nbytes)
            .writes(nbytes),
        || {
            logits.par_chunks_mut(seq).enumerate().for_each(|(row_idx, row)| {
                let b = row_idx / (heads * seq);
                let len = seq_lens[b];
                // Additive mask: padded keys -> -inf before the softmax.
                for v in row[len..].iter_mut() {
                    *v = f32::NEG_INFINITY;
                }
                if len == 0 {
                    // Fully masked row: conventional kernels emit zeros.
                    row.fill(0.0);
                } else {
                    softmax_row(row);
                }
            });
        },
    );
}

/// Zero-padding softmax: touches only the valid query rows of each
/// `(batch, head)` and reads only their valid columns, writing zeros to the
/// masked columns so the downstream padded `P·V` GEMM remains exact. Padded
/// query rows are left untouched (their outputs are dead and are dropped by
/// the re-pack after MHA, Fig. 2c).
///
/// Declared traffic is proportional to `Σ_b len_b·seq + Σ_b len_b²` instead
/// of `batch·seq²` — the measured +9%/+17% of Figs. 11–12 comes from exactly
/// this difference.
///
/// # Panics
/// Panics on shape mismatches.
pub fn masked_softmax_zeropad(
    device: &Device,
    name: &str,
    logits: &mut [f32],
    batch: usize,
    heads: usize,
    seq: usize,
    seq_lens: &[usize],
) {
    assert_eq!(logits.len(), batch * heads * seq * seq, "logits shape mismatch");
    assert_eq!(seq_lens.len(), batch, "seq_lens length mismatch");
    let valid_rows: u64 = seq_lens.iter().map(|&l| (l * heads) as u64).sum();
    let valid_sq: u64 = seq_lens.iter().map(|&l| (l * l * heads) as u64).sum();
    device.launch(
        KernelSpec::new(format!("{name}.zeropad"))
            .flops(valid_sq * 4)
            .reads(valid_sq * 4)
            .writes(valid_rows * seq as u64 * 4),
        || {
            logits.par_chunks_mut(seq * seq).enumerate().for_each(|(bh, mat)| {
                let b = bh / heads;
                let len = seq_lens[b];
                for row in mat.chunks_mut(seq).take(len) {
                    softmax_row(&mut row[..len]);
                    row[len..].fill(0.0);
                }
            });
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_device::CostModel;
    use bt_tensor::compare::assert_close;
    use bt_tensor::Tensor;
    use proptest::prelude::*;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    #[test]
    fn row_softmax_sums_to_one() {
        let mut row = vec![1.0f32, 2.0, 3.0, 4.0];
        softmax_row(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn row_softmax_shift_invariant() {
        let mut a = vec![1.0f32, 5.0, -2.0];
        let mut b = vec![101.0f32, 105.0, 98.0];
        softmax_row(&mut a);
        softmax_row(&mut b);
        assert_close(&a, &b, 1e-6);
    }

    #[test]
    fn row_softmax_extreme_values_stable() {
        let mut row = vec![1000.0f32, 1000.0, -1000.0];
        softmax_row(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-6);
        assert!(row[2].abs() < 1e-6);
        assert!(row.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_row_is_noop() {
        softmax_row(&mut []);
    }

    #[test]
    fn padded_and_zeropad_agree_on_valid_region() {
        let batch = 3;
        let heads = 2;
        let seq = 8;
        let seq_lens = vec![8, 3, 5];
        let logits = Tensor::randn([batch, heads, seq, seq], 1).into_vec();
        let dev = device();
        let mut a = logits.clone();
        masked_softmax_padded(&dev, "softmax", &mut a, batch, heads, seq, &seq_lens);
        let mut b = logits;
        masked_softmax_zeropad(&dev, "softmax", &mut b, batch, heads, seq, &seq_lens);
        for bh in 0..batch * heads {
            let len = seq_lens[bh / heads];
            for r in 0..len {
                let off = bh * seq * seq + r * seq;
                // Valid rows agree over all columns (masked cols are 0 in both).
                assert_close(&a[off..off + seq], &b[off..off + seq], 1e-6);
            }
        }
    }

    #[test]
    fn zeropad_declares_less_traffic() {
        let batch = 4;
        let heads = 2;
        let seq = 64;
        let seq_lens = vec![16, 16, 16, 16];
        let logits = vec![0.5f32; batch * heads * seq * seq];
        let dev_p = device();
        let mut a = logits.clone();
        masked_softmax_padded(&dev_p, "softmax", &mut a, batch, heads, seq, &seq_lens);
        let dev_z = device();
        let mut b = logits;
        masked_softmax_zeropad(&dev_z, "softmax", &mut b, batch, heads, seq, &seq_lens);
        assert!(dev_z.total_bytes() < dev_p.total_bytes() / 2);
        assert!(dev_z.total_flops() < dev_p.total_flops() / 4);
    }

    #[test]
    fn fully_masked_row_zeroed_in_padded_kernel() {
        let dev = device();
        let mut logits = vec![3.0f32; 4];
        masked_softmax_padded(&dev, "softmax", &mut logits, 1, 1, 2, &[0]);
        assert_eq!(logits, vec![0.0; 4]);
    }

    proptest! {
        #[test]
        fn prop_valid_rows_sum_to_one(
            lens in proptest::collection::vec(1usize..10, 1..5),
            heads in 1usize..4
        ) {
            let batch = lens.len();
            let seq = *lens.iter().max().unwrap();
            let logits = Tensor::randn([batch, heads, seq, seq], 9).into_vec();
            let dev = device();
            let mut data = logits;
            masked_softmax_zeropad(&dev, "softmax", &mut data, batch, heads, seq, &lens);
            for bh in 0..batch * heads {
                let len = lens[bh / heads];
                for r in 0..len {
                    let off = bh * seq * seq + r * seq;
                    let sum: f32 = data[off..off + seq].iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-5);
                    // Masked columns are exactly zero.
                    for &v in &data[off + len..off + seq] {
                        prop_assert_eq!(v, 0.0);
                    }
                }
            }
        }
    }
}
