//! Property test: every framework strategy computes the same function on
//! random variable-length batches — they may differ only in cost.

use bt_core::config::BertConfig;
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::{CostModel, Device};
use bt_frameworks::{FrameworkKind, SimFramework};
use bt_tensor::Tensor;
use bt_varlen::BatchMask;
use proptest::prelude::*;

fn zeroed(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_frameworks_agree_on_random_masks(
        lens in proptest::collection::vec(1usize..14, 1..5),
        seed in 0u64..1000,
    ) {
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, 1, 42);
        let max = lens.iter().copied().max().unwrap();
        let mask = BatchMask::from_lens(lens, max).unwrap();
        let input = zeroed(&mask, config.hidden(), seed);
        let dev = Device::with_model(CostModel::unit());
        let reference = model.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
        for kind in FrameworkKind::all() {
            let fw = SimFramework::new(kind, model.clone());
            let out = fw.forward(&dev, &input, &mask).unwrap();
            for (b, &len) in mask.seq_lens().iter().enumerate() {
                for s in 0..len {
                    for h in 0..config.hidden() {
                        let a = reference.at(&[b, s, h]).unwrap();
                        let c = out.at(&[b, s, h]).unwrap();
                        prop_assert!((a - c).abs() < 5e-3, "{}: ({b},{s},{h})", kind.name());
                    }
                }
            }
        }
    }
}
