//! End-to-end quantized encoder scenario: the full BERT forward (fused-MHA
//! path, variable-length mask) runs under every `BYTE_GEMM_PREC` tier and
//! stays within an empirical envelope of the f32 forward, while the
//! telemetry layer shows the low-precision kernels actually ran (packed
//! bytes + per-precision launch/tile counters) — the paper's §III.C
//! low-precision hot path exercised at the model level, not just per-GEMM.

use bt_core::config::BertConfig;
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::Device;
use bt_gemm::{active_precision, set_active_precision, Precision};
use bt_tensor::Tensor;
use bt_varlen::BatchMask;

/// Random input with padded positions zeroed (the packed pipeline never
/// reads them, but the baseline comparison path must see the same words).
fn masked_input(mask: &BatchMask, hidden: usize, seed: u64) -> Tensor {
    let mut t = Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).unwrap();
            }
        }
    }
    t
}

#[test]
fn quantized_forward_tracks_f32_and_lights_lowp_counters() {
    // The active precision is process-wide; this is the only test in the
    // binary that flips it, and it restores on exit.
    let prev = active_precision();
    let config = BertConfig::tiny();
    let model = BertModel::new_random(config, 2, 11);
    // Variable lengths incl. a 1-token sequence — the serving shape mix.
    let mask = BatchMask::from_lens(vec![13, 1, 9, 16], 16).unwrap();
    let input = masked_input(&mask, config.hidden(), 5);

    set_active_precision(Precision::F32);
    let dev = Device::new();
    let reference = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();

    // Empirical envelopes (~4× observed drift on this scenario): layernorm
    // renormalizes between GEMMs, so per-dot documented bounds don't
    // compose — the differential suite asserts those at the GEMM level.
    for (prec, envelope) in [
        (Precision::F16, 0.02f32),
        (Precision::Bf16, 0.06),
        (Precision::Int8, 0.2),
    ] {
        set_active_precision(prec);
        bt_obs::set_enabled(true);
        let _ = bt_obs::drain();
        let dev = Device::new();
        let got = model.forward(&dev, &input, &mask, OptLevel::FusedMha).unwrap();
        let mut worst = 0.0f32;
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in 0..len {
                for h in 0..config.hidden() {
                    let r = reference.at(&[b, s, h]).unwrap();
                    let g = got.at(&[b, s, h]).unwrap();
                    worst = worst.max((r - g).abs());
                }
            }
        }
        eprintln!("quantized_encoder: {prec}: max drift vs f32 = {worst}");
        assert!(
            worst <= envelope,
            "{prec}: encoder drift {worst} exceeds the {envelope} envelope"
        );
        assert!(
            worst > 0.0,
            "{prec}: bitwise-identical output means the lowp path did not run"
        );

        if bt_obs::compiled() {
            let profile = bt_obs::drain();
            let of = |name: &str| {
                profile
                    .counters
                    .iter()
                    .filter(|(n, _)| n == name || (n.starts_with("gemm.") && n.ends_with(&format!(".{prec}"))))
                    .map(|(_, v)| *v)
                    .sum::<u64>()
            };
            assert!(
                of(&format!("gemm.lowp.pack_bytes.{prec}")) > 0,
                "{prec}: no packed low-precision bytes counted"
            );
            let launches: u64 = profile
                .counters
                .iter()
                .filter(|(n, _)| {
                    (n.starts_with("gemm.blocked.launches.") || n.starts_with("gemm.grouped.tiles."))
                        && n.ends_with(&format!(".{prec}"))
                })
                .map(|(_, v)| *v)
                .sum();
            assert!(launches > 0, "{prec}: no per-precision launch/tile counters lit");
        }
    }
    set_active_precision(prev);
}
