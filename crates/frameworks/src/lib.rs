//! # bt-frameworks — competitor execution-strategy simulations
//!
//! The paper's end-to-end evaluation (Fig. 14) compares ByteTransformer
//! against PyTorch JIT, TensorFlow XLA, Tencent TurboTransformer, and
//! NVIDIA FasterTransformer. Those binaries are not available here, so each
//! framework is re-implemented as an **execution strategy over the same
//! substrate**: its documented pipeline (what it pads, what it fuses, which
//! MHA it runs, how it batches) drives the very same kernels, GEMMs and cost
//! model the rest of the workspace uses. Performance differences are
//! therefore *structural* — padded vs packed iteration spaces, fused vs
//! unfused passes, per-group launch multiplication — with only a handful of
//! per-runtime calibration constants ([`calibration`]) layered on top.
//!
//! All five frameworks produce numerically identical outputs on valid
//! tokens (asserted in tests); they differ only in declared cost and launch
//! structure, which is exactly the comparison the paper makes.
//!
//! * [`SimFramework`] — the five frameworks behind one interface.
//! * [`pipeline`] — the shared padded/packed layer pipelines the strategies
//!   compose.
//! * [`grouping`] — TurboTransformer's sort-and-group re-batching.
//! * [`serving`] — request batching policies and latency statistics for the
//!   online-serving example.
//! * [`feature_matrix`] — the paper's Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
mod framework;
pub mod grouping;
pub mod pipeline;
pub mod profiled;
pub mod serving;

pub use calibration::feature_matrix;
pub use framework::{FrameworkKind, SimFramework};
