//! # bt-frameworks — competitor execution-strategy simulations
//!
//! The paper's end-to-end evaluation (Fig. 14) compares ByteTransformer
//! against PyTorch JIT, TensorFlow XLA, Tencent TurboTransformer, and
//! NVIDIA FasterTransformer. Those binaries are not available here, so each
//! framework is re-implemented as an **execution strategy over the same
//! substrate**: its documented pipeline (what it pads, what it fuses, which
//! MHA it runs, how it batches) drives the very same kernels, GEMMs and cost
//! model the rest of the workspace uses. Performance differences are
//! therefore *structural* — padded vs packed iteration spaces, fused vs
//! unfused passes, per-group launch multiplication — with only a handful of
//! per-runtime calibration constants ([`calibration`]) layered on top.
//!
//! All five frameworks produce numerically identical outputs on valid
//! tokens (asserted in tests); they differ only in declared cost and launch
//! structure, which is exactly the comparison the paper makes.
//!
//! * [`SimFramework`] — the five frameworks behind one interface.
//! * [`pipeline`] — the shared padded/packed layer pipelines the strategies
//!   compose.
//! * [`grouping`] — TurboTransformer's sort-and-group re-batching.
//! * [`admission`] — shared batch-cutting policies (FIFO, sorted groups,
//!   token budget) and shed reasons.
//! * [`serving`] — open-loop workload generators, offline batching helpers
//!   and latency statistics.
//! * [`server`] — `bt-serve`: the continuous-batching server with bounded
//!   ingress, deadlines and load shedding (virtual-time engine + threaded
//!   front-end).
//! * [`shard`] — multi-shard scale-out: a deterministic router spreading an
//!   open-loop trace across N server instances (round-robin, join-shortest-
//!   queue, power-of-two-choices) with per-shard KV budgets, a hot-shard
//!   work-shedding gate, and mergeable per-shard telemetry snapshots.
//! * [`calibration`] — per-runtime constants, the paper's Table I, and
//!   serving-capacity calibration from the roofline model / recorded GEMM
//!   benchmarks.
//! * [`feature_matrix`] — the paper's Table I.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod calibration;
pub mod decode;
mod framework;
pub mod grouping;
pub mod pipeline;
pub mod profiled;
pub mod server;
pub mod serving;
pub mod shard;

pub use admission::{CutPolicy, ShedReason};
pub use calibration::feature_matrix;
pub use decode::{
    run_decode_loop, DecodeConfig, DecodeEngine, DecodeReport, DecodeRequest, DecodeSummary, ModeledDecodeEngine,
    PagedDecodeEngine,
};
pub use framework::{FrameworkKind, SimFramework};
pub use server::{run_open_loop, ServeConfig, ServeReport, ServeSummary, Server};
pub use shard::{run_sharded_open_loop, shard_seed, RoutePolicy, ShardConfig, ShardRouter, ShardedReport};
