//! Online-serving substrate: request batching policies, open-loop arrival
//! generators, and latency statistics.
//!
//! The paper's motivation is a *serving* system (TikTok/Douyin traffic):
//! requests with wildly different lengths arrive continuously and must be
//! batched for GPU efficiency. This module provides the offline batching
//! policies the serving example compares:
//!
//! * [`BatchPolicy::Fifo`] — take the next `max_batch` requests as they
//!   came. A padding-free runtime (ByteTransformer) is insensitive to the
//!   length variance inside such batches; a padded runtime pays for it.
//! * [`BatchPolicy::SortedGroups`] — TurboTransformers-style: sort a window
//!   of requests by length, then cut batches of similar lengths. Reduces
//!   padding for padded runtimes at the cost of reordering (which shows up
//!   as queueing latency for early-arrived long requests).
//!
//! Both are thin wrappers over the shared batch-cutting policies in
//! [`crate::admission`]; the *online* continuous-batching server (bounded
//! ingress queue, deadlines, token-budget batches, load shedding) lives in
//! [`crate::server`].

use crate::admission::CutPolicy;
use bt_varlen::{BatchMask, VarlenError};

/// A serving request: an id and a sequence length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned identifier (used to report per-request latency).
    pub id: usize,
    /// Token count of the request.
    pub len: usize,
}

/// Batch formation policy for the offline window batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Arrival order, fixed maximum batch size.
    Fifo,
    /// Sort the whole window by length, then cut fixed-size batches —
    /// the grouping family TurboTransformers/LightSeq use.
    SortedGroups,
}

impl BatchPolicy {
    /// The equivalent continuous-batching [`CutPolicy`] at the given
    /// capacity (both offline policies are count-capped).
    pub fn cut_policy(&self, max_batch: usize) -> CutPolicy {
        match self {
            BatchPolicy::Fifo => CutPolicy::Fifo { max_batch },
            BatchPolicy::SortedGroups => CutPolicy::SortedGroups { max_batch },
        }
    }
}

/// Forms batches over a window of requests. Each batch is at most
/// `max_batch` requests; its mask's `max_seq_len` is the longest member
/// (padded runtimes pay for that; packed runtimes pay only for valid
/// tokens). Delegates to [`crate::admission::plan_batches`], so the window
/// batcher and the continuous server cut batches with the same code.
///
/// # Errors
/// Propagates [`VarlenError`] from mask construction. Under the invariants
/// `plan_batches` establishes (lengths clamped to ≥ 1, each mask's
/// `max_seq_len` the maximum of its own batch) mask construction cannot
/// currently fail; the `Result` is kept so the signature survives future
/// [`BatchMask`] invariants without breaking callers.
///
/// # Panics
/// Panics if `max_batch == 0`.
pub fn form_batches(
    requests: &[Request],
    max_batch: usize,
    policy: BatchPolicy,
) -> Result<Vec<(Vec<Request>, BatchMask)>, VarlenError> {
    assert!(max_batch > 0, "max_batch must be positive");
    let pairs: Vec<(usize, usize)> = requests.iter().map(|r| (r.id, r.len)).collect();
    let planned = crate::admission::plan_batches(&pairs, policy.cut_policy(max_batch))?;
    Ok(planned
        .into_iter()
        .map(|(batch, mask)| (batch.into_iter().map(|(id, len)| Request { id, len }).collect(), mask))
        .collect())
}

/// A request with an arrival time, for the discrete-event server
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// Caller-assigned identifier.
    pub id: usize,
    /// Token count.
    pub len: usize,
    /// Arrival time in seconds.
    pub arrival: f64,
}

/// Samples `n` requests with exponential inter-arrival times (a Poisson
/// process at `rate` requests/second) and lengths from `dist`.
pub fn poisson_arrivals(
    n: usize,
    rate: f64,
    dist: bt_varlen::workload::LengthDistribution,
    max_len: usize,
    seed: u64,
) -> Vec<TimedRequest> {
    assert!(rate > 0.0, "rate must be positive");
    let mut rng = bt_tensor::rng::Xoshiro256StarStar::seed_from_u64(seed);
    let lens = dist.sample(n, max_len, seed.wrapping_add(1));
    let mut t = 0.0f64;
    lens.into_iter()
        .enumerate()
        .map(|(id, len)| {
            t += -(1.0 - rng.next_f64()).ln() / rate; // Exp(rate)
            TimedRequest { id, len, arrival: t }
        })
        .collect()
}

/// Samples `n` requests from a two-phase bursty (Markov-modulated Poisson)
/// process: the arrival rate alternates between `base_rate` and
/// `burst_rate` requests/second, switching phase every `period` seconds,
/// with lengths from `dist`. This is the adversarial open-loop shape for an
/// admission policy — sustained bursts at a multiple of capacity with quiet
/// valleys in between — while staying fully deterministic under `seed`.
///
/// # Panics
/// Panics unless both rates and the period are positive.
pub fn bursty_arrivals(
    n: usize,
    base_rate: f64,
    burst_rate: f64,
    period: f64,
    dist: bt_varlen::workload::LengthDistribution,
    max_len: usize,
    seed: u64,
) -> Vec<TimedRequest> {
    assert!(base_rate > 0.0 && burst_rate > 0.0, "rates must be positive");
    assert!(period > 0.0, "period must be positive");
    let mut rng = bt_tensor::rng::Xoshiro256StarStar::seed_from_u64(seed);
    let lens = dist.sample(n, max_len, seed.wrapping_add(1));
    let mut t = 0.0f64;
    lens.into_iter()
        .enumerate()
        .map(|(id, len)| {
            // Phase of the current instant decides the local rate; the
            // exponential gap is sampled at that rate. (A gap can straddle a
            // phase boundary — fine for a load generator: the realized rate
            // still alternates between the two targets.)
            let in_burst = ((t / period) as u64) % 2 == 1;
            let rate = if in_burst { burst_rate } else { base_rate };
            t += -(1.0 - rng.next_f64()).ln() / rate;
            TimedRequest { id, len, arrival: t }
        })
        .collect()
}

/// Discrete-event simulation of a single-GPU serving loop.
///
/// The server forms a batch whenever it is free and work is pending: it
/// admits every request that has arrived, waits up to `max_wait` seconds for
/// more (batching window), caps at `max_batch`, and runs the batch for the
/// duration `exec` reports (typically the modeled time of a framework
/// forward). Returns per-request latency (completion − arrival), indexed by
/// request id.
///
/// # Panics
/// Panics if `max_batch == 0` or request ids are not `0..n`.
pub fn simulate_server(
    requests: &[TimedRequest],
    max_batch: usize,
    max_wait: f64,
    mut exec: impl FnMut(&BatchMask) -> f64,
) -> Vec<f64> {
    assert!(max_batch > 0, "max_batch must be positive");
    let mut order: Vec<TimedRequest> = requests.to_vec();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
    let mut latency = vec![0.0f64; requests.len()];
    let mut clock = 0.0f64;
    let mut next = 0usize;
    while next < order.len() {
        // The server becomes attentive at `t0`.
        let t0 = clock.max(order[next].arrival);
        // Admit arrivals within the batching window, up to capacity.
        let deadline = t0 + max_wait;
        let mut batch = Vec::new();
        while next < order.len() && batch.len() < max_batch && order[next].arrival <= deadline {
            batch.push(order[next]);
            next += 1;
        }
        let start = batch.iter().map(|r| r.arrival).fold(t0, f64::max);
        let lens: Vec<usize> = batch.iter().map(|r| r.len.max(1)).collect();
        let max = lens.iter().copied().max().unwrap_or(1);
        let mask = BatchMask::from_lens(lens, max).expect("bounded lengths");
        let duration = exec(&mask);
        let done = start + duration;
        for r in &batch {
            latency[r.id] = done - r.arrival;
        }
        clock = done;
    }
    latency
}

/// Latency percentiles over a set of per-request latencies (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Mean latency.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst case.
    pub max: f64,
}

/// Computes latency statistics. Returns zeros for an empty input.
pub fn latency_stats(latencies: &[f64]) -> LatencyStats {
    if latencies.is_empty() {
        return LatencyStats {
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx]
    };
    LatencyStats {
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: *sorted.last().expect("non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(lens: &[usize]) -> Vec<Request> {
        lens.iter().enumerate().map(|(id, &len)| Request { id, len }).collect()
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let batches = form_batches(&reqs(&[100, 5, 90, 7]), 2, BatchPolicy::Fifo).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0[0].id, 0);
        assert_eq!(batches[0].0[1].id, 1);
        assert_eq!(batches[0].1.max_seq_len(), 100);
    }

    #[test]
    fn sorted_groups_cluster_similar_lengths() {
        let batches = form_batches(&reqs(&[100, 5, 90, 7]), 2, BatchPolicy::SortedGroups).unwrap();
        // Sorted desc: 100, 90 | 7, 5.
        assert_eq!(batches[0].1.max_seq_len(), 100);
        assert_eq!(batches[0].1.seq_lens(), &[100, 90]);
        assert_eq!(batches[1].1.max_seq_len(), 7);
    }

    #[test]
    fn sorted_groups_waste_less_padding() {
        // Interleaved long/short arrivals: FIFO batches mix them (heavy
        // padding); sorting clusters them.
        let lens: Vec<usize> = (1..=32).flat_map(|i| [i * 16, 520 - i * 16]).collect();
        let requests = reqs(&lens);
        let waste = |policy| -> f64 {
            form_batches(&requests, 8, policy)
                .unwrap()
                .iter()
                .map(|(_, m)| m.padded_words() as f64)
                .sum::<f64>()
        };
        assert!(waste(BatchPolicy::SortedGroups) < waste(BatchPolicy::Fifo));
    }

    #[test]
    fn every_request_lands_in_exactly_one_batch() {
        let requests = reqs(&[3, 9, 1, 4, 4, 8, 2]);
        for policy in [BatchPolicy::Fifo, BatchPolicy::SortedGroups] {
            let batches = form_batches(&requests, 3, policy).unwrap();
            let mut ids: Vec<usize> = batches.iter().flat_map(|(rs, _)| rs.iter().map(|r| r.id)).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..7).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_length_requests_are_clamped() {
        let batches = form_batches(&reqs(&[0, 4]), 2, BatchPolicy::Fifo).unwrap();
        assert_eq!(batches[0].1.seq_lens(), &[1, 4]);
    }

    #[test]
    fn poisson_arrivals_are_monotone_at_roughly_the_rate() {
        let reqs = poisson_arrivals(2_000, 100.0, bt_varlen::workload::LengthDistribution::Fixed, 64, 7);
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let span = reqs.last().unwrap().arrival;
        let rate = reqs.len() as f64 / span;
        assert!((rate - 100.0).abs() < 10.0, "observed rate {rate}");
        assert!(reqs.iter().all(|r| r.len == 64));
    }

    #[test]
    fn bursty_arrivals_alternate_between_the_two_rates() {
        let period = 0.5;
        let reqs = bursty_arrivals(
            4_000,
            20.0,
            400.0,
            period,
            bt_varlen::workload::LengthDistribution::Fixed,
            16,
            3,
        );
        assert!(reqs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        // Count arrivals per phase; burst phases must be far denser.
        let (mut quiet, mut burst) = (0usize, 0usize);
        for r in &reqs {
            if ((r.arrival / period) as u64) % 2 == 1 {
                burst += 1;
            } else {
                quiet += 1;
            }
        }
        assert!(
            burst > quiet * 4,
            "burst phases must dominate: burst {burst} vs quiet {quiet}"
        );
    }

    #[test]
    fn server_batches_up_to_capacity() {
        // 6 requests arriving together, capacity 4, constant 1 s service.
        let reqs: Vec<TimedRequest> = (0..6)
            .map(|id| TimedRequest {
                id,
                len: 8,
                arrival: 0.0,
            })
            .collect();
        let mut batches = Vec::new();
        let lat = simulate_server(&reqs, 4, 0.0, |mask| {
            batches.push(mask.batch());
            1.0
        });
        assert_eq!(batches, vec![4, 2]);
        // First four finish at t=1, last two queue behind them (t=2).
        assert_eq!(lat[0], 1.0);
        assert_eq!(lat[5], 2.0);
    }

    #[test]
    fn batching_window_gathers_stragglers() {
        let reqs = vec![
            TimedRequest {
                id: 0,
                len: 4,
                arrival: 0.0,
            },
            TimedRequest {
                id: 1,
                len: 4,
                arrival: 0.05,
            },
        ];
        // Without a window the second request runs alone...
        let mut batches = Vec::new();
        simulate_server(&reqs, 8, 0.0, |m| {
            batches.push(m.batch());
            1.0
        });
        assert_eq!(batches, vec![1, 1]);
        // ...with a 0.1 s window they share a batch (start waits for #1).
        let mut batches = Vec::new();
        let lat = simulate_server(&reqs, 8, 0.1, |m| {
            batches.push(m.batch());
            1.0
        });
        assert_eq!(batches, vec![2]);
        assert!((lat[0] - 1.05).abs() < 1e-12); // waited for the straggler
        assert!((lat[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_server_jumps_to_next_arrival() {
        let reqs = vec![
            TimedRequest {
                id: 0,
                len: 4,
                arrival: 0.0,
            },
            TimedRequest {
                id: 1,
                len: 4,
                arrival: 100.0,
            },
        ];
        let lat = simulate_server(&reqs, 8, 0.0, |_| 1.0);
        // Neither request sees the other's gap.
        assert_eq!(lat, vec![1.0, 1.0]);
    }

    #[test]
    fn stats_percentiles() {
        let lat: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = latency_stats(&lat);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!((s.p99 - 99.0).abs() <= 1.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = latency_stats(&[]);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
    }
}
