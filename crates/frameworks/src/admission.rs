//! Admission control and batch-cutting policies shared by the offline
//! batcher ([`crate::serving::form_batches`]), the continuous-batching
//! server ([`crate::server`]), and the multi-shard router
//! ([`crate::shard`]).
//!
//! The central idea is **token-weighted admission**: a request's cost is its
//! valid-token count, not its slot in a fixed-size batch. Under a
//! [`CutPolicy::TokenBudget`] one 512-token request and sixty-four 8-token
//! requests carry the same admission weight, so batch *work* is constant
//! even when batch *occupancy* swings by an order of magnitude — exactly
//! the property a packed (zero-padding) runtime needs, because its cost is
//! proportional to valid tokens rather than to `batch × max_seq_len`.
//!
//! The policies here are pure data-structure code (no clocks, no threads):
//! the virtual-time engine, the threaded server, and the offline window
//! batcher all call the same [`CutPolicy::cut_next_batch`], so a policy
//! tested in one driver behaves identically in the others.

use crate::grouping::descending_order;
use bt_varlen::{BatchMask, VarlenError};
use std::collections::VecDeque;

/// Why a request was rejected instead of served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// The bounded ingress queue was full when the request arrived
    /// (backpressure: the caller should retry later or divert).
    QueueFull,
    /// The request's deadline expired before its batch started; it was
    /// cancelled while queued rather than served uselessly late.
    DeadlineExpired,
    /// The request exceeds the longest sequence the runtime accepts.
    TooLong,
    /// The paged KV-cache pool could not hold the request's tokens — the
    /// decode path's memory-pressure signal (`KvOom` surfaced by
    /// `bt-varlen`'s block pool), distinct from compute overload so
    /// operators can tell "pool too small" from "host too slow".
    CacheOom,
    /// A per-chunk deadline check cancelled the request *between chunks*,
    /// after some of its work had already run — the chunked-prefill /
    /// streaming-batch signal, distinct from [`ShedReason::DeadlineExpired`]
    /// (which cancels a request still waiting in the queue, before any work
    /// started). Partial work is accounted in the outcome's ingested-token
    /// counts.
    CancelledMidRequest,
    /// The shard router refused to place the request because the selected
    /// shard's outstanding valid tokens already exceed the configured
    /// hot-shard threshold (`crate::shard::ShardConfig::hot_shard_tokens`).
    /// This is a *routing-time* decision — the request never reached any
    /// shard's ingress queue — distinct from [`ShedReason::QueueFull`],
    /// which is a per-shard gate on queue *occupancy* rather than queued
    /// *work*.
    HotShard,
}

impl ShedReason {
    /// Stable lowercase label (used in reports and the `BENCH_serve.json`
    /// artifact).
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineExpired => "deadline_expired",
            ShedReason::TooLong => "too_long",
            ShedReason::CacheOom => "cache_oom",
            ShedReason::CancelledMidRequest => "cancelled_mid_request",
            ShedReason::HotShard => "hot_shard",
        }
    }

    /// The interned terminal trace mark for this reason
    /// (`req.shed.<label>`, from [`bt_obs::names`]), for tagging a shed
    /// request's timeline via [`bt_obs::trace_mark_at`].
    pub fn trace_label(&self) -> &'static bt_obs::LabelId {
        static QUEUE_FULL: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_QUEUE_FULL);
        static DEADLINE: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_DEADLINE);
        static TOO_LONG: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_TOO_LONG);
        static CACHE_OOM: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_CACHE_OOM);
        static CANCELLED: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_CANCELLED);
        static HOT_SHARD: bt_obs::LabelId = bt_obs::LabelId::new(bt_obs::names::REQ_SHED_HOT_SHARD);
        match self {
            ShedReason::QueueFull => &QUEUE_FULL,
            ShedReason::DeadlineExpired => &DEADLINE,
            ShedReason::TooLong => &TOO_LONG,
            ShedReason::CacheOom => &CACHE_OOM,
            ShedReason::CancelledMidRequest => &CANCELLED,
            ShedReason::HotShard => &HOT_SHARD,
        }
    }
}

/// Admission weight of a request: its valid-token count, clamped to at
/// least one (zero-length requests still occupy a batch slot and a launch).
pub fn admission_weight(len: usize) -> usize {
    len.max(1)
}

/// A queued request, as seen by the batch cutter: identity, token count,
/// arrival time and absolute deadline (both in the driver's clock domain —
/// simulated seconds for the virtual-time engine, wall seconds for the
/// threaded server).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pending {
    /// Caller-assigned identifier.
    pub id: usize,
    /// Valid-token count.
    pub len: usize,
    /// When the request arrived.
    pub arrival: f64,
    /// Absolute time after which the request must be shed, not served.
    pub deadline: f64,
}

/// How the server cuts the next batch from its queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CutPolicy {
    /// Arrival order, at most `max_batch` requests per batch — the paper's
    /// baseline serving discipline. A packed runtime is insensitive to the
    /// length variance inside such batches; a padded runtime pays for it.
    Fifo {
        /// Maximum requests per batch.
        max_batch: usize,
    },
    /// Take the `max_batch` *longest* queued requests — the
    /// TurboTransformers-style grouping family applied continuously
    /// (clusters similar lengths, at the cost of reordering).
    SortedGroups {
        /// Maximum requests per batch.
        max_batch: usize,
    },
    /// Arrival order, but cut the batch when its summed
    /// [`admission_weight`] would exceed `budget_tokens` — constant *work*
    /// per batch regardless of length mix. A batch always contains at least
    /// one request, so a single request longer than the budget runs alone
    /// rather than starving.
    TokenBudget {
        /// Valid-token budget per batch.
        budget_tokens: usize,
    },
}

impl CutPolicy {
    /// Stable lowercase label (reports and `BENCH_serve.json`).
    pub fn label(&self) -> &'static str {
        match self {
            CutPolicy::Fifo { .. } => "fifo",
            CutPolicy::SortedGroups { .. } => "sorted_groups",
            CutPolicy::TokenBudget { .. } => "token_budget",
        }
    }

    /// Removes and returns the next batch from the front of `queue`.
    ///
    /// Returns an empty batch only when the queue is empty. All three
    /// policies preserve the queue order of the requests they leave behind.
    ///
    /// # Panics
    /// Panics if the policy's capacity parameter is zero.
    pub fn cut_next_batch(&self, queue: &mut VecDeque<Pending>) -> Vec<Pending> {
        match *self {
            CutPolicy::Fifo { max_batch } => {
                assert!(max_batch > 0, "max_batch must be positive");
                let take = max_batch.min(queue.len());
                queue.drain(..take).collect()
            }
            CutPolicy::SortedGroups { max_batch } => {
                assert!(max_batch > 0, "max_batch must be positive");
                if queue.is_empty() {
                    return Vec::new();
                }
                let lens: Vec<usize> = queue.iter().map(|p| p.len).collect();
                let mut chosen: Vec<usize> = descending_order(&lens).into_iter().take(max_batch).collect();
                chosen.sort_unstable();
                // Remove back-to-front so earlier indices stay valid.
                let mut batch: Vec<Pending> = chosen
                    .iter()
                    .rev()
                    .map(|&i| queue.remove(i).expect("index within queue"))
                    .collect();
                // Longest-first inside the batch, matching descending_order.
                batch.sort_by_key(|p| std::cmp::Reverse(p.len));
                batch
            }
            CutPolicy::TokenBudget { budget_tokens } => {
                assert!(budget_tokens > 0, "budget_tokens must be positive");
                let mut batch = Vec::new();
                let mut weight = 0usize;
                while let Some(front) = queue.front() {
                    let w = admission_weight(front.len);
                    if !batch.is_empty() && weight + w > budget_tokens {
                        break;
                    }
                    weight += w;
                    batch.push(queue.pop_front().expect("front exists"));
                }
                batch
            }
        }
    }
}

/// One planned batch: the `(id, len)` pairs it contains plus the
/// [`BatchMask`] it runs with.
pub type PlannedBatch = (Vec<(usize, usize)>, BatchMask);

/// Cuts an entire window of already-arrived requests into batches with
/// masks — the offline form of the server's continuous loop, and the shared
/// implementation behind [`crate::serving::form_batches`].
///
/// Each batch's mask uses the batch's own maximum (clamped) length, so a
/// padded runtime pays per-batch padding while a packed runtime pays only
/// for valid tokens.
///
/// # Errors
/// Propagates [`VarlenError`] from mask construction. With the invariants
/// established here — every length clamped to at least 1 and the mask's
/// `max_seq_len` taken as the maximum over the same clamped lengths — mask
/// construction cannot currently fail; the `Result` is kept so the
/// signature stays honest if [`BatchMask`] gains new invariants.
pub fn plan_batches(requests: &[(usize, usize)], policy: CutPolicy) -> Result<Vec<PlannedBatch>, VarlenError> {
    let mut queue: VecDeque<Pending> = requests
        .iter()
        .map(|&(id, len)| Pending {
            id,
            len,
            arrival: 0.0,
            deadline: f64::INFINITY,
        })
        .collect();
    // SortedGroups over a whole window: repeated longest-`max_batch` cuts
    // are exactly "sort the window descending, chunk it".
    let mut batches = Vec::new();
    while !queue.is_empty() {
        let cut = policy.cut_next_batch(&mut queue);
        let mask = batch_mask(&cut)?;
        batches.push((cut.into_iter().map(|p| (p.id, p.len)).collect(), mask));
    }
    Ok(batches)
}

/// Builds the [`BatchMask`] for one cut batch: lengths clamped to at least
/// one, padded length equal to the batch's own maximum.
///
/// # Errors
/// As [`plan_batches`]: structurally unreachable under current invariants.
pub fn batch_mask(batch: &[Pending]) -> Result<BatchMask, VarlenError> {
    let lens: Vec<usize> = batch.iter().map(|p| admission_weight(p.len)).collect();
    let max = lens.iter().copied().max().unwrap_or(1);
    BatchMask::from_lens(lens, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue_of(lens: &[usize]) -> VecDeque<Pending> {
        lens.iter()
            .enumerate()
            .map(|(id, &len)| Pending {
                id,
                len,
                arrival: id as f64,
                deadline: f64::INFINITY,
            })
            .collect()
    }

    #[test]
    fn fifo_takes_front_in_order() {
        let mut q = queue_of(&[9, 1, 7, 3]);
        let batch = CutPolicy::Fifo { max_batch: 3 }.cut_next_batch(&mut q);
        assert_eq!(batch.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].id, 3);
    }

    #[test]
    fn sorted_groups_takes_longest_and_preserves_rest() {
        let mut q = queue_of(&[5, 100, 7, 90]);
        let batch = CutPolicy::SortedGroups { max_batch: 2 }.cut_next_batch(&mut q);
        assert_eq!(batch.iter().map(|p| p.len).collect::<Vec<_>>(), vec![100, 90]);
        // Remaining requests keep arrival order.
        assert_eq!(q.iter().map(|p| p.id).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn token_budget_cuts_by_weight_not_count() {
        let mut q = queue_of(&[8; 64]);
        let batch = CutPolicy::TokenBudget { budget_tokens: 512 }.cut_next_batch(&mut q);
        assert_eq!(batch.len(), 64, "64 × 8 tokens fit a 512-token budget");
        let mut q = queue_of(&[512, 8]);
        let batch = CutPolicy::TokenBudget { budget_tokens: 512 }.cut_next_batch(&mut q);
        assert_eq!(batch.len(), 1, "one 512-token request fills the same budget");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn token_budget_oversized_request_runs_alone() {
        let mut q = queue_of(&[4000, 5]);
        let batch = CutPolicy::TokenBudget { budget_tokens: 512 }.cut_next_batch(&mut q);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].len, 4000);
    }

    #[test]
    fn zero_length_requests_weigh_one() {
        assert_eq!(admission_weight(0), 1);
        let mut q = queue_of(&[0, 0, 0]);
        let batch = CutPolicy::TokenBudget { budget_tokens: 2 }.cut_next_batch(&mut q);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn empty_queue_yields_empty_batch() {
        let mut q = VecDeque::new();
        for policy in [
            CutPolicy::Fifo { max_batch: 4 },
            CutPolicy::SortedGroups { max_batch: 4 },
            CutPolicy::TokenBudget { budget_tokens: 64 },
        ] {
            assert!(policy.cut_next_batch(&mut q).is_empty());
        }
    }

    #[test]
    fn plan_batches_covers_every_request_once() {
        let requests: Vec<(usize, usize)> = [3usize, 9, 1, 4, 4, 8, 2].iter().copied().enumerate().collect();
        for policy in [
            CutPolicy::Fifo { max_batch: 3 },
            CutPolicy::SortedGroups { max_batch: 3 },
            CutPolicy::TokenBudget { budget_tokens: 8 },
        ] {
            let batches = plan_batches(&requests, policy).unwrap();
            let mut ids: Vec<usize> = batches.iter().flat_map(|(b, _)| b.iter().map(|&(id, _)| id)).collect();
            ids.sort_unstable();
            assert_eq!(ids, (0..requests.len()).collect::<Vec<_>>(), "{}", policy.label());
        }
    }

    #[test]
    fn masks_use_per_batch_maximum() {
        let requests = vec![(0, 100), (1, 5), (2, 90), (3, 7)];
        let batches = plan_batches(&requests, CutPolicy::SortedGroups { max_batch: 2 }).unwrap();
        assert_eq!(batches[0].1.max_seq_len(), 100);
        assert_eq!(batches[1].1.max_seq_len(), 7);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CutPolicy::Fifo { max_batch: 1 }.label(), "fifo");
        assert_eq!(CutPolicy::TokenBudget { budget_tokens: 1 }.label(), "token_budget");
        assert_eq!(ShedReason::QueueFull.label(), "queue_full");
        assert_eq!(ShedReason::DeadlineExpired.label(), "deadline_expired");
        assert_eq!(ShedReason::TooLong.label(), "too_long");
        assert_eq!(ShedReason::CacheOom.label(), "cache_oom");
        assert_eq!(ShedReason::CancelledMidRequest.label(), "cancelled_mid_request");
        assert_eq!(ShedReason::HotShard.label(), "hot_shard");
    }
}
