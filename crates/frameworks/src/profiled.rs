//! Instrumented **fixed-window** serving loop: the discrete-event batcher
//! of [`crate::serving::simulate_server`] driving real framework forwards,
//! with every stage reported to `bt-obs` under the `serving.*` names from
//! the canonical [`bt_obs::names`] table.
//!
//! This is the simplest of the three serving drivers and deliberately stays
//! that way — no admission gates, no deadlines, no chunking. It predates
//! and complements the richer loops:
//!
//! * [`crate::server::run_open_loop`] / [`crate::server::Server`] —
//!   continuous batching with token-budget admission, overload shedding,
//!   **chunked shortest-first rounds** (`serve.*`, `serve.chunk.*`), and
//!   per-request `req.*` trace marks;
//! * [`crate::decode::run_decode_loop`] — token-step batching over the
//!   paged KV cache with chunked prefill (`serve.decode.*`, `kvcache.*`).
//!
//! Keep using this loop when you want a *whole-pipeline* profile of the
//! pack → forward → unpack cost structure without serving-policy effects in
//! the way. Per batch it records a `serving.batch` span wrapping three
//! child spans — `serving.batch.pack` (host-side batch assembly +
//! padding), `serving.batch.forward` (the framework forward),
//! `serving.batch.unpack` (per-request extraction from the padded output)
//! — plus the batch occupancy and per-request queue-wait histograms.
//! Failed forwards record a terminal `serving.request.error` span and an
//! error counter, and the affected requests still carry queue-wait and
//! time-to-failure latency in the report.
//!
//! Simulation semantics match `simulate_server`: the clock advances by the
//! device's *modeled* time delta of the batch forward (single-GPU
//! roofline), while measured wall time lands in the telemetry spans — the
//! same modeled/measured split the rest of the workspace uses.

use crate::framework::SimFramework;
use crate::serving::TimedRequest;
use bt_device::Device;
use bt_obs::names;
use bt_tensor::Tensor;
use bt_varlen::BatchMask;

/// Occupancy (requests per formed batch) — exact percentiles up to 255.
static OCCUPANCY: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVING_BATCH_OCCUPANCY);
/// Per-request queue wait in simulated microseconds.
static QUEUE_WAIT_US: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVING_QUEUE_WAIT_US);
/// Requests admitted to batches.
static REQUESTS: bt_obs::Counter = bt_obs::Counter::new(names::SERVING_REQUESTS);
/// Batches formed.
static BATCHES: bt_obs::Counter = bt_obs::Counter::new(names::SERVING_BATCHES);
/// Requests whose batch forward failed.
static ERRORS: bt_obs::Counter = bt_obs::Counter::new(names::SERVING_REQUEST_ERRORS);

/// Outcome of one served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedRequest {
    /// Caller-assigned request id.
    pub id: usize,
    /// Token count.
    pub len: usize,
    /// Seconds spent queued before its batch started (simulated clock).
    pub queue_wait: f64,
    /// Completion (or failure) minus arrival, in simulated seconds.
    pub latency: f64,
    /// False when the batch forward returned an error.
    pub ok: bool,
}

/// Everything `serve_profiled` observed, indexed by request id.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request outcomes (`requests[id].id == id`).
    pub requests: Vec<ServedRequest>,
    /// Batches formed.
    pub batches: usize,
    /// Requests that failed (their `ok` flag is false).
    pub errors: usize,
}

/// Runs the instrumented serving loop: batches `requests` exactly like
/// [`crate::serving::simulate_server`] (capacity `max_batch`, batching
/// window `max_wait`), executes each batch as a real `fw.forward` on
/// `device`, and reports spans/counters/histograms to `bt-obs`.
///
/// Request inputs are synthesized (`seed`-deterministic random embeddings,
/// padding zeroed) — the serving substrate cares about shapes and timing,
/// not token values.
///
/// # Panics
/// Panics if `max_batch == 0` or request ids are not a permutation of
/// `0..requests.len()`.
pub fn serve_profiled(
    fw: &SimFramework,
    device: &Device,
    requests: &[TimedRequest],
    max_batch: usize,
    max_wait: f64,
    seed: u64,
) -> ServeReport {
    assert!(max_batch > 0, "max_batch must be positive");
    let hidden = fw.model.config.hidden();
    let mut order: Vec<TimedRequest> = requests.to_vec();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
    let mut report = ServeReport {
        requests: (0..order.len())
            .map(|id| ServedRequest {
                id,
                len: 0,
                queue_wait: 0.0,
                latency: 0.0,
                ok: false,
            })
            .collect(),
        batches: 0,
        errors: 0,
    };
    let mut clock = 0.0f64;
    let mut next = 0usize;
    while next < order.len() {
        let t0 = clock.max(order[next].arrival);
        let deadline = t0 + max_wait;
        let mut batch = Vec::new();
        while next < order.len() && batch.len() < max_batch && order[next].arrival <= deadline {
            batch.push(order[next]);
            next += 1;
        }
        let start = batch.iter().map(|r| r.arrival).fold(t0, f64::max);
        let _batch_span = bt_obs::span!("serving.batch");
        BATCHES.incr();
        REQUESTS.add(batch.len() as u64);
        OCCUPANCY.record(batch.len() as u64);
        for r in &batch {
            QUEUE_WAIT_US.record(((start - r.arrival) * 1e6) as u64);
        }

        // Pack: assemble the padded [batch, max_seq, hidden] input.
        let (input, mask) = {
            let _span = bt_obs::span!("serving.batch.pack");
            let lens: Vec<usize> = batch.iter().map(|r| r.len.max(1)).collect();
            let max = lens.iter().copied().max().unwrap_or(1);
            let mask = BatchMask::from_lens(lens, max).expect("bounded lengths");
            let mut input = Tensor::randn([mask.batch(), max, hidden], seed ^ report.batches as u64);
            for (b, &len) in mask.seq_lens().iter().enumerate() {
                for s in len..max {
                    for h in 0..hidden {
                        input.set(&[b, s, h], 0.0).expect("within shape");
                    }
                }
            }
            (input, mask)
        };

        let modeled_before = device.modeled_total();
        let result = {
            let _span = bt_obs::span!("serving.batch.forward");
            fw.forward(device, &input, &mask)
        };
        match result {
            Ok(out) => {
                // Unpack: slice each request's valid rows out of the
                // padded output (what a real server would send back).
                {
                    let _span = bt_obs::span!("serving.batch.unpack");
                    let o = out.as_slice();
                    let seq = mask.max_seq_len();
                    for b in 0..batch.len() {
                        let rows = mask.seq_lens()[b];
                        let _reply: Vec<f32> = o[b * seq * hidden..b * seq * hidden + rows * hidden].to_vec();
                    }
                }
                let done = start + (device.modeled_total() - modeled_before);
                for r in &batch {
                    report.requests[r.id] = ServedRequest {
                        id: r.id,
                        len: r.len,
                        queue_wait: start - r.arrival,
                        latency: done - r.arrival,
                        ok: true,
                    };
                }
                clock = done;
            }
            Err(_) => {
                // Terminal error: the requests still appear in the profile
                // with their queue wait and time-to-failure latency.
                let _span = bt_obs::span!("serving.request.error");
                ERRORS.add(batch.len() as u64);
                report.errors += batch.len();
                for r in &batch {
                    report.requests[r.id] = ServedRequest {
                        id: r.id,
                        len: r.len,
                        queue_wait: start - r.arrival,
                        latency: start - r.arrival,
                        ok: false,
                    };
                }
                clock = start;
            }
        }
        report.batches += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkKind;
    use bt_core::config::BertConfig;
    use bt_core::encoder::BertModel;
    use bt_device::CostModel;

    fn tiny_framework(kind: FrameworkKind) -> SimFramework {
        SimFramework {
            kind,
            model: BertModel::new_random(BertConfig::tiny(), 1, 42),
        }
    }

    fn arrivals(lens: &[usize]) -> Vec<TimedRequest> {
        lens.iter()
            .enumerate()
            .map(|(id, &len)| TimedRequest {
                id,
                len,
                arrival: id as f64 * 1e-4,
            })
            .collect()
    }

    #[test]
    fn serves_every_request_with_latency() {
        let fw = tiny_framework(FrameworkKind::ByteTransformer);
        let device = fw.device(CostModel::unit());
        let report = serve_profiled(&fw, &device, &arrivals(&[5, 9, 2, 7]), 2, 0.0, 1);
        assert_eq!(report.requests.len(), 4);
        assert_eq!(report.errors, 0);
        assert!(report.batches >= 2);
        for (id, r) in report.requests.iter().enumerate() {
            assert_eq!(r.id, id);
            assert!(r.ok, "request {id} must succeed");
            assert!(r.latency >= r.queue_wait);
            assert!(r.latency > 0.0);
        }
    }

    #[test]
    fn failed_forward_keeps_request_timing() {
        // TurboTransformer rejects max_seq_len > 512: the whole batch
        // fails, but its requests must still carry timing + an error flag.
        let fw = tiny_framework(FrameworkKind::TurboTransformer);
        let device = fw.device(CostModel::unit());
        if bt_obs::compiled() {
            bt_obs::set_enabled(true);
        }
        let errors_before = bt_obs::drain()
            .counters
            .iter()
            .find(|(n, _)| n == "serving.request.errors")
            .map_or(0, |(_, v)| *v);
        let report = serve_profiled(&fw, &device, &arrivals(&[600, 550]), 2, 1.0, 1);
        assert_eq!(report.errors, 2);
        for r in &report.requests {
            assert!(!r.ok);
            assert!(r.latency >= 0.0 && r.queue_wait >= 0.0);
        }
        if bt_obs::compiled() {
            // Counter is cumulative: the failed batch must have added 2.
            let errors_after = bt_obs::drain()
                .counters
                .iter()
                .find(|(n, _)| n == "serving.request.errors")
                .map_or(0, |(_, v)| *v);
            assert!(errors_after >= errors_before + 2, "error counter must record the batch");
        }
    }

    #[test]
    fn mixed_outcomes_cover_all_requests() {
        let fw = tiny_framework(FrameworkKind::TurboTransformer);
        let device = fw.device(CostModel::unit());
        // Short request succeeds, long one fails; both must be reported.
        let report = serve_profiled(&fw, &device, &arrivals(&[30, 600]), 1, 0.0, 1);
        assert_eq!(report.batches, 2);
        assert_eq!(report.errors, 1);
        assert!(report.requests[0].ok);
        assert!(!report.requests[1].ok);
    }
}
