//! Shared encoder-layer pipelines the framework strategies compose.
//!
//! [`padded_layer`] is the conventional-framework layer: padded end to end,
//! with switches for the MHA implementation, LayerNorm fusion, and GELU
//! placement. [`packed_layer_ft`] is FasterTransformer's layer: packed
//! non-MHA path (FT pioneered the "effective transformer" packing) with a
//! TensorRT-style fixed-shape fused MHA up to
//! [`crate::calibration::FT_FUSED_MHA_MAX_SEQ`], unfused batched fallback
//! above. ByteTransformer itself uses `bt_core::encoder` directly.

use bt_core::attention::{batched_attention, flash_attention, naive_attention};
use bt_core::config::BertConfig;
use bt_core::weights::LayerWeights;
use bt_device::Device;
use bt_gemm::{gemm_kernel_spec_active, sgemm, sgemm_epilogue, GemmSpec};
use bt_kernels::activation::{add_bias_gelu_unfused, bias_gelu_epilogue};
use bt_kernels::layernorm::{add_bias_residual_layernorm_fused, add_bias_residual_layernorm_unfused};
use bt_kernels::layout::{add_bias_unpack_split_qkv, merge_heads_pack};
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex};

/// Which MHA implementation a strategy runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MhaStyle {
    /// PyTorch-style unfused chain (nine kernels, fully padded).
    Naive,
    /// cuBLAS batched GEMMs with padded softmax.
    BatchedPadded,
    /// cuBLAS batched GEMMs with zero-padding softmax.
    BatchedZeropad,
    /// TensorRT/FlashAttention-style fixed-shape fused MHA (padded).
    FlashPadded,
}

/// Where the FFN bias + GELU runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeluStyle {
    /// Two separate kernels after the GEMM.
    Unfused,
    /// Fused into the GEMM epilogue (ByteTransformer's §III.C.2).
    Epilogue,
}

/// Per-layer strategy switches.
#[derive(Debug, Clone, Copy)]
pub struct LayerStrategy {
    /// MHA implementation.
    pub mha: MhaStyle,
    /// Fused add-bias + residual + LayerNorm vs the two-kernel pipeline.
    pub layernorm_fused: bool,
    /// GELU placement.
    pub gelu: GeluStyle,
}

/// Launches one pipeline GEMM (`a: rows×k` times `weight: k×n`), optionally
/// with a fused epilogue. The launch is costed by
/// [`gemm_kernel_spec_active`], so the modeled time follows the active
/// `BYTE_GEMM_PREC` tier; the epilogue adds its flops on top.
#[allow(clippy::too_many_arguments)]
pub(crate) fn launch_gemm(
    device: &Device,
    name: &str,
    a: &[f32],
    rows: usize,
    weight: &[f32],
    k: usize,
    n: usize,
    epilogue: Option<&(dyn Fn(usize, f32) -> f32 + Sync)>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * n];
    let mut spec = gemm_kernel_spec_active(name, rows, n, k);
    if epilogue.is_some() {
        spec.cost.flops += (rows * n * 9) as u64;
    }
    device.launch(spec, || match epilogue {
        None => sgemm(GemmSpec::nn(), rows, n, k, a, weight, &mut out),
        Some(epi) => sgemm_epilogue(GemmSpec::nn(), rows, n, k, a, weight, &mut out, epi),
    });
    out
}

/// Post-attention tail shared by the pipelines: projection, layernorm0,
/// FFN (+GELU), layernorm1, under the given strategy switches.
pub(crate) fn post_attention(
    device: &Device,
    config: &BertConfig,
    w: &LayerWeights,
    residual0: &[f32],
    ctx: Vec<f32>,
    rows: usize,
    strat: &LayerStrategy,
) -> Vec<f32> {
    let hidden = config.hidden();
    let inter = config.intermediate();
    let eps = config.eps;

    let mut attn = launch_gemm(
        device,
        "gemm1.proj",
        &ctx,
        rows,
        w.attn_out_weight.as_slice(),
        hidden,
        hidden,
        None,
    );
    if strat.layernorm_fused {
        add_bias_residual_layernorm_fused(
            device,
            "layernorm0",
            &mut attn,
            residual0,
            &w.attn_out_bias,
            &w.ln0_gamma,
            &w.ln0_beta,
            eps,
            rows,
            hidden,
        );
    } else {
        add_bias_residual_layernorm_unfused(
            device,
            "layernorm0",
            &mut attn,
            residual0,
            &w.attn_out_bias,
            &w.ln0_gamma,
            &w.ln0_beta,
            eps,
            rows,
            hidden,
        );
    }

    let ffn = match strat.gelu {
        GeluStyle::Epilogue => {
            let epi = bias_gelu_epilogue(&w.ffn_up_bias);
            launch_gemm(
                device,
                "gemm2.ffn_up",
                &attn,
                rows,
                w.ffn_up_weight.as_slice(),
                hidden,
                inter,
                Some(&epi),
            )
        }
        GeluStyle::Unfused => {
            let mut ffn = launch_gemm(
                device,
                "gemm2.ffn_up",
                &attn,
                rows,
                w.ffn_up_weight.as_slice(),
                hidden,
                inter,
                None,
            );
            add_bias_gelu_unfused(device, "bias_act", &mut ffn, rows, inter, &w.ffn_up_bias);
            ffn
        }
    };

    let mut out = launch_gemm(
        device,
        "gemm3.ffn_down",
        &ffn,
        rows,
        w.ffn_down_weight.as_slice(),
        inter,
        hidden,
        None,
    );
    if strat.layernorm_fused {
        add_bias_residual_layernorm_fused(
            device,
            "layernorm1",
            &mut out,
            &attn,
            &w.ffn_down_bias,
            &w.ln1_gamma,
            &w.ln1_beta,
            eps,
            rows,
            hidden,
        );
    } else {
        add_bias_residual_layernorm_unfused(
            device,
            "layernorm1",
            &mut out,
            &attn,
            &w.ffn_down_bias,
            &w.ln1_gamma,
            &w.ln1_beta,
            eps,
            rows,
            hidden,
        );
    }
    out
}

/// One conventional-framework encoder layer, padded end to end.
/// `x` is `[batch, seq, hidden]`.
pub fn padded_layer(
    device: &Device,
    config: &BertConfig,
    w: &LayerWeights,
    x: &Tensor,
    mask: &BatchMask,
    strat: &LayerStrategy,
) -> Tensor {
    let hidden = config.hidden();
    let (batch, seq) = (mask.batch(), mask.max_seq_len());
    let rows = batch * seq;
    let full_idx =
        PackingIndex::from_mask(&BatchMask::from_lens(vec![seq; batch], seq).expect("full lengths are valid"));

    let qkv = launch_gemm(
        device,
        "gemm0.qkv",
        x.as_slice(),
        rows,
        w.qkv_weight.as_slice(),
        hidden,
        3 * hidden,
        None,
    );
    let qkv = Tensor::from_vec(qkv, [rows, 3 * hidden]).expect("shape consistent");
    let (q, k, v) = add_bias_unpack_split_qkv(device, &qkv, &w.qkv_bias, &full_idx, config.heads);

    let scale = config.attention_scale();
    let ctx_pad = match strat.mha {
        // Dispatch tax already applies device-wide, so naive gets 0 extra.
        MhaStyle::Naive => naive_attention(device, &q, &k, &v, mask.seq_lens(), scale, 0.0),
        MhaStyle::BatchedPadded => batched_attention(device, &q, &k, &v, mask.seq_lens(), scale, false),
        MhaStyle::BatchedZeropad => batched_attention(device, &q, &k, &v, mask.seq_lens(), scale, true),
        MhaStyle::FlashPadded => flash_attention(device, &q, &k, &v, mask.seq_lens(), scale),
    };
    let ctx = merge_heads_pack(device, &ctx_pad, &full_idx);

    let out = post_attention(device, config, w, x.as_slice(), ctx.into_vec(), rows, strat);
    Tensor::from_vec(out, [batch, seq, hidden]).expect("shape consistent")
}

/// One FasterTransformer encoder layer: packed non-MHA path; fixed-shape
/// fused MHA up to [`crate::calibration::FT_FUSED_MHA_MAX_SEQ`], unfused
/// batched attention (with zero-padding softmax) above. `x` is
/// `[valid, hidden]`.
pub fn packed_layer_ft(
    device: &Device,
    config: &BertConfig,
    w: &LayerWeights,
    x: &Tensor,
    idx: &PackingIndex,
) -> Tensor {
    let hidden = config.hidden();
    let rows = idx.valid_words();

    let qkv = launch_gemm(
        device,
        "gemm0.qkv",
        x.as_slice(),
        rows,
        w.qkv_weight.as_slice(),
        hidden,
        3 * hidden,
        None,
    );
    let qkv = Tensor::from_vec(qkv, [rows, 3 * hidden]).expect("shape consistent");
    // FT unpacks around MHA even for its fused kernel: the TRT plugin
    // consumes padded fixed-shape batches.
    let (q, k, v) = add_bias_unpack_split_qkv(device, &qkv, &w.qkv_bias, idx, config.heads);
    let scale = config.attention_scale();
    let ctx_pad = if idx.max_seq_len() <= crate::calibration::FT_FUSED_MHA_MAX_SEQ {
        flash_attention(device, &q, &k, &v, idx.mask().seq_lens(), scale)
    } else {
        batched_attention(device, &q, &k, &v, idx.mask().seq_lens(), scale, true)
    };
    let ctx = merge_heads_pack(device, &ctx_pad, idx);

    let strat = LayerStrategy {
        mha: MhaStyle::FlashPadded, // unused in post_attention
        layernorm_fused: true,      // FT fuses bias+layernorm
        gelu: GeluStyle::Unfused,   // but not the GEMM epilogue
    };
    let out = post_attention(device, config, w, x.as_slice(), ctx.into_vec(), rows, &strat);
    Tensor::from_vec(out, [rows, hidden]).expect("shape consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::encoder::{BertModel, OptLevel};
    use bt_device::CostModel;

    fn device() -> Device {
        Device::with_model(CostModel::unit())
    }

    fn setup(lens: &[usize], max_seq: usize) -> (BertModel, Tensor, BatchMask) {
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, 1, 42);
        let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
        let mut input = Tensor::randn([mask.batch(), max_seq, config.hidden()], 7);
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..max_seq {
                for h in 0..config.hidden() {
                    input.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        (model, input, mask)
    }

    fn valid_diff(a: &Tensor, b: &Tensor, mask: &BatchMask) -> f32 {
        let hidden = a.dims()[2];
        let mut worst = 0.0f32;
        for (bi, &len) in mask.seq_lens().iter().enumerate() {
            for s in 0..len {
                for h in 0..hidden {
                    worst = worst.max((a.at(&[bi, s, h]).unwrap() - b.at(&[bi, s, h]).unwrap()).abs());
                }
            }
        }
        worst
    }

    #[test]
    fn every_mha_style_matches_the_reference_encoder() {
        let (model, input, mask) = setup(&[5, 9, 2], 12);
        let dev = device();
        let reference = model.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
        let w = &model.weights.layers[0];
        for mha in [
            MhaStyle::Naive,
            MhaStyle::BatchedPadded,
            MhaStyle::BatchedZeropad,
            MhaStyle::FlashPadded,
        ] {
            let strat = LayerStrategy {
                mha,
                layernorm_fused: false,
                gelu: GeluStyle::Unfused,
            };
            let out = padded_layer(&dev, &model.config, w, &input, &mask, &strat);
            let d = valid_diff(&reference, &out, &mask);
            assert!(d < 5e-3, "{mha:?} diverges: {d}");
        }
    }

    #[test]
    fn fusion_switches_do_not_change_numerics() {
        let (model, input, mask) = setup(&[4, 7], 8);
        let dev = device();
        let w = &model.weights.layers[0];
        let base = padded_layer(
            &dev,
            &model.config,
            w,
            &input,
            &mask,
            &LayerStrategy {
                mha: MhaStyle::BatchedPadded,
                layernorm_fused: false,
                gelu: GeluStyle::Unfused,
            },
        );
        let fused = padded_layer(
            &dev,
            &model.config,
            w,
            &input,
            &mask,
            &LayerStrategy {
                mha: MhaStyle::BatchedPadded,
                layernorm_fused: true,
                gelu: GeluStyle::Epilogue,
            },
        );
        assert!(valid_diff(&base, &fused, &mask) < 1e-4);
    }

    #[test]
    fn ft_packed_layer_matches_reference() {
        let (model, input, mask) = setup(&[5, 9, 2], 12);
        let dev = device();
        let reference = model.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
        let idx = PackingIndex::from_mask(&mask);
        let packed = idx.pack(&dev, &input).unwrap();
        let out = packed_layer_ft(&dev, &model.config, &model.weights.layers[0], &packed, &idx);
        let out_pad = idx.unpack(&dev, &out).unwrap();
        assert!(valid_diff(&reference, &out_pad, &mask) < 5e-3);
    }
}
