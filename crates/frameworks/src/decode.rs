//! Token-step continuous batching for autoregressive decode — the serving
//! loop over `bt-core`'s paged decoder.
//!
//! [`crate::server`] batches *whole requests*: a request enters a batch
//! once, runs, and leaves. Generation does not fit that shape — a decode
//! session produces one token per step for hundreds of steps, and the
//! efficient schedule re-forms the batch **every token step**, mixing new
//! sessions' prompt ingestion (*prefill*) with all live sessions' next
//! token (*decode*) under the same token-budget admission the encoder
//! server uses (Orca-style continuous batching; the ROADMAP's "per token
//! step, not per request").
//!
//! The loop here is the virtual-time twin of
//! [`crate::server::run_open_loop`], with two decode-specific overload
//! guards on top of the queue/deadline/length gates:
//!
//! * **token budget per step** — a step's work is `active sessions × 1`
//!   decode tokens plus admitted prefill tokens; prompts are admitted only
//!   while the sum fits the budget (an oversized prompt runs alone rather
//!   than starving, exactly like [`crate::admission::CutPolicy::TokenBudget`]);
//! * **cache pressure** — the engine reports sessions whose KV-cache
//!   append was refused ([`bt_varlen::paged::KvOom`]); they are shed with
//!   the distinct [`ShedReason::CacheOom`] and their blocks returned, so
//!   "pool too small" is visible separately from "host too slow".
//!
//! With [`DecodeConfig::chunk_tokens`] set (the `BYTE_CHUNK_TOKENS` knob),
//! prompts prefill in **fixed token-budget chunks** that interleave with
//! in-flight decode steps instead of monopolising whole steps — the
//! streaming schedule of `bt_core::chunked`, whose differential suite
//! proves chunking never changes an output bit. Chunking adds a third
//! guard: the deadline is re-checked at **every chunk boundary**, and a
//! half-ingested prompt that runs out of time is cancelled with the
//! distinct [`ShedReason::CancelledMidRequest`] (its ingested tokens stay
//! in the ledger via [`DecodeOutcome::Shed::prefilled_tokens`]).
//!
//! Accounting is exact at **two** granularities, both asserted by the
//! stress suite: per request (`served + shed == offered`) and per token
//! step (every decoded/prefilled token in a [`StepRecord`] reconciles with
//! the per-request outcomes — [`DecodeReport::ledger_is_exact`]).
//!
//! Two [`DecodeEngine`]s run under the loop: [`ModeledDecodeEngine`] (pure
//! block-pool bookkeeping plus a linear cost model — deterministic, for
//! stress tests and `btx decode`) and [`PagedDecodeEngine`] (real
//! [`PagedDecoder`] forwards with modeled device time — what
//! `bench_decode` measures).
//!
//! Like the encoder loop, every request's lifecycle is tagged with a
//! [`bt_obs::TraceId`] at the simulated clock (`req.enqueue` → `req.admit`
//! → `req.prefill.start` → `req.prefill.chunk`* → `req.decode.step`* →
//! `req.done` / `req.shed.<reason>`), so drained profiles reconstruct into
//! per-request timelines whose phase sums reconcile exactly with this
//! ledger.

use crate::admission::ShedReason;
use crate::server::vns;
use crate::serving::TimedRequest;
use bt_core::decoder::TransformerDecoder;
use bt_core::paged::PagedDecoder;
use bt_device::Device;
use bt_obs::{names, TraceId};
use bt_tensor::Tensor;
use bt_varlen::paged::{BlockPool, PagedLayout, SessionId};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Decode requests offered to the loop (admitted or not).
static OFFERED: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_OFFERED);
/// Decode requests served to completion.
static SERVED: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_SERVED);
/// Decode requests shed, any reason (per-reason split lives in the report).
static SHED: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_SHED);
/// Sessions shed specifically for KV-cache exhaustion.
static SHED_CACHE_OOM: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_SHED_CACHE_OOM);
/// Half-prefilled sessions cancelled at a chunk boundary.
static SHED_CANCELLED: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_SHED_CANCELLED);
/// Prefill chunks ingested (equals prompts served when chunking is off).
static PREFILL_CHUNKS: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_PREFILL_CHUNKS);
/// Token steps executed.
static STEPS: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_STEPS);
/// Decode tokens generated across all steps.
static DECODE_TOKENS: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_TOKENS_DECODE);
/// Prompt tokens prefilled across all steps.
static PREFILL_TOKENS: bt_obs::Counter = bt_obs::Counter::new(names::DECODE_TOKENS_PREFILL);
/// Live sessions per executed step.
static ACTIVE_SESSIONS: bt_obs::Histogram = bt_obs::Histogram::new(names::DECODE_ACTIVE_SESSIONS);
/// KV-cache blocks in use, sampled after every step.
static BLOCKS_IN_USE: bt_obs::Histogram = bt_obs::Histogram::new(names::KV_BLOCKS_IN_USE);

/// One generation request: a prompt to prefill, then `decode_tokens` steps
/// of one token each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeRequest {
    /// Caller-assigned id; must form a permutation of `0..n` per run.
    pub id: usize,
    /// Prompt length in tokens (≥ 1).
    pub prompt_len: usize,
    /// Tokens to generate after prefill (0 = prefill-only request).
    pub decode_tokens: usize,
    /// Arrival time, seconds.
    pub arrival: f64,
}

/// Loop configuration: the per-step token budget plus the overload guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeConfig {
    /// Token budget per step: live sessions (one decode token each) plus
    /// admitted prefill tokens never exceed this, except for a single
    /// oversized prompt running alone.
    pub budget_tokens: usize,
    /// Bounded ingress queue capacity, in requests.
    pub queue_capacity: usize,
    /// Seconds from arrival by which a request's *prefill must have
    /// started*, else it is cancelled in queue (`f64::INFINITY` disables).
    /// With chunking on ([`DecodeConfig::chunk_tokens`]) the deadline is
    /// also re-checked at every chunk boundary and cancels half-ingested
    /// prompts ([`ShedReason::CancelledMidRequest`]).
    pub deadline: f64,
    /// Longest prompt accepted; longer requests shed [`ShedReason::TooLong`].
    pub max_prompt_len: usize,
    /// Most sessions allowed live at once (decode slots).
    pub max_sessions: usize,
    /// Prompt tokens ingested per prefill chunk; `0` disables chunking and
    /// prompts prefill whole (the `BYTE_CHUNK_TOKENS` knob —
    /// [`bt_varlen::chunk_tokens_from_env`]). With chunking on, the
    /// deadline is re-checked at every chunk boundary and an expired
    /// half-ingested prompt is cancelled with
    /// [`ShedReason::CancelledMidRequest`].
    pub chunk_tokens: usize,
}

impl DecodeConfig {
    fn validate(&self) {
        assert!(self.budget_tokens > 0, "budget_tokens must be positive");
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(self.deadline > 0.0, "deadline must be positive");
        assert!(self.max_prompt_len > 0, "max_prompt_len must be positive");
        assert!(self.max_sessions > 0, "max_sessions must be positive");
    }
}

/// One prompt chunk an engine must ingest this step. With chunking off
/// every chunk is a whole prompt (`done == 0`, `chunk == prompt_len`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillChunk {
    /// Request id owning the session.
    pub id: usize,
    /// The request's full prompt length, in tokens.
    pub prompt_len: usize,
    /// Prompt tokens already ingested by earlier chunks (`0` means the
    /// engine must create the session first).
    pub done: usize,
    /// Prompt tokens to ingest this step (`done + chunk ≤ prompt_len`).
    pub chunk: usize,
}

/// The work one token step asks an engine to do.
#[derive(Debug, Clone, Copy)]
pub struct PlannedStep<'a> {
    /// Live sessions to advance by one token, by request id.
    pub decode: &'a [usize],
    /// Prompt chunks to ingest — new sessions (`done == 0`) and
    /// continuations of half-ingested prompts.
    pub prefill: &'a [PrefillChunk],
}

/// What actually happened in one engine step.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Seconds the step took (modeled or measured — the loop's clock
    /// advances by this).
    pub duration: f64,
    /// Prefill requests whose chunk was refused for cache capacity. The
    /// engine has already released everything the session held — including
    /// blocks claimed by earlier chunks.
    pub failed_prefill: Vec<usize>,
    /// Decode sessions whose append was refused (no token generated). The
    /// engine has already freed them.
    pub failed_decode: Vec<usize>,
    /// Cache blocks in use after the step.
    pub blocks_in_use: usize,
}

/// Executes token steps against some decode backend. The loop owns all
/// admission and accounting; the engine owns sessions and the cache.
///
/// Contract: ids in [`StepResult::failed_prefill`] /
/// [`StepResult::failed_decode`] hold **no** cache blocks when `run_step`
/// returns, and [`DecodeEngine::free`] is called exactly once for every
/// session that completes normally.
pub trait DecodeEngine {
    /// Runs one mixed prefill+decode step.
    fn run_step(&mut self, step: &PlannedStep<'_>) -> StepResult;
    /// Releases a completed session's cache blocks.
    fn free(&mut self, id: usize);
    /// Most cache blocks ever simultaneously in use.
    fn high_water_blocks(&self) -> usize;
}

/// Final disposition of one decode request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecodeOutcome {
    /// Prefill ran and all requested tokens were generated.
    Served {
        /// Seconds queued before prefill started.
        queue_wait: f64,
        /// Completion of the last decode step minus arrival, seconds.
        latency: f64,
        /// Tokens generated (equals the request's `decode_tokens`).
        generated: usize,
    },
    /// The request was rejected, cancelled, or evicted by cache pressure.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
        /// Seconds from arrival to the shed decision.
        wait: f64,
        /// Prompt tokens ingested into the cache before the shed: `0` for
        /// pre-admission sheds, the full `prompt_len` for mid-decode
        /// [`ShedReason::CacheOom`], and anything in between for chunked
        /// prefill cut short ([`ShedReason::CancelledMidRequest`] or a
        /// mid-prefill OOM) — the term that keeps the step ledger exact.
        prefilled_tokens: usize,
        /// Tokens generated before the shed.
        generated: usize,
    },
}

/// One request's identity, shape, and [`DecodeOutcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeRequestOutcome {
    /// Caller-assigned request id.
    pub id: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Tokens the request asked to generate.
    pub decode_tokens: usize,
    /// What happened.
    pub outcome: DecodeOutcome,
}

impl DecodeRequestOutcome {
    /// True when the request was served to completion.
    pub fn served(&self) -> bool {
        matches!(self.outcome, DecodeOutcome::Served { .. })
    }

    /// Tokens this request actually generated, served or shed.
    pub fn generated(&self) -> usize {
        match self.outcome {
            DecodeOutcome::Served { generated, .. } => generated,
            DecodeOutcome::Shed { generated, .. } => generated,
        }
    }

    /// Prompt tokens this request actually ingested into the cache.
    pub fn prefilled_tokens(&self) -> usize {
        match self.outcome {
            DecodeOutcome::Served { .. } => self.prompt_len,
            DecodeOutcome::Shed { prefilled_tokens, .. } => prefilled_tokens,
        }
    }

    /// Whether the request's prompt was *fully* prefilled into the cache.
    pub fn prefilled(&self) -> bool {
        self.prefilled_tokens() == self.prompt_len
    }
}

/// Per-token-step ledger entry — the granularity at which accounting is
/// asserted exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step ordinal (0-based).
    pub step: usize,
    /// Virtual-time start of the step, seconds.
    pub start: f64,
    /// Step duration, seconds.
    pub duration: f64,
    /// Sessions that successfully decoded one token.
    pub decode_sessions: usize,
    /// Sessions that successfully ingested a prefill chunk this step
    /// (equals prompts completed when chunking is off).
    pub prefill_sessions: usize,
    /// Prompt tokens successfully prefilled this step.
    pub prefill_tokens: usize,
    /// Sessions shed with [`ShedReason::CacheOom`] during the step.
    pub oom_sheds: usize,
    /// Cache blocks in use after the step.
    pub blocks_in_use: usize,
}

/// Everything one decode-serving run observed.
#[derive(Debug, Clone)]
pub struct DecodeReport {
    /// Per-request outcomes, indexed by request id.
    pub outcomes: Vec<DecodeRequestOutcome>,
    /// The per-step ledger.
    pub steps: Vec<StepRecord>,
    /// Completion time of the last step, seconds.
    pub makespan: f64,
    /// Most cache blocks ever simultaneously in use.
    pub high_water_blocks: usize,
    /// Most sessions ever live in one step (decode + prefilled-this-step).
    pub max_concurrent_sessions: usize,
}

impl DecodeReport {
    /// Aggregates the run.
    pub fn summary(&self) -> DecodeSummary {
        let mut s = DecodeSummary {
            offered: self.outcomes.len(),
            served: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            shed_too_long: 0,
            shed_cache_oom: 0,
            shed_cancelled: 0,
            shed_hot_shard: 0,
            steps: self.steps.len(),
            decode_tokens: 0,
            prefill_tokens: 0,
            makespan: self.makespan,
            high_water_blocks: self.high_water_blocks,
            max_concurrent_sessions: self.max_concurrent_sessions,
        };
        for r in &self.outcomes {
            match r.outcome {
                DecodeOutcome::Served { generated, .. } => {
                    s.served += 1;
                    s.decode_tokens += generated;
                    s.prefill_tokens += r.prompt_len;
                }
                DecodeOutcome::Shed {
                    reason,
                    generated,
                    prefilled_tokens,
                    ..
                } => {
                    match reason {
                        ShedReason::QueueFull => s.shed_queue_full += 1,
                        ShedReason::DeadlineExpired => s.shed_deadline += 1,
                        ShedReason::TooLong => s.shed_too_long += 1,
                        ShedReason::CacheOom => s.shed_cache_oom += 1,
                        ShedReason::CancelledMidRequest => s.shed_cancelled += 1,
                        // The decode loop itself never sheds for shard heat
                        // (routing happens upstream of it); counted so the
                        // ledger stays exact if a router ever feeds it.
                        ShedReason::HotShard => s.shed_hot_shard += 1,
                    }
                    s.decode_tokens += generated;
                    s.prefill_tokens += prefilled_tokens;
                }
            }
        }
        s
    }

    /// The per-step reconciliation: every token the step ledger claims was
    /// decoded or prefilled appears in exactly one request outcome, and
    /// vice versa.
    pub fn ledger_is_exact(&self) -> bool {
        let step_decode: usize = self.steps.iter().map(|s| s.decode_sessions).sum();
        let step_prefill: usize = self.steps.iter().map(|s| s.prefill_tokens).sum();
        let outcome_decode: usize = self.outcomes.iter().map(|o| o.generated()).sum();
        let outcome_prefill: usize = self.outcomes.iter().map(|o| o.prefilled_tokens()).sum();
        step_decode == outcome_decode && step_prefill == outcome_prefill
    }
}

/// Aggregate view of a decode run (see [`DecodeReport::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeSummary {
    /// Requests offered (served + shed).
    pub offered: usize,
    /// Requests that generated every requested token.
    pub served: usize,
    /// Shed at the ingress gate (queue full).
    pub shed_queue_full: usize,
    /// Cancelled in queue after deadline expiry.
    pub shed_deadline: usize,
    /// Rejected for an over-long prompt.
    pub shed_too_long: usize,
    /// Shed for KV-cache exhaustion (at prefill or mid-decode).
    pub shed_cache_oom: usize,
    /// Cancelled at a chunk boundary after prefill had started (chunked
    /// prefill only; always zero with chunking off).
    pub shed_cancelled: usize,
    /// Shed by an upstream shard router's hot-shard gate (always zero for
    /// the decode loop driven directly).
    pub shed_hot_shard: usize,
    /// Token steps executed.
    pub steps: usize,
    /// Decode tokens generated across all requests (incl. partial sheds).
    pub decode_tokens: usize,
    /// Prompt tokens prefilled across all requests that reached the cache.
    pub prefill_tokens: usize,
    /// Completion time of the last step, seconds.
    pub makespan: f64,
    /// Most cache blocks ever simultaneously in use.
    pub high_water_blocks: usize,
    /// Most sessions ever live in one step.
    pub max_concurrent_sessions: usize,
}

impl DecodeSummary {
    /// Total shed requests across all reasons.
    pub fn shed(&self) -> usize {
        self.shed_queue_full
            + self.shed_deadline
            + self.shed_too_long
            + self.shed_cache_oom
            + self.shed_cancelled
            + self.shed_hot_shard
    }

    /// Request-level invariant: every offered request has exactly one
    /// outcome.
    pub fn accounting_is_exact(&self) -> bool {
        self.served + self.shed() == self.offered
    }

    /// Decode tokens per second of makespan.
    pub fn decode_tokens_per_sec(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.decode_tokens as f64 / self.makespan
    }

    /// Token steps per second of makespan.
    pub fn steps_per_sec(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.steps as f64 / self.makespan
    }
}

struct ActiveSession {
    id: usize,
    prompt_len: usize,
    decode_tokens: usize,
    arrival: f64,
    queue_wait: f64,
    generated: usize,
}

struct QueuedRequest {
    req: DecodeRequest,
    deadline: f64,
}

/// A session whose prompt is partway through chunked prefill: it holds
/// cache blocks but does not decode yet.
struct PrefillingSession {
    req: DecodeRequest,
    deadline: f64,
    queue_wait: f64,
    ingested: usize,
}

/// Runs the token-step continuous-batching loop in virtual time over a
/// pre-generated arrival trace. Deterministic for a fixed trace and engine:
/// the clock advances only by engine-reported step durations and arrival
/// times.
///
/// # Panics
/// Panics if request ids are not a permutation of `0..requests.len()`, any
/// `prompt_len` is zero, the engine reports a non-finite/negative duration
/// or an id it was never given, or on an invalid [`DecodeConfig`].
pub fn run_decode_loop(
    requests: &[DecodeRequest],
    config: &DecodeConfig,
    engine: &mut dyn DecodeEngine,
) -> DecodeReport {
    config.validate();
    let mut order: Vec<DecodeRequest> = requests.to_vec();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
    let n = order.len();
    for r in &order {
        assert!(r.prompt_len > 0, "request {} has an empty prompt", r.id);
    }
    let mut outcomes: Vec<Option<DecodeRequestOutcome>> = (0..n).map(|_| None).collect();
    // Resolves one request: terminal trace mark at the simulated instant
    // `t_ns`, counters, and the ledger slot.
    let record = |outcomes: &mut Vec<Option<DecodeRequestOutcome>>, o: DecodeRequestOutcome, t_ns: u64| {
        let slot = outcomes
            .get_mut(o.id)
            .expect("request ids must be a permutation of 0..n");
        assert!(slot.is_none(), "request id {} resolved twice", o.id);
        let tid = TraceId::from_request(o.id);
        if o.served() {
            SERVED.incr();
            bt_obs::trace_mark!(tid, names::REQ_DONE, t_ns);
        } else {
            SHED.incr();
            match o.outcome {
                DecodeOutcome::Shed { reason, .. } => {
                    match reason {
                        ShedReason::CacheOom => SHED_CACHE_OOM.incr(),
                        ShedReason::CancelledMidRequest => SHED_CANCELLED.incr(),
                        _ => {}
                    }
                    bt_obs::trace_mark_at(tid, reason.trace_label(), t_ns);
                }
                DecodeOutcome::Served { .. } => unreachable!("served handled above"),
            }
        }
        *slot = Some(o);
    };

    let mut queue: VecDeque<QueuedRequest> = VecDeque::new();
    let mut active: Vec<ActiveSession> = Vec::new();
    let mut prefilling: Vec<PrefillingSession> = Vec::new();
    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut steps: Vec<StepRecord> = Vec::new();
    let mut makespan = 0.0f64;
    let mut max_concurrent = 0usize;

    while next < n || !queue.is_empty() || !active.is_empty() || !prefilling.is_empty() {
        // Idle with nothing live: jump to the next arrival.
        if queue.is_empty() && active.is_empty() && prefilling.is_empty() {
            clock = clock.max(order[next].arrival);
        }
        // 1. Admit arrivals up to the clock.
        while next < n && order[next].arrival <= clock {
            let r = order[next];
            next += 1;
            OFFERED.incr();
            let tid = TraceId::from_request(r.id);
            bt_obs::trace_mark!(tid, names::REQ_ENQUEUE, vns(r.arrival));
            if r.prompt_len > config.max_prompt_len {
                record(
                    &mut outcomes,
                    DecodeRequestOutcome {
                        id: r.id,
                        prompt_len: r.prompt_len,
                        decode_tokens: r.decode_tokens,
                        outcome: DecodeOutcome::Shed {
                            reason: ShedReason::TooLong,
                            wait: 0.0,
                            prefilled_tokens: 0,
                            generated: 0,
                        },
                    },
                    vns(r.arrival),
                );
            } else if queue.len() >= config.queue_capacity {
                record(
                    &mut outcomes,
                    DecodeRequestOutcome {
                        id: r.id,
                        prompt_len: r.prompt_len,
                        decode_tokens: r.decode_tokens,
                        outcome: DecodeOutcome::Shed {
                            reason: ShedReason::QueueFull,
                            wait: 0.0,
                            prefilled_tokens: 0,
                            generated: 0,
                        },
                    },
                    vns(r.arrival),
                );
            } else {
                bt_obs::trace_mark!(tid, names::REQ_ADMIT, vns(r.arrival));
                queue.push_back(QueuedRequest {
                    req: r,
                    deadline: r.arrival + config.deadline,
                });
            }
        }
        // 2. Cancel queued requests whose prefill cannot start in time.
        let mut expired: Vec<DecodeRequestOutcome> = Vec::new();
        queue.retain(|q| {
            if q.deadline < clock {
                expired.push(DecodeRequestOutcome {
                    id: q.req.id,
                    prompt_len: q.req.prompt_len,
                    decode_tokens: q.req.decode_tokens,
                    outcome: DecodeOutcome::Shed {
                        reason: ShedReason::DeadlineExpired,
                        wait: clock - q.req.arrival,
                        prefilled_tokens: 0,
                        generated: 0,
                    },
                });
                false
            } else {
                true
            }
        });
        for o in expired {
            record(&mut outcomes, o, vns(clock));
        }
        // 2b. Per-chunk deadline check: a half-ingested prompt whose
        //     deadline passed is cancelled *between* chunks with the
        //     distinct mid-request reason (its blocks go back to the pool,
        //     its ingested tokens stay in the ledger).
        let mut cancelled: Vec<DecodeRequestOutcome> = Vec::new();
        prefilling.retain(|p| {
            if p.deadline < clock {
                engine.free(p.req.id);
                cancelled.push(DecodeRequestOutcome {
                    id: p.req.id,
                    prompt_len: p.req.prompt_len,
                    decode_tokens: p.req.decode_tokens,
                    outcome: DecodeOutcome::Shed {
                        reason: ShedReason::CancelledMidRequest,
                        wait: clock - p.req.arrival,
                        prefilled_tokens: p.ingested,
                        generated: 0,
                    },
                });
                false
            } else {
                true
            }
        });
        for o in cancelled {
            record(&mut outcomes, o, vns(clock));
        }

        // 3. Plan the step: every live session decodes one token; in-flight
        //    prefills continue first (they already hold cache blocks), then
        //    new prompts are admitted — whole, or by first chunk when
        //    chunking is on — while the token budget and session slots
        //    allow.
        let mut budget_used = active.len(); // one decode token per session
        let mut prefill: Vec<PrefillChunk> = Vec::new();
        for p in &prefilling {
            let remaining = p.req.prompt_len - p.ingested;
            let want = if config.chunk_tokens == 0 {
                remaining
            } else {
                config.chunk_tokens.min(remaining)
            };
            let oversized_alone = budget_used == 0 && prefill.is_empty();
            if budget_used + want > config.budget_tokens && !oversized_alone {
                continue; // this session waits a step
            }
            budget_used += want;
            prefill.push(PrefillChunk {
                id: p.req.id,
                prompt_len: p.req.prompt_len,
                done: p.ingested,
                chunk: want,
            });
        }
        while let Some(front) = queue.front() {
            let slots = active.len() + prefilling.len();
            if slots >= config.max_sessions {
                break;
            }
            let first = if config.chunk_tokens == 0 {
                front.req.prompt_len
            } else {
                config.chunk_tokens.min(front.req.prompt_len)
            };
            let oversized_alone = budget_used == 0 && prefill.is_empty();
            if budget_used + first > config.budget_tokens && !oversized_alone {
                break;
            }
            let q = queue.pop_front().expect("front exists");
            bt_obs::trace_mark!(TraceId::from_request(q.req.id), names::REQ_PREFILL_START, vns(clock));
            budget_used += first;
            prefill.push(PrefillChunk {
                id: q.req.id,
                prompt_len: q.req.prompt_len,
                done: 0,
                chunk: first,
            });
            prefilling.push(PrefillingSession {
                req: q.req,
                deadline: q.deadline,
                queue_wait: clock - q.req.arrival,
                ingested: 0,
            });
        }
        let decode_ids: Vec<usize> = active.iter().map(|s| s.id).collect();
        if decode_ids.is_empty() && prefill.is_empty() {
            continue;
        }
        max_concurrent = max_concurrent.max(active.len() + prefilling.len());

        // 4. Run the engine.
        let result = engine.run_step(&PlannedStep {
            decode: &decode_ids,
            prefill: &prefill,
        });
        assert!(
            result.duration.is_finite() && result.duration >= 0.0,
            "engine must return a finite non-negative duration, got {}",
            result.duration
        );
        let start = clock;
        let done = start + result.duration;
        STEPS.incr();
        ACTIVE_SESSIONS.record((decode_ids.len() + prefill.len()) as u64);
        BLOCKS_IN_USE.record(result.blocks_in_use as u64);

        // 5. Resolve prefill chunks: a failed chunk sheds the session with
        //    everything it had ingested; a successful chunk advances it,
        //    and a *completed* prompt transitions to decode (or is served
        //    outright for prefill-only requests).
        let mut prefill_ok = 0usize;
        let mut prefill_tokens_ok = 0usize;
        let mut oom_sheds = 0usize;
        for c in &prefill {
            let at = prefilling
                .iter()
                .position(|p| p.req.id == c.id)
                .expect("chunk belongs to a prefilling session");
            if result.failed_prefill.contains(&c.id) {
                oom_sheds += 1;
                let p = prefilling.remove(at);
                record(
                    &mut outcomes,
                    DecodeRequestOutcome {
                        id: p.req.id,
                        prompt_len: p.req.prompt_len,
                        decode_tokens: p.req.decode_tokens,
                        outcome: DecodeOutcome::Shed {
                            reason: ShedReason::CacheOom,
                            wait: done - p.req.arrival,
                            prefilled_tokens: p.ingested,
                            generated: 0,
                        },
                    },
                    vns(done),
                );
            } else {
                prefill_ok += 1;
                prefill_tokens_ok += c.chunk;
                PREFILL_TOKENS.add(c.chunk as u64);
                PREFILL_CHUNKS.incr();
                bt_obs::trace_mark!(TraceId::from_request(c.id), names::REQ_PREFILL_CHUNK, vns(done));
                prefilling[at].ingested += c.chunk;
            }
        }
        let mut i = 0;
        while i < prefilling.len() {
            if prefilling[i].ingested < prefilling[i].req.prompt_len {
                i += 1;
                continue;
            }
            let p = prefilling.remove(i);
            if p.req.decode_tokens == 0 {
                // Prefill-only request: served the moment ingestion ends.
                engine.free(p.req.id);
                record(
                    &mut outcomes,
                    DecodeRequestOutcome {
                        id: p.req.id,
                        prompt_len: p.req.prompt_len,
                        decode_tokens: 0,
                        outcome: DecodeOutcome::Served {
                            queue_wait: p.queue_wait,
                            latency: done - p.req.arrival,
                            generated: 0,
                        },
                    },
                    vns(done),
                );
            } else {
                active.push(ActiveSession {
                    id: p.req.id,
                    prompt_len: p.req.prompt_len,
                    decode_tokens: p.req.decode_tokens,
                    arrival: p.req.arrival,
                    queue_wait: p.queue_wait,
                    generated: 0,
                });
            }
        }

        // 6. Resolve decodes: failures shed, completions free their session.
        let mut decoded = 0usize;
        let mut finished: Vec<DecodeRequestOutcome> = Vec::new();
        active.retain_mut(|s| {
            if !decode_ids.contains(&s.id) {
                return true; // prefilled this very step; decodes next step
            }
            if result.failed_decode.contains(&s.id) {
                oom_sheds += 1;
                finished.push(DecodeRequestOutcome {
                    id: s.id,
                    prompt_len: s.prompt_len,
                    decode_tokens: s.decode_tokens,
                    outcome: DecodeOutcome::Shed {
                        reason: ShedReason::CacheOom,
                        wait: done - s.arrival,
                        prefilled_tokens: s.prompt_len,
                        generated: s.generated,
                    },
                });
                return false; // engine already freed it
            }
            s.generated += 1;
            decoded += 1;
            DECODE_TOKENS.incr();
            bt_obs::trace_mark!(TraceId::from_request(s.id), names::REQ_DECODE_STEP, vns(done));
            if s.generated == s.decode_tokens {
                finished.push(DecodeRequestOutcome {
                    id: s.id,
                    prompt_len: s.prompt_len,
                    decode_tokens: s.decode_tokens,
                    outcome: DecodeOutcome::Served {
                        queue_wait: s.queue_wait,
                        latency: done - s.arrival,
                        generated: s.generated,
                    },
                });
                return false;
            }
            true
        });
        for o in &finished {
            if o.served() {
                engine.free(o.id);
            }
        }
        for o in finished {
            record(&mut outcomes, o, vns(done));
        }

        steps.push(StepRecord {
            step: steps.len(),
            start,
            duration: result.duration,
            decode_sessions: decoded,
            prefill_sessions: prefill_ok,
            prefill_tokens: prefill_tokens_ok,
            oom_sheds,
            blocks_in_use: result.blocks_in_use,
        });
        clock = done;
        makespan = makespan.max(done);
    }

    let outcomes: Vec<DecodeRequestOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every offered request has exactly one outcome"))
        .collect();
    DecodeReport {
        outcomes,
        steps,
        makespan,
        high_water_blocks: engine.high_water_blocks(),
        max_concurrent_sessions: max_concurrent,
    }
}

/// Builds a decode workload from an encoder arrival trace: prompt lengths
/// and arrivals come from the trace, decode lengths from a splitmix64 draw
/// in `1..=max_decode` — fully determined by the trace and `seed`.
pub fn decode_workload(trace: &[TimedRequest], max_decode: usize, seed: u64) -> Vec<DecodeRequest> {
    assert!(max_decode >= 1, "max_decode must be at least 1");
    trace
        .iter()
        .map(|r| DecodeRequest {
            id: r.id,
            prompt_len: r.len.max(1),
            decode_tokens: 1
                + (splitmix64(seed ^ (r.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) as usize) % max_decode,
            arrival: r.arrival,
        })
        .collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure-bookkeeping engine: a real [`BlockPool`] for capacity decisions and
/// a linear cost model for durations. Deterministic, cheap, and OOM-exact —
/// the engine the seeded stress suite and `btx decode` run against.
pub struct ModeledDecodeEngine {
    pool: BlockPool,
    sessions: HashMap<usize, SessionId>,
    /// Fixed per-step overhead, seconds (batch formation + launch).
    step_overhead: f64,
    /// Marginal seconds per processed token (prefill or decode).
    per_token: f64,
}

impl ModeledDecodeEngine {
    /// Builds the engine over a pool of the given geometry with a linear
    /// `overhead + tokens × per_token` step-cost model.
    pub fn new(layout: PagedLayout, step_overhead: f64, per_token: f64) -> Self {
        assert!(step_overhead >= 0.0 && per_token >= 0.0, "costs must be non-negative");
        Self {
            pool: BlockPool::new(layout),
            sessions: HashMap::new(),
            step_overhead,
            per_token,
        }
    }

    /// The underlying pool (occupancy assertions in tests).
    pub fn pool(&self) -> &BlockPool {
        &self.pool
    }
}

impl DecodeEngine for ModeledDecodeEngine {
    fn run_step(&mut self, step: &PlannedStep<'_>) -> StepResult {
        let mut tokens = 0usize;
        let mut failed_prefill = Vec::new();
        let mut failed_decode = Vec::new();
        for c in step.prefill {
            let sid = if c.done == 0 {
                let sid = self.pool.create();
                assert!(
                    self.sessions.insert(c.id, sid).is_none(),
                    "request {} prefilled twice",
                    c.id
                );
                sid
            } else {
                *self.sessions.get(&c.id).expect("continuation of unknown session")
            };
            match self.pool.append(sid, c.chunk) {
                Ok(()) => tokens += c.chunk,
                Err(_) => {
                    self.pool.free(sid);
                    self.sessions.remove(&c.id);
                    failed_prefill.push(c.id);
                }
            }
        }
        for &id in step.decode {
            let sid = *self.sessions.get(&id).expect("decode of unknown session");
            match self.pool.append(sid, 1) {
                Ok(()) => tokens += 1,
                Err(_) => {
                    self.pool.free(sid);
                    self.sessions.remove(&id);
                    failed_decode.push(id);
                }
            }
        }
        StepResult {
            duration: self.step_overhead + tokens as f64 * self.per_token,
            failed_prefill,
            failed_decode,
            blocks_in_use: self.pool.blocks_in_use(),
        }
    }

    fn free(&mut self, id: usize) {
        let sid = self.sessions.remove(&id).expect("free of unknown session");
        self.pool.free(sid);
    }

    fn high_water_blocks(&self) -> usize {
        self.pool.high_water_blocks()
    }
}

/// One live request inside the [`PagedDecodeEngine`]: its cache session,
/// the full deterministic prompt (kept so later chunks slice the *same*
/// rows a whole-prompt prefill would feed), and the last output row.
struct PagedEngineSession {
    sid: SessionId,
    prompt: Tensor,
    last: Vec<f32>,
}

/// Real-forward engine: sessions live in a [`PagedDecoder`], prompts and
/// memories are seeded random tensors, decode inputs feed each step's
/// output back in, and durations are the device's modeled seconds — still
/// fully deterministic for a fixed seed.
pub struct PagedDecodeEngine<'a> {
    decoder: PagedDecoder<'a>,
    device: Device,
    mem_len: usize,
    seed: u64,
    sessions: HashMap<usize, PagedEngineSession>,
}

impl<'a> PagedDecodeEngine<'a> {
    /// Builds the engine: paged cache of `layout` over `decoder`, cross
    /// memories of `mem_len` rows, request tensors derived from `seed`.
    pub fn new(
        decoder: &'a TransformerDecoder,
        device: Device,
        layout: PagedLayout,
        mem_len: usize,
        seed: u64,
    ) -> Self {
        assert!(mem_len >= 1, "mem_len must be at least 1");
        Self {
            decoder: PagedDecoder::new(decoder, layout),
            device,
            mem_len,
            seed,
            sessions: HashMap::new(),
        }
    }

    /// The device accumulating modeled time across steps.
    pub fn device(&self) -> &Device {
        &self.device
    }
}

impl DecodeEngine for PagedDecodeEngine<'_> {
    fn run_step(&mut self, step: &PlannedStep<'_>) -> StepResult {
        let before = self.device.modeled_total();
        let mut failed_prefill = Vec::new();
        let mut failed_decode = Vec::new();

        for &c in step.prefill {
            if c.done == 0 {
                // First chunk: open the session and materialise the FULL
                // prompt once. Later chunks slice rows out of the same
                // tensor, so a chunked run feeds the decoder bit-identical
                // rows to a whole-prompt run.
                let memory = Tensor::randn(
                    [self.mem_len, self.hidden()],
                    self.seed ^ (c.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let sid = self.decoder.open_session(&self.device, &memory);
                let prompt = Tensor::randn(
                    [c.prompt_len, self.hidden()],
                    self.seed ^ (c.id as u64).wrapping_mul(0xd1b5_4a32_d192_ed03),
                );
                let fresh = PagedEngineSession {
                    sid,
                    prompt,
                    last: Vec::new(),
                };
                assert!(
                    self.sessions.insert(c.id, fresh).is_none(),
                    "request {} opened twice",
                    c.id
                );
            }
            let s = self.sessions.get_mut(&c.id).expect("chunk for unknown session");
            debug_assert_eq!(
                self.decoder.session_len(s.sid),
                c.done,
                "chunk continuation out of order for request {}",
                c.id
            );
            let rows = bt_core::chunked::row_chunk(&s.prompt, c.done, c.chunk);
            match self.decoder.prefill(&self.device, s.sid, &rows) {
                Ok(outs) => s.last = outs.last().expect("chunk >= 1 row").clone(),
                Err(_) => {
                    let s = self.sessions.remove(&c.id).expect("just looked up");
                    self.decoder.free_session(s.sid);
                    failed_prefill.push(c.id);
                }
            }
        }

        if !step.decode.is_empty() {
            let hidden = self.hidden();
            let mut sids = Vec::with_capacity(step.decode.len());
            let mut inputs = Vec::with_capacity(step.decode.len() * hidden);
            for &id in step.decode {
                let s = self.sessions.get(&id).expect("decode of unknown session");
                sids.push(s.sid);
                inputs.extend_from_slice(&s.last);
            }
            let out = self.decoder.step_batch(&self.device, &sids, &inputs);
            for (i, &id) in step.decode.iter().enumerate() {
                match &out.outputs[i] {
                    Some(next) => self.sessions.get_mut(&id).expect("known session").last = next.clone(),
                    None => {
                        let s = self.sessions.remove(&id).expect("known session");
                        self.decoder.free_session(s.sid);
                        failed_decode.push(id);
                    }
                }
            }
        }

        StepResult {
            duration: self.device.modeled_total() - before,
            failed_prefill,
            failed_decode,
            blocks_in_use: self.decoder.cache().pool().blocks_in_use(),
        }
    }

    fn free(&mut self, id: usize) {
        let s = self.sessions.remove(&id).expect("free of unknown session");
        self.decoder.free_session(s.sid);
    }

    fn high_water_blocks(&self) -> usize {
        self.decoder.cache().pool().high_water_blocks()
    }
}

impl PagedDecodeEngine<'_> {
    fn hidden(&self) -> usize {
        self.decoder.decoder().config.hidden()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::poisson_arrivals;
    use bt_varlen::workload::LengthDistribution;

    fn config() -> DecodeConfig {
        DecodeConfig {
            budget_tokens: 64,
            queue_capacity: 32,
            deadline: f64::INFINITY,
            max_prompt_len: 32,
            max_sessions: 16,
            chunk_tokens: 0,
        }
    }

    fn workload(n: usize, rate: f64, seed: u64) -> Vec<DecodeRequest> {
        let trace = poisson_arrivals(n, rate, LengthDistribution::PaperUniform { alpha: 0.6 }, 32, seed);
        decode_workload(&trace, 8, seed)
    }

    #[test]
    fn modeled_loop_accounts_exactly() {
        let requests = workload(60, 400.0, 11);
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 256), 20e-6, 1e-6);
        let report = run_decode_loop(&requests, &config(), &mut engine);
        let s = report.summary();
        assert!(s.accounting_is_exact(), "{s:?}");
        assert!(report.ledger_is_exact());
        assert_eq!(s.offered, 60);
        assert!(s.served > 0);
        assert_eq!(engine.pool().blocks_in_use(), 0, "all sessions freed at drain");
    }

    #[test]
    fn decode_loop_is_deterministic() {
        let requests = workload(80, 600.0, 7);
        let run = || {
            let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 64), 20e-6, 1e-6);
            run_decode_loop(&requests, &config(), &mut engine)
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn tiny_pool_sheds_cache_oom_with_distinct_reason() {
        let requests = workload(50, 2000.0, 13);
        // 4 blocks × 4 tokens: almost nothing fits.
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(4, 4), 20e-6, 1e-6);
        let report = run_decode_loop(&requests, &config(), &mut engine);
        let s = report.summary();
        assert!(s.accounting_is_exact(), "{s:?}");
        assert!(report.ledger_is_exact());
        assert!(s.shed_cache_oom > 0, "tiny pool must shed for cache pressure: {s:?}");
        let step_ooms: usize = report.steps.iter().map(|r| r.oom_sheds).sum();
        assert_eq!(step_ooms, s.shed_cache_oom, "every OOM shed is step-attributed");
    }

    #[test]
    fn budget_bounds_step_work() {
        let requests = workload(40, 5000.0, 3);
        let cfg = DecodeConfig {
            budget_tokens: 24,
            ..config()
        };
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 512), 20e-6, 1e-6);
        let report = run_decode_loop(&requests, &cfg, &mut engine);
        for r in &report.steps {
            let work = r.decode_sessions + r.prefill_tokens;
            assert!(
                work <= 24 || (r.decode_sessions == 0 && r.prefill_sessions == 1),
                "step {} exceeded budget: {work} tokens",
                r.step
            );
        }
        assert!(report.summary().accounting_is_exact());
    }

    #[test]
    fn real_paged_engine_serves_under_the_loop() {
        let config = bt_core::config::BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 17);
        let device = Device::with_model(bt_device::CostModel::unit());
        let mut engine = PagedDecodeEngine::new(&decoder, device, PagedLayout::new(4, 128), 3, 23);
        let requests = workload(10, 300.0, 19);
        let report = run_decode_loop(
            &requests,
            &DecodeConfig {
                budget_tokens: 48,
                queue_capacity: 16,
                deadline: f64::INFINITY,
                max_prompt_len: 32,
                max_sessions: 8,
                chunk_tokens: 0,
            },
            &mut engine,
        );
        let s = report.summary();
        assert!(s.accounting_is_exact(), "{s:?}");
        assert!(report.ledger_is_exact());
        assert_eq!(s.shed_cache_oom, 0, "pool sized to fit this workload");
        assert!(s.served > 0);
        assert!(engine.device().modeled_total() > 0.0, "real forwards ran");
        assert_eq!(engine.decoder.cache().pool().blocks_in_use(), 0, "drained clean");
    }

    #[test]
    fn chunked_prefill_accounts_exactly_and_interleaves() {
        let requests = workload(60, 400.0, 11);
        let cfg = DecodeConfig {
            chunk_tokens: 4,
            ..config()
        };
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 256), 20e-6, 1e-6);
        let report = run_decode_loop(&requests, &cfg, &mut engine);
        let s = report.summary();
        assert!(s.accounting_is_exact(), "{s:?}");
        assert!(report.ledger_is_exact());
        assert_eq!(s.offered, 60);
        assert!(s.served > 0);
        assert_eq!(engine.pool().blocks_in_use(), 0, "all sessions freed at drain");
        // Prompts longer than one chunk take several steps, so some step
        // must carry decode work and prefill work at the same time — the
        // interleaving the chunked pipeline exists to provide.
        assert!(
            report
                .steps
                .iter()
                .any(|r| r.decode_sessions > 0 && r.prefill_sessions > 0),
            "chunked prefill should interleave with in-flight decode"
        );
        // And the chunk cap is respected for every multi-session step.
        for r in &report.steps {
            assert!(
                r.prefill_tokens <= 4 * r.prefill_sessions.max(1),
                "step {}: {} prefill tokens over {} sessions breaks the 4-token chunk cap",
                r.step,
                r.prefill_tokens,
                r.prefill_sessions
            );
        }
    }

    #[test]
    fn chunked_and_whole_prefill_serve_identical_outcomes_without_pressure() {
        // With an infinite deadline, a huge budget and a pool that fits
        // everything, chunking only changes WHEN prefill work happens, not
        // which requests succeed or how many tokens each one is served.
        let requests = workload(30, 100.0, 23);
        let run = |chunk| {
            let cfg = DecodeConfig {
                chunk_tokens: chunk,
                budget_tokens: 256,
                ..config()
            };
            let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 512), 20e-6, 1e-6);
            run_decode_loop(&requests, &cfg, &mut engine)
        };
        let whole = run(0);
        let chunked = run(3);
        let digest = |r: &DecodeReport| {
            let mut d: Vec<_> = r
                .outcomes
                .iter()
                .map(|o| {
                    (
                        o.id,
                        o.prefilled_tokens(),
                        matches!(o.outcome, DecodeOutcome::Served { .. }),
                    )
                })
                .collect();
            d.sort_unstable();
            d
        };
        assert_eq!(digest(&whole), digest(&chunked));
        assert_eq!(whole.summary().served, chunked.summary().served);
    }

    #[test]
    fn per_chunk_deadline_cancels_mid_request_with_distinct_reason() {
        // Slow steps + tiny chunks: long prompts start prefilling before
        // their deadline but cannot finish, so the per-chunk sweep cancels
        // them mid-request — a different ledger row than queue expiry.
        let requests = workload(40, 5000.0, 31);
        let cfg = DecodeConfig {
            deadline: 6e-4,
            chunk_tokens: 2,
            budget_tokens: 8,
            ..config()
        };
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 512), 2e-4, 1e-6);
        let report = run_decode_loop(&requests, &cfg, &mut engine);
        let s = report.summary();
        assert!(s.accounting_is_exact(), "{s:?}");
        assert!(report.ledger_is_exact(), "partial prefill must be ledger-exact");
        assert!(
            s.shed_cancelled > 0,
            "tight deadline + tiny chunks must cancel mid-request: {s:?}"
        );
        // A mid-request cancellation records the tokens it DID ingest.
        let cancelled_with_progress = report.outcomes.iter().any(|o| {
            matches!(
                o.outcome,
                DecodeOutcome::Shed { reason: ShedReason::CancelledMidRequest, prefilled_tokens, .. }
                    if prefilled_tokens > 0
            )
        });
        assert!(
            cancelled_with_progress,
            "some cancellation happened after real chunk work"
        );
        assert_eq!(
            engine.pool().blocks_in_use(),
            0,
            "cancelled sessions release their blocks"
        );
    }

    #[test]
    fn real_paged_engine_serves_chunked_prefill() {
        let config = bt_core::config::BertConfig::tiny();
        let decoder = TransformerDecoder::new_random(config, 1, 17);
        let run = |chunk| {
            let device = Device::with_model(bt_device::CostModel::unit());
            let mut engine = PagedDecodeEngine::new(&decoder, device, PagedLayout::new(4, 128), 3, 23);
            let requests = workload(8, 300.0, 19);
            let report = run_decode_loop(
                &requests,
                &DecodeConfig {
                    budget_tokens: 48,
                    queue_capacity: 16,
                    deadline: f64::INFINITY,
                    max_prompt_len: 32,
                    max_sessions: 8,
                    chunk_tokens: chunk,
                },
                &mut engine,
            );
            assert_eq!(engine.decoder.cache().pool().blocks_in_use(), 0, "drained clean");
            report
        };
        let whole = run(0);
        let chunked = run(5);
        for r in [&whole, &chunked] {
            let s = r.summary();
            assert!(s.accounting_is_exact(), "{s:?}");
            assert!(r.ledger_is_exact());
            assert_eq!(s.served, 8, "pool sized to serve everything");
        }
        // The real engine feeds identical prompt rows either way, so the
        // served outcomes must agree request-for-request.
        let digest = |r: &DecodeReport| {
            let mut d: Vec<_> = r.outcomes.iter().map(|o| (o.id, o.generated())).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(digest(&whole), digest(&chunked));
    }

    #[test]
    fn deadline_sheds_requests_that_cannot_start() {
        let requests = workload(30, 10_000.0, 5);
        let cfg = DecodeConfig {
            deadline: 1e-5,
            ..config()
        };
        let mut engine = ModeledDecodeEngine::new(PagedLayout::new(8, 512), 1e-3, 1e-5);
        let report = run_decode_loop(&requests, &cfg, &mut engine);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert!(
            s.shed_deadline > 0,
            "slow steps + tight deadline must expire queued work: {s:?}"
        );
    }
}
