//! Multi-shard scale-out: a router over N independent `OpenLoopShard`
//! server instances sharing one global virtual clock.
//!
//! ByteTransformer's serving layer (paper §I) is a single-instance runtime;
//! a deployment scales it out by running N instances behind a router. This
//! module reproduces that topology deterministically: each shard owns its
//! own ingress queue, paged KV block budget (a [`PagedLayout::per_shard`]
//! slice of the fleet pool), and batch-cutting loop, while the router
//! spreads an open-loop arrival trace across them with a pluggable
//! [`RoutePolicy`] and an optional hot-shard work-shedding gate
//! ([`ShardConfig::hot_shard_tokens`],
//! [`ShedReason::HotShard`](crate::admission::ShedReason::HotShard)).
//!
//! # Determinism and the horizon rule
//!
//! The router processes the global trace sorted by arrival. Before routing
//! the arrival at time `t` it advances **every** shard to horizon `t`, so a
//! shard only cuts a batch at instant `c` once all global arrivals ≤ `c`
//! have been routed. A single shard driven this way replays
//! [`run_open_loop`](crate::server::run_open_loop) instruction for
//! instruction — `--shards 1` is
//! bit-identical to the unsharded server (pinned by
//! `tests/shard_stress.rs`) — and for any N the whole run is a pure
//! function of `(trace, config, executor seeds)`.
//!
//! # Accounting
//!
//! Every offered request lands in exactly one shard's ledger (hot-shard
//! sheds are attributed to the shard the policy chose), so
//! `offered == Σ per-shard (served + shed)` exactly —
//! [`ShardedReport::accounting_is_exact_across_shards`].
//!
//! # Telemetry
//!
//! Process-global counters cannot separate shards, so the router
//! synthesizes one [`MetricsSnapshot`] per shard from its ledger
//! ([`ShardedReport::shard_snapshots`]) and folds them into a fleet view
//! with the shard-mergeable snapshot layer
//! ([`ShardedReport::fleet_snapshot`], [`bt_obs::snapshot::merge`]). Live
//! counters still tick under `serve.*` plus the router-level
//! `serve.shard.*` names.

use bt_obs::names;
use bt_obs::snapshot::{bucket_of, CounterDelta, HistogramWindow, MetricsSnapshot, HIST_BUCKETS};
use bt_varlen::{BatchMask, BlockPool, PagedLayout};

use crate::admission::admission_weight;
use crate::server::{
    record_router_shed, OpenLoopShard, Outcome, RequestOutcome, ServeConfig, ServeReport, ServeSummary,
};
use crate::serving::TimedRequest;

/// Requests the router placed on a shard's ingress (one per non-hot-shed
/// arrival).
static SHARD_ROUTED: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHARD_ROUTED);
/// Requests refused at routing time by the hot-shard gate (router-level
/// twin of the per-reason `serve.shed.hot_shard` ledger counter).
static SHARD_SHED_HOT: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHARD_SHED_HOT);
/// Outstanding valid tokens observed on the chosen shard at each routing
/// decision — the load signal the balancing policies compare.
static SHARD_OUTSTANDING: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_SHARD_OUTSTANDING);

/// How the router picks a shard for each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through shards in index order, ignoring load. Optimal for
    /// homogeneous traffic, pathological under skew.
    RoundRobin,
    /// Send each arrival to the shard with the fewest outstanding valid
    /// tokens (ties break to the lowest index). Best balance, but reads
    /// every shard's load on every decision.
    JoinShortestQueue,
    /// Power-of-two-choices: sample two shards with a seeded generator and
    /// take the less loaded (ties break to the lower index). Near-JSQ
    /// balance at O(1) load reads; deterministic for a fixed seed.
    PowerOfTwo {
        /// Seed for the candidate sampler.
        seed: u64,
    },
}

impl RoutePolicy {
    /// Stable label for telemetry and bench artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            RoutePolicy::RoundRobin => "rr",
            RoutePolicy::JoinShortestQueue => "jsq",
            RoutePolicy::PowerOfTwo { .. } => "p2c",
        }
    }

    /// Parses a CLI spelling (`rr`, `jsq`, `p2c`); `seed` feeds
    /// [`RoutePolicy::PowerOfTwo`].
    pub fn parse(s: &str, seed: u64) -> Option<RoutePolicy> {
        match s {
            "rr" | "round_robin" => Some(RoutePolicy::RoundRobin),
            "jsq" => Some(RoutePolicy::JoinShortestQueue),
            "p2c" | "power_of_two" => Some(RoutePolicy::PowerOfTwo { seed }),
            _ => None,
        }
    }
}

/// Configuration for a sharded run: the per-shard server config plus the
/// router's own knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Number of shard instances (must be positive).
    pub shards: usize,
    /// Routing policy.
    pub route: RoutePolicy,
    /// Per-shard server configuration (every shard runs the same one; each
    /// gets its own private queue of `serve.queue_capacity` slots).
    pub serve: ServeConfig,
    /// Hot-shard gate: when positive, an arrival whose admission weight
    /// would push the chosen shard's outstanding valid tokens above this
    /// threshold is shed at routing time with
    /// [`ShedReason::HotShard`](crate::admission::ShedReason::HotShard)
    /// instead of being enqueued. `0` disables the gate (the default, which
    /// also preserves `--shards 1` bit-identity with the unsharded server).
    pub hot_shard_tokens: usize,
    /// Fleet-wide paged KV layout; the router splits its block budget
    /// evenly across shards with [`PagedLayout::per_shard`], so each shard
    /// owns a private [`BlockPool`].
    pub kv_layout: PagedLayout,
}

impl ShardConfig {
    /// A config with the router knobs defaulted: JSQ routing, hot-shard
    /// gate off, default KV layout.
    pub fn new(shards: usize, serve: ServeConfig) -> ShardConfig {
        ShardConfig {
            shards,
            route: RoutePolicy::JoinShortestQueue,
            serve,
            hot_shard_tokens: 0,
            kv_layout: PagedLayout::default(),
        }
    }

    fn validate(&self) {
        assert!(self.shards > 0, "shards must be positive");
    }
}

/// Mixes a base executor seed with a shard index so shards draw
/// independent modeled-noise streams. Identity at shard 0, which keeps a
/// 1-shard run's executor stream — and therefore its entire report —
/// bit-identical to the unsharded run from the same seed.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// splitmix64 step — the candidate sampler for
/// [`RoutePolicy::PowerOfTwo`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything a sharded run observed: the global ledger plus per-shard
/// sub-reports and the routing assignment.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Per-request outcomes, indexed by request id (the global ledger —
    /// identical in shape to [`ServeReport::outcomes`]).
    pub outcomes: Vec<RequestOutcome>,
    /// Which shard each request id was routed to (hot-shard sheds are
    /// attributed to the shard the policy chose).
    pub assignment: Vec<usize>,
    /// One [`ServeReport`] per shard over the requests attributed to it.
    pub shard_reports: Vec<ServeReport>,
    /// Per-shard KV layouts split from [`ShardConfig::kv_layout`].
    pub shard_kv: Vec<PagedLayout>,
    /// Routing policy label (for artifacts).
    pub route: &'static str,
}

impl ShardedReport {
    /// Fleet-level summary: all outcomes, total batches, fleet makespan
    /// (the slowest shard's completion — shards run concurrently).
    pub fn summary(&self) -> ServeSummary {
        let report = ServeReport {
            outcomes: self.outcomes.clone(),
            batches: self.shard_reports.iter().map(|r| r.batches).sum(),
            makespan: self.shard_reports.iter().fold(0.0f64, |m, r| m.max(r.makespan)),
        };
        report.summary()
    }

    /// Per-shard summaries, in shard order.
    pub fn shard_summaries(&self) -> Vec<ServeSummary> {
        self.shard_reports.iter().map(|r| r.summary()).collect()
    }

    /// The global exactness invariant: every shard's own ledger is exact,
    /// the per-shard offered counts partition the global trace, and the
    /// fleet summary balances. `tests/shard_stress.rs` enforces this on
    /// every run, including skewed traces that force hot-shard sheds.
    pub fn accounting_is_exact_across_shards(&self) -> bool {
        let per_shard: Vec<ServeSummary> = self.shard_summaries();
        let offered_sum: usize = per_shard.iter().map(|s| s.offered).sum();
        per_shard.iter().all(|s| s.accounting_is_exact())
            && offered_sum == self.outcomes.len()
            && self.summary().accounting_is_exact()
    }

    /// Synthesizes one [`MetricsSnapshot`] per shard from its ledger —
    /// counters (`serve.offered`, `serve.served`, `serve.shed.*`,
    /// `serve.batches`, `serve.shard.routed`) and histograms
    /// (`serve.queue_wait_us`, `serve.latency_us`) — labeled `shard<i>`,
    /// windowed over the fleet makespan. Process-global counters cannot
    /// attribute work to a shard, so the ledger is the source of truth
    /// here; the snapshots feed the same merge layer `btx top` uses.
    pub fn shard_snapshots(&self) -> Vec<MetricsSnapshot> {
        let window_ms = ((self.shard_reports.iter().fold(0.0f64, |m, r| m.max(r.makespan))) * 1e3)
            .ceil()
            .max(1.0) as u64;
        self.shard_reports
            .iter()
            .enumerate()
            .map(|(i, report)| {
                let s = report.summary();
                let routed = s.offered - s.shed_hot_shard;
                let counter = |name: &str, v: usize| CounterDelta {
                    name: name.to_string(),
                    delta: v as u64,
                    total: v as u64,
                };
                let counters = vec![
                    counter(names::SERVE_OFFERED, s.offered),
                    counter(names::SERVE_SERVED, s.served),
                    counter(names::SERVE_SHED_QUEUE_FULL, s.shed_queue_full),
                    counter(names::SERVE_SHED_DEADLINE, s.shed_deadline),
                    counter(names::SERVE_SHED_TOO_LONG, s.shed_too_long),
                    counter(names::SERVE_SHED_CACHE_OOM, s.shed_cache_oom),
                    counter(names::SERVE_SHED_CANCELLED, s.shed_cancelled),
                    counter(names::SERVE_SHED_HOT_SHARD, s.shed_hot_shard),
                    counter(names::SERVE_BATCHES, report.batches),
                    counter(names::SERVE_SHARD_ROUTED, routed),
                ];
                let mut wait = HistogramWindow {
                    name: names::SERVE_QUEUE_WAIT_US.to_string(),
                    buckets: vec![0; HIST_BUCKETS],
                    sum: 0,
                };
                let mut latency = HistogramWindow {
                    name: names::SERVE_LATENCY_US.to_string(),
                    buckets: vec![0; HIST_BUCKETS],
                    sum: 0,
                };
                for r in &report.outcomes {
                    if let Outcome::Served { queue_wait, latency: l } = r.outcome {
                        let w_us = (queue_wait * 1e6) as u64;
                        let l_us = (l * 1e6) as u64;
                        wait.buckets[bucket_of(w_us)] += 1;
                        wait.sum += w_us;
                        latency.buckets[bucket_of(l_us)] += 1;
                        latency.sum += l_us;
                    }
                }
                MetricsSnapshot {
                    shard: format!("shard{i}"),
                    window_ms,
                    counters,
                    histograms: vec![wait, latency],
                }
            })
            .collect()
    }

    /// The fleet view: all per-shard snapshots folded through
    /// [`MetricsSnapshot::merge`] — counters sum, histogram buckets
    /// absorb, percentiles recompute over the union.
    pub fn fleet_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merge(&self.shard_snapshots())
    }
}

/// The sharded router: N `OpenLoopShard` engines, their private KV block
/// pools, and the routing state. Construct with [`ShardRouter::new`], run
/// a trace with [`ShardRouter::run`].
pub struct ShardRouter {
    config: ShardConfig,
    engines: Vec<OpenLoopShard>,
    shard_kv: Vec<PagedLayout>,
    /// Per-shard KV block pools (owned here so each shard's cache budget is
    /// physically separate; encoder-only serving leaves them idle, decode
    /// drivers allocate from their shard's pool).
    pools: Vec<BlockPool>,
    rr_next: usize,
    p2c_state: u64,
    /// Requests placed on each shard's ingress.
    routed: Vec<usize>,
    /// Hot-shard sheds attributed to each shard.
    shed_hot: Vec<usize>,
}

impl ShardRouter {
    /// Builds the router: validates the config, instantiates one engine
    /// per shard and splits the fleet KV block budget across them.
    ///
    /// # Panics
    /// Panics on a zero shard count, an invalid [`ServeConfig`], or a KV
    /// pool too small to give every shard at least one block.
    pub fn new(config: ShardConfig) -> ShardRouter {
        config.validate();
        let shard_kv = config.kv_layout.per_shard(config.shards);
        let pools = shard_kv.iter().map(|&l| BlockPool::new(l)).collect();
        let p2c_state = match config.route {
            RoutePolicy::PowerOfTwo { seed } => seed,
            _ => 0,
        };
        ShardRouter {
            engines: (0..config.shards).map(|_| OpenLoopShard::new(config.serve)).collect(),
            shard_kv,
            pools,
            rr_next: 0,
            p2c_state,
            routed: vec![0; config.shards],
            shed_hot: vec![0; config.shards],
            config,
        }
    }

    /// The per-shard KV layouts (even split of [`ShardConfig::kv_layout`]).
    pub fn shard_kv_layouts(&self) -> &[PagedLayout] {
        &self.shard_kv
    }

    /// Mutable access to one shard's private KV block pool.
    pub fn shard_pool(&mut self, shard: usize) -> &mut BlockPool {
        &mut self.pools[shard]
    }

    /// Picks a shard for the arrival at `now` under the configured policy.
    fn pick(&mut self, now: f64) -> usize {
        let n = self.config.shards;
        match self.config.route {
            RoutePolicy::RoundRobin => {
                let c = self.rr_next % n;
                self.rr_next = (self.rr_next + 1) % n;
                c
            }
            RoutePolicy::JoinShortestQueue => {
                let mut best = 0usize;
                let mut best_load = usize::MAX;
                for i in 0..n {
                    let load = self.engines[i].outstanding_tokens(now);
                    if load < best_load {
                        best = i;
                        best_load = load;
                    }
                }
                best
            }
            RoutePolicy::PowerOfTwo { .. } => {
                let a = (splitmix64(&mut self.p2c_state) % n as u64) as usize;
                let b = (splitmix64(&mut self.p2c_state) % n as u64) as usize;
                let (lo, hi) = (a.min(b), a.max(b));
                let lo_load = self.engines[lo].outstanding_tokens(now);
                let hi_load = self.engines[hi].outstanding_tokens(now);
                if hi_load < lo_load {
                    hi
                } else {
                    lo
                }
            }
        }
    }

    /// Routes a trace across the shards and drives them all to completion
    /// on one global virtual clock (see the module docs for the horizon
    /// rule). `make_exec` is called once per shard, in shard order, to
    /// build that shard's executor — mix seeds with [`shard_seed`] so
    /// shard 0 stays bit-identical to an unsharded run.
    ///
    /// # Panics
    /// Panics if request ids are not a permutation of `0..requests.len()`
    /// or an executor returns a non-finite or negative duration.
    pub fn run<E>(mut self, requests: &[TimedRequest], mut make_exec: impl FnMut(usize) -> E) -> ShardedReport
    where
        E: FnMut(&BatchMask) -> f64,
    {
        let mut order: Vec<TimedRequest> = requests.to_vec();
        order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
        let n = order.len();
        let shards = self.config.shards;
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; n];
        let mut assignment: Vec<usize> = vec![usize::MAX; n];
        let mut execs: Vec<E> = (0..shards).map(&mut make_exec).collect();
        for r in &order {
            // Horizon rule: every shard catches up to this arrival's
            // instant before the routing decision reads any load signal.
            for (i, engine) in self.engines.iter_mut().enumerate() {
                engine.advance(r.arrival, &mut outcomes, &mut execs[i]);
            }
            let chosen = self.pick(r.arrival);
            let load = self.engines[chosen].outstanding_tokens(r.arrival);
            SHARD_OUTSTANDING.record(load as u64);
            assert!(
                assignment.get(r.id).copied() == Some(usize::MAX),
                "request ids must be a permutation of 0..n"
            );
            assignment[r.id] = chosen;
            if self.config.hot_shard_tokens > 0 && load + admission_weight(r.len) > self.config.hot_shard_tokens {
                SHARD_SHED_HOT.incr();
                self.shed_hot[chosen] += 1;
                record_router_shed(&mut outcomes, r.id, r.len, r.arrival);
            } else {
                SHARD_ROUTED.incr();
                self.routed[chosen] += 1;
                self.engines[chosen].offer(*r);
            }
        }
        for (i, engine) in self.engines.iter_mut().enumerate() {
            engine.advance(f64::INFINITY, &mut outcomes, &mut execs[i]);
        }
        let outcomes: Vec<RequestOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every offered request has exactly one outcome"))
            .collect();
        let mut per_shard: Vec<Vec<RequestOutcome>> = vec![Vec::new(); shards];
        for o in &outcomes {
            per_shard[assignment[o.id]].push(*o);
        }
        let shard_reports: Vec<ServeReport> = per_shard
            .into_iter()
            .zip(&self.engines)
            .map(|(outcomes, engine)| ServeReport {
                outcomes,
                batches: engine.batches,
                makespan: engine.makespan,
            })
            .collect();
        debug_assert!(
            self.engines.iter().all(|e| !e.has_work()),
            "drain to an infinite horizon leaves no work behind"
        );
        ShardedReport {
            outcomes,
            assignment,
            shard_reports,
            shard_kv: self.shard_kv,
            route: self.config.route.label(),
        }
    }
}

/// Convenience entry point: builds a [`ShardRouter`] and runs the trace.
/// This is the sharded twin of
/// [`run_open_loop`](crate::server::run_open_loop); with `shards == 1` (and
/// the hot-shard gate off) its report is bit-identical to the unsharded
/// one under the same executor.
pub fn run_sharded_open_loop<E>(
    requests: &[TimedRequest],
    config: &ShardConfig,
    make_exec: impl FnMut(usize) -> E,
) -> ShardedReport
where
    E: FnMut(&BatchMask) -> f64,
{
    ShardRouter::new(*config).run(requests, make_exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::CutPolicy;
    use crate::server::run_open_loop;

    fn test_serve_config() -> ServeConfig {
        ServeConfig {
            policy: CutPolicy::TokenBudget { budget_tokens: 1024 },
            queue_capacity: 16,
            deadline: 0.5,
            max_len: 512,
            chunk_tokens: 0,
        }
    }

    fn synthetic_exec(_shard: usize) -> impl FnMut(&BatchMask) -> f64 {
        |mask: &BatchMask| 50e-6 + mask.valid_words() as f64 / 1e6
    }

    fn trace(n: usize, rate: f64, seed: u64) -> Vec<TimedRequest> {
        crate::serving::poisson_arrivals(
            n,
            rate,
            bt_varlen::workload::LengthDistribution::PaperUniform { alpha: 0.6 },
            256,
            seed,
        )
    }

    #[test]
    fn one_shard_matches_the_unsharded_server_bit_for_bit() {
        let reqs = trace(200, 2000.0, 7);
        let serve = test_serve_config();
        let base = run_open_loop(&reqs, &serve, synthetic_exec(0));
        for route in [
            RoutePolicy::RoundRobin,
            RoutePolicy::JoinShortestQueue,
            RoutePolicy::PowerOfTwo { seed: 11 },
        ] {
            let cfg = ShardConfig {
                route,
                ..ShardConfig::new(1, serve)
            };
            let sharded = run_sharded_open_loop(&reqs, &cfg, synthetic_exec);
            assert_eq!(sharded.outcomes, base.outcomes, "route {}", route.label());
            assert_eq!(sharded.shard_reports[0].batches, base.batches);
            assert_eq!(sharded.shard_reports[0].makespan, base.makespan);
        }
    }

    #[test]
    fn sharded_runs_are_deterministic_and_exact() {
        let reqs = trace(400, 8000.0, 21);
        let cfg = ShardConfig::new(4, test_serve_config());
        let a = run_sharded_open_loop(&reqs, &cfg, synthetic_exec);
        let b = run_sharded_open_loop(&reqs, &cfg, synthetic_exec);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.assignment, b.assignment);
        assert!(a.accounting_is_exact_across_shards());
        let offered: usize = a.shard_summaries().iter().map(|s| s.offered).sum();
        assert_eq!(offered, reqs.len());
    }

    #[test]
    fn round_robin_cycles_and_jsq_balances() {
        let reqs = trace(300, 6000.0, 3);
        let rr = run_sharded_open_loop(
            &reqs,
            &ShardConfig {
                route: RoutePolicy::RoundRobin,
                ..ShardConfig::new(3, test_serve_config())
            },
            synthetic_exec,
        );
        let counts: Vec<usize> = rr.shard_summaries().iter().map(|s| s.offered).collect();
        assert_eq!(counts, vec![100, 100, 100]);
        let jsq = run_sharded_open_loop(&reqs, &ShardConfig::new(3, test_serve_config()), synthetic_exec);
        let jsq_counts: Vec<usize> = jsq.shard_summaries().iter().map(|s| s.offered).collect();
        assert_eq!(jsq_counts.iter().sum::<usize>(), reqs.len());
        assert!(
            jsq_counts.iter().all(|&c| c > 0),
            "JSQ must spread load: {jsq_counts:?}"
        );
    }

    #[test]
    fn hot_shard_gate_sheds_and_stays_exact() {
        // A single shard with a tiny token ceiling under heavy load must
        // shed at routing time, and the ledger must still balance.
        let reqs = trace(200, 50_000.0, 9);
        let cfg = ShardConfig {
            hot_shard_tokens: 512,
            ..ShardConfig::new(1, test_serve_config())
        };
        let report = run_sharded_open_loop(&reqs, &cfg, synthetic_exec);
        let s = report.summary();
        assert!(s.shed_hot_shard > 0, "gate never fired: {s:?}");
        assert!(report.accounting_is_exact_across_shards());
    }

    #[test]
    fn snapshots_label_shards_and_merge_into_a_fleet_view() {
        let reqs = trace(240, 6000.0, 5);
        let report = run_sharded_open_loop(&reqs, &ShardConfig::new(2, test_serve_config()), synthetic_exec);
        let snaps = report.shard_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].shard, "shard0");
        assert_eq!(snaps[1].shard, "shard1");
        let fleet = report.fleet_snapshot();
        let offered: u64 = snaps.iter().map(|s| s.delta(names::SERVE_OFFERED)).sum();
        assert_eq!(fleet.delta(names::SERVE_OFFERED), offered);
        assert_eq!(offered as usize, reqs.len());
        let served: u64 = fleet.delta(names::SERVE_SERVED);
        let lat = fleet
            .histogram(names::SERVE_LATENCY_US)
            .expect("fleet latency histogram present");
        assert_eq!(lat.count(), served);
    }

    #[test]
    fn kv_budget_splits_across_shards() {
        let cfg = ShardConfig {
            kv_layout: PagedLayout::new(16, 33),
            ..ShardConfig::new(4, test_serve_config())
        };
        let router = ShardRouter::new(cfg);
        let blocks: Vec<usize> = router.shard_kv_layouts().iter().map(|l| l.pool_blocks).collect();
        assert_eq!(blocks.iter().sum::<usize>(), 33);
        assert_eq!(blocks, vec![9, 8, 8, 8]);
    }

    #[test]
    fn shard_seed_is_identity_at_shard_zero() {
        assert_eq!(shard_seed(0xdead_beef, 0), 0xdead_beef);
        assert_ne!(shard_seed(0xdead_beef, 1), 0xdead_beef);
    }

    #[test]
    fn route_policy_parses_cli_spellings() {
        assert_eq!(RoutePolicy::parse("rr", 0), Some(RoutePolicy::RoundRobin));
        assert_eq!(RoutePolicy::parse("jsq", 0), Some(RoutePolicy::JoinShortestQueue));
        assert_eq!(
            RoutePolicy::parse("p2c", 42),
            Some(RoutePolicy::PowerOfTwo { seed: 42 })
        );
        assert_eq!(RoutePolicy::parse("nope", 0), None);
    }
}
