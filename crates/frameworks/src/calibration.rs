//! Per-framework calibration constants and the paper's Table I.
//!
//! These are the *only* tunables in the cross-framework comparison (DESIGN.md
//! §6); everything else — kernel counts, padded vs packed iteration spaces,
//! fusion structure, grouping behaviour — is encoded structurally in
//! [`crate::SimFramework`] and [`crate::pipeline`].

use bt_core::config::BertConfig;
use bt_core::flops::{layer_flops, FlopVariant};
use bt_device::{CostModel, LaunchTax};
use bt_varlen::workload::LengthDistribution;

/// PyTorch (JIT): eager-ish dispatcher with a noticeable per-op tax; its
/// hand-written CUDA kernels are close to peak; GEMMs are cuBLAS.
pub const PYTORCH_TAX: LaunchTax = LaunchTax {
    dispatch: 8e-6,
    bw_derate: 0.95,
    flops_derate: 1.0,
};

/// TensorFlow (XLA): compiled graph so dispatch is cheaper than PyTorch,
/// but XLA-codegenned element-wise kernels achieve a markedly lower fraction
/// of bandwidth than hand-tuned CUDA, and its GEMM autotuning is weaker —
/// which is how TF lands behind PyTorch in the paper's Fig. 14.
pub const TENSORFLOW_TAX: LaunchTax = LaunchTax {
    dispatch: 3e-6,
    bw_derate: 0.60,
    flops_derate: 0.85,
};

/// TurboTransformer: a serving runtime with moderate dispatch cost; its
/// kernels are tuned (partial fusion per Table I). Its real handicap is
/// structural — the sort-and-group re-batching multiplies kernel launches
/// and shrinks per-launch batch sizes (see [`crate::grouping`]).
pub const TURBO_TAX: LaunchTax = LaunchTax {
    dispatch: 6e-6,
    bw_derate: 0.90,
    flops_derate: 1.0,
};

/// FasterTransformer: a lean C++ runtime over hand-tuned kernels, cuBLAS
/// and TensorRT — near-zero derates; its handicaps are structural (fixed-
/// shape fused MHA ≤ 512, unfused fallback above).
pub const FASTER_TRANSFORMER_TAX: LaunchTax = LaunchTax {
    dispatch: 2e-6,
    bw_derate: 1.0,
    flops_derate: 1.0,
};

/// ByteTransformer: the same lean-runtime assumptions as FasterTransformer.
pub const BYTETRANSFORMER_TAX: LaunchTax = LaunchTax {
    dispatch: 1e-6,
    bw_derate: 1.0,
    flops_derate: 1.0,
};

/// TurboTransformer's maximum supported sequence length (paper §IV.E:
/// "TurboTransformer only supports sequence lengths smaller than 512").
pub const TURBO_MAX_SEQ: usize = 512;

/// Sequence length up to which FasterTransformer's TensorRT-style fused MHA
/// applies; beyond it FT falls back to unfused batched attention (paper:
/// "its back-end TensorRT fused MHA cannot be scaled to long sequences").
pub const FT_FUSED_MHA_MAX_SEQ: usize = 512;

/// Minimum length ratio TurboTransformer's batch scheduler accepts when
/// grouping sequences into one padded sub-batch.
pub const TURBO_GROUP_RATIO: f64 = 0.7;

/// Serving capacity of one runtime on one device: the sustained
/// valid-token throughput the admission layer budgets against.
///
/// Produced by [`calibrate_capacity`] (modeled roofline probe) or
/// [`host_tokens_per_sec_from_bench_json`] (measured host GFLOP/s from a
/// `BENCH_gemm.json` artifact). Everything the server derives — batch token
/// budgets, open-loop arrival rates for a given load factor — comes through
/// the methods here, so "2× load" means the same thing in the stress test,
/// the bench, and `btx serve`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeCapacity {
    /// Sustained valid tokens per second.
    pub tokens_per_sec: f64,
}

impl ServeCapacity {
    /// The per-batch valid-token budget that makes one batch roughly
    /// `batch_interval` seconds of work (at least one token).
    pub fn token_budget(&self, batch_interval: f64) -> usize {
        assert!(batch_interval > 0.0, "batch_interval must be positive");
        ((self.tokens_per_sec * batch_interval).round() as usize).max(1)
    }

    /// Open-loop request rate (requests/second) that offers
    /// `load × tokens_per_sec` tokens per second for requests averaging
    /// `mean_tokens` valid tokens.
    pub fn request_rate(&self, mean_tokens: f64, load: f64) -> f64 {
        assert!(mean_tokens > 0.0 && load > 0.0, "mean_tokens and load must be positive");
        load * self.tokens_per_sec / mean_tokens
    }
}

/// Calibrates [`ServeCapacity`] from the roofline: runs one probe forward
/// of `fw` on a `probe_batch × max_seq` paper-α batch and divides the
/// probe's valid tokens by its modeled device time. Because the probe uses
/// the same cost model, launch taxes, and pipeline as serving itself, the
/// resulting tokens/sec already prices in per-launch overhead and the
/// memory-bound fraction at the calibrated shape.
pub fn calibrate_capacity(
    fw: &crate::SimFramework,
    max_seq: usize,
    alpha: f64,
    probe_batch: usize,
    seed: u64,
) -> ServeCapacity {
    assert!(probe_batch > 0, "probe_batch must be positive");
    let mask = LengthDistribution::PaperUniform { alpha }.sample_mask(probe_batch, max_seq, seed);
    let input = crate::server::masked_randn(&mask, fw.model.config.hidden(), seed ^ 0x9e37_79b9);
    let device = fw.device(CostModel::a100());
    fw.forward(&device, &input, &mask).expect("probe shapes are valid");
    ServeCapacity {
        tokens_per_sec: mask.valid_words() as f64 / device.modeled_total().max(1e-12),
    }
}

/// Closed-form FLOPs per valid token of the fully optimized pipeline
/// (Table II's zero-padding + fused-MHA variant) at a representative
/// paper-α length mix — the conversion factor between a measured GFLOP/s
/// figure and a token throughput.
pub fn flops_per_token(config: &BertConfig, max_seq: usize, alpha: f64) -> f64 {
    let mask = LengthDistribution::PaperUniform { alpha }.sample_mask(16, max_seq, 12345);
    let per_layer = layer_flops(&mask, config.hidden(), FlopVariant::ZeroPaddingFusedMha).total();
    (per_layer as f64 * config.layers as f64) / mask.valid_words() as f64
}

/// Scans a `BENCH_gemm.json` artifact for its best measured GFLOP/s figure
/// (the dense-math ceiling of this host across ISA *and* precision tiers).
/// The scan is schema-tolerant — it looks for `"gflops": <number>` fields
/// rather than parsing the full document — so artifacts from older emitters
/// still calibrate. Returns `None` if no such field parses.
pub fn max_gflops_in_bench_json(json: &str) -> Option<f64> {
    let mut best: Option<f64> = None;
    scan_gflops(json, |v, _| best = Some(best.map_or(v, |b: f64| b.max(v))));
    best
}

/// Precision-aware variant of [`max_gflops_in_bench_json`]: best GFLOP/s
/// among rows whose `"prec"` field equals `prec`. Rows without a `"prec"`
/// field (artifacts from emitters predating the `BYTE_GEMM_PREC` axis)
/// count as `f32` — the only precision those emitters measured.
pub fn max_gflops_for_prec(json: &str, prec: &str) -> Option<f64> {
    let mut best: Option<f64> = None;
    scan_gflops(json, |v, row_prec| {
        if row_prec.unwrap_or("f32") == prec {
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    });
    best
}

/// Shared scan: invokes `visit` with every parsed positive-finite
/// `"gflops"` value and the `"prec"` string (if any) of the enclosing
/// flat JSON object.
fn scan_gflops<'a>(json: &'a str, mut visit: impl FnMut(f64, Option<&'a str>)) {
    let key = "\"gflops\":";
    let mut offset = 0;
    while let Some(pos) = json[offset..].find(key) {
        let abs = offset + pos;
        offset = abs + key.len();
        let rest = &json[offset..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        if let Ok(v) = rest[..end].trim().parse::<f64>() {
            if v.is_finite() && v > 0.0 {
                // Bench rows are flat objects, so the nearest braces bound
                // the row this gflops figure belongs to.
                let start = json[..abs].rfind('{').map_or(0, |i| i + 1);
                let stop = json[abs..].find('}').map_or(json.len(), |i| abs + i);
                visit(v, extract_prec(&json[start..stop]));
            }
        }
    }
}

/// Pulls the string value of a `"prec"` key out of one row's span.
fn extract_prec(span: &str) -> Option<&str> {
    let rest = span[span.find("\"prec\":")? + "\"prec\":".len()..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(&rest[..rest.find('"')?])
}

/// Host-wall-clock serving capacity from a `BENCH_gemm.json` artifact:
/// best measured **f32** GFLOP/s divided by the closed-form FLOPs per token
/// ([`flops_per_token`]). The f32 row is picked explicitly — the serving
/// pipeline being capacity-planned runs f32 end to end, so a faster
/// low-precision row in the same artifact must not inflate the budget.
/// Falls back to the precision-agnostic best only if no f32 row exists
/// (and an older artifact's unlabeled rows *are* f32 rows). An *optimistic*
/// host ceiling (it assumes the whole pipeline sustains GEMM throughput);
/// use the roofline [`calibrate_capacity`] for the modeled-time serving
/// loop.
pub fn host_tokens_per_sec_from_bench_json(json: &str, flops_per_token: f64) -> Option<f64> {
    assert!(flops_per_token > 0.0, "flops_per_token must be positive");
    max_gflops_for_prec(json, "f32")
        .or_else(|| max_gflops_in_bench_json(json))
        .map(|g| g * 1e9 / flops_per_token)
}

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureRow {
    /// Framework name.
    pub name: &'static str,
    /// Supports variable-length inputs without user-side padding.
    pub variable_len: bool,
    /// Ships tuned kernels.
    pub kernel_tuning: bool,
    /// Fused MHA availability ("≤512" reported as `Some(512)`).
    pub fused_mha: Option<usize>,
    /// Comprehensive kernel fusion ("partially" reported as `false` here,
    /// with the nuance carried in [`FeatureRow::fusion_note`]).
    pub kernel_fusion: bool,
    /// Free-text nuance matching the paper's table cell.
    pub fusion_note: &'static str,
}

/// The paper's Table I, verbatim.
pub fn feature_matrix() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "TensorFlow XLA",
            variable_len: false,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "PyTorch JIT",
            variable_len: false,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "FasterTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: Some(512),
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "TurboTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "partially",
        },
        FeatureRow {
            name: "ByteTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: Some(usize::MAX),
            kernel_fusion: true,
            fusion_note: "yes",
        },
    ]
}

/// Renders Table I as fixed-width text.
pub fn render_feature_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>13} {:>14} {:>10} {:>14}\n",
        "framework", "variable-len", "kernel tuning", "fused MHA", "kernel fusion"
    ));
    for row in feature_matrix() {
        let mha = match row.fused_mha {
            None => "no".to_string(),
            Some(usize::MAX) => "yes".to_string(),
            Some(n) => format!("<={n}"),
        };
        out.push_str(&format!(
            "{:<20} {:>13} {:>14} {:>10} {:>14}\n",
            row.name,
            if row.variable_len { "yes" } else { "no" },
            if row.kernel_tuning { "yes" } else { "no" },
            mha,
            row.fusion_note,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = feature_matrix();
        assert_eq!(rows.len(), 5);
        let bt = rows.iter().find(|r| r.name == "ByteTransformer").unwrap();
        assert!(bt.variable_len && bt.kernel_fusion && bt.fused_mha.is_some());
        let ft = rows.iter().find(|r| r.name == "FasterTransformer").unwrap();
        assert_eq!(ft.fused_mha, Some(512));
        let turbo = rows.iter().find(|r| r.name == "TurboTransformer").unwrap();
        assert!(turbo.variable_len && turbo.fused_mha.is_none());
        assert_eq!(turbo.fusion_note, "partially");
        let tf = rows.iter().find(|r| r.name == "TensorFlow XLA").unwrap();
        assert!(!tf.variable_len);
    }

    #[test]
    fn render_contains_all_frameworks() {
        let text = render_feature_matrix();
        for name in [
            "TensorFlow XLA",
            "PyTorch JIT",
            "FasterTransformer",
            "TurboTransformer",
            "ByteTransformer",
        ] {
            assert!(text.contains(name));
        }
    }

    #[test]
    fn capacity_budget_and_rate_are_consistent() {
        let c = ServeCapacity { tokens_per_sec: 1e6 };
        assert_eq!(c.token_budget(1e-3), 1_000);
        assert_eq!(c.token_budget(1e-9), 1, "budget is clamped to one token");
        assert!((c.request_rate(100.0, 2.0) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn bench_json_scan_finds_the_best_gflops() {
        let json = r#"{
  "results": [
    {"name": "a", "tier": "scalar", "gflops": 47.297, "secs": 0.01},
    {"name": "b", "tier": "avx512", "gflops": 97.810, "secs": 0.009},
    {"name": "c", "tier": "avx2", "gflops": 65.682}
  ]
}"#;
        assert!((max_gflops_in_bench_json(json).unwrap() - 97.810).abs() < 1e-9);
        assert_eq!(max_gflops_in_bench_json("{}"), None);
        assert_eq!(max_gflops_in_bench_json("\"gflops\": nonsense"), None);
        let fpt = 1e6;
        let tps = host_tokens_per_sec_from_bench_json(json, fpt).unwrap();
        assert!((tps - 97.810e3).abs() < 1.0);
    }

    #[test]
    fn bench_json_scan_is_precision_aware() {
        let json = r#"{
  "results": [
    {"name": "a", "tier": "avx512", "prec": "f32", "gflops": 97.8},
    {"name": "a", "tier": "avx512", "prec": "f16", "gflops": 180.3},
    {"name": "a", "tier": "avx512", "prec": "int8", "gflops": 410.0},
    {"name": "b", "tier": "scalar", "prec": "f32", "gflops": 47.3}
  ]
}"#;
        // Per-precision scans pick within their own rows.
        assert!((max_gflops_for_prec(json, "f32").unwrap() - 97.8).abs() < 1e-9);
        assert!((max_gflops_for_prec(json, "f16").unwrap() - 180.3).abs() < 1e-9);
        assert!((max_gflops_for_prec(json, "int8").unwrap() - 410.0).abs() < 1e-9);
        assert_eq!(max_gflops_for_prec(json, "bf16"), None);
        // The precision-agnostic ceiling still sees everything.
        assert!((max_gflops_in_bench_json(json).unwrap() - 410.0).abs() < 1e-9);
        // Capacity planning uses the f32 row, NOT the faster int8 row.
        let tps = host_tokens_per_sec_from_bench_json(json, 1e6).unwrap();
        assert!((tps - 97.8e3).abs() < 1.0, "f32 row must drive capacity, got {tps}");
        // Artifacts predating the precision axis: unlabeled rows are f32.
        let old = r#"{"results": [{"name": "a", "tier": "avx2", "gflops": 65.7}]}"#;
        assert!((max_gflops_for_prec(old, "f32").unwrap() - 65.7).abs() < 1e-9);
        assert_eq!(max_gflops_for_prec(old, "f16"), None);
        let tps = host_tokens_per_sec_from_bench_json(old, 1e6).unwrap();
        assert!((tps - 65.7e3).abs() < 1.0);
    }

    #[test]
    fn roofline_capacity_prices_in_the_pipeline() {
        use bt_core::config::BertConfig;
        use bt_core::encoder::BertModel;
        let model = BertModel::new_random(BertConfig::tiny(), 1, 42);
        let fw = crate::SimFramework::new(crate::FrameworkKind::ByteTransformer, model);
        let cap = calibrate_capacity(&fw, 32, 0.6, 4, 7);
        assert!(cap.tokens_per_sec > 0.0 && cap.tokens_per_sec.is_finite());
        // More layers -> fewer tokens per second, roughly proportionally.
        let model2 = BertModel::new_random(BertConfig::tiny(), 2, 42);
        let fw2 = crate::SimFramework::new(crate::FrameworkKind::ByteTransformer, model2);
        let cap2 = calibrate_capacity(&fw2, 32, 0.6, 4, 7);
        assert!(cap2.tokens_per_sec < cap.tokens_per_sec);
        // And the closed form agrees on the sign of that scaling.
        let f1 = flops_per_token(&BertConfig::tiny(), 32, 0.6);
        assert!(f1 > 0.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate invariant checks on calibration constants
    fn taxes_are_sane() {
        for tax in [
            PYTORCH_TAX,
            TENSORFLOW_TAX,
            TURBO_TAX,
            FASTER_TRANSFORMER_TAX,
            BYTETRANSFORMER_TAX,
        ] {
            assert!(tax.dispatch >= 0.0 && tax.dispatch < 1e-4);
            assert!(tax.bw_derate > 0.0 && tax.bw_derate <= 1.0);
            assert!(tax.flops_derate > 0.0 && tax.flops_derate <= 1.0);
        }
        // The paper's ordering pressure: lean runtimes dispatch faster.
        assert!(BYTETRANSFORMER_TAX.dispatch < FASTER_TRANSFORMER_TAX.dispatch);
        assert!(FASTER_TRANSFORMER_TAX.dispatch < PYTORCH_TAX.dispatch);
    }
}
