//! Per-framework calibration constants and the paper's Table I.
//!
//! These are the *only* tunables in the cross-framework comparison (DESIGN.md
//! §6); everything else — kernel counts, padded vs packed iteration spaces,
//! fusion structure, grouping behaviour — is encoded structurally in
//! [`crate::SimFramework`] and [`crate::pipeline`].

use bt_device::LaunchTax;

/// PyTorch (JIT): eager-ish dispatcher with a noticeable per-op tax; its
/// hand-written CUDA kernels are close to peak; GEMMs are cuBLAS.
pub const PYTORCH_TAX: LaunchTax = LaunchTax {
    dispatch: 8e-6,
    bw_derate: 0.95,
    flops_derate: 1.0,
};

/// TensorFlow (XLA): compiled graph so dispatch is cheaper than PyTorch,
/// but XLA-codegenned element-wise kernels achieve a markedly lower fraction
/// of bandwidth than hand-tuned CUDA, and its GEMM autotuning is weaker —
/// which is how TF lands behind PyTorch in the paper's Fig. 14.
pub const TENSORFLOW_TAX: LaunchTax = LaunchTax {
    dispatch: 3e-6,
    bw_derate: 0.60,
    flops_derate: 0.85,
};

/// TurboTransformer: a serving runtime with moderate dispatch cost; its
/// kernels are tuned (partial fusion per Table I). Its real handicap is
/// structural — the sort-and-group re-batching multiplies kernel launches
/// and shrinks per-launch batch sizes (see [`crate::grouping`]).
pub const TURBO_TAX: LaunchTax = LaunchTax {
    dispatch: 6e-6,
    bw_derate: 0.90,
    flops_derate: 1.0,
};

/// FasterTransformer: a lean C++ runtime over hand-tuned kernels, cuBLAS
/// and TensorRT — near-zero derates; its handicaps are structural (fixed-
/// shape fused MHA ≤ 512, unfused fallback above).
pub const FASTER_TRANSFORMER_TAX: LaunchTax = LaunchTax {
    dispatch: 2e-6,
    bw_derate: 1.0,
    flops_derate: 1.0,
};

/// ByteTransformer: the same lean-runtime assumptions as FasterTransformer.
pub const BYTETRANSFORMER_TAX: LaunchTax = LaunchTax {
    dispatch: 1e-6,
    bw_derate: 1.0,
    flops_derate: 1.0,
};

/// TurboTransformer's maximum supported sequence length (paper §IV.E:
/// "TurboTransformer only supports sequence lengths smaller than 512").
pub const TURBO_MAX_SEQ: usize = 512;

/// Sequence length up to which FasterTransformer's TensorRT-style fused MHA
/// applies; beyond it FT falls back to unfused batched attention (paper:
/// "its back-end TensorRT fused MHA cannot be scaled to long sequences").
pub const FT_FUSED_MHA_MAX_SEQ: usize = 512;

/// Minimum length ratio TurboTransformer's batch scheduler accepts when
/// grouping sequences into one padded sub-batch.
pub const TURBO_GROUP_RATIO: f64 = 0.7;

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureRow {
    /// Framework name.
    pub name: &'static str,
    /// Supports variable-length inputs without user-side padding.
    pub variable_len: bool,
    /// Ships tuned kernels.
    pub kernel_tuning: bool,
    /// Fused MHA availability ("≤512" reported as `Some(512)`).
    pub fused_mha: Option<usize>,
    /// Comprehensive kernel fusion ("partially" reported as `false` here,
    /// with the nuance carried in [`FeatureRow::fusion_note`]).
    pub kernel_fusion: bool,
    /// Free-text nuance matching the paper's table cell.
    pub fusion_note: &'static str,
}

/// The paper's Table I, verbatim.
pub fn feature_matrix() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            name: "TensorFlow XLA",
            variable_len: false,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "PyTorch JIT",
            variable_len: false,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "FasterTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: Some(512),
            kernel_fusion: false,
            fusion_note: "no",
        },
        FeatureRow {
            name: "TurboTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: None,
            kernel_fusion: false,
            fusion_note: "partially",
        },
        FeatureRow {
            name: "ByteTransformer",
            variable_len: true,
            kernel_tuning: true,
            fused_mha: Some(usize::MAX),
            kernel_fusion: true,
            fusion_note: "yes",
        },
    ]
}

/// Renders Table I as fixed-width text.
pub fn render_feature_matrix() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>13} {:>14} {:>10} {:>14}\n",
        "framework", "variable-len", "kernel tuning", "fused MHA", "kernel fusion"
    ));
    for row in feature_matrix() {
        let mha = match row.fused_mha {
            None => "no".to_string(),
            Some(usize::MAX) => "yes".to_string(),
            Some(n) => format!("<={n}"),
        };
        out.push_str(&format!(
            "{:<20} {:>13} {:>14} {:>10} {:>14}\n",
            row.name,
            if row.variable_len { "yes" } else { "no" },
            if row.kernel_tuning { "yes" } else { "no" },
            mha,
            row.fusion_note,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = feature_matrix();
        assert_eq!(rows.len(), 5);
        let bt = rows.iter().find(|r| r.name == "ByteTransformer").unwrap();
        assert!(bt.variable_len && bt.kernel_fusion && bt.fused_mha.is_some());
        let ft = rows.iter().find(|r| r.name == "FasterTransformer").unwrap();
        assert_eq!(ft.fused_mha, Some(512));
        let turbo = rows.iter().find(|r| r.name == "TurboTransformer").unwrap();
        assert!(turbo.variable_len && turbo.fused_mha.is_none());
        assert_eq!(turbo.fusion_note, "partially");
        let tf = rows.iter().find(|r| r.name == "TensorFlow XLA").unwrap();
        assert!(!tf.variable_len);
    }

    #[test]
    fn render_contains_all_frameworks() {
        let text = render_feature_matrix();
        for name in [
            "TensorFlow XLA",
            "PyTorch JIT",
            "FasterTransformer",
            "TurboTransformer",
            "ByteTransformer",
        ] {
            assert!(text.contains(name));
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate invariant checks on calibration constants
    fn taxes_are_sane() {
        for tax in [
            PYTORCH_TAX,
            TENSORFLOW_TAX,
            TURBO_TAX,
            FASTER_TRANSFORMER_TAX,
            BYTETRANSFORMER_TAX,
        ] {
            assert!(tax.dispatch >= 0.0 && tax.dispatch < 1e-4);
            assert!(tax.bw_derate > 0.0 && tax.bw_derate <= 1.0);
            assert!(tax.flops_derate > 0.0 && tax.flops_derate <= 1.0);
        }
        // The paper's ordering pressure: lean runtimes dispatch faster.
        assert!(BYTETRANSFORMER_TAX.dispatch < FASTER_TRANSFORMER_TAX.dispatch);
        assert!(FASTER_TRANSFORMER_TAX.dispatch < PYTORCH_TAX.dispatch);
    }
}
