//! `bt-serve` — a continuous-batching server with token-budget admission
//! and graceful overload shedding.
//!
//! This is the serving-side half of the paper's zero-padding story: the
//! runtime (packed layouts, fused MHA, the persistent pool) makes batch
//! cost proportional to *valid tokens*, so the batcher should meter valid
//! tokens too. The server here does exactly that:
//!
//! * **Continuous batching** — no fixed windows: whenever the device is
//!   free and work is queued, the configured [`CutPolicy`] cuts the next
//!   batch from the queue (FIFO, TurboTransformers-style sorted groups, or
//!   the token-budget policy this module exists for).
//! * **Bounded ingress** — the queue holds at most `queue_capacity`
//!   requests; arrivals beyond that are rejected immediately with
//!   [`ShedReason::QueueFull`] (backpressure, not unbounded latency).
//! * **Deadlines with cancellation** — each request expires
//!   `deadline` seconds after arrival; expired requests are cancelled
//!   *while queued* ([`ShedReason::DeadlineExpired`]) instead of being
//!   served uselessly late.
//! * **Chunked execution** — with [`ServeConfig::chunk_tokens`] set, each
//!   cut batch runs as a sequence of shortest-first rounds of at most that
//!   many valid tokens, so short requests stop queueing behind the longest
//!   member of their batch; deadlines are re-checked **between rounds** and
//!   expired requests are cancelled mid-request with the distinct
//!   [`ShedReason::CancelledMidRequest`]. Instrumented as `serve.chunk.*`.
//! * **Streaming egress** — [`IngressHandle::try_submit_stream`] hands the
//!   caller a bounded per-request output channel the server pushes
//!   [`StreamEvent`]s into, token-at-a-time, as the request's round
//!   completes.
//! * **Exact accounting** — every offered request gets exactly one
//!   [`Outcome`]; `served + shed == offered` always
//!   ([`ServeSummary::accounting_is_exact`], asserted by the seeded stress
//!   suite).
//!
//! Three drivers share the same admission and cutting code
//! ([`crate::admission`]):
//!
//! * [`run_open_loop`] — a deterministic virtual-time engine: arrivals come
//!   from a seeded generator ([`crate::serving::poisson_arrivals`] /
//!   [`crate::serving::bursty_arrivals`]) and the clock advances by the
//!   executor's *modeled* batch time, so shed/served accounting and latency
//!   percentiles are bit-identical across runs. This drives the stress
//!   test, `BENCH_serve.json`, and `btx serve`.
//! * [`crate::shard::run_sharded_open_loop`] — the same virtual-time engine
//!   multiplied by N: a shard router spreads the arrival trace across N
//!   independent `OpenLoopShard` instances (round-robin, join-shortest-
//!   queue, or power-of-two-choices by outstanding valid tokens), with a
//!   hot-shard work-shedding gate ([`ShedReason::HotShard`]).
//! * [`Server`] — a real multi-threaded front-end: producers submit over a
//!   bounded MPSC channel ([`std::sync::mpsc::sync_channel`]), a server
//!   thread runs the same continuous-batching loop in wall time, and batch
//!   execution runs on the persistent work-stealing pool (the forwards'
//!   internal `parallel_for` fan-outs).
//!
//! Everything is instrumented with `bt-obs`: queue-depth, batch-occupancy,
//! batch-token and time-in-queue histograms, per-reason shed counters, and
//! `serve.batch` / `serve.batch.forward` spans — all named from the
//! canonical [`bt_obs::names`] table. All three drivers additionally tag
//! every request's lifecycle (`req.enqueue` → `req.admit` → `req.round` →
//! `req.exec.done` → `req.done` / `req.shed.<reason>`) with a
//! [`bt_obs::TraceId`], so a drained profile reconstructs per-request
//! causal timelines via `bt_obs::trace::reconstruct`. The virtual-time
//! engine stamps marks with its *simulated* clock, making trace phase
//! breakdowns reconcile exactly with the [`ServeReport`] ledger; the
//! threaded server stamps wall time.
//!
//! ```
//! use bt_frameworks::server::{run_open_loop, ServeConfig};
//! use bt_frameworks::admission::CutPolicy;
//! use bt_frameworks::serving::poisson_arrivals;
//! use bt_varlen::workload::LengthDistribution;
//!
//! let requests = poisson_arrivals(64, 500.0, LengthDistribution::PaperUniform { alpha: 0.6 }, 64, 7);
//! let config = ServeConfig {
//!     policy: CutPolicy::TokenBudget { budget_tokens: 256 },
//!     queue_capacity: 16,
//!     deadline: 0.05,
//!     max_len: 64,
//!     chunk_tokens: 0,
//! };
//! // Executor returns the modeled batch duration; here a toy linear cost.
//! let report = run_open_loop(&requests, &config, |mask| mask.valid_words() as f64 * 1e-5);
//! let summary = report.summary();
//! assert!(summary.accounting_is_exact());
//! assert_eq!(summary.offered, 64);
//! ```

use crate::admission::{batch_mask, CutPolicy, Pending, ShedReason};
use crate::serving::{latency_stats, LatencyStats, TimedRequest};
use bt_obs::{names, TraceId};
use bt_varlen::BatchMask;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::time::Instant;

/// Requests offered to the server (admitted or not).
static OFFERED: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_OFFERED);
/// Requests served to completion.
static SERVED: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SERVED);
/// Requests shed at the ingress gate (bounded queue full).
static SHED_QUEUE_FULL: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_QUEUE_FULL);
/// Requests cancelled in the queue after their deadline expired.
static SHED_DEADLINE: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_DEADLINE);
/// Requests rejected for exceeding the runtime's maximum length.
static SHED_TOO_LONG: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_TOO_LONG);
/// Requests shed because the paged KV-cache pool was exhausted.
static SHED_CACHE_OOM: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_CACHE_OOM);
/// Requests cancelled between chunk rounds by a per-chunk deadline check.
static SHED_CANCELLED: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_CANCELLED);
/// Requests the shard router refused to place on an overloaded shard.
static SHED_HOT_SHARD: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_SHED_HOT_SHARD);
/// Batches executed.
static BATCHES: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_BATCHES);
/// Chunk rounds planned for cut batches (chunked mode only).
static CHUNK_ROUNDS: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_CHUNK_ROUNDS);
/// Requests cancelled between chunk rounds (same events as
/// `serve.shed.cancelled_mid_request`, namespaced with the chunk metrics).
static CHUNK_CANCELLED: bt_obs::Counter = bt_obs::Counter::new(names::SERVE_CHUNK_CANCELLED);
/// Valid tokens per executed chunk round (chunked mode only).
static CHUNK_TOKENS: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_CHUNK_TOKENS);
/// Queue depth sampled after every admission decision.
static QUEUE_DEPTH: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_QUEUE_DEPTH);
/// Requests per executed batch.
static OCCUPANCY: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_BATCH_OCCUPANCY);
/// Valid tokens per executed batch (what a token budget meters).
static BATCH_TOKENS: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_BATCH_TOKENS);
/// Time spent queued before the batch started, in microseconds.
static TIME_IN_QUEUE_US: bt_obs::Histogram = bt_obs::Histogram::new(names::SERVE_QUEUE_WAIT_US);

/// Virtual-clock seconds → trace-mark nanoseconds. Rounding (not
/// truncating) keeps phase sums reconciled with the ledger's `f64`
/// arithmetic to within a nanosecond.
pub(crate) fn vns(t: f64) -> u64 {
    (t * 1e9).round() as u64
}

/// Server configuration: cutting policy plus the three overload guards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// How batches are cut from the queue.
    pub policy: CutPolicy,
    /// Bounded ingress queue capacity, in requests.
    pub queue_capacity: usize,
    /// Per-request deadline in seconds from arrival (`f64::INFINITY`
    /// disables expiry). A request whose batch has not *started* by its
    /// deadline is cancelled and shed.
    pub deadline: f64,
    /// Longest sequence the runtime accepts; longer requests are shed with
    /// [`ShedReason::TooLong`] instead of being admitted.
    pub max_len: usize,
    /// Chunked execution: split each cut batch into rounds of at most this
    /// many valid tokens, shortest request first, re-checking deadlines
    /// between rounds ([`ShedReason::CancelledMidRequest`]). `0` executes
    /// the whole batch in one round (the pre-chunking behavior). Deployments
    /// read this from `BYTE_CHUNK_TOKENS` via
    /// [`bt_varlen::chunk_tokens_from_env`].
    pub chunk_tokens: usize,
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.queue_capacity > 0, "queue_capacity must be positive");
        assert!(self.deadline > 0.0, "deadline must be positive");
        assert!(self.max_len > 0, "max_len must be positive");
    }
}

/// Final disposition of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The request's batch completed.
    Served {
        /// Seconds spent queued before its batch started.
        queue_wait: f64,
        /// Completion minus arrival, in seconds.
        latency: f64,
    },
    /// The request was rejected or cancelled.
    Shed {
        /// Why it was shed.
        reason: ShedReason,
        /// Seconds spent queued before the shed decision (zero for
        /// ingress-gate rejections).
        wait: f64,
    },
}

/// One request's identity, size, and [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestOutcome {
    /// Caller-assigned request id.
    pub id: usize,
    /// Valid-token count.
    pub len: usize,
    /// What happened to it.
    pub outcome: Outcome,
}

impl RequestOutcome {
    /// True when the request was served to completion.
    pub fn served(&self) -> bool {
        matches!(self.outcome, Outcome::Served { .. })
    }
}

/// Everything one serving run observed.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request outcomes, indexed by request id.
    pub outcomes: Vec<RequestOutcome>,
    /// Batches executed.
    pub batches: usize,
    /// Completion time of the last batch (seconds from the first arrival
    /// epoch); zero if nothing was served.
    pub makespan: f64,
}

impl ServeReport {
    /// Aggregates the run into counts, latency percentiles and goodput.
    pub fn summary(&self) -> ServeSummary {
        let mut s = ServeSummary {
            offered: self.outcomes.len(),
            served: 0,
            shed_queue_full: 0,
            shed_deadline: 0,
            shed_too_long: 0,
            shed_cache_oom: 0,
            shed_cancelled: 0,
            shed_hot_shard: 0,
            batches: self.batches,
            served_tokens: 0,
            makespan: self.makespan,
            served_latency: latency_stats(&[]),
        };
        let mut latencies = Vec::new();
        for r in &self.outcomes {
            match r.outcome {
                Outcome::Served { latency, .. } => {
                    s.served += 1;
                    s.served_tokens += r.len.max(1);
                    latencies.push(latency);
                }
                Outcome::Shed { reason, .. } => match reason {
                    ShedReason::QueueFull => s.shed_queue_full += 1,
                    ShedReason::DeadlineExpired => s.shed_deadline += 1,
                    ShedReason::TooLong => s.shed_too_long += 1,
                    ShedReason::CacheOom => s.shed_cache_oom += 1,
                    ShedReason::CancelledMidRequest => s.shed_cancelled += 1,
                    ShedReason::HotShard => s.shed_hot_shard += 1,
                },
            }
        }
        s.served_latency = latency_stats(&latencies);
        s
    }
}

/// Aggregate view of a serving run (see [`ServeReport::summary`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSummary {
    /// Requests offered (served + shed).
    pub offered: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Shed at the ingress gate (queue full).
    pub shed_queue_full: usize,
    /// Cancelled after deadline expiry.
    pub shed_deadline: usize,
    /// Rejected as longer than the runtime supports.
    pub shed_too_long: usize,
    /// Shed because the paged KV-cache pool could not hold the request
    /// (decode path only; always zero for encoder-only runs).
    pub shed_cache_oom: usize,
    /// Cancelled mid-request by a per-chunk deadline check (chunked mode
    /// only; always zero when `chunk_tokens == 0`).
    pub shed_cancelled: usize,
    /// Shed by the shard router's hot-shard gate (sharded runs only; always
    /// zero for a single unsharded server).
    pub shed_hot_shard: usize,
    /// Batches executed.
    pub batches: usize,
    /// Valid tokens across served requests.
    pub served_tokens: usize,
    /// Completion time of the last batch, in seconds.
    pub makespan: f64,
    /// Latency percentiles over *served* requests only.
    pub served_latency: LatencyStats,
}

impl ServeSummary {
    /// Total shed requests across all reasons.
    pub fn shed(&self) -> usize {
        self.shed_queue_full
            + self.shed_deadline
            + self.shed_too_long
            + self.shed_cache_oom
            + self.shed_cancelled
            + self.shed_hot_shard
    }

    /// The invariant the stress suite enforces: every offered request has
    /// exactly one outcome.
    pub fn accounting_is_exact(&self) -> bool {
        self.served + self.shed() == self.offered
    }

    /// Served valid tokens per second of makespan — the throughput that
    /// *mattered* (shed work does not count).
    pub fn goodput_tokens_per_sec(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.served_tokens as f64 / self.makespan
    }
}

/// Zero-padded random input for a masked batch (`[batch, max_seq, hidden]`
/// with rows past each sequence's length zeroed) — the standard request
/// synthesis for serving paths, shared by the capacity probe, the serving
/// executors, and `btx`.
pub fn masked_randn(mask: &BatchMask, hidden: usize, seed: u64) -> bt_tensor::Tensor {
    let mut t = bt_tensor::Tensor::randn([mask.batch(), mask.max_seq_len(), hidden], seed);
    for (b, &len) in mask.seq_lens().iter().enumerate() {
        for s in len..mask.max_seq_len() {
            for h in 0..hidden {
                t.set(&[b, s, h], 0.0).expect("within shape");
            }
        }
    }
    t
}

/// An executor for [`run_open_loop`] that runs **real** framework forwards:
/// each batch synthesizes a masked random input, executes `fw.forward` on a
/// fresh device (so per-batch modeled time is isolated), and returns the
/// modeled device seconds. The forwards' internal `parallel_for` fan-outs
/// run on the persistent work-stealing pool.
pub fn modeled_forward_executor(
    fw: &crate::SimFramework,
    cost: bt_device::CostModel,
    seed: u64,
) -> impl FnMut(&BatchMask) -> f64 + '_ {
    let mut batch_no: u64 = 0;
    move |mask| {
        let input = masked_randn(
            mask,
            fw.model.config.hidden(),
            seed ^ batch_no.wrapping_mul(0x9e37_79b9),
        );
        batch_no += 1;
        let device = fw.device(cost);
        fw.forward(&device, &input, mask)
            .expect("server admission bounds request lengths to supported shapes");
        device.modeled_total()
    }
}

/// Records a shed outcome in the virtual-time engine: bumps the per-reason
/// counter, stamps the request's terminal `req.shed.<reason>` trace mark at
/// the simulated instant `t_ns`, and writes the ledger slot. Shared with
/// the shard router, whose hot-shard gate sheds before any shard is
/// reached.
pub(crate) fn record_shed(
    outcomes: &mut [Option<RequestOutcome>],
    id: usize,
    len: usize,
    reason: ShedReason,
    wait: f64,
    t_ns: u64,
) {
    match reason {
        ShedReason::QueueFull => SHED_QUEUE_FULL.incr(),
        ShedReason::DeadlineExpired => SHED_DEADLINE.incr(),
        ShedReason::TooLong => SHED_TOO_LONG.incr(),
        ShedReason::CacheOom => SHED_CACHE_OOM.incr(),
        ShedReason::CancelledMidRequest => SHED_CANCELLED.incr(),
        ShedReason::HotShard => SHED_HOT_SHARD.incr(),
    }
    bt_obs::trace_mark_at(TraceId::from_request(id), reason.trace_label(), t_ns);
    let slot = outcomes.get_mut(id).expect("request ids must be a permutation of 0..n");
    assert!(slot.is_none(), "request id {id} offered twice");
    *slot = Some(RequestOutcome {
        id,
        len,
        outcome: Outcome::Shed { reason, wait },
    });
}

/// Records a router-level shed: the request was offered to the system
/// (counted against `serve.offered`, `req.enqueue` stamped) but the shard
/// router refused to place it on a hot shard, so no shard's ingress ever
/// saw it. Keeps the global ledger exact from the router's side.
pub(crate) fn record_router_shed(outcomes: &mut [Option<RequestOutcome>], id: usize, len: usize, t: f64) {
    OFFERED.incr();
    bt_obs::trace_mark!(TraceId::from_request(id), names::REQ_ENQUEUE, vns(t));
    record_shed(outcomes, id, len, ShedReason::HotShard, 0.0, vns(t));
}

/// Splits a cut batch into execution rounds of at most `chunk_tokens`
/// valid tokens each, **shortest request first** (`0` keeps the whole
/// batch as a single round). Short requests therefore finish in early
/// rounds instead of waiting on the longest member of the cut — the
/// head-of-line-blocking fix the chunked pipeline exists for. A request
/// longer than `chunk_tokens` still runs, alone in its own round.
fn plan_rounds(mut batch: Vec<Pending>, chunk_tokens: usize) -> Vec<Vec<Pending>> {
    if chunk_tokens == 0 || batch.len() <= 1 {
        return vec![batch];
    }
    batch.sort_by(|a, b| a.len.cmp(&b.len).then(a.id.cmp(&b.id)));
    let mut rounds: Vec<Vec<Pending>> = Vec::new();
    let mut round: Vec<Pending> = Vec::new();
    let mut tokens = 0usize;
    for p in batch {
        let cost = p.len.max(1);
        if !round.is_empty() && tokens + cost > chunk_tokens {
            rounds.push(std::mem::take(&mut round));
            tokens = 0;
        }
        tokens += cost;
        round.push(p);
    }
    rounds.push(round);
    rounds
}

/// The incremental per-shard open-loop engine: [`run_open_loop`]'s loop
/// body, factored out so the shard router ([`crate::shard`]) can interleave
/// N independent instances on one global virtual clock.
///
/// [`OpenLoopShard::offer`] appends a routed arrival to the shard's private
/// sub-trace; [`OpenLoopShard::advance`] runs the admit → sweep → cut →
/// execute loop, but only **acts** at instants strictly before `horizon`.
/// The router sets the horizon to the next *unrouted* global arrival time,
/// which guarantees every global arrival at or before a batch cut has been
/// routed (and offered to its shard) before that cut happens — so a single
/// shard driven to `horizon = ∞` replays the monolithic loop instruction
/// for instruction. That equivalence is what makes `--shards 1`
/// bit-identical to the unsharded server, and it is pinned by
/// `tests/shard_stress.rs`.
pub(crate) struct OpenLoopShard {
    config: ServeConfig,
    /// Routed arrivals not yet admitted, in global arrival order.
    pending: VecDeque<TimedRequest>,
    queue: VecDeque<Pending>,
    clock: f64,
    /// Executed rounds still in flight at a given instant: `(done, tokens)`
    /// entries, pruned by time in [`OpenLoopShard::outstanding_tokens`].
    inflight: VecDeque<(f64, usize)>,
    pub(crate) batches: usize,
    pub(crate) makespan: f64,
}

impl OpenLoopShard {
    pub(crate) fn new(config: ServeConfig) -> OpenLoopShard {
        config.validate();
        OpenLoopShard {
            config,
            pending: VecDeque::new(),
            queue: VecDeque::new(),
            clock: 0.0,
            inflight: VecDeque::new(),
            batches: 0,
            makespan: 0.0,
        }
    }

    /// Routes one arrival onto this shard. Arrivals must be offered in
    /// non-decreasing arrival order (the router processes the global trace
    /// sorted by arrival).
    pub(crate) fn offer(&mut self, r: TimedRequest) {
        self.pending.push_back(r);
    }

    /// Valid tokens this shard is responsible for at instant `now`: routed
    /// but unadmitted arrivals, queued requests, and executed rounds whose
    /// modeled completion lies after `now`. This is the load signal the
    /// join-shortest-queue and power-of-two-choices policies compare.
    pub(crate) fn outstanding_tokens(&mut self, now: f64) -> usize {
        while let Some(&(done, _)) = self.inflight.front() {
            if done <= now {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        let pending: usize = self
            .pending
            .iter()
            .map(|r| crate::admission::admission_weight(r.len))
            .sum();
        let queued: usize = self
            .queue
            .iter()
            .map(|p| crate::admission::admission_weight(p.len))
            .sum();
        let inflight: usize = self.inflight.iter().map(|&(_, t)| t).sum();
        pending + queued + inflight
    }

    /// True while the shard still has unadmitted or queued work.
    pub(crate) fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.queue.is_empty()
    }

    /// Runs the continuous-batching loop up to (but excluding) `horizon`:
    /// at each acting instant, admit every offered arrival up to the clock,
    /// sweep expired deadlines, cut one batch and execute its rounds. Only
    /// the *cut instant* is gated by the horizon — once a batch is cut its
    /// rounds run to completion even past the horizon, exactly as the
    /// monolithic loop never re-checks arrivals mid-batch.
    pub(crate) fn advance(
        &mut self,
        horizon: f64,
        outcomes: &mut [Option<RequestOutcome>],
        exec: &mut impl FnMut(&BatchMask) -> f64,
    ) {
        let config = self.config;
        loop {
            // The instant this shard would act: its own clock while work is
            // queued, else a jump to the next routed arrival.
            let act = if self.queue.is_empty() {
                match self.pending.front() {
                    None => return,
                    Some(r) => self.clock.max(r.arrival),
                }
            } else {
                self.clock
            };
            if act >= horizon {
                return;
            }
            self.clock = act;
            let clock = self.clock;
            while let Some(&r) = self.pending.front() {
                if r.arrival > clock {
                    break;
                }
                self.pending.pop_front();
                OFFERED.incr();
                let tid = TraceId::from_request(r.id);
                bt_obs::trace_mark!(tid, names::REQ_ENQUEUE, vns(r.arrival));
                if r.len > config.max_len {
                    record_shed(outcomes, r.id, r.len, ShedReason::TooLong, 0.0, vns(r.arrival));
                } else if self.queue.len() >= config.queue_capacity {
                    record_shed(outcomes, r.id, r.len, ShedReason::QueueFull, 0.0, vns(r.arrival));
                } else {
                    bt_obs::trace_mark!(tid, names::REQ_ADMIT, vns(r.arrival));
                    self.queue.push_back(Pending {
                        id: r.id,
                        len: r.len,
                        arrival: r.arrival,
                        deadline: r.arrival + config.deadline,
                    });
                }
                QUEUE_DEPTH.record(self.queue.len() as u64);
            }
            self.queue.retain(|p| {
                if p.deadline < clock {
                    record_shed(
                        outcomes,
                        p.id,
                        p.len,
                        ShedReason::DeadlineExpired,
                        clock - p.arrival,
                        vns(clock),
                    );
                    false
                } else {
                    true
                }
            });
            if self.queue.is_empty() {
                continue;
            }
            let _batch_span = bt_obs::span!("serve.batch");
            let cut = config.policy.cut_next_batch(&mut self.queue);
            let rounds = plan_rounds(cut, config.chunk_tokens);
            if config.chunk_tokens != 0 {
                CHUNK_ROUNDS.add(rounds.len() as u64);
            }
            for (round_no, round) in rounds.into_iter().enumerate() {
                // Per-chunk deadline check: a request scheduled into a later
                // round may have expired while the earlier rounds ran. Its
                // batch was cut but its own forward never started — cancel it
                // with the mid-request reason, distinct from queue expiry.
                // (Round 0 starts at the same clock the queue sweep used, so
                // it needs no re-check: with `chunk_tokens == 0` this loop is
                // exactly the single-round pre-chunking path.)
                let round: Vec<Pending> = if round_no == 0 {
                    round
                } else {
                    round
                        .into_iter()
                        .filter(|p| {
                            if p.deadline < self.clock {
                                CHUNK_CANCELLED.incr();
                                record_shed(
                                    outcomes,
                                    p.id,
                                    p.len,
                                    ShedReason::CancelledMidRequest,
                                    self.clock - p.arrival,
                                    vns(self.clock),
                                );
                                false
                            } else {
                                true
                            }
                        })
                        .collect()
                };
                if round.is_empty() {
                    continue;
                }
                let _chunk_span = bt_obs::span!("serve.chunk");
                let mask = batch_mask(&round).expect("per-batch mask invariants hold");
                BATCHES.incr();
                OCCUPANCY.record(round.len() as u64);
                BATCH_TOKENS.record(mask.valid_words() as u64);
                if config.chunk_tokens != 0 {
                    CHUNK_TOKENS.record(mask.valid_words() as u64);
                }
                let start = self.clock;
                for p in &round {
                    TIME_IN_QUEUE_US.record(((start - p.arrival) * 1e6) as u64);
                    bt_obs::trace_mark!(TraceId::from_request(p.id), names::REQ_ROUND, vns(start));
                }
                let duration = {
                    let _span = bt_obs::span!("serve.batch.forward");
                    exec(&mask)
                };
                assert!(
                    duration.is_finite() && duration >= 0.0,
                    "executor must return a finite non-negative duration, got {duration}"
                );
                let done = start + duration;
                for p in &round {
                    SERVED.incr();
                    let tid = TraceId::from_request(p.id);
                    bt_obs::trace_mark!(tid, names::REQ_EXEC_DONE, vns(done));
                    bt_obs::trace_mark!(tid, names::REQ_DONE, vns(done));
                    let slot = outcomes
                        .get_mut(p.id)
                        .expect("request ids must be a permutation of 0..n");
                    assert!(slot.is_none(), "request id {} offered twice", p.id);
                    *slot = Some(RequestOutcome {
                        id: p.id,
                        len: p.len,
                        outcome: Outcome::Served {
                            queue_wait: start - p.arrival,
                            latency: done - p.arrival,
                        },
                    });
                }
                self.inflight.push_back((done, mask.valid_words()));
                self.batches += 1;
                self.clock = done;
                self.makespan = self.makespan.max(done);
            }
        }
    }
}

/// Runs the continuous-batching server over a pre-generated open-loop
/// arrival trace in **virtual time**: the clock advances by the executor's
/// returned batch duration (typically modeled device seconds), so the whole
/// run — batches formed, requests shed, every latency — is deterministic
/// for a fixed trace and executor. Implemented as a single
/// `OpenLoopShard` engine driven to an infinite horizon; the multi-shard
/// router ([`crate::shard::run_sharded_open_loop`]) drives N of them.
///
/// Loop semantics, identical to the threaded [`Server`]:
/// 1. admit every arrival up to the clock (gate-shedding
///    [`ShedReason::TooLong`] and, once the bounded queue is full,
///    [`ShedReason::QueueFull`]);
/// 2. cancel queued requests whose deadline passed (a request whose
///    deadline equals the batch start still runs);
/// 3. cut the next batch with the configured policy and execute it — as a
///    single forward, or as shortest-first chunk rounds when
///    [`ServeConfig::chunk_tokens`] is set, cancelling requests whose
///    deadline passes between rounds;
/// 4. advance the clock by each round's duration and repeat. An idle server
///    jumps straight to the next arrival.
///
/// # Panics
/// Panics if request ids are not a permutation of `0..requests.len()`, if
/// the executor returns a non-finite or negative duration, or on an invalid
/// [`ServeConfig`].
pub fn run_open_loop(
    requests: &[TimedRequest],
    config: &ServeConfig,
    mut exec: impl FnMut(&BatchMask) -> f64,
) -> ServeReport {
    let mut order: Vec<TimedRequest> = requests.to_vec();
    order.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).expect("finite arrivals"));
    let n = order.len();
    let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; n];
    let mut shard = OpenLoopShard::new(*config);
    for r in order {
        shard.offer(r);
    }
    shard.advance(f64::INFINITY, &mut outcomes, &mut exec);
    let outcomes: Vec<RequestOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every offered request has exactly one outcome"))
        .collect();
    ServeReport {
        outcomes,
        batches: shard.batches,
        makespan: shard.makespan,
    }
}

/// One event on a streaming request's bounded per-request output channel
/// (see [`IngressHandle::try_submit_stream`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// One valid token of the request completed, emitted token-at-a-time
    /// in order once the request's chunk round finishes.
    Token {
        /// Zero-based token index within the request.
        index: usize,
    },
    /// Terminal event: the request's final disposition. No further events
    /// follow; the channel hangs up after it.
    Done(Outcome),
}

/// A submission into the threaded server's bounded MPSC ingress.
#[derive(Debug)]
struct Submission {
    id: usize,
    len: usize,
    submitted: Instant,
    /// Bounded per-request output channel for streaming submissions.
    stream: Option<SyncSender<StreamEvent>>,
}

/// A cloneable producer handle onto the server's bounded ingress queue.
///
/// [`IngressHandle::try_submit`] applies backpressure: when the bounded
/// channel is full the submission is rejected immediately with
/// [`ShedReason::QueueFull`] — the caller owns that shed outcome (the
/// request never reached the server, so it appears in no [`ServeReport`]).
#[derive(Debug, Clone)]
pub struct IngressHandle {
    tx: SyncSender<Submission>,
}

impl IngressHandle {
    /// Offers a request; rejects with [`ShedReason::QueueFull`] when the
    /// bounded ingress is full, or with a disconnect error message if the
    /// server already shut down.
    ///
    /// # Errors
    /// `Err(Some(QueueFull))` on backpressure, `Err(None)` if the server is
    /// gone.
    pub fn try_submit(&self, id: usize, len: usize) -> Result<(), Option<ShedReason>> {
        let tid = TraceId::from_request(id);
        bt_obs::trace_mark!(tid, names::REQ_ENQUEUE);
        match self.tx.try_send(Submission {
            id,
            len,
            submitted: Instant::now(),
            stream: None,
        }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                bt_obs::trace_mark(tid, ShedReason::QueueFull.trace_label());
                Err(Some(ShedReason::QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => Err(None),
        }
    }

    /// Like [`IngressHandle::try_submit`], but returns a **bounded
    /// per-request output channel** the server streams the request's
    /// progress into: one [`StreamEvent::Token`] per valid token (in
    /// order, token-at-a-time, emitted as the request's chunk round
    /// completes) followed by a terminal [`StreamEvent::Done`], after
    /// which the channel hangs up.
    ///
    /// Delivery is best-effort so a stalled consumer can never block the
    /// server thread: events past the channel's `capacity` that the
    /// consumer has not drained are dropped. The authoritative outcome is
    /// always available from [`Server::finish`] regardless.
    ///
    /// # Errors
    /// `Err(Some(QueueFull))` on backpressure, `Err(None)` if the server
    /// is gone.
    pub fn try_submit_stream(
        &self,
        id: usize,
        len: usize,
        capacity: usize,
    ) -> Result<Receiver<StreamEvent>, Option<ShedReason>> {
        let (stream_tx, stream_rx) = std::sync::mpsc::sync_channel(capacity.max(1));
        let tid = TraceId::from_request(id);
        bt_obs::trace_mark!(tid, names::REQ_ENQUEUE);
        match self.tx.try_send(Submission {
            id,
            len,
            submitted: Instant::now(),
            stream: Some(stream_tx),
        }) {
            Ok(()) => Ok(stream_rx),
            Err(TrySendError::Full(_)) => {
                bt_obs::trace_mark(tid, ShedReason::QueueFull.trace_label());
                Err(Some(ShedReason::QueueFull))
            }
            Err(TrySendError::Disconnected(_)) => Err(None),
        }
    }
}

/// The multi-threaded continuous-batching server: a bounded MPSC ingress
/// feeding one server thread that runs the same admission/cut/shed loop as
/// [`run_open_loop`], in wall-clock time, executing batches on the
/// persistent pool.
///
/// Lifecycle: [`Server::spawn`] → clone [`Server::handle`] into producer
/// threads → drop all handles → [`Server::finish`] to join and collect
/// outcomes. Outcomes for requests the handles rejected (`QueueFull`
/// backpressure) are owned by the producers; `finish` returns outcomes for
/// every request that entered the channel — the two partitions together
/// account for every offered request exactly once.
#[derive(Debug)]
pub struct Server {
    handle: IngressHandle,
    results: Receiver<RequestOutcome>,
    worker: std::thread::JoinHandle<usize>,
}

impl Server {
    /// Starts the server thread with the given configuration and batch
    /// executor (wall time; the executor's internal parallelism runs on the
    /// persistent pool).
    pub fn spawn(config: ServeConfig, mut exec: impl FnMut(&BatchMask) + Send + 'static) -> Server {
        config.validate();
        let (tx, rx) = std::sync::mpsc::sync_channel::<Submission>(config.queue_capacity);
        let (result_tx, results) = std::sync::mpsc::channel::<RequestOutcome>();
        let worker = std::thread::spawn(move || {
            let epoch = Instant::now();
            let mut queue: VecDeque<Pending> = VecDeque::new();
            // Bounded per-request output channels, keyed by request id.
            // Removed (hanging up the channel) when the outcome is final.
            let mut streams: std::collections::HashMap<usize, SyncSender<StreamEvent>> =
                std::collections::HashMap::new();
            let mut batches = 0usize;
            let shed = |result_tx: &std::sync::mpsc::Sender<RequestOutcome>,
                        streams: &mut std::collections::HashMap<usize, SyncSender<StreamEvent>>,
                        p: &Pending,
                        reason,
                        wait| {
                match reason {
                    ShedReason::QueueFull => SHED_QUEUE_FULL.incr(),
                    ShedReason::DeadlineExpired => SHED_DEADLINE.incr(),
                    ShedReason::TooLong => SHED_TOO_LONG.incr(),
                    ShedReason::CacheOom => SHED_CACHE_OOM.incr(),
                    ShedReason::CancelledMidRequest => SHED_CANCELLED.incr(),
                    ShedReason::HotShard => SHED_HOT_SHARD.incr(),
                }
                bt_obs::trace_mark(TraceId::from_request(p.id), reason.trace_label());
                let outcome = Outcome::Shed { reason, wait };
                if let Some(s) = streams.remove(&p.id) {
                    let _ = s.try_send(StreamEvent::Done(outcome));
                }
                let _ = result_tx.send(RequestOutcome {
                    id: p.id,
                    len: p.len,
                    outcome,
                });
            };
            let admit = |queue: &mut VecDeque<Pending>,
                         streams: &mut std::collections::HashMap<usize, SyncSender<StreamEvent>>,
                         result_tx: &std::sync::mpsc::Sender<RequestOutcome>,
                         s: Submission| {
                OFFERED.incr();
                let arrival = s.submitted.saturating_duration_since(epoch).as_secs_f64();
                let p = Pending {
                    id: s.id,
                    len: s.len,
                    arrival,
                    deadline: arrival + config.deadline,
                };
                if let Some(stream) = s.stream {
                    streams.insert(s.id, stream);
                }
                if p.len > config.max_len {
                    shed(result_tx, streams, &p, ShedReason::TooLong, 0.0);
                } else if queue.len() >= config.queue_capacity {
                    // The channel bound already pushed back on producers;
                    // this second gate keeps the *internal* queue within the
                    // configured bound even after a drain.
                    shed(result_tx, streams, &p, ShedReason::QueueFull, 0.0);
                } else {
                    bt_obs::trace_mark!(TraceId::from_request(p.id), names::REQ_ADMIT);
                    queue.push_back(p);
                }
                QUEUE_DEPTH.record(queue.len() as u64);
            };
            loop {
                if queue.is_empty() {
                    // Idle: block until work arrives or every producer hung up.
                    match rx.recv() {
                        Ok(s) => admit(&mut queue, &mut streams, &result_tx, s),
                        Err(_) => break,
                    }
                }
                while let Ok(s) = rx.try_recv() {
                    admit(&mut queue, &mut streams, &result_tx, s);
                }
                let now = epoch.elapsed().as_secs_f64();
                queue.retain(|p| {
                    if p.deadline < now {
                        shed(
                            &result_tx,
                            &mut streams,
                            p,
                            ShedReason::DeadlineExpired,
                            now - p.arrival,
                        );
                        false
                    } else {
                        true
                    }
                });
                if queue.is_empty() {
                    continue;
                }
                let _batch_span = bt_obs::span!("serve.batch");
                let cut = config.policy.cut_next_batch(&mut queue);
                let rounds = plan_rounds(cut, config.chunk_tokens);
                if config.chunk_tokens != 0 {
                    CHUNK_ROUNDS.add(rounds.len() as u64);
                }
                for (round_no, round) in rounds.into_iter().enumerate() {
                    // Per-chunk deadline check (same semantics as
                    // `run_open_loop`): later rounds re-check expiry so a
                    // request overtaken by earlier rounds is cancelled
                    // mid-request rather than served uselessly late.
                    let now = epoch.elapsed().as_secs_f64();
                    let round: Vec<Pending> = if round_no == 0 {
                        round
                    } else {
                        round
                            .into_iter()
                            .filter(|p| {
                                if p.deadline < now {
                                    CHUNK_CANCELLED.incr();
                                    shed(
                                        &result_tx,
                                        &mut streams,
                                        p,
                                        ShedReason::CancelledMidRequest,
                                        now - p.arrival,
                                    );
                                    false
                                } else {
                                    true
                                }
                            })
                            .collect()
                    };
                    if round.is_empty() {
                        continue;
                    }
                    let _chunk_span = bt_obs::span!("serve.chunk");
                    let mask = batch_mask(&round).expect("per-batch mask invariants hold");
                    BATCHES.incr();
                    OCCUPANCY.record(round.len() as u64);
                    BATCH_TOKENS.record(mask.valid_words() as u64);
                    if config.chunk_tokens != 0 {
                        CHUNK_TOKENS.record(mask.valid_words() as u64);
                    }
                    let start = epoch.elapsed().as_secs_f64();
                    for p in &round {
                        TIME_IN_QUEUE_US.record(((start - p.arrival) * 1e6) as u64);
                        bt_obs::trace_mark!(TraceId::from_request(p.id), names::REQ_ROUND);
                    }
                    {
                        let _span = bt_obs::span!("serve.batch.forward");
                        exec(&mask);
                    }
                    let done = epoch.elapsed().as_secs_f64();
                    for p in &round {
                        SERVED.incr();
                        let tid = TraceId::from_request(p.id);
                        bt_obs::trace_mark!(tid, names::REQ_EXEC_DONE);
                        let outcome = Outcome::Served {
                            queue_wait: start - p.arrival,
                            latency: done - p.arrival,
                        };
                        if let Some(s) = streams.remove(&p.id) {
                            // Token-at-a-time, best-effort: a full bounded
                            // channel drops events rather than blocking the
                            // server thread on a stalled consumer.
                            for index in 0..p.len {
                                if s.try_send(StreamEvent::Token { index }).is_err() {
                                    break;
                                }
                                bt_obs::trace_mark!(tid, names::REQ_STREAM_TOKEN);
                            }
                            let _ = s.try_send(StreamEvent::Done(outcome));
                        }
                        bt_obs::trace_mark!(tid, names::REQ_DONE);
                        let _ = result_tx.send(RequestOutcome {
                            id: p.id,
                            len: p.len,
                            outcome,
                        });
                    }
                    batches += 1;
                }
            }
            batches
        });
        Server {
            handle: IngressHandle { tx },
            results,
            worker,
        }
    }

    /// A cloneable producer handle. Drop every clone (and stop using the
    /// server's own) before [`Server::finish`], or the server thread will
    /// keep waiting for more work.
    pub fn handle(&self) -> IngressHandle {
        self.handle.clone()
    }

    /// Shuts down: closes the server's own ingress reference, waits for the
    /// server thread to drain and exit, and returns every outcome it
    /// produced plus the number of batches executed.
    ///
    /// # Panics
    /// Panics if the server thread panicked.
    pub fn finish(self) -> (Vec<RequestOutcome>, usize) {
        let Server {
            handle,
            results,
            worker,
        } = self;
        drop(handle);
        let mut outcomes = Vec::new();
        // recv drains until the worker drops its result sender (exit).
        while let Ok(r) = results.recv() {
            outcomes.push(r);
        }
        let batches = worker.join().expect("server thread must not panic");
        (outcomes, batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::poisson_arrivals;
    use bt_varlen::workload::LengthDistribution;

    fn arrivals(lens_and_times: &[(usize, f64)]) -> Vec<TimedRequest> {
        lens_and_times
            .iter()
            .enumerate()
            .map(|(id, &(len, arrival))| TimedRequest { id, len, arrival })
            .collect()
    }

    fn ample() -> ServeConfig {
        ServeConfig {
            policy: CutPolicy::Fifo { max_batch: 4 },
            queue_capacity: 64,
            deadline: f64::INFINITY,
            max_len: 1024,
            chunk_tokens: 0,
        }
    }

    #[test]
    fn everything_served_under_light_load() {
        let reqs = arrivals(&[(8, 0.0), (16, 0.0), (4, 5.0), (2, 5.0)]);
        let report = run_open_loop(&reqs, &ample(), |_| 1.0);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 4);
        assert_eq!(s.shed(), 0);
        assert_eq!(report.batches, 2, "two arrival clusters, two batches");
        // The idle server jumps to the second cluster rather than waiting.
        assert!(matches!(report.outcomes[2].outcome, Outcome::Served { latency, .. } if (latency - 1.0).abs() < 1e-12));
    }

    #[test]
    fn bounded_queue_sheds_overflow_at_the_gate() {
        // 8 simultaneous arrivals into a 2-slot queue: 2 queued, 6 shed.
        let reqs = arrivals(&[(4, 0.0); 8]);
        let mut config = ample();
        config.queue_capacity = 2;
        config.policy = CutPolicy::Fifo { max_batch: 2 };
        let report = run_open_loop(&reqs, &config, |_| 1.0);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 2);
        assert_eq!(s.shed_queue_full, 6);
    }

    #[test]
    fn deadlines_cancel_queued_requests() {
        // One long batch occupies the server; the straggler behind it
        // expires before the server frees up.
        let reqs = arrivals(&[(8, 0.0), (8, 0.1)]);
        let mut config = ample();
        config.policy = CutPolicy::Fifo { max_batch: 1 };
        config.deadline = 0.5;
        let report = run_open_loop(&reqs, &config, |_| 2.0);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 1);
        assert_eq!(s.shed_deadline, 1);
        match report.outcomes[1].outcome {
            Outcome::Shed { reason, wait } => {
                assert_eq!(reason, ShedReason::DeadlineExpired);
                assert!((wait - 1.9).abs() < 1e-9, "cancelled when the server freed at t=2.0");
            }
            other => panic!("expected shed, got {other:?}"),
        }
    }

    #[test]
    fn too_long_requests_never_reach_the_queue() {
        let reqs = arrivals(&[(4096, 0.0), (8, 0.0)]);
        let mut config = ample();
        config.max_len = 512;
        let report = run_open_loop(&reqs, &config, |_| 0.1);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.shed_too_long, 1);
        assert_eq!(s.served, 1);
    }

    #[test]
    fn token_budget_bounds_batch_work() {
        let reqs = poisson_arrivals(64, 10_000.0, LengthDistribution::PaperUniform { alpha: 0.6 }, 64, 5);
        let budget = 128;
        let mut config = ample();
        config.policy = CutPolicy::TokenBudget { budget_tokens: budget };
        let report = run_open_loop(&reqs, &config, |mask| {
            assert!(
                mask.valid_words() <= budget || mask.batch() == 1,
                "batch of {} tokens exceeds budget {budget}",
                mask.valid_words()
            );
            mask.valid_words() as f64 * 1e-5
        });
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 64);
    }

    #[test]
    fn virtual_time_runs_are_deterministic() {
        let reqs = poisson_arrivals(256, 3_000.0, LengthDistribution::Zipf { exponent: 1.2 }, 128, 11);
        let config = ServeConfig {
            policy: CutPolicy::TokenBudget { budget_tokens: 256 },
            queue_capacity: 8,
            deadline: 0.02,
            max_len: 128,
            chunk_tokens: 0,
        };
        let exec = |mask: &BatchMask| mask.valid_words() as f64 * 2e-5 + 1e-5;
        let a = run_open_loop(&reqs, &config, exec);
        let b = run_open_loop(&reqs, &config, exec);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.batches, b.batches);
        assert!(a.summary().accounting_is_exact());
    }

    #[test]
    fn goodput_counts_only_served_tokens() {
        let reqs = arrivals(&[(10, 0.0), (10, 0.0)]);
        let mut config = ample();
        config.queue_capacity = 1;
        config.policy = CutPolicy::Fifo { max_batch: 1 };
        let report = run_open_loop(&reqs, &config, |_| 1.0);
        let s = report.summary();
        assert_eq!(s.served_tokens, 10);
        assert!((s.goodput_tokens_per_sec() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn threaded_server_accounts_for_every_submission() {
        let config = ServeConfig {
            policy: CutPolicy::TokenBudget { budget_tokens: 64 },
            queue_capacity: 4,
            deadline: 10.0,
            max_len: 256,
            chunk_tokens: 0,
        };
        let server = Server::spawn(config, |mask| {
            // A tiny busy-wait stands in for the forward; length-dependent
            // so batches take observably different times.
            std::hint::black_box(mask.valid_words());
        });
        let producers = 4;
        let per_producer = 64;
        let mut rejected = 0usize;
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for t in 0..producers {
                let handle = server.handle();
                joins.push(s.spawn(move || {
                    let mut rejected = 0usize;
                    for i in 0..per_producer {
                        let id = t * per_producer + i;
                        match handle.try_submit(id, 1 + (id % 32)) {
                            Ok(()) => {}
                            Err(Some(ShedReason::QueueFull)) => rejected += 1,
                            Err(other) => panic!("unexpected submit failure: {other:?}"),
                        }
                    }
                    rejected
                }));
            }
            for j in joins {
                rejected += j.join().expect("producer thread");
            }
        });
        let (outcomes, batches) = server.finish();
        let offered = producers * per_producer;
        assert_eq!(
            outcomes.len() + rejected,
            offered,
            "every submission is either a server outcome or a backpressure rejection"
        );
        let mut ids: Vec<usize> = outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), outcomes.len(), "no request reported twice");
        assert!(batches > 0 || outcomes.is_empty());
        for o in &outcomes {
            if let Outcome::Served { queue_wait, latency } = o.outcome {
                assert!(latency >= queue_wait && queue_wait >= 0.0);
            }
        }
    }

    #[test]
    fn chunked_rounds_bound_tokens_and_put_short_requests_first() {
        // One cut of four requests; chunk budget 8 forces rounds. Shortest
        // first: the len-2 and len-4 requests complete before the len-16.
        let reqs = arrivals(&[(16, 0.0), (2, 0.0), (4, 0.0), (8, 0.0)]);
        let mut config = ample();
        config.chunk_tokens = 8;
        let report = run_open_loop(&reqs, &config, |mask| {
            assert!(
                mask.valid_words() <= 8 || mask.batch() == 1,
                "round of {} tokens exceeds the chunk budget",
                mask.valid_words()
            );
            mask.valid_words() as f64 * 0.1
        });
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 4);
        // Rounds: [2,4] then [8] then [16] — three forwards for one cut.
        assert_eq!(report.batches, 3);
        let latency = |id: usize| match report.outcomes[id].outcome {
            Outcome::Served { latency, .. } => latency,
            other => panic!("expected served, got {other:?}"),
        };
        assert!(
            latency(1) < latency(3) && latency(3) < latency(0),
            "shortest-first ordering"
        );
    }

    #[test]
    fn chunking_preserves_outcomes_without_deadline_pressure() {
        let reqs = poisson_arrivals(128, 3_000.0, LengthDistribution::PaperUniform { alpha: 0.6 }, 64, 17);
        let run = |chunk| {
            let config = ServeConfig {
                policy: CutPolicy::TokenBudget { budget_tokens: 256 },
                queue_capacity: 32,
                deadline: f64::INFINITY,
                max_len: 64,
                chunk_tokens: chunk,
            };
            run_open_loop(&reqs, &config, |mask| mask.valid_words() as f64 * 1e-5)
        };
        let whole = run(0).summary();
        let chunked = run(16).summary();
        // With no deadline nothing can be cancelled: both modes serve
        // every admitted request; only latency shape differs.
        assert_eq!(whole.served, chunked.served);
        assert_eq!(whole.shed(), chunked.shed());
        assert_eq!(chunked.shed_cancelled, 0);
    }

    #[test]
    fn per_chunk_deadline_cancels_mid_request_with_distinct_reason() {
        // Two requests cut into one batch. The long one lands in round 2;
        // round 1 takes long enough that its deadline expires mid-request.
        let reqs = arrivals(&[(4, 0.0), (12, 0.0)]);
        let mut config = ample();
        config.policy = CutPolicy::Fifo { max_batch: 4 };
        config.chunk_tokens = 4;
        config.deadline = 1.0;
        let report = run_open_loop(&reqs, &config, |_| 2.0);
        let s = report.summary();
        assert!(s.accounting_is_exact());
        assert_eq!(s.served, 1);
        assert_eq!(s.shed_cancelled, 1, "mid-request cancellation is its own ledger row");
        assert_eq!(s.shed_deadline, 0, "this is NOT queue expiry");
        match report.outcomes[1].outcome {
            Outcome::Shed { reason, wait } => {
                assert_eq!(reason, ShedReason::CancelledMidRequest);
                assert!((wait - 2.0).abs() < 1e-9, "cancelled when round 1 finished at t=2.0");
            }
            other => panic!("expected mid-request cancellation, got {other:?}"),
        }
    }

    #[test]
    fn streaming_submission_receives_tokens_then_done() {
        let config = ServeConfig {
            policy: CutPolicy::Fifo { max_batch: 4 },
            queue_capacity: 8,
            deadline: 10.0,
            max_len: 64,
            chunk_tokens: 4,
        };
        let server = Server::spawn(config, |_| {});
        let handle = server.handle();
        let stream = handle.try_submit_stream(0, 5, 16).expect("channel has room");
        drop(handle);
        let events: Vec<StreamEvent> = stream.iter().collect();
        let (outcomes, _) = server.finish();
        assert_eq!(
            events,
            vec![
                StreamEvent::Token { index: 0 },
                StreamEvent::Token { index: 1 },
                StreamEvent::Token { index: 2 },
                StreamEvent::Token { index: 3 },
                StreamEvent::Token { index: 4 },
                StreamEvent::Done(outcomes[0].outcome),
            ],
            "token-at-a-time in order, then the terminal outcome"
        );
        assert!(outcomes[0].served());
    }

    #[test]
    fn streaming_shed_request_gets_a_terminal_event() {
        let config = ServeConfig {
            policy: CutPolicy::Fifo { max_batch: 4 },
            queue_capacity: 8,
            deadline: 10.0,
            max_len: 16,
            chunk_tokens: 0,
        };
        let server = Server::spawn(config, |_| {});
        let handle = server.handle();
        let stream = handle.try_submit_stream(0, 1000, 4).expect("channel has room");
        drop(handle);
        let events: Vec<StreamEvent> = stream.iter().collect();
        let (outcomes, _) = server.finish();
        assert_eq!(
            events,
            vec![StreamEvent::Done(Outcome::Shed {
                reason: ShedReason::TooLong,
                wait: 0.0
            })],
            "no tokens, just the terminal shed"
        );
        assert_eq!(outcomes.len(), 1);
    }

    #[test]
    fn threaded_server_sheds_too_long_requests() {
        let config = ServeConfig {
            policy: CutPolicy::Fifo { max_batch: 4 },
            queue_capacity: 8,
            deadline: 10.0,
            max_len: 16,
            chunk_tokens: 0,
        };
        let server = Server::spawn(config, |_| {});
        let handle = server.handle();
        handle.try_submit(0, 1000).expect("channel has room");
        handle.try_submit(1, 8).expect("channel has room");
        drop(handle);
        let (outcomes, _) = server.finish();
        assert_eq!(outcomes.len(), 2);
        let by_id = |id: usize| outcomes.iter().find(|o| o.id == id).expect("reported");
        assert!(matches!(
            by_id(0).outcome,
            Outcome::Shed {
                reason: ShedReason::TooLong,
                ..
            }
        ));
        assert!(by_id(1).served());
    }
}
