//! TurboTransformer's sort-and-group batch scheduler.
//!
//! TurboTransformer handles variable-length inputs by "grouping sequences
//! with similar lengths before launching batched kernels to minimize the
//! padding overhead" (§I) — a run-time scheduler that sorts the batch and
//! splits it into sub-batches whose internal padding waste is bounded.
//! The paper's criticism, which the simulation reproduces: "this proactive
//! grouping approach still introduces irremovable padding overhead", and
//! per-group execution "launches excessive kernels at the run-time".

/// One sub-batch: original batch indices plus the padded length the group
/// runs at (the group's maximum sequence length).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Indices into the original batch, longest first.
    pub members: Vec<usize>,
    /// The group's padded length.
    pub padded_len: usize,
}

/// Indices of `seq_lens` sorted by descending length (ties keep their
/// original relative order). This is the shared first step of every
/// length-aware policy in the workspace: TurboTransformer's greedy and DP
/// groupers below, and the `SortedGroups` batch cutter in
/// [`crate::admission`].
pub fn descending_order(seq_lens: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..seq_lens.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(seq_lens[i]));
    order
}

/// Splits a batch into groups of similar lengths: sort descending, then
/// greedily extend the current group while `len ≥ ratio × group_max`.
/// Zero-length sequences are grouped together at padded length 1 (they
/// produce no valid tokens either way).
pub fn group_by_length(seq_lens: &[usize], ratio: f64) -> Vec<Group> {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let order = descending_order(seq_lens);
    let mut groups: Vec<Group> = Vec::new();
    for i in order {
        let len = seq_lens[i];
        match groups.last_mut() {
            Some(g) if len as f64 >= ratio * g.padded_len as f64 => g.members.push(i),
            _ => groups.push(Group {
                members: vec![i],
                padded_len: len.max(1),
            }),
        }
    }
    groups
}

/// Dynamic-programming optimal grouping: splits the *sorted* batch into
/// contiguous groups minimizing total padded slots (TurboTransformer's
/// run-time batch scheduler is DP-based; the greedy [`group_by_length`] is
/// its cheap approximation). `max_group` bounds group size (batched-GEMM
/// limits); the returned groups cover every sequence exactly once.
///
/// Complexity `O(n · max_group)` — n is a batch size, so this is trivial.
pub fn group_optimal(seq_lens: &[usize], max_group: usize) -> Vec<Group> {
    assert!(max_group > 0, "max_group must be positive");
    let n = seq_lens.len();
    if n == 0 {
        return Vec::new();
    }
    let order = descending_order(seq_lens);
    // In descending order, a group's padded length is its first member's.
    // cost[i] = minimal padded slots to cover order[i..].
    let mut cost = vec![u64::MAX; n + 1];
    let mut cut = vec![0usize; n]; // group size chosen at i
    cost[n] = 0;
    for i in (0..n).rev() {
        let lead = seq_lens[order[i]].max(1) as u64;
        for g in 1..=max_group.min(n - i) {
            let c = cost[i + g].saturating_add(lead * g as u64);
            if c < cost[i] {
                cost[i] = c;
                cut[i] = g;
            }
        }
    }
    let mut groups = Vec::new();
    let mut i = 0;
    while i < n {
        let g = cut[i];
        groups.push(Group {
            members: order[i..i + g].to_vec(),
            padded_len: seq_lens[order[i]].max(1),
        });
        i += g;
    }
    groups
}

/// Padding waste of a grouping: padded slots divided by valid tokens
/// (1.0 = no waste). Returns 1.0 for an empty batch.
pub fn padding_factor(seq_lens: &[usize], groups: &[Group]) -> f64 {
    let valid: usize = seq_lens.iter().sum();
    if valid == 0 {
        return 1.0;
    }
    let padded: usize = groups.iter().map(|g| g.members.len() * g.padded_len).sum();
    padded as f64 / valid as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_lengths_one_group() {
        let groups = group_by_length(&[128; 8], 0.7);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].padded_len, 128);
        assert_eq!(groups[0].members.len(), 8);
    }

    #[test]
    fn disparate_lengths_split() {
        // 100 and 30: 30 < 0.7*100, separate groups.
        let groups = group_by_length(&[100, 30], 0.7);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].padded_len, 100);
        assert_eq!(groups[1].padded_len, 30);
    }

    #[test]
    fn groups_cover_every_sequence_once() {
        let lens = [512, 300, 290, 210, 100, 95, 5, 512];
        let groups = group_by_length(&lens, 0.7);
        let mut seen: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
        // Every member fits its group's padded length.
        for g in &groups {
            for &i in &g.members {
                assert!(lens[i] <= g.padded_len);
            }
        }
    }

    #[test]
    fn grouping_reduces_padding_vs_single_batch() {
        let lens = [512, 500, 120, 110, 100, 90];
        let groups = group_by_length(&lens, 0.7);
        let grouped = padding_factor(&lens, &groups);
        let single = (lens.len() * 512) as f64 / lens.iter().sum::<usize>() as f64;
        assert!(grouped < single);
        // But it cannot reach 1.0 (the "irremovable" overhead).
        assert!(grouped > 1.0);
    }

    #[test]
    fn optimal_never_wastes_more_than_greedy() {
        use bt_tensor::rng::Xoshiro256StarStar;
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for trial in 0..50 {
            let n = 1 + (trial % 16);
            let lens: Vec<usize> = (0..n).map(|_| 1 + rng.below(512) as usize).collect();
            let greedy = group_by_length(&lens, 0.7);
            let optimal = group_optimal(&lens, lens.len());
            let wg = padding_factor(&lens, &greedy);
            let wo = padding_factor(&lens, &optimal);
            assert!(wo <= wg + 1e-12, "trial {trial}: optimal {wo} > greedy {wg}");
            // Coverage check.
            let mut seen: Vec<usize> = optimal.iter().flat_map(|g| g.members.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn optimal_respects_max_group() {
        let lens = [100usize; 10];
        let groups = group_optimal(&lens, 3);
        assert!(groups.iter().all(|g| g.members.len() <= 3));
        let total: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn optimal_splits_disparate_lengths() {
        // One long + many short: DP isolates the long one.
        let lens = [1000, 10, 10, 10, 10];
        let groups = group_optimal(&lens, 5);
        assert_eq!(groups[0].members.len(), 1);
        assert_eq!(groups[0].padded_len, 1000);
        assert!(padding_factor(&lens, &groups) < 1.01);
    }

    #[test]
    fn zero_lengths_do_not_panic() {
        let groups = group_by_length(&[0, 0, 4], 0.7);
        assert!(groups.iter().all(|g| g.padded_len >= 1));
        let total: usize = groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_batch() {
        assert!(group_by_length(&[], 0.7).is_empty());
        assert_eq!(padding_factor(&[], &[]), 1.0);
    }
}
