//! The five simulated frameworks behind one interface.

use crate::calibration::{self, TURBO_GROUP_RATIO, TURBO_MAX_SEQ};
use crate::grouping::group_by_length;
use crate::pipeline::{packed_layer_ft, padded_layer, GeluStyle, LayerStrategy, MhaStyle};
use bt_core::encoder::{BertModel, OptLevel};
use bt_device::{CostModel, Device, KernelSpec, LaunchTax};
use bt_tensor::Tensor;
use bt_varlen::{BatchMask, PackingIndex, VarlenError};

/// The frameworks of the paper's Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameworkKind {
    /// PyTorch with TorchScript JIT: padded, unfused MHA, eager-ish dispatch.
    PyTorchJit,
    /// TensorFlow with XLA: padded, unfused MHA, compiled dispatch but
    /// less-tuned codegen kernels.
    TensorFlowXla,
    /// Tencent TurboTransformer: sort-and-group re-batching, partial fusion,
    /// sequences ≤ 512 only.
    TurboTransformer,
    /// NVIDIA FasterTransformer: packed non-MHA path, TRT-style fused MHA
    /// ≤ 512, unfused fallback above.
    FasterTransformer,
    /// This repository's full pipeline (zero padding + fused MHA).
    ByteTransformer,
}

impl FrameworkKind {
    /// All frameworks, in the paper's plotting order.
    pub fn all() -> [FrameworkKind; 5] {
        [
            FrameworkKind::PyTorchJit,
            FrameworkKind::TensorFlowXla,
            FrameworkKind::TurboTransformer,
            FrameworkKind::FasterTransformer,
            FrameworkKind::ByteTransformer,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FrameworkKind::PyTorchJit => "PyTorch JIT",
            FrameworkKind::TensorFlowXla => "TensorFlow XLA",
            FrameworkKind::TurboTransformer => "TurboTransformer",
            FrameworkKind::FasterTransformer => "FasterTransformer",
            FrameworkKind::ByteTransformer => "ByteTransformer",
        }
    }

    /// Per-launch tax (calibration constants, DESIGN.md §6).
    pub fn tax(&self) -> LaunchTax {
        match self {
            FrameworkKind::PyTorchJit => calibration::PYTORCH_TAX,
            FrameworkKind::TensorFlowXla => calibration::TENSORFLOW_TAX,
            FrameworkKind::TurboTransformer => calibration::TURBO_TAX,
            FrameworkKind::FasterTransformer => calibration::FASTER_TRANSFORMER_TAX,
            FrameworkKind::ByteTransformer => calibration::BYTETRANSFORMER_TAX,
        }
    }

    /// Whether the framework supports the given maximum sequence length
    /// (the paper stops benchmarking TurboTransformer past 512).
    pub fn supports(&self, max_seq_len: usize) -> bool {
        match self {
            FrameworkKind::TurboTransformer => max_seq_len <= TURBO_MAX_SEQ,
            _ => true,
        }
    }
}

/// A framework simulation bound to a model.
#[derive(Debug, Clone)]
pub struct SimFramework {
    /// Which strategy this instance runs.
    pub kind: FrameworkKind,
    /// The (shared) model weights and configuration.
    pub model: BertModel,
}

impl SimFramework {
    /// Binds a framework strategy to a model.
    pub fn new(kind: FrameworkKind, model: BertModel) -> Self {
        Self { kind, model }
    }

    /// A fresh device carrying this framework's launch tax over the given
    /// cost model.
    pub fn device(&self, model: CostModel) -> Device {
        Device::with_tax(model, self.kind.tax())
    }

    /// Full forward pass under this framework's strategy. Input and output
    /// are padded `[batch, seq, hidden]`; all frameworks produce identical
    /// values on valid tokens.
    ///
    /// # Errors
    /// Returns [`VarlenError::ShapeMismatch`] on input/mask disagreement and
    /// [`VarlenError::LengthExceedsMax`] if the framework does not support
    /// the sequence length (TurboTransformer past 512).
    pub fn forward(&self, device: &Device, input: &Tensor, mask: &BatchMask) -> Result<Tensor, VarlenError> {
        if !self.kind.supports(mask.max_seq_len()) {
            return Err(VarlenError::LengthExceedsMax {
                batch: 0,
                len: mask.max_seq_len(),
                max_seq_len: TURBO_MAX_SEQ,
            });
        }
        let hidden = self.model.config.hidden();
        let dims = input.dims();
        if dims.len() != 3 || dims[0] != mask.batch() || dims[1] != mask.max_seq_len() || dims[2] != hidden {
            return Err(VarlenError::ShapeMismatch {
                expected: format!("[{}, {}, {hidden}]", mask.batch(), mask.max_seq_len()),
                got: format!("{dims:?}"),
            });
        }
        match self.kind {
            FrameworkKind::PyTorchJit => Ok(self.padded_forward(
                device,
                input,
                mask,
                &LayerStrategy {
                    mha: MhaStyle::Naive,
                    layernorm_fused: false,
                    gelu: GeluStyle::Unfused,
                },
            )),
            FrameworkKind::TensorFlowXla => Ok(self.padded_forward(
                device,
                input,
                mask,
                &LayerStrategy {
                    mha: MhaStyle::Naive,
                    layernorm_fused: false,
                    gelu: GeluStyle::Unfused,
                },
            )),
            FrameworkKind::TurboTransformer => self.turbo_forward(device, input, mask),
            FrameworkKind::FasterTransformer => self.ft_forward(device, input, mask),
            FrameworkKind::ByteTransformer => self.model.forward(device, input, mask, OptLevel::FusedMha),
        }
    }

    fn padded_forward(&self, device: &Device, input: &Tensor, mask: &BatchMask, strat: &LayerStrategy) -> Tensor {
        let mut x = input.clone();
        for w in &self.model.weights.layers {
            x = padded_layer(device, &self.model.config, w, &x, mask, strat);
        }
        x
    }

    /// TurboTransformer: sort-and-group, run each group as its own padded
    /// sub-batch through all layers, scatter results back. Gather/scatter
    /// are explicit launched kernels — the re-batching overhead the paper
    /// calls out.
    fn turbo_forward(&self, device: &Device, input: &Tensor, mask: &BatchMask) -> Result<Tensor, VarlenError> {
        let hidden = self.model.config.hidden();
        let (batch, seq) = (mask.batch(), mask.max_seq_len());
        let groups = group_by_length(mask.seq_lens(), TURBO_GROUP_RATIO);
        let strat = LayerStrategy {
            mha: MhaStyle::BatchedPadded,
            layernorm_fused: true, // "partially" fused per Table I
            gelu: GeluStyle::Unfused,
        };
        let mut out = Tensor::zeros([batch, seq, hidden]);
        for group in &groups {
            let g = group.members.len();
            let gmax = group.padded_len;
            let group_lens: Vec<usize> = group.members.iter().map(|&i| mask.seq_lens()[i]).collect();
            let moved: u64 = (group_lens.iter().sum::<usize>() * hidden * 4) as u64;
            // Gather the group's sequences into a compact padded sub-batch.
            let mut gx = device.launch(
                KernelSpec::new("turbo.regroup")
                    .reads(moved)
                    .writes((g * gmax * hidden * 4) as u64),
                || {
                    let mut gx = Tensor::zeros([g, gmax, hidden]);
                    for (gi, &bi) in group.members.iter().enumerate() {
                        let len = mask.seq_lens()[bi];
                        let src = input.as_slice();
                        let dst = gx.as_mut_slice();
                        dst[(gi * gmax) * hidden..(gi * gmax + len) * hidden]
                            .copy_from_slice(&src[(bi * seq) * hidden..(bi * seq + len) * hidden]);
                    }
                    gx
                },
            );
            let gmask = BatchMask::from_lens(group_lens.clone(), gmax)?;
            for w in &self.model.weights.layers {
                gx = padded_layer(device, &self.model.config, w, &gx, &gmask, &strat);
            }
            // Scatter back into the caller's padded layout.
            device.launch(KernelSpec::new("turbo.scatter").reads(moved).writes(moved), || {
                let src = gx.as_slice();
                let dst = out.as_mut_slice();
                for (gi, &bi) in group.members.iter().enumerate() {
                    let len = mask.seq_lens()[bi];
                    dst[(bi * seq) * hidden..(bi * seq + len) * hidden]
                        .copy_from_slice(&src[(gi * gmax) * hidden..(gi * gmax + len) * hidden]);
                }
            });
        }
        Ok(out)
    }

    /// FasterTransformer: pack once, run packed layers (fixed-shape fused
    /// MHA inside), unpack once.
    fn ft_forward(&self, device: &Device, input: &Tensor, mask: &BatchMask) -> Result<Tensor, VarlenError> {
        let idx = PackingIndex::from_mask_on(device, mask);
        let mut x = idx.pack(device, input)?;
        for w in &self.model.weights.layers {
            x = packed_layer_ft(device, &self.model.config, w, &x, &idx);
        }
        idx.unpack(device, &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::config::BertConfig;
    use bt_tensor::compare::max_abs_diff;
    use bt_varlen::workload;

    fn setup(lens: &[usize], max_seq: usize, layers: usize) -> (BertModel, Tensor, BatchMask) {
        let config = BertConfig::tiny();
        let model = BertModel::new_random(config, layers, 42);
        let mask = BatchMask::from_lens(lens.to_vec(), max_seq).unwrap();
        let mut input = Tensor::randn([mask.batch(), max_seq, config.hidden()], 7);
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..max_seq {
                for h in 0..config.hidden() {
                    input.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        (model, input, mask)
    }

    fn valid_rows(t: &Tensor, mask: &BatchMask) -> Vec<f32> {
        let hidden = t.dims()[2];
        let mut out = Vec::new();
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in 0..len {
                for h in 0..hidden {
                    out.push(t.at(&[b, s, h]).unwrap());
                }
            }
        }
        out
    }

    #[test]
    fn all_frameworks_agree_on_valid_tokens() {
        let (model, input, mask) = setup(&[5, 9, 2, 7], 12, 2);
        let reference = {
            let dev = Device::with_model(CostModel::unit());
            let out = model.forward(&dev, &input, &mask, OptLevel::Baseline).unwrap();
            valid_rows(&out, &mask)
        };
        for kind in FrameworkKind::all() {
            let fw = SimFramework::new(kind, model.clone());
            let dev = fw.device(CostModel::unit());
            let out = fw.forward(&dev, &input, &mask).unwrap();
            let got = valid_rows(&out, &mask);
            let d = max_abs_diff(&got, &reference);
            assert!(d < 5e-3, "{} diverges: {d}", kind.name());
        }
    }

    #[test]
    fn turbo_rejects_long_sequences() {
        let (model, input, mask) = setup(&[300], 600, 1);
        let fw = SimFramework::new(FrameworkKind::TurboTransformer, model);
        let dev = fw.device(CostModel::unit());
        assert!(fw.forward(&dev, &input, &mask).is_err());
        assert!(!FrameworkKind::TurboTransformer.supports(600));
        assert!(FrameworkKind::FasterTransformer.supports(600));
    }

    #[test]
    fn turbo_launches_multiply_with_groups() {
        // Two widely separated length clusters -> 2 groups -> roughly twice
        // the per-layer launches of a single-group batch.
        let (model, input, mask) = setup(&[12, 12, 3, 3], 12, 1);
        let fw = SimFramework::new(FrameworkKind::TurboTransformer, model.clone());
        let dev = fw.device(CostModel::unit());
        fw.forward(&dev, &input, &mask).unwrap();
        let grouped_launches = dev.launches();

        let (model2, input2, mask2) = setup(&[12, 12, 12, 12], 12, 1);
        let fw2 = SimFramework::new(FrameworkKind::TurboTransformer, model2);
        let dev2 = fw2.device(CostModel::unit());
        fw2.forward(&dev2, &input2, &mask2).unwrap();
        let single_launches = dev2.launches();
        assert!(
            grouped_launches > single_launches + 10,
            "{grouped_launches} vs {single_launches}"
        );
        let _ = input2;
        let _ = input;
    }

    #[test]
    fn bytetransformer_is_fastest_on_the_paper_workload() {
        // α = 0.6, modest shape; modeled time ordering must put
        // ByteTransformer first and the padded eager frameworks last —
        // Fig. 14's headline shape.
        let config = BertConfig {
            heads: 4,
            head_size: 16,
            ffn_scale: 4,
            layers: 1,
            eps: 1e-6,
        };
        let model = BertModel::new_random(config, 2, 3);
        let mask = workload::paper_workload(8, 96, 5);
        let mut input = Tensor::randn([8, 96, config.hidden()], 11);
        for (b, &len) in mask.seq_lens().iter().enumerate() {
            for s in len..96 {
                for h in 0..config.hidden() {
                    input.set(&[b, s, h], 0.0).unwrap();
                }
            }
        }
        let mut times = std::collections::HashMap::new();
        for kind in FrameworkKind::all() {
            let fw = SimFramework::new(kind, model.clone());
            let dev = fw.device(CostModel::a100());
            fw.forward(&dev, &input, &mask).unwrap();
            times.insert(kind, dev.modeled_total());
        }
        let bt = times[&FrameworkKind::ByteTransformer];
        for kind in FrameworkKind::all() {
            if kind != FrameworkKind::ByteTransformer {
                assert!(bt < times[&kind], "{} beat ByteTransformer", kind.name());
            }
        }
        // And FasterTransformer (closest competitor in the paper) beats the
        // padded eager frameworks.
        assert!(times[&FrameworkKind::FasterTransformer] < times[&FrameworkKind::PyTorchJit]);
    }

    #[test]
    fn shape_validation() {
        let (model, _input, mask) = setup(&[4], 8, 1);
        let fw = SimFramework::new(FrameworkKind::PyTorchJit, model);
        let dev = fw.device(CostModel::unit());
        let bad = Tensor::zeros([2, 8, fw.model.config.hidden()]);
        assert!(fw.forward(&dev, &bad, &mask).is_err());
    }
}
