//! Lock-free stores to provably disjoint output regions.
//!
//! Grouped-GEMM tiles partition each output buffer: no two tiles ever write
//! the same element, so the per-problem mutexes of the seed implementation
//! (and the *global* lock on the packed activation in the strided path)
//! serialized writers for no reason. [`DisjointWriter`] erases the `&mut`
//! into a raw pointer so many CTAs can store concurrently; the disjointness
//! contract is enforced in debug builds by a per-element claim map that
//! panics on the first overlapping write.
//!
//! This is the only unsafe code in the crate, and it is confined to the
//! `copy_nonoverlapping` behind an always-on bounds assertion.

#![allow(unsafe_code)]

use std::marker::PhantomData;

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicBool, Ordering};

/// Shared-writer view of an output buffer whose writers promise element
/// disjointness.
///
/// Writes are raw `memcpy`s with release-mode bounds assertions; in debug
/// builds every element may be written **at most once** per writer lifetime
/// (the claim map catches tile-overlap bugs the type system cannot).
pub struct DisjointWriter<'a> {
    ptr: *mut f32,
    len: usize,
    #[cfg(debug_assertions)]
    claims: Vec<AtomicBool>,
    _marker: PhantomData<&'a mut [f32]>,
}

// SAFETY: the writer hands out no references; all access goes through
// `write`/`write_at`, which only touch in-bounds elements, and callers
// guarantee (debug-checked) that concurrent writes never alias an element.
unsafe impl Send for DisjointWriter<'_> {}
unsafe impl Sync for DisjointWriter<'_> {}

impl<'a> DisjointWriter<'a> {
    /// Wraps an exclusive buffer borrow for the duration of a launch.
    pub fn new(buf: &'a mut [f32]) -> Self {
        Self {
            ptr: buf.as_mut_ptr(),
            len: buf.len(),
            #[cfg(debug_assertions)]
            claims: (0..buf.len()).map(|_| AtomicBool::new(false)).collect(),
            _marker: PhantomData,
        }
    }

    /// Length of the wrapped buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[cfg(debug_assertions)]
    fn claim(&self, offset: usize, count: usize) {
        for idx in offset..offset + count {
            assert!(
                !self.claims[idx].swap(true, Ordering::Relaxed),
                "disjointness violated: element {idx} written twice"
            );
        }
    }

    /// Copies `src` to elements `offset .. offset + src.len()`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, or (debug builds) if any
    /// element was already written through this writer.
    pub fn write(&self, offset: usize, src: &[f32]) {
        assert!(
            offset + src.len() <= self.len,
            "write [{offset}, {}) out of bounds (len {})",
            offset + src.len(),
            self.len
        );
        #[cfg(debug_assertions)]
        self.claim(offset, src.len());
        // SAFETY: range is in bounds (asserted above); `src` borrows data
        // disjoint from the output (the output is exclusively borrowed by
        // this writer); concurrent element-disjointness is the caller
        // contract, claim-checked in debug builds.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }

    /// Writes a single element at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds, or (debug builds) if the element
    /// was already written through this writer.
    pub fn write_at(&self, idx: usize, value: f32) {
        assert!(idx < self.len, "write at {idx} out of bounds (len {})", self.len);
        #[cfg(debug_assertions)]
        self.claim(idx, 1);
        // SAFETY: `idx < len` asserted; disjointness is the caller contract.
        unsafe {
            *self.ptr.add(idx) = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_in_place() {
        let mut buf = vec![0.0f32; 10];
        {
            let w = DisjointWriter::new(&mut buf);
            w.write(2, &[1.0, 2.0, 3.0]);
            w.write_at(7, 9.0);
        }
        assert_eq!(buf, vec![0.0, 0.0, 1.0, 2.0, 3.0, 0.0, 0.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        let mut buf = vec![0.0f32; 4];
        let w = DisjointWriter::new(&mut buf);
        w.write(3, &[1.0, 2.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "disjointness violated")]
    fn overlapping_write_caught_in_debug() {
        let mut buf = vec![0.0f32; 4];
        let w = DisjointWriter::new(&mut buf);
        w.write(0, &[1.0, 2.0]);
        w.write(1, &[3.0]);
    }

    #[test]
    fn concurrent_disjoint_writers_race_free() {
        // Many threads write interleaved disjoint stripes through one
        // shared writer; every element must land exactly once.
        let n_threads = 8;
        let per = 1024;
        let mut buf = vec![-1.0f32; n_threads * per];
        let w = DisjointWriter::new(&mut buf);
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let w = &w;
                s.spawn(move || {
                    // Stripe: element i belongs to thread i % n_threads.
                    for i in 0..per {
                        w.write_at(i * n_threads + t, (i * n_threads + t) as f32);
                    }
                });
            }
        });
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, i as f32);
        }
    }
}
