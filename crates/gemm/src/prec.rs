//! Runtime precision dispatch — the second axis of the kernel family.
//!
//! [`crate::isa`] picks *how wide* the microkernel computes; this module
//! picks *how narrow* the packed panels are stored. It is the CPU analogue
//! of the paper's §III.C SIMD2 `half2` path: panels are written half-width
//! (or quarter-width) at pack time and expanded in-register inside the
//! microkernel, so the bytes crossing the cache hierarchy shrink while the
//! arithmetic stays (mostly) f32.
//!
//! | precision | packed elems        | accumulation                        |
//! |-----------|---------------------|-------------------------------------|
//! | `f32`     | f32 (4 B)           | f32 FMA (the [`crate::isa`] family) |
//! | `f16`     | IEEE binary16 (2 B) | `vfmadd231ph` or convert + f32 FMA  |
//! | `bf16`    | bfloat16 (2 B)      | widen (`<<16`) + f32 FMA            |
//! | `int8`    | symmetric i8 (1 B)  | i32 dot, dequantized per tile       |
//!
//! Selection mirrors the ISA axis exactly: lazy process-wide init from
//! `BYTE_GEMM_PREC` (`f32|f16|bf16|int8`, unknown values panic with the
//! accepted set), a strict programmatic setter for tests and benches, and
//! one read per GEMM launch so a launch is internally consistent. Every
//! precision has a scalar implementation, so unlike the ISA axis a
//! *precision* is never unavailable — only a particular precision × ISA
//! *implementation* can be missing, in which case kernel resolution in
//! [`crate::lowp`] degrades to a narrower ISA tier with a
//! [`bt_obs::warn_once`] diagnostic.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Storage precisions of the GEMM panel/kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// Full f32 panels — the original [`crate::isa`] microkernel family.
    F32,
    /// IEEE binary16 panels, round-to-nearest-even conversion at pack time.
    F16,
    /// bfloat16 panels, round-to-nearest-even truncation at pack time.
    Bf16,
    /// Symmetric per-row/per-column int8 quantization, exact i32 dots.
    Int8,
}

impl Precision {
    /// Every precision, widest storage first.
    pub const ALL: [Precision; 4] = [Precision::F32, Precision::F16, Precision::Bf16, Precision::Int8];

    /// Canonical lowercase name (the `BYTE_GEMM_PREC` spelling).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Bf16 => "bf16",
            Precision::Int8 => "int8",
        }
    }

    /// Bytes per packed panel element (the byte-traffic lever: 4/2/2/1).
    pub fn elem_bytes(self) -> usize {
        match self {
            Precision::F32 => 4,
            Precision::F16 | Precision::Bf16 => 2,
            Precision::Int8 => 1,
        }
    }

    fn index(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::F16 => 1,
            Precision::Bf16 => 2,
            Precision::Int8 => 3,
        }
    }

    fn from_index(idx: u8) -> Precision {
        Precision::ALL[idx as usize]
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses a `BYTE_GEMM_PREC` value (case-insensitive, surrounding
/// whitespace ignored).
///
/// # Errors
/// Returns a message naming the offending value and the accepted set —
/// this is what [`active_precision`] panics with on an unknown override.
pub fn parse_prec_request(s: &str) -> Result<Precision, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "f32" => Ok(Precision::F32),
        "f16" => Ok(Precision::F16),
        "bf16" => Ok(Precision::Bf16),
        "int8" => Ok(Precision::Int8),
        _ => Err(format!(
            "BYTE_GEMM_PREC: unknown value `{s}` (expected one of `f32`, `f16`, `bf16`, `int8`)"
        )),
    }
}

/// Active precision index, or `UNSET` before first use.
static ACTIVE: AtomicU8 = AtomicU8::new(UNSET);
static ENV_INIT: Once = Once::new();
const UNSET: u8 = u8::MAX;

fn init_from_env() {
    ENV_INIT.call_once(|| {
        let prec = match std::env::var("BYTE_GEMM_PREC") {
            Ok(s) => parse_prec_request(&s).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => Precision::F32,
        };
        // May race a concurrent `set_active_precision`; either value is a
        // valid selection and the `Once` keeps the env consulted only once.
        let _ = ACTIVE.compare_exchange(UNSET, prec.index(), Ordering::Release, Ordering::Relaxed);
    });
}

/// The process-wide active precision (initialized from `BYTE_GEMM_PREC` on
/// first use, default `f32`). Every GEMM launch reads this once at entry.
///
/// # Panics
/// Panics (once) if `BYTE_GEMM_PREC` is set to an unknown value.
pub fn active_precision() -> Precision {
    let mut idx = ACTIVE.load(Ordering::Acquire);
    if idx == UNSET {
        init_from_env();
        idx = ACTIVE.load(Ordering::Acquire);
    }
    Precision::from_index(idx)
}

/// Forces the active precision — the programmatic hook the differential
/// tests and benches use to pin each precision in turn. Always succeeds:
/// every precision has a scalar implementation, so there is no unavailable
/// precision (only per-ISA implementations can be missing, handled at
/// kernel resolution with a warning).
pub fn set_active_precision(prec: Precision) {
    // Mark env processing as done so a later `active_precision` cannot undo
    // an explicit selection (`Once` tolerates redundant calls).
    ENV_INIT.call_once(|| {});
    ACTIVE.store(prec.index(), Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_spellings() {
        for p in Precision::ALL {
            assert_eq!(parse_prec_request(p.name()), Ok(p));
            assert_eq!(parse_prec_request(&format!("  {}  ", p.name().to_uppercase())), Ok(p));
        }
    }

    #[test]
    fn parse_rejects_unknown_with_accepted_set() {
        let err = parse_prec_request("fp8").unwrap_err();
        assert!(err.contains("fp8"));
        for p in Precision::ALL {
            assert!(err.contains(p.name()), "error must list `{}`: {err}", p.name());
        }
    }

    #[test]
    fn elem_bytes_shrink_monotonically() {
        assert_eq!(
            Precision::ALL.map(Precision::elem_bytes),
            [4, 2, 2, 1],
            "precision axis exists to shrink panel bytes"
        );
    }
}
