//! Register-blocked microkernel — the shared innermost level of both the
//! blocked and grouped GEMM paths.
//!
//! This is the CPU analogue of the paper's register tile: an `MR×NR` block
//! of `C` lives entirely in locals while the full `K` extent streams through
//! it, so every loaded `A` element is reused `NR` times and every `B`
//! element `MR` times (the seed's axpy loops reused each `B` element once).
//! Operands are consumed from *packed micropanels* — k-major interleaved
//! buffers analogous to the staged shared-memory tiles of a GPU kernel —
//! which makes the inner loop two contiguous streams regardless of operand
//! transposes.
//!
//! Panel layout:
//!
//! * `A` micropanel: `kc × MR`, element `(p, i)` at `a[p*MR + i]` — one
//!   panel per `MR`-row strip, short strips zero-padded.
//! * `B` micropanel: `kc × NR`, element `(p, j)` at `b[p*NR + j]` — one
//!   panel per `NR`-column strip, short strips zero-padded.
//!
//! Zero padding keeps the microkernel branch-free at the edges: padded lanes
//! compute zeros that callers simply never store.

/// Rows of the register tile.
pub(crate) const MR: usize = 8;
/// Columns of the register tile.
pub(crate) const NR: usize = 8;

/// Fused multiply-add when the target has hardware FMA, plain mul+add
/// otherwise (`mul_add` without hardware support lowers to a libm call).
#[inline(always)]
fn fmadd(a: f32, b: f32, c: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// `acc[i*NR + j] += Σ_p a[p*MR + i] · b[p*NR + j]` over `kc` steps.
///
/// The accumulator block stays in locals for the whole `kc` loop — with
/// fixed `MR`/`NR` bounds the two inner loops fully unroll and vectorize.
#[inline]
pub(crate) fn microkernel(kc: usize, a: &[f32], b: &[f32], acc: &mut [f32; MR * NR]) {
    debug_assert!(a.len() >= kc * MR, "A micropanel too short");
    debug_assert!(b.len() >= kc * NR, "B micropanel too short");
    let mut c = *acc;
    for p in 0..kc {
        let ap: &[f32; MR] = a[p * MR..p * MR + MR].try_into().expect("MR slice");
        let bp: &[f32; NR] = b[p * NR..p * NR + NR].try_into().expect("NR slice");
        for i in 0..MR {
            let ai = ap[i];
            for j in 0..NR {
                c[i * NR + j] = fmadd(ai, bp[j], c[i * NR + j]);
            }
        }
    }
    *acc = c;
}

/// Packs one `A` micropanel: rows `row0 .. row0+r` (`r ≤ MR`), the full `k`
/// extent, from a row-major `m×k` matrix (or `k×m` when `trans`).
/// Rows `r..MR` are zero lanes.
pub(crate) fn pack_a_panel(dst: &mut [f32], src: &[f32], trans: bool, row0: usize, r: usize, m: usize, k: usize) {
    debug_assert!(dst.len() >= k * MR);
    debug_assert!(r <= MR);
    if trans {
        // src is k×m: A[row, p] = src[p*m + row]; each p step is contiguous
        // in the source.
        for p in 0..k {
            let s = &src[p * m + row0..p * m + row0 + r];
            let d = &mut dst[p * MR..p * MR + MR];
            d[..r].copy_from_slice(s);
            d[r..].fill(0.0);
        }
    } else {
        for i in 0..r {
            let s = &src[(row0 + i) * k..(row0 + i) * k + k];
            for (p, &v) in s.iter().enumerate() {
                dst[p * MR + i] = v;
            }
        }
        for i in r..MR {
            for p in 0..k {
                dst[p * MR + i] = 0.0;
            }
        }
    }
}

/// Packs one `B` micropanel: columns `col0 .. col0+c` (`c ≤ NR`), the full
/// `k` extent, from a row-major `k×n` matrix (or `n×k` when `trans`).
/// Columns `c..NR` are zero lanes.
pub(crate) fn pack_b_panel(dst: &mut [f32], src: &[f32], trans: bool, col0: usize, c: usize, n: usize, k: usize) {
    debug_assert!(dst.len() >= k * NR);
    debug_assert!(c <= NR);
    if trans {
        // src is n×k: B[p, col] = src[col*k + p].
        for j in 0..c {
            let s = &src[(col0 + j) * k..(col0 + j) * k + k];
            for (p, &v) in s.iter().enumerate() {
                dst[p * NR + j] = v;
            }
        }
        for j in c..NR {
            for p in 0..k {
                dst[p * NR + j] = 0.0;
            }
        }
    } else {
        for p in 0..k {
            let s = &src[p * n + col0..p * n + col0 + c];
            let d = &mut dst[p * NR..p * NR + NR];
            d[..c].copy_from_slice(s);
            d[c..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_matches_naive() {
        let kc = 13;
        let a: Vec<f32> = (0..kc * MR).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..kc * NR).map(|i| (i as f32 * 0.51).cos()).collect();
        let mut acc = [1.0f32; MR * NR]; // nonzero start: must accumulate
        microkernel(kc, &a, &b, &mut acc);
        for i in 0..MR {
            for j in 0..NR {
                let mut expect = 1.0f32;
                for p in 0..kc {
                    expect += a[p * MR + i] * b[p * NR + j];
                }
                assert!((acc[i * NR + j] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn microkernel_k_zero_is_identity() {
        let mut acc = [3.0f32; MR * NR];
        microkernel(0, &[], &[], &mut acc);
        assert_eq!(acc, [3.0f32; MR * NR]);
    }

    #[test]
    fn pack_a_transposed_agrees_with_plain() {
        let (m, k) = (11, 9);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
        // a_t[p*m + r] = a[r*k + p]
        let mut a_t = vec![0.0f32; m * k];
        for r in 0..m {
            for p in 0..k {
                a_t[p * m + r] = a[r * k + p];
            }
        }
        let r = 3; // short strip with padding
        let mut plain = vec![f32::NAN; k * MR];
        let mut trans = vec![f32::NAN; k * MR];
        pack_a_panel(&mut plain, &a, false, 8, r, m, k);
        pack_a_panel(&mut trans, &a_t, true, 8, r, m, k);
        assert_eq!(plain, trans);
        assert_eq!(plain[r], 0.0); // padded lane of the first k-step zeroed
    }

    #[test]
    fn pack_b_transposed_agrees_with_plain() {
        let (n, k) = (13, 7);
        let b: Vec<f32> = (0..n * k).map(|i| (i * 3) as f32).collect();
        let mut b_t = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                b_t[j * k + p] = b[p * n + j];
            }
        }
        let c = 5;
        let mut plain = vec![f32::NAN; k * NR];
        let mut trans = vec![f32::NAN; k * NR];
        pack_b_panel(&mut plain, &b, false, 8, c, n, k);
        pack_b_panel(&mut trans, &b_t, true, 8, c, n, k);
        assert_eq!(plain, trans);
        assert_eq!(plain[c], 0.0);
    }
}
