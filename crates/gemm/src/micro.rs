//! Register-blocked microkernels — the shared innermost level of both the
//! blocked and grouped GEMM paths.
//!
//! This is the CPU analogue of the paper's register tile: an `MR×NR` block
//! of `C` lives entirely in registers while the full `K` extent streams
//! through it, so every loaded `A` element is reused `NR` times and every
//! `B` element `MR` times (the seed's axpy loops reused each `B` element
//! once). Operands are consumed from *packed micropanels* — k-major
//! interleaved buffers analogous to the staged shared-memory tiles of a GPU
//! kernel — which makes the inner loop two contiguous streams regardless of
//! operand transposes.
//!
//! Since PR 3 the microkernel is a *family*: the portable scalar 8×8 kernel
//! (autovectorized under whatever `-C target-cpu` the build used), an
//! explicit AVX2+FMA 8×16 kernel, and an explicit AVX-512 16×16 kernel —
//! the CPU counterpart of the paper's hardware-wide CUTLASS tiles and
//! `__half2` SIMD2 vectorization (§III.C, §III.E). One kernel is selected
//! at runtime by [`crate::isa`]; because `MR`/`NR` differ per kernel, the
//! packing routines here and both drivers take the geometry as runtime
//! parameters instead of constants.
//!
//! Panel layout (for a kernel of geometry `mr×nr`):
//!
//! * `A` micropanel: `kc × mr`, element `(p, i)` at `a[p*mr + i]` — one
//!   panel per `mr`-row strip, short strips zero-padded.
//! * `B` micropanel: `kc × nr`, element `(p, j)` at `b[p*nr + j]` — one
//!   panel per `nr`-column strip, short strips zero-padded.
//!
//! Zero padding keeps the microkernels branch-free at the edges: padded
//! lanes compute zeros that callers simply never store. This is also the
//! safety invariant the intrinsic kernels rely on — they load full `nr`-wide
//! vectors unconditionally, which is in-bounds precisely because every
//! micropanel is allocated and packed at full tile width.

// Unsafe is confined to `MicroKernel::run`'s call through the kernel
// function pointer (soundness argument at the call site) and to the
// intrinsic kernels in `crate::isa`.
#![allow(unsafe_code)]

use crate::isa::Isa;

/// Largest `MR` of any kernel in the family (the AVX-512 tile height).
/// Stack accumulators in the drivers are sized `MR_MAX × NR_MAX`.
pub const MR_MAX: usize = 16;
/// Largest `NR` of any kernel in the family (the AVX512-FP16 low-precision
/// tile width — see [`crate::lowp`]).
pub const NR_MAX: usize = 32;

/// Geometry of the portable scalar kernel.
pub(crate) const SCALAR_MR: usize = 8;
/// Geometry of the portable scalar kernel.
pub(crate) const SCALAR_NR: usize = 8;

/// Whether the scalar kernel contracts with hardware FMA. Decided **once,
/// at kernel definition**, from the features the *crate* was compiled with:
/// `mul_add` without hardware support lowers to a libm call, so the scalar
/// kernel only fuses when the build guarantees an `fma` instruction.
///
/// This constant is the fix for a latent PR 1 bug: the old `fmadd` helper
/// buried `cfg!(target_feature = "fma")` inside a shared `#[inline(always)]`
/// function, whose meaning would silently diverge if the helper were ever
/// inlined into a `#[target_feature]`-enabled caller (the `cfg!` is resolved
/// at crate compile time and ignores caller-enabled features). Contraction
/// is now an explicit, documented property of each kernel — the intrinsic
/// kernels always fuse (they *are* the FMA instructions), and the scalar
/// kernel's choice is pinned here and exported via
/// [`MicroKernel::fused_fma`] so tests can pick bitwise vs. tolerance
/// comparisons accordingly.
pub(crate) const SCALAR_FUSED_FMA: bool = cfg!(target_feature = "fma");

/// Raw microkernel entry point: `acc[i*nr + j] += Σ_p a[p*mr + i] ·
/// b[p*nr + j]` over `kc` steps, for the kernel's own `mr×nr` geometry.
///
/// # Safety
/// `a` must be valid for `kc*mr` reads, `b` for `kc*nr` reads, `acc` for
/// `mr*nr` reads and writes; and the CPU must support the kernel's ISA.
pub(crate) type KernelFn = unsafe fn(kc: usize, a: *const f32, b: *const f32, acc: *mut f32);

/// One member of the microkernel family: an ISA tier plus its register-tile
/// geometry and contraction mode. Obtain instances from [`crate::isa`]
/// ([`crate::isa::active_kernel`] / [`crate::isa::kernel_for`]) — they are
/// only ever constructed for ISAs verified present at runtime.
pub struct MicroKernel {
    /// The instruction-set tier this kernel is implemented in.
    pub isa: Isa,
    /// Rows of the register tile.
    pub mr: usize,
    /// Columns of the register tile.
    pub nr: usize,
    /// Whether multiply-accumulate is contracted (single rounding per
    /// step). All kernels of equal `fused_fma` produce **bitwise
    /// identical** stored elements for the same operands: every output
    /// element is one accumulation chain in `p`-order regardless of tile
    /// geometry, and padded lanes never reach a store.
    pub fused_fma: bool,
    func: KernelFn,
}

impl MicroKernel {
    pub(crate) const fn new(isa: Isa, mr: usize, nr: usize, fused_fma: bool, func: KernelFn) -> Self {
        Self {
            isa,
            mr,
            nr,
            fused_fma,
            func,
        }
    }

    /// Runs the kernel: `acc[i*nr + j] += Σ_p a[p*mr + i] · b[p*nr + j]`
    /// over `kc` steps. The accumulator block stays in registers for the
    /// whole `kc` loop.
    ///
    /// # Panics
    /// Panics if a micropanel or the accumulator is shorter than the
    /// kernel's geometry requires.
    #[inline]
    pub fn run(&self, kc: usize, a: &[f32], b: &[f32], acc: &mut [f32]) {
        assert!(a.len() >= kc * self.mr, "A micropanel too short");
        assert!(b.len() >= kc * self.nr, "B micropanel too short");
        assert!(acc.len() >= self.mr * self.nr, "accumulator too short");
        // SAFETY: lengths asserted above; the function pointer was only
        // constructed for an ISA that `crate::isa` verified present on this
        // CPU (scalar is universally valid).
        unsafe { (self.func)(kc, a.as_ptr(), b.as_ptr(), acc.as_mut_ptr()) }
    }
}

impl std::fmt::Debug for MicroKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroKernel")
            .field("isa", &self.isa)
            .field("mr", &self.mr)
            .field("nr", &self.nr)
            .field("fused_fma", &self.fused_fma)
            .finish()
    }
}

/// One explicit multiply-accumulate step with the contraction mode fixed by
/// the const parameter — never by the caller's (or a helper's) feature
/// context.
#[inline(always)]
fn contract<const FUSED: bool>(a: f32, b: f32, c: f32) -> f32 {
    if FUSED {
        a.mul_add(b, c)
    } else {
        a * b + c
    }
}

/// The portable scalar kernel (8×8). With fixed loop bounds the two inner
/// loops fully unroll and autovectorize to whatever the build's target CPU
/// offers; `FUSED` pins the contraction mode per [`SCALAR_FUSED_FMA`].
///
/// # Safety
/// See [`KernelFn`].
pub(crate) unsafe fn scalar_kernel<const FUSED: bool>(kc: usize, a: *const f32, b: *const f32, acc: *mut f32) {
    // SAFETY: caller guarantees the panel and accumulator extents.
    let (a, b, acc) = unsafe {
        (
            std::slice::from_raw_parts(a, kc * SCALAR_MR),
            std::slice::from_raw_parts(b, kc * SCALAR_NR),
            std::slice::from_raw_parts_mut(acc, SCALAR_MR * SCALAR_NR),
        )
    };
    let mut c = [0.0f32; SCALAR_MR * SCALAR_NR];
    c.copy_from_slice(acc);
    for p in 0..kc {
        let ap: &[f32; SCALAR_MR] = a[p * SCALAR_MR..p * SCALAR_MR + SCALAR_MR]
            .try_into()
            .expect("MR slice");
        let bp: &[f32; SCALAR_NR] = b[p * SCALAR_NR..p * SCALAR_NR + SCALAR_NR]
            .try_into()
            .expect("NR slice");
        for i in 0..SCALAR_MR {
            let ai = ap[i];
            for j in 0..SCALAR_NR {
                c[i * SCALAR_NR + j] = contract::<FUSED>(ai, bp[j], c[i * SCALAR_NR + j]);
            }
        }
    }
    acc.copy_from_slice(&c);
}

/// Packs one `A` micropanel of an `mr`-row kernel: rows `row0 .. row0+r`
/// (`r ≤ mr`), the full `k` extent, from a row-major `m×k` matrix (or `k×m`
/// when `trans`). Rows `r..mr` are zero lanes — every lane is overwritten,
/// so reused scratch needs no pre-clearing.
#[allow(clippy::too_many_arguments)] // geometry params are the point
pub fn pack_a_panel(dst: &mut [f32], src: &[f32], trans: bool, row0: usize, r: usize, m: usize, k: usize, mr: usize) {
    debug_assert!(dst.len() >= k * mr);
    debug_assert!(r <= mr);
    if trans {
        // src is k×m: A[row, p] = src[p*m + row]; each p step is contiguous
        // in the source.
        for p in 0..k {
            let s = &src[p * m + row0..p * m + row0 + r];
            let d = &mut dst[p * mr..p * mr + mr];
            d[..r].copy_from_slice(s);
            d[r..].fill(0.0);
        }
    } else {
        for i in 0..r {
            let s = &src[(row0 + i) * k..(row0 + i) * k + k];
            for (p, &v) in s.iter().enumerate() {
                dst[p * mr + i] = v;
            }
        }
        for i in r..mr {
            for p in 0..k {
                dst[p * mr + i] = 0.0;
            }
        }
    }
}

/// Packs one `B` micropanel of an `nr`-column kernel: columns
/// `col0 .. col0+c` (`c ≤ nr`), the full `k` extent, from a row-major `k×n`
/// matrix (or `n×k` when `trans`). Columns `c..nr` are zero lanes — every
/// lane is overwritten, so reused scratch needs no pre-clearing.
#[allow(clippy::too_many_arguments)] // geometry params are the point
pub fn pack_b_panel(dst: &mut [f32], src: &[f32], trans: bool, col0: usize, c: usize, n: usize, k: usize, nr: usize) {
    debug_assert!(dst.len() >= k * nr);
    debug_assert!(c <= nr);
    if trans {
        // src is n×k: B[p, col] = src[col*k + p].
        for j in 0..c {
            let s = &src[(col0 + j) * k..(col0 + j) * k + k];
            for (p, &v) in s.iter().enumerate() {
                dst[p * nr + j] = v;
            }
        }
        for j in c..nr {
            for p in 0..k {
                dst[p * nr + j] = 0.0;
            }
        }
    } else {
        for p in 0..k {
            let s = &src[p * n + col0..p * n + col0 + c];
            let d = &mut dst[p * nr..p * nr + nr];
            d[..c].copy_from_slice(s);
            d[c..].fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa;

    #[test]
    fn every_kernel_matches_naive() {
        let kc = 13;
        for tier in isa::available_isas() {
            let kern = isa::kernel_for(tier).expect("available tier has a kernel");
            let (mr, nr) = (kern.mr, kern.nr);
            let a: Vec<f32> = (0..kc * mr).map(|i| (i as f32 * 0.37).sin()).collect();
            let b: Vec<f32> = (0..kc * nr).map(|i| (i as f32 * 0.51).cos()).collect();
            let mut acc = vec![1.0f32; mr * nr]; // nonzero start: must accumulate
            kern.run(kc, &a, &b, &mut acc);
            for i in 0..mr {
                for j in 0..nr {
                    let mut expect = 1.0f32;
                    for p in 0..kc {
                        expect += a[p * mr + i] * b[p * nr + j];
                    }
                    assert!(
                        (acc[i * nr + j] - expect).abs() < 1e-4,
                        "{tier:?} ({i},{j}): {} vs {expect}",
                        acc[i * nr + j]
                    );
                }
            }
        }
    }

    #[test]
    fn every_kernel_k_zero_is_identity() {
        for tier in isa::available_isas() {
            let kern = isa::kernel_for(tier).unwrap();
            let mut acc = vec![3.0f32; kern.mr * kern.nr];
            kern.run(0, &[], &[], &mut acc);
            assert!(acc.iter().all(|&v| v == 3.0), "{tier:?} k=0 must be identity");
        }
    }

    #[test]
    fn geometry_bounded_by_maxima() {
        for tier in isa::available_isas() {
            let kern = isa::kernel_for(tier).unwrap();
            assert!(kern.mr <= MR_MAX, "{tier:?} mr {} > MR_MAX", kern.mr);
            assert!(kern.nr <= NR_MAX, "{tier:?} nr {} > NR_MAX", kern.nr);
        }
    }

    #[test]
    fn pack_a_transposed_agrees_with_plain() {
        for mr in [8usize, 16] {
            let (m, k) = (19, 9);
            let a: Vec<f32> = (0..m * k).map(|i| i as f32).collect();
            // a_t[p*m + r] = a[r*k + p]
            let mut a_t = vec![0.0f32; m * k];
            for r in 0..m {
                for p in 0..k {
                    a_t[p * m + r] = a[r * k + p];
                }
            }
            let r = 3; // short strip with padding
            let mut plain = vec![f32::NAN; k * mr];
            let mut trans = vec![f32::NAN; k * mr];
            pack_a_panel(&mut plain, &a, false, 16, r, m, k, mr);
            pack_a_panel(&mut trans, &a_t, true, 16, r, m, k, mr);
            assert_eq!(plain, trans);
            assert_eq!(plain[r], 0.0); // padded lane of the first k-step zeroed
        }
    }

    #[test]
    fn pack_b_transposed_agrees_with_plain() {
        for nr in [8usize, 16] {
            let (n, k) = (21, 7);
            let b: Vec<f32> = (0..n * k).map(|i| (i * 3) as f32).collect();
            let mut b_t = vec![0.0f32; n * k];
            for p in 0..k {
                for j in 0..n {
                    b_t[j * k + p] = b[p * n + j];
                }
            }
            let c = 5;
            let mut plain = vec![f32::NAN; k * nr];
            let mut trans = vec![f32::NAN; k * nr];
            pack_b_panel(&mut plain, &b, false, 16, c, n, k, nr);
            pack_b_panel(&mut trans, &b_t, true, 16, c, n, k, nr);
            assert_eq!(plain, trans);
            assert_eq!(plain[c], 0.0);
        }
    }
}
