//! Grouped GEMM — CUTLASS-style scheduler over sub-problems of arbitrary
//! shape, with the paper's warp-prefetch optimization and fusion hooks.
//!
//! Batched GEMM demands identical shapes; **grouped GEMM** lifts that
//! restriction with a built-in scheduler that hands out fixed-size `C` tiles
//! across *all* sub-problems in a round-robin walk (paper Fig. 5). This is
//! the machinery that lets fused MHA run one attention unit per
//! `(batch, head)` pair at its *true* sequence length — no padding at all.
//!
//! Three paper mechanisms live here:
//!
//! * **Problem visitor** ([`Scheduler::PerTile`]): each virtual CTA advances
//!   its linear tile index by the grid size and asks the scheduler to decode
//!   it into `(problem, tile_row, tile_col)` — one scheduler visit per tile,
//!   like stock CUTLASS.
//! * **Warp prefetch** ([`Scheduler::WarpPrefetch`], Fig. 7): one scheduler
//!   interaction decodes the next 32 assignments at once (all lanes of a
//!   warp computing metadata cooperatively), giving 32× fewer visits. The
//!   paper measured ~10% end-to-end on grouped GEMM; we count visits exactly
//!   and also pay the real decode cost per visit, so both the metric and the
//!   wall-clock reflect the optimization.
//! * **Fusion hooks**: [`TileEpilogue`] runs on the accumulator tile before
//!   it is stored (softmax partial reduction, Fig. 8), and [`ALoadTransform`]
//!   runs on `A` fragments as they are loaded into the "register tile"
//!   (Algorithm III.2's mainloop fusion, used to fold
//!   `exp(x - max) / sum` into the `P·V` GEMM).

use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// One sub-problem of a grouped GEMM: `C = alpha * A·op(B)`, row-major.
#[derive(Debug, Clone, Copy)]
pub struct GroupedProblem<'a> {
    /// Rows of the output.
    pub m: usize,
    /// Columns of the output.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Consume `B` transposed (`B` stored `n×k`) — the `Q·Kᵀ` layout.
    pub transb: bool,
    /// Scale on the product.
    pub alpha: f32,
    /// Left operand, `m×k` row-major.
    pub a: &'a [f32],
    /// Right operand, `k×n` (or `n×k` when `transb`) row-major.
    pub b: &'a [f32],
}

/// Tile-assignment strategy of the grouped-GEMM problem visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduler {
    /// Stock CUTLASS behaviour: one scheduler visit decodes one tile.
    PerTile,
    /// The paper's optimization: one visit decodes the next 32 tiles.
    WarpPrefetch,
}

/// Number of assignments decoded per warp-prefetch scheduler visit (the 32
/// lanes of a warp).
pub const PREFETCH_WIDTH: usize = 32;

/// Geometry and grid configuration for a grouped launch.
#[derive(Debug, Clone, Copy)]
pub struct GroupedConfig {
    /// Tile rows (the paper's `M_C`; CUTLASS default 128, ours 64 to suit
    /// CPU cache tiles — the scheduler walk is identical either way).
    pub tile_m: usize,
    /// Tile columns (`N_C`).
    pub tile_n: usize,
    /// Number of virtual CTAs walking the tile space (A100 has 108 SMs).
    pub num_ctas: usize,
    /// Tile-assignment strategy.
    pub scheduler: Scheduler,
}

impl Default for GroupedConfig {
    fn default() -> Self {
        Self {
            tile_m: 64,
            tile_n: 64,
            num_ctas: 108,
            scheduler: Scheduler::WarpPrefetch,
        }
    }
}

/// Post-run statistics for the scheduler ablation (paper §III.E.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupedStats {
    /// Total `C` tiles computed across all sub-problems.
    pub tiles: u64,
    /// Scheduler interactions performed (tiles / 32, rounded up per CTA,
    /// under warp prefetch).
    pub scheduler_visits: u64,
}

/// Epilogue applied to each accumulator tile before it is stored to `C`.
pub trait TileEpilogue: Sync {
    /// `tile` is a dense `rows×cols` row-major buffer holding the final
    /// (alpha-scaled) values of `C[row0.., col0..]` for problem
    /// `problem_idx`.
    fn apply(&self, problem_idx: usize, row0: usize, col0: usize, rows: usize, cols: usize, tile: &mut [f32]);
}

/// No-op epilogue.
pub struct NoEpilogue;

impl TileEpilogue for NoEpilogue {
    fn apply(&self, _: usize, _: usize, _: usize, _: usize, _: usize, _: &mut [f32]) {}
}

/// Mainloop fusion hook: transforms a freshly loaded `A` fragment
/// (Algorithm III.2's `elementwise_transform` on `warp_loaded_frag_A`).
pub trait ALoadTransform: Sync {
    /// `a_chunk` holds `A[global_row, k0 .. k0 + a_chunk.len()]` of problem
    /// `problem_idx`, already copied into the register tile.
    fn transform(&self, problem_idx: usize, global_row: usize, k0: usize, a_chunk: &mut [f32]);
}

/// No-op load transform.
pub struct NoTransform;

impl ALoadTransform for NoTransform {
    fn transform(&self, _: usize, _: usize, _: usize, _: &mut [f32]) {}
}

/// Decoded tile assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TileAssignment {
    problem: usize,
    tile_row: usize,
    tile_col: usize,
}

/// The problem visitor: decodes linear tile indices into per-problem tile
/// coordinates, mirroring `cutlass::gemm::kernel::GroupedProblemVisitor`.
struct ProblemVisitor {
    /// Exclusive prefix sum of per-problem tile counts.
    prefix: Vec<u64>,
    grid_cols: Vec<usize>,
    total: u64,
}

impl ProblemVisitor {
    fn new(problems: &[GroupedProblem<'_>], tile_m: usize, tile_n: usize) -> Self {
        let mut prefix = Vec::with_capacity(problems.len() + 1);
        let mut grid_cols = Vec::with_capacity(problems.len());
        let mut total = 0u64;
        prefix.push(0);
        for p in problems {
            let rows = p.m.div_ceil(tile_m);
            let cols = p.n.div_ceil(tile_n);
            grid_cols.push(cols);
            total += (rows * cols) as u64;
            prefix.push(total);
        }
        Self {
            prefix,
            grid_cols,
            total,
        }
    }

    /// Decodes one linear tile index. `cursor` caches the problem the CTA
    /// last visited so the scan is incremental, as in CUTLASS (tile indices
    /// per CTA are monotonically increasing).
    fn decode(&self, linear: u64, cursor: &mut usize) -> TileAssignment {
        debug_assert!(linear < self.total);
        while self.prefix[*cursor + 1] <= linear {
            *cursor += 1;
        }
        let problem = *cursor;
        let local = (linear - self.prefix[problem]) as usize;
        let cols = self.grid_cols[problem];
        TileAssignment {
            problem,
            tile_row: local / cols,
            tile_col: local % cols,
        }
    }
}

/// Runs a grouped GEMM: every sub-problem `C_i = alpha_i * A_i·op(B_i)`,
/// tiles distributed across `config.num_ctas` virtual CTAs by the selected
/// scheduler. Returns scheduler statistics for the ablation harness.
///
/// `outputs[i]` receives problem `i`'s `m×n` result (fully overwritten).
///
/// # Panics
/// Panics if `outputs` mismatches `problems` in count or any buffer is too
/// short for its declared shape.
pub fn grouped_sgemm(
    problems: &[GroupedProblem<'_>],
    outputs: Vec<&mut [f32]>,
    config: GroupedConfig,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
) -> GroupedStats {
    assert_eq!(problems.len(), outputs.len(), "one output buffer per problem");
    for (i, (p, c)) in problems.iter().zip(&outputs).enumerate() {
        assert!(p.a.len() >= p.m * p.k, "problem {i}: A too short");
        assert!(p.b.len() >= p.k * p.n, "problem {i}: B too short");
        assert!(c.len() >= p.m * p.n, "problem {i}: C too short");
    }

    let visitor = ProblemVisitor::new(problems, config.tile_m, config.tile_n);
    let total = visitor.total;
    if total == 0 {
        return GroupedStats {
            tiles: 0,
            scheduler_visits: 0,
        };
    }

    // C buffers behind per-problem locks: tiles are disjoint, but the type
    // system cannot see that, and a short per-tile critical section is an
    // honest stand-in for the store-to-global phase.
    let outputs: Vec<Mutex<&mut [f32]>> = outputs.into_iter().map(Mutex::new).collect();
    let visits = AtomicU64::new(0);

    (0..config.num_ctas).into_par_iter().for_each(|cta| {
        let mut cursor = 0usize;
        let mut local_visits = 0u64;
        match config.scheduler {
            Scheduler::PerTile => {
                let mut linear = cta as u64;
                while linear < total {
                    local_visits += 1;
                    let asg = visitor.decode(linear, &mut cursor);
                    compute_tile(problems, &outputs, &config, asg, epilogue, a_transform);
                    linear += config.num_ctas as u64;
                }
            }
            Scheduler::WarpPrefetch => {
                // One visit decodes the CTA's next PREFETCH_WIDTH tiles.
                let mut batch = [TileAssignment {
                    problem: 0,
                    tile_row: 0,
                    tile_col: 0,
                }; PREFETCH_WIDTH];
                let mut linear = cta as u64;
                while linear < total {
                    local_visits += 1;
                    let mut count = 0;
                    let mut l = linear;
                    while count < PREFETCH_WIDTH && l < total {
                        batch[count] = visitor.decode(l, &mut cursor);
                        count += 1;
                        l += config.num_ctas as u64;
                    }
                    for asg in &batch[..count] {
                        compute_tile(problems, &outputs, &config, *asg, epilogue, a_transform);
                    }
                    linear = l;
                }
            }
        }
        visits.fetch_add(local_visits, Ordering::Relaxed);
    });

    GroupedStats {
        tiles: total,
        scheduler_visits: visits.load(Ordering::Relaxed),
    }
}

/// Output placement of one grouped sub-problem inside a shared buffer:
/// problem rows map to `out[offset + row*ld + col]`.
///
/// This is how the second fused-MHA GEMM writes each `(batch, head)`
/// context block *directly into the packed `[valid, hidden]` activation*
/// (offset = seq start × hidden + head × head_size, ld = hidden): no
/// merge/transpose pass ever runs, exactly as the CUDA epilogue stores
/// strided.
#[derive(Debug, Clone, Copy)]
pub struct StridedOutput {
    /// Element offset of the problem's `(0, 0)` output.
    pub offset: usize,
    /// Leading dimension (elements between consecutive output rows).
    pub ld: usize,
}

/// [`grouped_sgemm`] variant writing all sub-problem outputs into one shared
/// buffer at per-problem strided placements.
///
/// # Panics
/// Panics if placements mismatch `problems` in count or overflow `out`.
pub fn grouped_sgemm_strided(
    problems: &[GroupedProblem<'_>],
    out: &mut [f32],
    placements: &[StridedOutput],
    config: GroupedConfig,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
) -> GroupedStats {
    assert_eq!(problems.len(), placements.len(), "one placement per problem");
    for (i, (p, pl)) in problems.iter().zip(placements).enumerate() {
        assert!(p.a.len() >= p.m * p.k, "problem {i}: A too short");
        assert!(p.b.len() >= p.k * p.n, "problem {i}: B too short");
        assert!(pl.ld >= p.n, "problem {i}: ld {} < n {}", pl.ld, p.n);
        if p.m > 0 {
            assert!(
                pl.offset + (p.m - 1) * pl.ld + p.n <= out.len(),
                "problem {i}: placement overflows output buffer"
            );
        }
    }
    let visitor = ProblemVisitor::new(problems, config.tile_m, config.tile_n);
    let total = visitor.total;
    if total == 0 {
        return GroupedStats {
            tiles: 0,
            scheduler_visits: 0,
        };
    }
    let out = Mutex::new(out);
    let visits = AtomicU64::new(0);
    (0..config.num_ctas).into_par_iter().for_each(|cta| {
        let mut cursor = 0usize;
        let mut local_visits = 0u64;
        let mut linear = cta as u64;
        let step = config.num_ctas as u64;
        let mut pending = 0usize; // tiles decoded since last scheduler visit
        while linear < total {
            if pending == 0 {
                local_visits += 1;
                pending = match config.scheduler {
                    Scheduler::PerTile => 1,
                    Scheduler::WarpPrefetch => PREFETCH_WIDTH,
                };
            }
            let asg = visitor.decode(linear, &mut cursor);
            let p = &problems[asg.problem];
            let pl = &placements[asg.problem];
            let tile = compute_tile_values(p, &config, asg, epilogue, a_transform, asg.problem);
            let (row0, col0, rows, cols) = tile_bounds(p, &config, asg);
            let mut guard = out.lock();
            for i in 0..rows {
                let base = pl.offset + (row0 + i) * pl.ld + col0;
                guard[base..base + cols].copy_from_slice(&tile[i * cols..(i + 1) * cols]);
            }
            drop(guard);
            pending -= 1;
            linear += step;
        }
        visits.fetch_add(local_visits, Ordering::Relaxed);
    });
    GroupedStats {
        tiles: total,
        scheduler_visits: visits.load(Ordering::Relaxed),
    }
}

fn tile_bounds(
    p: &GroupedProblem<'_>,
    config: &GroupedConfig,
    asg: TileAssignment,
) -> (usize, usize, usize, usize) {
    let row0 = asg.tile_row * config.tile_m;
    let col0 = asg.tile_col * config.tile_n;
    (row0, col0, config.tile_m.min(p.m - row0), config.tile_n.min(p.n - col0))
}

/// Computes the values of one output tile into a fresh buffer (shared by the
/// contiguous and strided store paths).
fn compute_tile_values(
    p: &GroupedProblem<'_>,
    config: &GroupedConfig,
    asg: TileAssignment,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
    problem_idx: usize,
) -> Vec<f32> {
    let (row0, col0, rows, cols) = tile_bounds(p, config, asg);
    let mut acc = vec![0.0f32; rows * cols];
    const KC: usize = 64;
    let mut a_frag = vec![0.0f32; rows.max(1) * KC];
    let mut k0 = 0;
    while k0 < p.k {
        let kc = KC.min(p.k - k0);
        for i in 0..rows {
            let src = &p.a[(row0 + i) * p.k + k0..(row0 + i) * p.k + k0 + kc];
            let dst = &mut a_frag[i * kc..(i + 1) * kc];
            dst.copy_from_slice(src);
            a_transform.transform(problem_idx, row0 + i, k0, dst);
        }
        if p.transb {
            for i in 0..rows {
                let a_row = &a_frag[i * kc..(i + 1) * kc];
                let acc_row = &mut acc[i * cols..(i + 1) * cols];
                for (j, av) in acc_row.iter_mut().enumerate() {
                    let b_row = &p.b[(col0 + j) * p.k + k0..(col0 + j) * p.k + k0 + kc];
                    let mut s = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        s += x * y;
                    }
                    *av += s;
                }
            }
        } else {
            for i in 0..rows {
                let a_row = &a_frag[i * kc..(i + 1) * kc];
                let acc_row = &mut acc[i * cols..(i + 1) * cols];
                for (dp, &av) in a_row.iter().enumerate() {
                    let b_row = &p.b[(k0 + dp) * p.n + col0..(k0 + dp) * p.n + col0 + cols];
                    for (cv, &bv) in acc_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        }
        k0 += kc;
    }
    if p.alpha != 1.0 {
        for v in &mut acc {
            *v *= p.alpha;
        }
    }
    epilogue.apply(problem_idx, row0, col0, rows, cols, &mut acc);
    acc
}

/// Computes one `C` tile: loads/transforms `A` fragments, accumulates the
/// product in a tile-local buffer, applies the epilogue, and stores.
fn compute_tile(
    problems: &[GroupedProblem<'_>],
    outputs: &[Mutex<&mut [f32]>],
    config: &GroupedConfig,
    asg: TileAssignment,
    epilogue: &dyn TileEpilogue,
    a_transform: &dyn ALoadTransform,
) {
    let p = &problems[asg.problem];
    let (row0, col0, rows, cols) = tile_bounds(p, config, asg);
    let acc = compute_tile_values(p, config, asg, epilogue, a_transform, asg.problem);

    // Store to "global memory".
    let mut c = outputs[asg.problem].lock();
    for i in 0..rows {
        let dst = &mut c[(row0 + i) * p.n + col0..(row0 + i) * p.n + col0 + cols];
        dst.copy_from_slice(&acc[i * cols..(i + 1) * cols]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use bt_tensor::compare::assert_close;
    use bt_tensor::rng::Xoshiro256StarStar;

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    fn run_and_check(shapes: &[(usize, usize, usize)], transb: bool, scheduler: Scheduler) -> GroupedStats {
        run_and_check_ctas(shapes, transb, scheduler, 108)
    }

    fn run_and_check_ctas(
        shapes: &[(usize, usize, usize)],
        transb: bool,
        scheduler: Scheduler,
        num_ctas: usize,
    ) -> GroupedStats {
        let a_bufs: Vec<Vec<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, _, k))| rand_vec(m * k, i as u64 * 2 + 1))
            .collect();
        let b_bufs: Vec<Vec<f32>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(_, n, k))| rand_vec(k * n, i as u64 * 2 + 2))
            .collect();
        let problems: Vec<GroupedProblem<'_>> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| GroupedProblem {
                m,
                n,
                k,
                transb,
                alpha: 1.0,
                a: &a_bufs[i],
                b: &b_bufs[i],
            })
            .collect();
        let mut c_bufs: Vec<Vec<f32>> = shapes.iter().map(|&(m, n, _)| vec![0.0; m * n]).collect();
        let config = GroupedConfig {
            scheduler,
            num_ctas,
            ..Default::default()
        };
        let stats = grouped_sgemm(
            &problems,
            c_bufs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            config,
            &NoEpilogue,
            &NoTransform,
        );
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            let mut expect = vec![0.0f32; m * n];
            gemm_ref(false, transb, m, n, k, 1.0, &a_bufs[i], &b_bufs[i], 0.0, &mut expect);
            assert_close(&c_bufs[i], &expect, 1e-3);
        }
        stats
    }

    #[test]
    fn variable_shapes_match_reference() {
        run_and_check(
            &[(17, 23, 31), (64, 64, 64), (1, 100, 7), (130, 5, 70)],
            false,
            Scheduler::PerTile,
        );
    }

    #[test]
    fn warp_prefetch_same_results_fewer_visits() {
        // 8 CTAs over ~82 tiles so each CTA owns several tiles — the regime
        // where prefetching one batch of 32 assignments pays off.
        let shapes: Vec<(usize, usize, usize)> =
            (0..12).map(|i| (40 + i * 17, 50 + i * 13, 64)).collect();
        let per_tile = run_and_check_ctas(&shapes, false, Scheduler::PerTile, 8);
        let prefetch = run_and_check_ctas(&shapes, false, Scheduler::WarpPrefetch, 8);
        assert_eq!(per_tile.tiles, prefetch.tiles);
        assert_eq!(per_tile.scheduler_visits, per_tile.tiles);
        assert!(
            prefetch.scheduler_visits < per_tile.scheduler_visits,
            "prefetch {} !< per-tile {}",
            prefetch.scheduler_visits,
            per_tile.scheduler_visits
        );
        // Each CTA rounds up once, so visits ≤ ceil(tiles/32) + num_ctas.
        assert!(prefetch.scheduler_visits <= per_tile.tiles / PREFETCH_WIDTH as u64 + 108 + 1);
    }

    #[test]
    fn transb_variable_shapes() {
        run_and_check(&[(33, 65, 64), (128, 96, 64), (5, 5, 64)], true, Scheduler::WarpPrefetch);
    }

    #[test]
    fn empty_problem_list() {
        let stats = grouped_sgemm(&[], vec![], GroupedConfig::default(), &NoEpilogue, &NoTransform);
        assert_eq!(stats.tiles, 0);
    }

    #[test]
    fn alpha_scaling() {
        let a = vec![1.0f32; 4];
        let b = vec![1.0f32; 4];
        let problems = vec![GroupedProblem {
            m: 2,
            n: 2,
            k: 2,
            transb: false,
            alpha: 0.5,
            a: &a,
            b: &b,
        }];
        let mut c = vec![0.0f32; 4];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        assert_eq!(c, vec![1.0; 4]); // 2 * 0.5
    }

    #[test]
    fn a_load_transform_applied() {
        // transform: negate A -> C should be negated product.
        struct Negate;
        impl ALoadTransform for Negate {
            fn transform(&self, _: usize, _: usize, _: usize, chunk: &mut [f32]) {
                for v in chunk {
                    *v = -*v;
                }
            }
        }
        let a = rand_vec(6 * 8, 1);
        let b = rand_vec(8 * 5, 2);
        let problems = vec![GroupedProblem {
            m: 6,
            n: 5,
            k: 8,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut c = vec![0.0f32; 30];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig::default(),
            &NoEpilogue,
            &Negate,
        );
        let mut expect = vec![0.0f32; 30];
        gemm_ref(false, false, 6, 5, 8, -1.0, &a, &b, 0.0, &mut expect);
        assert_close(&c, &expect, 1e-4);
    }

    #[test]
    fn epilogue_sees_correct_tile_coordinates() {
        // Epilogue that writes row0+col0 into every element; with one tile
        // per problem the output becomes constant per problem.
        struct StampCoords;
        impl TileEpilogue for StampCoords {
            fn apply(&self, _p: usize, row0: usize, col0: usize, _r: usize, _c: usize, tile: &mut [f32]) {
                for v in tile {
                    *v = (row0 + col0) as f32;
                }
            }
        }
        let a = vec![0.0f32; 100 * 8];
        let b = vec![0.0f32; 8 * 100];
        let problems = vec![GroupedProblem {
            m: 100,
            n: 100,
            k: 8,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut c = vec![-1.0f32; 100 * 100];
        grouped_sgemm(
            &problems,
            vec![c.as_mut_slice()],
            GroupedConfig {
                tile_m: 64,
                tile_n: 64,
                ..Default::default()
            },
            &StampCoords,
            &NoTransform,
        );
        // Element (0,0) is in tile (0,0); element (99,99) in tile (64,64).
        assert_eq!(c[0], 0.0);
        assert_eq!(c[99 * 100 + 99], 128.0);
        assert_eq!(c[99 * 100], 64.0); // tile (64, 0)
    }

    #[test]
    fn strided_output_matches_contiguous() {
        // Two problems writing into one shared [rows, 8] buffer side by side
        // (cols 0..3 and 3..8), like two heads of a packed context tensor.
        let a0 = rand_vec(70 * 16, 1);
        let b0 = rand_vec(16 * 3, 2);
        let a1 = rand_vec(70 * 16, 3);
        let b1 = rand_vec(16 * 5, 4);
        let problems = vec![
            GroupedProblem {
                m: 70,
                n: 3,
                k: 16,
                transb: false,
                alpha: 1.0,
                a: &a0,
                b: &b0,
            },
            GroupedProblem {
                m: 70,
                n: 5,
                k: 16,
                transb: false,
                alpha: 2.0,
                a: &a1,
                b: &b1,
            },
        ];
        let placements = vec![
            StridedOutput { offset: 0, ld: 8 },
            StridedOutput { offset: 3, ld: 8 },
        ];
        let mut out = vec![0.0f32; 70 * 8];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &placements,
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
        let mut e0 = vec![0.0f32; 70 * 3];
        let mut e1 = vec![0.0f32; 70 * 5];
        gemm_ref(false, false, 70, 3, 16, 1.0, &a0, &b0, 0.0, &mut e0);
        gemm_ref(false, false, 70, 5, 16, 2.0, &a1, &b1, 0.0, &mut e1);
        for r in 0..70 {
            assert_close(&out[r * 8..r * 8 + 3], &e0[r * 3..(r + 1) * 3], 1e-4);
            assert_close(&out[r * 8 + 3..r * 8 + 8], &e1[r * 5..(r + 1) * 5], 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "placement overflows")]
    fn strided_overflow_checked() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 4];
        let problems = vec![GroupedProblem {
            m: 2,
            n: 2,
            k: 2,
            transb: false,
            alpha: 1.0,
            a: &a,
            b: &b,
        }];
        let mut out = vec![0.0f32; 3];
        grouped_sgemm_strided(
            &problems,
            &mut out,
            &[StridedOutput { offset: 0, ld: 2 }],
            GroupedConfig::default(),
            &NoEpilogue,
            &NoTransform,
        );
    }

    #[test]
    fn scheduler_visit_count_exact_per_tile() {
        // 3 problems of 64x64 with tile 64 -> 3 tiles, 3 visits.
        let a = vec![0.0f32; 64 * 4];
        let b = vec![0.0f32; 4 * 64];
        let problems: Vec<GroupedProblem<'_>> = (0..3)
            .map(|_| GroupedProblem {
                m: 64,
                n: 64,
                k: 4,
                transb: false,
                alpha: 1.0,
                a: &a,
                b: &b,
            })
            .collect();
        let mut cs: Vec<Vec<f32>> = (0..3).map(|_| vec![0.0; 64 * 64]).collect();
        let stats = grouped_sgemm(
            &problems,
            cs.iter_mut().map(|c| c.as_mut_slice()).collect(),
            GroupedConfig {
                scheduler: Scheduler::PerTile,
                ..Default::default()
            },
            &NoEpilogue,
            &NoTransform,
        );
        assert_eq!(stats.tiles, 3);
        assert_eq!(stats.scheduler_visits, 3);
    }
}
